// Benchmarks regenerating the paper's tables and figures at reduced scale,
// plus microbenchmarks of the framework's hot paths. Every BenchmarkFigure*
// / BenchmarkTable* target runs the corresponding experiment's sweep shape
// (smaller grids, 1 repetition per b.N iteration) and reports the measured
// solution quality / time as custom benchmark metrics, so `go test -bench`
// output directly exhibits the reproduced trends. For full-size runs use
// cmd/exptables.
package gossipopt_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"gossipopt"
	"gossipopt/internal/exp"
	"gossipopt/internal/funcs"
	"gossipopt/internal/overlay"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/scenario"
	"gossipopt/internal/sim"
)

// benchCell runs one experiment cell once per iteration and reports the
// average quality (or time) as a benchmark metric.
func benchCell(b *testing.B, c exp.Cell) {
	b.Helper()
	var qSum, tSum float64
	reached := 0
	for i := 0; i < b.N; i++ {
		res := exp.RunRep(c, uint64(i)+1)
		qSum += res.Quality
		tSum += float64(res.Cycles)
		if res.Reached {
			reached++
		}
	}
	b.ReportMetric(qSum/float64(b.N), "quality")
	b.ReportMetric(tSum/float64(b.N), "cycles")
	if c.Threshold >= 0 {
		b.ReportMetric(float64(reached)/float64(b.N), "reached")
	}
}

// --- Experiment 1 (Table 1, Figure 1): quality vs swarm size ---

func BenchmarkFigure1(b *testing.B) {
	for _, f := range funcs.PaperSuite {
		for _, n := range []int{1, 10, 100} {
			for _, k := range []int{1, 8, 32} {
				c := exp.Cell{Function: f, N: n, K: k, R: k,
					Budget: int64(n) * 1000, Threshold: -1}
				b.Run(fmt.Sprintf("%s/n=%d/k=%d", f.Name, n, k), func(b *testing.B) {
					benchCell(b, c)
				})
			}
		}
	}
}

// --- Experiment 2 (Table 2, Figure 2): quality vs network size ---

func BenchmarkFigure2(b *testing.B) {
	for _, f := range funcs.PaperSuite {
		for _, n := range []int{1, 16, 256} {
			for _, k := range []int{1, 16} {
				c := exp.Cell{Function: f, N: n, K: k, R: k,
					Budget: 1 << 15, Threshold: -1}
				b.Run(fmt.Sprintf("%s/n=%d/k=%d", f.Name, n, k), func(b *testing.B) {
					benchCell(b, c)
				})
			}
		}
	}
}

// --- Experiment 3 (Table 3, Figure 3): quality vs gossip cycle length ---

func BenchmarkFigure3(b *testing.B) {
	for _, f := range funcs.PaperSuite {
		for _, r := range []int{2, 16, 64} {
			c := exp.Cell{Function: f, N: 100, K: 16, R: r,
				Budget: 100 * 1000, Threshold: -1}
			b.Run(fmt.Sprintf("%s/r=%d", f.Name, r), func(b *testing.B) {
				benchCell(b, c)
			})
		}
	}
}

// --- Experiment 4 (Table 4, Figure 4): time to quality threshold ---

func BenchmarkFigure4(b *testing.B) {
	// Griewank is censored in the paper too; keep the cap small so the
	// benchmark terminates quickly when the threshold is unreachable.
	for _, f := range funcs.PaperSuite {
		for _, n := range []int{1, 8, 64} {
			c := exp.Cell{Function: f, N: n, K: 8, R: 8,
				Threshold: 1e-10, MaxEvals: 1 << 17}
			b.Run(fmt.Sprintf("%s/n=%d", f.Name, n), func(b *testing.B) {
				benchCell(b, c)
			})
		}
	}
}

// --- Ablations ---

func BenchmarkAblationNoGossip(b *testing.B) {
	for _, coord := range []bool{true, false} {
		name := "gossip"
		if !coord {
			name = "isolated"
		}
		c := exp.Cell{Function: funcs.Rastrigin, N: 50, K: 16, R: 16,
			Budget: 50 * 1000, Threshold: -1, NoCoordination: !coord}
		b.Run(name, func(b *testing.B) { benchCell(b, c) })
	}
}

func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []gossipopt.TopologyKind{
		gossipopt.TopoNewscast, gossipopt.TopoRandom, gossipopt.TopoRing, gossipopt.TopoStar,
	} {
		c := exp.Cell{Function: funcs.Sphere, N: 64, K: 16, R: 16,
			Budget: 64 * 1000, Threshold: -1, Topology: topo}
		b.Run(topo.String(), func(b *testing.B) { benchCell(b, c) })
	}
}

func BenchmarkAblationChurn(b *testing.B) {
	for _, frac := range []float64{0, 0.5} {
		frac := frac
		c := exp.Cell{Function: funcs.Sphere, N: 64, K: 16, R: 16,
			Budget: 64 * 1000, Threshold: -1}
		if frac > 0 {
			c.Churn = func() sim.ChurnModel {
				return &sim.CatastropheChurn{AtCycle: 250, Fraction: frac}
			}
		}
		b.Run(fmt.Sprintf("crash=%.0f%%", frac*100), func(b *testing.B) { benchCell(b, c) })
	}
}

func BenchmarkAblationMixedSolvers(b *testing.B) {
	spec := exp.Spec{Funcs: []funcs.Function{funcs.Rastrigin}, Reps: 1, BudgetPerNode: 1000}
	for _, c := range gossipopt.AblationMixedSolvers(spec, true) {
		c := c
		b.Run(c.Tag, func(b *testing.B) { benchCell(b, c) })
	}
}

func BenchmarkAblationMessageLoss(b *testing.B) {
	for _, p := range []float64{0, 0.5, 0.9} {
		c := exp.Cell{Function: funcs.Sphere, N: 32, K: 16, R: 16,
			Budget: 32 * 1000, Threshold: -1, DropProb: p}
		b.Run(fmt.Sprintf("loss=%.0f%%", p*100), func(b *testing.B) { benchCell(b, c) })
	}
}

// --- Microbenchmarks of the framework's hot paths ---

func BenchmarkNetworkCycle(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := gossipopt.New(gossipopt.Config{
				Nodes: n, Particles: 16, GossipEvery: 16,
				Function: gossipopt.Sphere, Seed: 1,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
			evalsPerOp := float64(net.TotalEvals()) / float64(b.N)
			b.ReportMetric(evalsPerOp, "evals/op")
		})
	}
}

// BenchmarkEngineWorkers measures cycle throughput of the two-phase engine
// at production-ish scale (n = 10k nodes) across worker counts. Results are
// bit-identical for every worker count (see core.TestWorkerCountInvariance);
// only wall-clock changes. Workers drives both phases: propose (solver
// evaluation dominates a cycle's cost) parallelizes embarrassingly, and
// apply is destination-sharded across the same persistent pool — no
// goroutine is spawned per cycle in the steady state, so on a machine with
// >= 8 cores, workers=8 should deliver well over 2x the node-cycles/s of
// workers=1 with no serial phase left as the floor.
func BenchmarkEngineWorkers(b *testing.B) {
	const n = 10000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			net := gossipopt.New(gossipopt.Config{
				Nodes: n, Particles: 8, GossipEvery: 8,
				Function: gossipopt.Rastrigin, Seed: 1, Workers: w,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
		})
	}
}

// BenchmarkApplyShards isolates the apply phase's scaling at n = 10k: a
// Newscast-only stack, whose propose phase is a cheap view snapshot while
// apply does the expensive symmetric view merges (two per exchange plus a
// reply leg), run with propose workers pinned and only the apply-shard
// count varying. Traces are bit-identical for every value (see the
// invariance tests); node-cycles/s should rise with applyworkers — before
// the destination-sharded apply this curve was flat by design.
func BenchmarkApplyShards(b *testing.B) {
	const n = 10000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d/applyworkers=%d", n, w), func(b *testing.B) {
			e := sim.NewEngine(1)
			e.SetWorkers(8)
			e.SetApplyWorkers(w)
			e.AddNodes(n)
			overlay.InitNewscast(e, 0, 20)
			start := e.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunCycle()
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
			reportPhaseTimes(b, start, e.Stats())
		})
	}
}

// reportPhaseTimes attributes a benchmark's per-op wall time to the two
// cycle phases via the engine's instrumentation deltas, so the BENCH
// trajectory can tell a propose-bound stack from an apply-bound one.
func reportPhaseTimes(b *testing.B, start, end sim.EngineStats) {
	b.Helper()
	b.ReportMetric(float64(end.ProposeNanos-start.ProposeNanos)/float64(b.N), "propose-ns/op")
	b.ReportMetric(float64(end.ApplyNanos-start.ApplyNanos)/float64(b.N), "apply-ns/op")
}

// BenchmarkEngineMillion is the headline scale benchmark: the full
// Newscast + optimizer stack at n = 10^6 nodes (tiny per-node swarms, so
// the engine — arena walk, payload pooling, sharding — dominates rather
// than the objective function). One op is one full cycle; allocs/op is the
// whole-network allocation count per cycle, which the free lists and the
// dense arena keep bounded (and CI guards against regressing — see
// scripts/check_alloc_budget.sh). ENGINE_BENCH_NODES overrides n for
// reduced-scale smoke runs.
func BenchmarkEngineMillion(b *testing.B) {
	n := 1_000_000
	if s := os.Getenv("ENGINE_BENCH_NODES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			net := gossipopt.New(gossipopt.Config{
				Nodes: n, Particles: 2, Dim: 2, GossipEvery: 2,
				Function: gossipopt.Sphere, Seed: 1, Workers: w,
			})
			defer net.Engine().Close()
			// Warm one full GossipEvery period, not just one cycle: the
			// best-point exchange pools first fill on the first gossip
			// cycle (cycle 2 here), so a single-Step warmup would bill
			// that one-time fill to the measured steady state.
			for i := 0; i < 2; i++ {
				net.Step()
			}
			start := net.Engine().Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
			reportPhaseTimes(b, start, net.Engine().Stats())
		})
	}
}

// BenchmarkScenarioRun measures the declarative layer end to end: one
// iteration runs a full built-in scenario campaign (spec compilation,
// scripted events, metric sampling into a discard sink) on the cycle and
// event engines. The scenario layer should add only negligible overhead on
// top of the raw engines.
func BenchmarkScenarioRun(b *testing.B) {
	for _, name := range []string{"netsplit-heal", "lossy-wan"} {
		spec, ok := scenario.Builtin(name)
		if !ok {
			b.Fatalf("builtin %q missing", name)
		}
		b.Run(name, func(b *testing.B) {
			var evals int64
			for i := 0; i < b.N; i++ {
				sums, err := scenario.Run(spec, scenario.Options{Workers: 4}, exp.DiscardSink{})
				if err != nil {
					b.Fatal(err)
				}
				evals += sums[0].Evals
			}
			b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
		})
	}
}

// BenchmarkCampaignParallel measures campaign-level parallelism: one
// iteration runs an 8-repetition campaign of a built-in scenario with the
// repetitions fanned out over a worker pool. Output is byte-identical for
// every repworkers value (the per-rep rows are buffered and flushed in
// repetition order), so wall-clock should scale with the workers while
// ns/op is the only thing that moves.
func BenchmarkCampaignParallel(b *testing.B) {
	spec, ok := scenario.Builtin("baseline")
	if !ok {
		b.Fatal("builtin baseline missing")
	}
	for _, repWorkers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("repworkers=%d", repWorkers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scenario.Run(spec, scenario.Options{
					Reps:       8,
					RepWorkers: repWorkers,
				}, exp.DiscardSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep measures the sweep layer end to end: one iteration
// expands a built-in sweep's 2x2 grid and runs every cell x repetition
// job on the pool (grid expansion, overridden-spec campaigns, per-cell
// aggregation). Output is byte-identical for every sweepworkers value, so
// only wall-clock moves with the pool size.
func BenchmarkSweep(b *testing.B) {
	sw, ok := scenario.BuiltinSweep("overlay-vs-churn")
	if !ok {
		b.Fatal("builtin sweep overlay-vs-churn missing")
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sweepworkers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scenario.RunSweep(sw, scenario.Options{
					Reps:       2,
					RepWorkers: workers,
				}, exp.DiscardSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunEvalsBudgetCheck demonstrates the O(n^2) -> O(n) win on the
// budget-driven run loop: RunEvals checks TotalEvals every cycle, which
// used to scan all n solvers (O(n) per cycle, O(n^2) per unit of simulated
// work) and is now an engine-maintained counter (O(1) per cycle). With the
// counter, ns/node-cycle stays flat as n grows; under the old scan it grew
// linearly with n.
func BenchmarkRunEvalsBudgetCheck(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := gossipopt.New(gossipopt.Config{
				Nodes: n, Particles: 8, GossipEvery: 8,
				Function: gossipopt.Sphere, Seed: 1,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Budget = current + n: exactly one more cycle, ending with
				// the per-cycle TotalEvals budget check.
				net.RunEvals(net.TotalEvals() + int64(n))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-cycle")
		})
	}
}

func BenchmarkNewscastCycle(b *testing.B) {
	e := sim.NewEngine(1)
	e.AddNodes(256)
	overlay.InitNewscast(e, 0, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycle()
	}
}

func BenchmarkPSOSwarmEval(b *testing.B) {
	s := pso.New(funcs.Griewank, 10, 16, pso.Config{}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalOne()
	}
}

func BenchmarkFunctionSuite(b *testing.B) {
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1.5
	}
	for _, f := range funcs.PaperSuite {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			xx := x[:f.Dim(0)]
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = f.Eval(xx)
			}
			_ = sink
		})
	}
}
