// Command dpso runs one distributed-PSO configuration — the paper's
// parameters (n, k, r) on one benchmark function — and prints the solution
// quality, evaluation counts and coordination metrics.
//
// Examples:
//
//	dpso -f Sphere -n 100 -k 16 -r 16 -evals 100000
//	dpso -f Griewank -n 1000 -k 16 -threshold 1e-10 -maxevals 1048576
//	dpso -f Rastrigin -n 64 -topo ring -loss 0.25 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gossipopt"
)

func main() {
	var (
		fname     = flag.String("f", "Sphere", "benchmark function ("+strings.Join(names(), ", ")+")")
		n         = flag.Int("n", 100, "number of nodes")
		k         = flag.Int("k", 16, "particles per node")
		r         = flag.Int("r", 0, "gossip cycle length in local evals (0 = k, -1 = no coordination)")
		c         = flag.Int("c", 20, "Newscast view size")
		evals     = flag.Int64("evals", 1<<20, "total evaluation budget")
		threshold = flag.Float64("threshold", -1, "stop at this quality (negative = budget mode)")
		maxevals  = flag.Int64("maxevals", 1<<20, "evaluation cap in threshold mode")
		seed      = flag.Uint64("seed", 1, "random seed")
		topoName  = flag.String("topo", "newscast", "topology: newscast, random, ring, star, full")
		loss      = flag.Float64("loss", 0, "coordination message loss probability")
		dim       = flag.Int("dim", 0, "dimension override (0 = paper default)")
		workers   = flag.Int("workers", 0, "engine worker goroutines for the propose phase (0 = GOMAXPROCS; results are identical for any value)")
		quiet     = flag.Bool("q", false, "print only the final quality")
	)
	flag.Parse()

	f, err := gossipopt.FunctionByName(*fname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	topo, err := parseTopo(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gossipEvery := *r
	switch {
	case gossipEvery == 0:
		gossipEvery = *k
	case gossipEvery < 0:
		gossipEvery = 0
	}

	engineWorkers := *workers
	if engineWorkers <= 0 {
		engineWorkers = runtime.GOMAXPROCS(0)
	}

	net := gossipopt.New(gossipopt.Config{
		Nodes:       *n,
		Particles:   *k,
		GossipEvery: gossipEvery,
		ViewSize:    *c,
		Function:    f,
		Dim:         *dim,
		Seed:        *seed,
		Topology:    topo,
		DropProb:    *loss,
		Workers:     engineWorkers,
	})

	start := time.Now()
	var cycles, spent int64
	reached := false
	if *threshold >= 0 {
		cycles, spent, reached = net.RunUntil(*threshold, *maxevals)
	} else {
		cycles = net.RunEvals(*evals)
		spent = net.TotalEvals()
	}
	elapsed := time.Since(start)

	if *quiet {
		fmt.Printf("%g\n", net.Quality())
		return
	}
	best, ok := net.GlobalBest()
	fmt.Printf("function        %s (dim %d, domain [%g, %g])\n", f.Name, f.Dim(*dim), f.Lo, f.Hi)
	fmt.Printf("network         n=%d k=%d r=%d c=%d topo=%s loss=%.2f seed=%d workers=%d\n",
		*n, *k, gossipEvery, *c, topo, *loss, *seed, engineWorkers)
	fmt.Printf("quality         %.6g\n", net.Quality())
	if ok {
		fmt.Printf("best fitness    %.6g\n", best.F)
	}
	fmt.Printf("total evals     %d\n", spent)
	fmt.Printf("time (cycles)   %d local evaluations per node\n", cycles)
	if *threshold >= 0 {
		fmt.Printf("threshold       %g reached=%v\n", *threshold, reached)
	}
	m := net.Metrics()
	fmt.Printf("coordination    exchanges=%d lost=%d adoptions=%d\n",
		m.Exchanges, m.LostExchanges, m.Adoptions)
	fmt.Printf("wall time       %v\n", elapsed.Round(time.Millisecond))
}

func names() []string {
	out := make([]string, len(gossipopt.ExtendedSuite))
	for i, f := range gossipopt.ExtendedSuite {
		out[i] = f.Name
	}
	return out
}

func parseTopo(s string) (gossipopt.TopologyKind, error) {
	switch s {
	case "newscast":
		return gossipopt.TopoNewscast, nil
	case "random":
		return gossipopt.TopoRandom, nil
	case "ring":
		return gossipopt.TopoRing, nil
	case "star":
		return gossipopt.TopoStar, nil
	case "full":
		return gossipopt.TopoFull, nil
	case "cyclon":
		return gossipopt.TopoCyclon, nil
	}
	return 0, fmt.Errorf("unknown topology %q", s)
}
