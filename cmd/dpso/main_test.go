package main

import "testing"

func TestParseTopo(t *testing.T) {
	for _, name := range []string{"newscast", "random", "ring", "star", "full", "cyclon"} {
		topo, err := parseTopo(name)
		if err != nil {
			t.Fatalf("parseTopo(%q): %v", name, err)
		}
		if topo.String() != name {
			t.Fatalf("round trip: %q -> %q", name, topo.String())
		}
	}
	if _, err := parseTopo("hypercube"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestNamesListsPaperFunctions(t *testing.T) {
	got := names()
	want := map[string]bool{"F2": false, "Sphere": false, "Griewank": false}
	for _, n := range got {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("function %s missing from names()", n)
		}
	}
}
