// Command exptables regenerates the paper's tables and figures (and this
// repository's ablations). Each experiment prints a paper-style
// avg/min/max/Var table, renders ASCII versions of the figures, and
// optionally writes gnuplot-ready TSV series files.
//
// Examples:
//
//	exptables -exp 1 -scale quick            # Table 1 + Figure 1, laptop scale
//	exptables -exp all -scale quick -out out # everything, TSVs into ./out
//	exptables -exp 4 -scale paper -reps 50   # full paper-scale run (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gossipopt"
	"gossipopt/internal/exp"
	"gossipopt/internal/plot"
)

type experiment struct {
	id    string
	title string
	cells func(exp.Spec, bool) []exp.Cell
	figs  func(*exp.Report) []*plot.Chart
}

var experiments = []experiment{
	{"1", "Experiment 1: solution quality vs swarm size (Table 1, Figure 1)",
		exp.Experiment1, (*exp.Report).Figure1},
	{"2", "Experiment 2: solution quality vs network size (Table 2, Figure 2)",
		exp.Experiment2, (*exp.Report).Figure2},
	{"3", "Experiment 3: solution quality vs gossip cycle length (Table 3, Figure 3)",
		exp.Experiment3, (*exp.Report).Figure3},
	{"4", "Experiment 4: total time to quality 1e-10 vs network size (Table 4, Figure 4)",
		exp.Experiment4, (*exp.Report).Figure4},
	{"a1", "Ablation: coordination vs independent swarms",
		exp.AblationNoGossip, nil},
	{"a2", "Ablation: topology service (newscast/random/ring/star)",
		exp.AblationTopology, nil},
	{"a3", "Ablation: churn robustness (catastrophic crash fractions)",
		exp.AblationChurn, nil},
	{"a4", "Ablation: solver diversification (pso/de/es/mixed)",
		exp.AblationMixedSolvers, nil},
	{"a5", "Ablation: coordination message loss",
		exp.AblationMessageLoss, nil},
}

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id: 1,2,3,4,a1..a5 or all (comma-separated)")
		scale   = flag.String("scale", "quick", "quick or paper")
		reps    = flag.Int("reps", 0, "override repetitions per cell")
		seed    = flag.Uint64("seed", 1, "base seed")
		outDir  = flag.String("out", "", "directory for TSV series files (empty = skip)")
		noAscii = flag.Bool("no-ascii", false, "suppress ASCII figures")
		funcsCS = flag.String("funcs", "", "comma-separated function subset (default: paper suite)")
		workers = flag.Int("workers", 0, "worker goroutines running repetitions (0 = NumCPU)")
		engineW = flag.Int("engineworkers", 1, "per-repetition engine workers for the propose phase (results are identical for any value)")
	)
	flag.Parse()

	var spec exp.Spec
	quick := *scale != "paper"
	if quick {
		spec = gossipopt.QuickSpec()
	} else {
		spec = gossipopt.PaperSpec()
	}
	spec.Seed = *seed
	if *reps > 0 {
		spec.Reps = *reps
	}
	if *funcsCS != "" {
		var fs []gossipopt.Function
		for _, name := range strings.Split(*funcsCS, ",") {
			f, err := gossipopt.FunctionByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fs = append(fs, f)
		}
		spec.Funcs = fs
	}

	ids := map[string]bool{}
	if *which == "all" {
		for _, e := range experiments {
			ids[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*which, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, e := range experiments {
		if !ids[e.id] {
			continue
		}
		cells := e.cells(spec, quick)
		for i := range cells {
			cells[i].Workers = *engineW
		}
		fmt.Printf("\n########## %s ##########\n", e.title)
		fmt.Printf("# %d cells x %d reps (scale=%s, seed=%d)\n", len(cells), spec.Reps, *scale, *seed)
		start := time.Now()
		runner := &exp.Runner{Reps: spec.Reps, BaseSeed: spec.Seed, Workers: *workers}
		report := &exp.Report{Title: e.title, Results: runner.Sweep(cells)}
		fmt.Printf("# completed in %v\n\n", time.Since(start).Round(time.Millisecond))

		fmt.Println(report.Table())

		fmt.Println("Per-function best rows (the paper's table format):")
		for _, row := range report.BestRows() {
			metric := row.Quality
			unit := "quality"
			if row.Cell.Threshold >= 0 {
				metric = row.Time
				unit = "time"
			}
			fmt.Printf("  %-12s %-8s avg=%-12.5g min=%-12.5g max=%-12.5g var=%-12.5g (%s)\n",
				row.Cell.Function.Name, unit, metric.Avg, metric.Min, metric.Max, metric.Var,
				row.Cell.Label())
		}

		if e.figs != nil {
			charts := e.figs(report)
			for _, ch := range charts {
				if !*noAscii {
					fmt.Println()
					fmt.Println(ch.ASCII(72, 18))
				}
				if *outDir != "" {
					name := sanitize(ch.Title) + ".tsv"
					path := filepath.Join(*outDir, name)
					if err := os.WriteFile(path, []byte(ch.TSV()), 0o644); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Printf("# wrote %s\n", path)
				}
			}
		}
	}
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
	}
	return b.String()
}
