package main

import "testing"

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Experiment 1: Foo (Table 1)": "experiment_1_foo_table_1",
		"a-b_c d":                     "a_b_c_d",
		"UPPER":                       "upper",
		"weird*chars?":                "weirdchars",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.cells == nil {
			t.Fatalf("experiment %q has no cell builder", e.id)
		}
		if e.title == "" {
			t.Fatalf("experiment %q has no title", e.id)
		}
	}
	for _, id := range []string{"1", "2", "3", "4", "a1", "a2", "a3", "a4", "a5"} {
		if !seen[id] {
			t.Fatalf("experiment %q missing", id)
		}
	}
}
