// Command funcinfo inspects the benchmark functions: domains, optima, the
// paper's hardness classification, and values along a line through the
// optimum (a quick sanity probe of the landscape).
//
// Examples:
//
//	funcinfo               # table of all functions
//	funcinfo -f Schaffer   # details and a radial profile
package main

import (
	"flag"
	"fmt"
	"os"

	"gossipopt"
)

func main() {
	var (
		fname = flag.String("f", "", "show details for one function")
		dim   = flag.Int("dim", 0, "dimension override")
		probe = flag.Int("probe", 9, "number of radial probe points")
	)
	flag.Parse()

	if *fname == "" {
		fmt.Printf("%-15s %6s %12s %12s %-6s %s\n", "name", "dim", "lo", "hi", "hard", "optimum f")
		for _, f := range gossipopt.ExtendedSuite {
			fmt.Printf("%-15s %6d %12g %12g %-6s %g\n",
				f.Name, f.Dim(0), f.Lo, f.Hi, f.Hardness, f.OptimumValue)
		}
		return
	}

	f, err := gossipopt.FunctionByName(*fname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d := f.Dim(*dim)
	opt := f.OptimumAt(d)
	fmt.Printf("name        %s\n", f.Name)
	fmt.Printf("dimension   %d\n", d)
	fmt.Printf("domain      [%g, %g]^%d\n", f.Lo, f.Hi, d)
	fmt.Printf("hardness    %s\n", f.Hardness)
	fmt.Printf("optimum at  %v\n", opt)
	fmt.Printf("f(optimum)  %g\n", f.Eval(opt))
	fmt.Println("\nradial profile from the optimum toward the domain corner:")
	for i := 0; i <= *probe; i++ {
		t := float64(i) / float64(*probe)
		x := make([]float64, d)
		for j := range x {
			x[j] = opt[j] + t*(f.Hi-opt[j])
		}
		fmt.Printf("  t=%.2f  f=%.6g\n", t, f.Eval(x))
	}
}
