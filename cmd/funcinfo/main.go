// Command funcinfo inspects the benchmark functions: domains, optima, the
// paper's hardness classification, and values along a line through the
// optimum (a quick sanity probe of the landscape).
//
// Examples:
//
//	funcinfo               # table of all functions
//	funcinfo -f Schaffer   # details and a radial profile
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"gossipopt"
)

// errBadFlags marks a parse failure the FlagSet has already reported to
// stderr, so main must not print it again.
var errBadFlags = errors.New("invalid command line")

func main() {
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // -h: usage printed, success
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// run executes the command against the given arguments and output stream
// (separated from main for testability).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("funcinfo", flag.ContinueOnError)
	var (
		fname = fs.String("f", "", "show details for one function")
		dim   = fs.Int("dim", 0, "dimension override")
		probe = fs.Int("probe", 9, "number of radial probe points")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}
	if *probe < 1 {
		return fmt.Errorf("-probe must be >= 1, got %d", *probe)
	}

	if *fname == "" {
		fmt.Fprintf(out, "%-15s %6s %12s %12s %-6s %s\n", "name", "dim", "lo", "hi", "hard", "optimum f")
		for _, f := range gossipopt.ExtendedSuite {
			fmt.Fprintf(out, "%-15s %6d %12g %12g %-6s %g\n",
				f.Name, f.Dim(0), f.Lo, f.Hi, f.Hardness, f.OptimumValue)
		}
		return nil
	}

	f, err := gossipopt.FunctionByName(*fname)
	if err != nil {
		return err
	}
	d := f.Dim(*dim)
	opt := f.OptimumAt(d)
	fmt.Fprintf(out, "name        %s\n", f.Name)
	fmt.Fprintf(out, "dimension   %d\n", d)
	fmt.Fprintf(out, "domain      [%g, %g]^%d\n", f.Lo, f.Hi, d)
	fmt.Fprintf(out, "hardness    %s\n", f.Hardness)
	fmt.Fprintf(out, "optimum at  %v\n", opt)
	fmt.Fprintf(out, "f(optimum)  %g\n", f.Eval(opt))
	fmt.Fprintln(out, "\nradial profile from the optimum toward the domain corner:")
	for i := 0; i <= *probe; i++ {
		t := float64(i) / float64(*probe)
		x := make([]float64, d)
		for j := range x {
			x[j] = opt[j] + t*(f.Hi-opt[j])
		}
		fmt.Fprintf(out, "  t=%.2f  f=%.6g\n", t, f.Eval(x))
	}
	return nil
}
