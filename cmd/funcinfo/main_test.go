package main

import (
	"strings"
	"testing"
)

func TestRunTableListsAllFunctions(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"Sphere", "Griewank", "Rastrigin", "Schwefel"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %s:\n%s", name, out)
		}
	}
}

func TestRunSingleFunctionProfile(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-f", "Schaffer", "-probe", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"name        Schaffer", "f(optimum)  0", "t=1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownFunction(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-f", "NoSuch"}, &b); err == nil {
		t.Fatal("unknown function accepted")
	}
}
