// Command p2pnode runs one live framework node over TCP. Start a first
// node, then point further nodes (possibly on other machines) at it with
// -join; the cluster self-organizes via Newscast and cooperates on the
// objective via anti-entropy gossip. The node prints its best point
// periodically and exits cleanly on SIGINT/SIGTERM.
//
// Example (three terminals):
//
//	p2pnode -listen 127.0.0.1:7001 -f Rastrigin
//	p2pnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -f Rastrigin
//	p2pnode -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -f Rastrigin
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gossipopt"
	"gossipopt/internal/p2p"
)

// errBadFlags marks a parse failure the FlagSet has already reported to
// stderr, so main must not print it again; errUsage marks other bad
// command lines (exit 2, distinct from runtime failures' exit 1).
var (
	errBadFlags = errors.New("invalid command line")
	errUsage    = errors.New("invalid usage")
)

func main() {
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // -h: usage printed, success
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	case errors.Is(err, errUsage):
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run starts a node per the given arguments and drives the report loop
// until a signal or the -for deadline (separated from main for
// testability).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2pnode", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		join     = fs.String("join", "", "comma-separated bootstrap addresses")
		fname    = fs.String("f", "Sphere", "benchmark function")
		k        = fs.Int("k", 16, "particles in the local swarm")
		r        = fs.Int("r", 0, "gossip every r local evaluations (0 = k)")
		c        = fs.Int("c", 20, "Newscast view size")
		interval = fs.Duration("newscast", 500*time.Millisecond, "Newscast cycle interval")
		throttle = fs.Duration("throttle", time.Millisecond, "delay between evaluations (simulated objective cost)")
		report   = fs.Duration("report", 2*time.Second, "status report interval")
		seed     = fs.Uint64("seed", 0, "random seed (0 = derive from address)")
		runFor   = fs.Duration("for", 0, "run duration (0 = until signal)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	f, err := gossipopt.FunctionByName(*fname)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	var bootstrap []string
	if *join != "" {
		for _, a := range strings.Split(*join, ",") {
			bootstrap = append(bootstrap, strings.TrimSpace(a))
		}
	}

	node, err := p2p.Start(p2p.NodeConfig{
		Listen:           *listen,
		Bootstrap:        bootstrap,
		Function:         f,
		Particles:        *k,
		GossipEvery:      *r,
		ViewSize:         *c,
		NewscastInterval: *interval,
		EvalThrottle:     *throttle,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "node listening on %s (function %s, k=%d)\n", node.Addr(), f.Name, *k)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if *runFor > 0 {
		deadline = time.After(*runFor)
	}

	for {
		select {
		case <-ticker.C:
			_, best, ok := node.Best()
			ex, ad, fl := node.Stats()
			status := "warming up"
			if ok {
				status = fmt.Sprintf("best=%.6g", best)
			}
			fmt.Fprintf(out, "[%s] evals=%d %s peers=%d exchanges=%d adoptions=%d failed=%d\n",
				node.Addr(), node.Evals(), status, len(node.Peers()), ex, ad, fl)
		case <-sig:
			fmt.Fprintln(out, "\nshutting down")
			node.Stop()
			return nil
		case <-deadline:
			_, best, _ := node.Best()
			fmt.Fprintf(out, "final best after %v: %.6g (%d evals)\n", *runFor, best, node.Evals())
			node.Stop()
			return nil
		}
	}
}
