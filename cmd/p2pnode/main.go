// Command p2pnode runs one live framework node over TCP. Start a first
// node, then point further nodes (possibly on other machines) at it with
// -join; the cluster self-organizes via Newscast and cooperates on the
// objective via anti-entropy gossip. The node prints its best point
// periodically and exits cleanly on SIGINT/SIGTERM.
//
// Example (three terminals):
//
//	p2pnode -listen 127.0.0.1:7001 -f Rastrigin
//	p2pnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -f Rastrigin
//	p2pnode -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -f Rastrigin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gossipopt"
	"gossipopt/internal/p2p"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		join     = flag.String("join", "", "comma-separated bootstrap addresses")
		fname    = flag.String("f", "Sphere", "benchmark function")
		k        = flag.Int("k", 16, "particles in the local swarm")
		r        = flag.Int("r", 0, "gossip every r local evaluations (0 = k)")
		c        = flag.Int("c", 20, "Newscast view size")
		interval = flag.Duration("newscast", 500*time.Millisecond, "Newscast cycle interval")
		throttle = flag.Duration("throttle", time.Millisecond, "delay between evaluations (simulated objective cost)")
		report   = flag.Duration("report", 2*time.Second, "status report interval")
		seed     = flag.Uint64("seed", 0, "random seed (0 = derive from address)")
		runFor   = flag.Duration("for", 0, "run duration (0 = until signal)")
	)
	flag.Parse()

	f, err := gossipopt.FunctionByName(*fname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var bootstrap []string
	if *join != "" {
		for _, a := range strings.Split(*join, ",") {
			bootstrap = append(bootstrap, strings.TrimSpace(a))
		}
	}

	node, err := p2p.Start(p2p.NodeConfig{
		Listen:           *listen,
		Bootstrap:        bootstrap,
		Function:         f,
		Particles:        *k,
		GossipEvery:      *r,
		ViewSize:         *c,
		NewscastInterval: *interval,
		EvalThrottle:     *throttle,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("node listening on %s (function %s, k=%d)\n", node.Addr(), f.Name, *k)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if *runFor > 0 {
		deadline = time.After(*runFor)
	}

	for {
		select {
		case <-ticker.C:
			_, best, ok := node.Best()
			ex, ad, fl := node.Stats()
			status := "warming up"
			if ok {
				status = fmt.Sprintf("best=%.6g", best)
			}
			fmt.Printf("[%s] evals=%d %s peers=%d exchanges=%d adoptions=%d failed=%d\n",
				node.Addr(), node.Evals(), status, len(node.Peers()), ex, ad, fl)
		case <-sig:
			fmt.Println("\nshutting down")
			node.Stop()
			return
		case <-deadline:
			_, best, _ := node.Best()
			fmt.Printf("final best after %v: %.6g (%d evals)\n", *runFor, best, node.Evals())
			node.Stop()
			return
		}
	}
}
