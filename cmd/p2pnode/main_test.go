package main

import (
	"strings"
	"testing"
)

// TestRunSmoke starts a real TCP node on a loopback port, lets it evaluate
// briefly and checks the startup banner and final report.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-f", "Sphere",
		"-k", "4",
		"-throttle", "0s",
		"-report", "50ms",
		"-for", "300ms",
		"-seed", "1",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "node listening on 127.0.0.1:") {
		t.Fatalf("missing startup banner:\n%s", out)
	}
	if !strings.Contains(out, "final best after 300ms:") {
		t.Fatalf("missing final report:\n%s", out)
	}
}

func TestRunRejectsUnknownFunction(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-f", "NoSuch", "-for", "10ms"}, &b); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-listen", "256.0.0.1:bad", "-for", "10ms"}, &b); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
