// Command scenario runs declarative experiment scripts: a JSON spec (or a
// built-in scenario) describes the network, the protocol stack, a timeline
// of scripted events — churn bursts, partitions and heals, link-model
// swaps (lossy/delaying links, regional outages), Byzantine-node waves,
// crash/restart waves — the metric schedule and the stop conditions;
// this command runs a seeded campaign of repetitions and emits
// structured per-cycle metrics as CSV or JSON lines.
//
// A sweep spec (-sweep) is a base scenario plus a grid of named override
// axes; every grid cell runs its repetitions on one bounded worker pool
// (-sweepworkers), the per-cycle rows stream out in cell-then-repetition
// order, each cell is aggregated (min/mean/max/stddev per metric at the
// final sample, plus time-to-threshold) into a summary table (-summary),
// and a human-readable comparison report lands on stderr.
//
// The same spec + seed produces byte-identical metric output at any
// -workers / -applyworkers (engine parallelism), -repworkers (campaign
// parallelism) and -sweepworkers (sweep pool) value. -cpuprofile and
// -memprofile write pprof profiles of a campaign or sweep run.
//
// Observability (docs/OBSERVABILITY.md): -progress renders live progress
// lines on stderr, -statsjson dumps end-of-run engine instrumentation as
// JSON lines, and -debugaddr serves expvar + pprof over HTTP while the
// run is in flight. None of the three changes a single metric byte on
// stdout — the invariance tests in this package pin that.
//
// Examples:
//
//	scenario -list                          # built-in scenarios and sweeps
//	scenario -run netsplit-heal             # run one built-in, CSV on stdout
//	scenario -run baseline -reps 5 -o m.csv # seeded campaign of 5 reps
//	scenario -run rumor-netsplit -reps 8 -repworkers 4   # parallel campaign
//	scenario -show lossy-wan                # print a built-in as JSON
//	scenario -spec my.json -format jsonl    # run a spec file
//	scenario -sweep overlay-vs-churn -sweepworkers 8 -o rows.csv -summary cells.csv
//	scenario -sweep my-sweep.json -reps 10  # sweep from a file
//	scenario -sweep overlay-vs-churn -progress -statsjson stats.jsonl -debugaddr 127.0.0.1:6060
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"gossipopt/internal/exp"
	"gossipopt/internal/obs"
	"gossipopt/internal/scenario"
	"gossipopt/internal/sim"
)

// errBadFlags marks a parse failure the FlagSet has already reported to
// stderr, so main must not print it again.
var errBadFlags = errors.New("invalid command line")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // -h: usage printed, success
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// run executes the command: metric rows go to out (or -o), human-facing
// progress to errOut (separated from main for testability). The return is
// named so the deferred heap-profile writer can surface its failure as
// the command's error instead of a stderr-only note.
func run(args []string, out, errOut io.Writer) (err error) {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list         = fs.Bool("list", false, "list built-in scenarios and sweeps and exit")
		name         = fs.String("run", "", "run a built-in scenario by name")
		show         = fs.String("show", "", "print a built-in scenario or sweep as JSON and exit")
		specPath     = fs.String("spec", "", "run a scenario spec from a JSON file")
		sweepName    = fs.String("sweep", "", "run a sweep: a built-in sweep name or a JSON file")
		reps         = fs.Int("reps", 1, "repetitions in the campaign (sweeps: per cell; 0 keeps the sweep's default)")
		seed         = fs.Uint64("seed", 0, "override the spec's base seed (0: keep)")
		workers      = fs.Int("workers", 1, "cycle-engine pool workers for both phases (output is identical for any value)")
		applyWorkers = fs.Int("applyworkers", 0, "override the cycle engine's apply-phase workers (0: follow -workers; output is identical for any value)")
		repWorkers   = fs.Int("repworkers", 1, "repetitions run in parallel (output is identical for any value)")
		sweepWorkers = fs.Int("sweepworkers", 1, "sweep pool size: cell×rep jobs run in parallel (output is identical for any value)")
		format       = fs.String("format", "csv", "metric output format: csv or jsonl")
		outPath      = fs.String("o", "", "write metrics to a file instead of stdout")
		summaryPath  = fs.String("summary", "", "sweeps: write the aggregated per-cell summary table to this file (same -format)")
		cpuProfile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign/sweep to this file")
		memProfile   = fs.String("memprofile", "", "write a pprof heap profile taken after the campaign/sweep to this file")
		progress     = fs.Bool("progress", false, "render live progress (reps, rows, ETA) to stderr once a second")
		statsJSON    = fs.String("statsjson", "", "write end-of-run engine stats as JSON lines (one per rep, plus one per sweep cell) to this file")
		debugAddr    = fs.String("debugaddr", "", "serve expvar and pprof on this address (e.g. 127.0.0.1:6060; port 0 picks one) for the run's duration")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	// The observability flags instrument a run; with -list/-show there is
	// nothing to instrument, so reject them instead of ignoring them.
	if (*list || *show != "") && (setFlags["progress"] || setFlags["statsjson"] || setFlags["debugaddr"]) {
		return fmt.Errorf("-progress, -statsjson and -debugaddr apply to runs (-run, -spec or -sweep)")
	}

	if *list {
		fmt.Fprintf(out, "%-18s %-7s %s\n", "name", "engine", "description")
		for _, n := range scenario.BuiltinNames() {
			s, _ := scenario.Builtin(n)
			engine := s.Engine
			if engine == "" {
				engine = scenario.EngineCycle
			}
			fmt.Fprintf(out, "%-18s %-7s %s\n", n, engine, s.Description)
		}
		fmt.Fprintf(out, "\n%-18s %-7s %s\n", "sweep", "cells", "description")
		for _, n := range scenario.BuiltinSweepNames() {
			sw, _ := scenario.BuiltinSweep(n)
			cells, err := sw.Cells()
			if err != nil {
				return fmt.Errorf("built-in sweep %q: %w", n, err)
			}
			fmt.Fprintf(out, "%-18s %-7d %s\n", n, len(cells), sw.Description)
		}
		return nil
	}
	if *show != "" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if s, ok := scenario.Builtin(*show); ok {
			return enc.Encode(s)
		}
		if sw, ok := scenario.BuiltinSweep(*show); ok {
			return enc.Encode(sw)
		}
		return unknownScenario(*show)
	}

	modes := 0
	for _, m := range []string{*name, *specPath, *sweepName} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-run, -spec and -sweep are mutually exclusive")
	}
	if modes == 0 {
		fs.Usage()
		return errBadFlags
	}

	// Resolve the mode — names, spec files, and flag combinations — before
	// any output file is created: a typo'd name must not truncate an
	// existing results file. Mode-foreign parallelism/output flags are
	// rejected rather than silently ignored, the same strictness the spec
	// layer applies to unknown fields.
	var (
		sw    scenario.SweepSpec
		spec  scenario.Spec
		isSwp = *sweepName != ""
	)
	if isSwp {
		if setFlags["repworkers"] {
			return fmt.Errorf("-repworkers applies to -run/-spec campaigns; sweeps parallelize with -sweepworkers")
		}
		s, ok := scenario.BuiltinSweep(*sweepName)
		if !ok {
			data, err := os.ReadFile(*sweepName)
			if err != nil {
				if os.IsNotExist(err) && !strings.ContainsAny(*sweepName, "./") {
					return fmt.Errorf("unknown sweep %q; built-in sweeps: %v (or pass a JSON file)",
						*sweepName, scenario.BuiltinSweepNames())
				}
				return err
			}
			if s, err = scenario.ParseSweep(data); err != nil {
				return err
			}
		}
		sw = s
	} else {
		if setFlags["sweepworkers"] {
			return fmt.Errorf("-sweepworkers applies to -sweep; campaigns parallelize with -repworkers")
		}
		if setFlags["summary"] {
			return fmt.Errorf("-summary applies to -sweep (only sweeps aggregate cells)")
		}
		switch {
		case *name != "":
			s, ok := scenario.Builtin(*name)
			if !ok {
				return unknownScenario(*name)
			}
			spec = s
		default: // *specPath != ""
			data, err := os.ReadFile(*specPath)
			if err != nil {
				return err
			}
			s, err := scenario.Parse(data)
			if err != nil {
				return err
			}
			spec = s
		}
	}

	if *format != "csv" && *format != "jsonl" {
		return fmt.Errorf("unknown -format %q (want csv or jsonl)", *format)
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var sink exp.Sink
	if *format == "csv" {
		sink = exp.NewCSVSink(w)
	} else {
		sink = exp.NewJSONLSink(w)
	}

	// Profiling hooks for campaign/sweep runs (the usual way to see where
	// a big run spends its time is `-run <name> -reps N -cpuprofile p.out`
	// followed by `go tool pprof`). The heap-profile defer is registered
	// first: defers run LIFO, so the CPU profile stops before the final GC
	// and heap serialization, keeping that work out of the CPU profile.
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retained memory
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = fmt.Errorf("writing heap profile: %w", werr)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// The observability layer: a stderr progress printer, a JSONL stats
	// file, and the expvar/pprof endpoint. All three feed off the runner's
	// progress callback (one update per finished repetition, in canonical
	// order) and none of them writes to the metric sink — the invariance
	// tests byte-compare stdout with and without them. Free-list counting
	// is process-global and off by default; the stats consumers turn it on
	// for the run's duration.
	var printer *obs.Printer
	if *progress {
		printer = obs.NewPrinter(errOut, time.Second)
		defer printer.Close()
	}
	var (
		statsW   *obs.StatsWriter
		statsErr error
	)
	if *statsJSON != "" {
		f, err := os.Create(*statsJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		statsW = obs.NewStatsWriter(f)
	}
	if *statsJSON != "" || *debugAddr != "" {
		sim.EnableFreeListStats(true)
		defer sim.EnableFreeListStats(false)
	}
	var (
		progMu sync.Mutex
		latest scenario.ProgressUpdate
	)
	if *debugAddr != "" {
		dbg, err := obs.StartDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(errOut, "debug: expvar and pprof on http://%s/debug/vars\n", dbg.Addr())
		obs.Publish("scenario", func() any {
			progMu.Lock()
			defer progMu.Unlock()
			return latest
		})
	}
	var onProgress func(scenario.ProgressUpdate)
	if *progress || *statsJSON != "" || *debugAddr != "" {
		onProgress = func(u scenario.ProgressUpdate) {
			progMu.Lock()
			latest = u
			progMu.Unlock()
			if printer != nil {
				printer.Update(obs.Progress{
					TotalReps: u.TotalReps, DoneReps: u.DoneReps,
					TotalCells: u.TotalCells, DoneCells: u.DoneCells,
					Rows: u.Rows, Cell: u.Cell,
				})
			}
			if statsW != nil {
				err := statsW.Write(obs.RepStats{
					Scenario: u.Cell, Rep: u.Rep, Seed: u.Summary.Seed,
					Cycles: u.Summary.Cycles, Quality: u.Summary.Quality,
					Stats: u.Summary.Stats,
				})
				if err != nil && statsErr == nil {
					statsErr = fmt.Errorf("writing %s: %w", *statsJSON, err)
				}
			}
		}
	}
	// Human-facing end-of-run chatter goes to stderr only, after the
	// progress printer has shut down so lines never interleave.
	finishProgress := func() error {
		if printer != nil {
			printer.Close()
		}
		return statsErr
	}

	if isSwp {
		opts := scenario.Options{
			BaseSeed:     *seed,
			Workers:      *workers,
			ApplyWorkers: *applyWorkers,
			RepWorkers:   *sweepWorkers,
			Progress:     onProgress,
		}
		if setFlags["reps"] {
			opts.Reps = *reps
		}
		results, err := scenario.RunSweep(sw, opts, sink)
		if err != nil {
			return err
		}
		if statsW != nil {
			for _, r := range results {
				if r.Summary.Engine == nil {
					continue
				}
				err := statsW.Write(obs.CellStats{
					Sweep: sw.Name, Cell: r.Cell.Name, Reps: r.Summary.Reps,
					Stats: *r.Summary.Engine,
				})
				if err != nil && statsErr == nil {
					statsErr = fmt.Errorf("writing %s: %w", *statsJSON, err)
				}
			}
		}
		if err := finishProgress(); err != nil {
			return err
		}
		cells := make([]exp.CellSummary, len(results))
		for i, r := range results {
			cells[i] = r.Summary
		}
		if *summaryPath != "" {
			f, err := os.Create(*summaryPath)
			if err != nil {
				return err
			}
			defer f.Close()
			switch *format {
			case "csv":
				err = exp.WriteCellSummariesCSV(f, cells)
			case "jsonl":
				err = exp.WriteCellSummariesJSONL(f, cells)
			}
			if err != nil {
				return err
			}
		}
		fmt.Fprint(errOut, exp.SweepReport(sw.Name, cells))
		return nil
	}

	sums, err := scenario.Run(spec, scenario.Options{
		Reps:         *reps,
		BaseSeed:     *seed,
		Workers:      *workers,
		ApplyWorkers: *applyWorkers,
		RepWorkers:   *repWorkers,
		Progress:     onProgress,
	}, sink)
	if err != nil {
		return err
	}
	if err := finishProgress(); err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Fprintf(errOut, "%s rep %d: seed=%d cycles=%d evals=%d quality=%g reached=%v\n",
			spec.Name, s.Rep, s.Seed, s.Cycles, s.Evals, s.Quality, s.Reached)
	}
	return nil
}

// unknownScenario names the vocabulary, so a typo is self-correcting.
func unknownScenario(name string) error {
	return fmt.Errorf("unknown scenario %q; built-in scenarios: %v, sweeps: %v",
		name, scenario.BuiltinNames(), scenario.BuiltinSweepNames())
}
