// Command scenario runs declarative experiment scripts: a JSON spec (or a
// built-in scenario) describes the network, the protocol stack, a timeline
// of scripted events — churn bursts, partitions and heals, link-model
// swaps, crash/restart waves — the metric schedule and the stop
// conditions; this command runs a seeded campaign of repetitions and
// emits structured per-cycle metrics as CSV or JSON lines.
//
// The same spec + seed produces byte-identical metric output at any
// -workers (engine parallelism) and -repworkers (campaign parallelism)
// value.
//
// Examples:
//
//	scenario -list                          # built-in scenarios
//	scenario -run netsplit-heal             # run one built-in, CSV on stdout
//	scenario -run baseline -reps 5 -o m.csv # seeded campaign of 5 reps
//	scenario -run rumor-netsplit -reps 8 -repworkers 4   # parallel campaign
//	scenario -show lossy-wan                # print a built-in as JSON
//	scenario -spec my.json -format jsonl    # run a spec file
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"gossipopt/internal/exp"
	"gossipopt/internal/scenario"
)

// errBadFlags marks a parse failure the FlagSet has already reported to
// stderr, so main must not print it again.
var errBadFlags = errors.New("invalid command line")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // -h: usage printed, success
	case errors.Is(err, errBadFlags):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// run executes the command: metric rows go to out (or -o), human-facing
// progress to errOut (separated from main for testability).
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list       = fs.Bool("list", false, "list built-in scenarios and exit")
		name       = fs.String("run", "", "run a built-in scenario by name")
		show       = fs.String("show", "", "print a built-in scenario as JSON and exit")
		specPath   = fs.String("spec", "", "run a scenario spec from a JSON file")
		reps       = fs.Int("reps", 1, "repetitions in the campaign")
		seed       = fs.Uint64("seed", 0, "override the spec's base seed (0: keep)")
		workers    = fs.Int("workers", 1, "cycle-engine propose workers (output is identical for any value)")
		repWorkers = fs.Int("repworkers", 1, "repetitions run in parallel (output is identical for any value)")
		format     = fs.String("format", "csv", "metric output format: csv or jsonl")
		outPath    = fs.String("o", "", "write metrics to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}

	if *list {
		fmt.Fprintf(out, "%-18s %-7s %s\n", "name", "engine", "description")
		for _, n := range scenario.BuiltinNames() {
			s, _ := scenario.Builtin(n)
			engine := s.Engine
			if engine == "" {
				engine = scenario.EngineCycle
			}
			fmt.Fprintf(out, "%-18s %-7s %s\n", n, engine, s.Description)
		}
		return nil
	}
	if *show != "" {
		s, ok := scenario.Builtin(*show)
		if !ok {
			return unknownScenario(*show)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}

	var spec scenario.Spec
	switch {
	case *name != "" && *specPath != "":
		return fmt.Errorf("-run and -spec are mutually exclusive")
	case *name != "":
		s, ok := scenario.Builtin(*name)
		if !ok {
			return unknownScenario(*name)
		}
		spec = s
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		s, err := scenario.Parse(data)
		if err != nil {
			return err
		}
		spec = s
	default:
		fs.Usage()
		return errBadFlags
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var sink exp.Sink
	switch *format {
	case "csv":
		sink = exp.NewCSVSink(w)
	case "jsonl":
		sink = exp.NewJSONLSink(w)
	default:
		return fmt.Errorf("unknown -format %q (want csv or jsonl)", *format)
	}

	sums, err := scenario.Run(spec, scenario.Options{
		Reps:       *reps,
		BaseSeed:   *seed,
		Workers:    *workers,
		RepWorkers: *repWorkers,
	}, sink)
	if err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Fprintf(errOut, "%s rep %d: seed=%d cycles=%d evals=%d quality=%g reached=%v\n",
			spec.Name, s.Rep, s.Seed, s.Cycles, s.Evals, s.Quality, s.Reached)
	}
	return nil
}

// unknownScenario names the vocabulary, so a typo is self-correcting.
func unknownScenario(name string) error {
	names := scenario.BuiltinNames()
	return fmt.Errorf("unknown scenario %q; built-in scenarios: %v", name, names)
}
