package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipopt/internal/scenario"
)

// runCmd invokes run with captured output streams.
func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(args, &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestListNamesEveryBuiltin(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.BuiltinNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %q:\n%s", name, out)
		}
	}
}

func TestUnknownScenarioListsAvailableNames(t *testing.T) {
	_, _, err := runCmd(t, "-run", "no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range []string{"baseline", "netsplit-heal", "lossy-wan"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error does not list %q: %v", name, err)
		}
	}
}

// TestEveryBuiltinRuns drives each built-in through the real CLI path.
func TestEveryBuiltinRuns(t *testing.T) {
	for _, name := range scenario.BuiltinNames() {
		out, errOut, err := runCmd(t, "-run", name, "-workers", "2")
		if err != nil {
			t.Fatalf("scenario %q failed: %v", name, err)
		}
		if !strings.HasPrefix(out, "scenario,rep,seed,") {
			t.Fatalf("scenario %q: no CSV header:\n%s", name, out)
		}
		if !strings.Contains(errOut, "rep 0:") {
			t.Fatalf("scenario %q: no summary line:\n%s", name, errOut)
		}
	}
}

// Spec parse failures and flag errors exit with status 2: run must return
// an error that main maps to os.Exit(2) (every non-help error does).
func TestBadSpecFileIsAnError(t *testing.T) {
	_, _, err := runCmd(t, "-spec", filepath.Join("testdata", "bad.json"))
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if !strings.Contains(err.Error(), "nodez") {
		t.Fatalf("error should name the unknown field: %v", err)
	}
}

// TestValidSpecFileRuns covers the full -spec path with a good file on
// each engine — guarding against normalize-twice regressions that the
// built-in path (which skips Parse) cannot catch.
func TestValidSpecFileRuns(t *testing.T) {
	for label, raw := range map[string]string{
		"cycle": `{"name":"file-cycle","nodes":8,"stack":{"particles":4},
			"timeline":[{"at":2,"action":"partition","groups":2},{"at":4,"action":"heal"}],
			"metrics_every":5,"stop":{"cycles":10}}`,
		"event": `{"name":"file-event","engine":"event","nodes":4,"stack":{"particles":4},
			"timeline":[{"at":5,"action":"set-link","link":{"min_delay":1,"max_delay":2}}],
			"metrics_every":10,"stop":{"time":20}}`,
	} {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		out, _, err := runCmd(t, "-spec", path, "-reps", "2")
		if err != nil {
			t.Fatalf("%s spec file failed: %v", label, err)
		}
		if strings.Count(out, "\n") < 3 {
			t.Fatalf("%s spec produced almost no metrics:\n%s", label, out)
		}
	}
}

func TestBadFlagsError(t *testing.T) {
	_, _, err := runCmd(t, "-definitely-not-a-flag")
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("bad flag returned %v, want errBadFlags", err)
	}
	_, _, err = runCmd(t) // no -run/-spec/-list
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("missing mode returned %v, want errBadFlags", err)
	}
	_, _, err = runCmd(t, "-run", "baseline", "-format", "xml")
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestShowEmitsRunnableSpec(t *testing.T) {
	for _, name := range []string{"netsplit-heal", "rumor-netsplit", "tman-ring-churn"} {
		out, _, err := runCmd(t, "-show", name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scenario.Parse([]byte(out)); err != nil {
			t.Fatalf("-show %s output is not a parseable spec: %v\n%s", name, err, out)
		}
	}
}

// TestGoldenDeterminism pins the exact bytes of a built-in campaign: any
// drift in engine scheduling, RNG use, or metric formatting fails here.
func TestGoldenDeterminism(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "baseline.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, "-run", "baseline", "-reps", "2")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("baseline campaign drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
}

// TestWorkerCountInvariance is the acceptance-criteria assertion: the same
// spec + seed yields byte-identical metric output across -workers 1 and
// -workers 8, for a scenario exercising partitions and for an event-driven
// one.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"netsplit-heal", "flash-churn", "lossy-wan"} {
		render := func(workers string) string {
			out, _, err := runCmd(t, "-run", name, "-reps", "2", "-workers", workers)
			if err != nil {
				t.Fatalf("scenario %q workers=%s: %v", name, workers, err)
			}
			return out
		}
		if one, eight := render("1"), render("8"); one != eight {
			t.Fatalf("scenario %q: output differs between -workers 1 and -workers 8", name)
		}
	}
}

// TestRepWorkersInvariance is the campaign-parallelism acceptance
// criterion at the CLI level: a -repworkers 4 campaign over a ported
// protocol emits bytes identical to the sequential -repworkers 1 run.
func TestRepWorkersInvariance(t *testing.T) {
	render := func(repWorkers string) string {
		out, _, err := runCmd(t, "-run", "rumor-netsplit", "-reps", "8", "-repworkers", repWorkers)
		if err != nil {
			t.Fatalf("repworkers=%s: %v", repWorkers, err)
		}
		return out
	}
	if seq, par := render("1"), render("4"); seq != par {
		t.Fatal("output differs between -repworkers 1 and -repworkers 4")
	}
}

func TestOutputFileAndJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	_, _, err := runCmd(t, "-run", "baseline", "-format", "jsonl", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"scenario":"baseline"`) {
		t.Fatalf("jsonl file wrong:\n%s", data)
	}
}

func TestSeedOverrideChangesOutput(t *testing.T) {
	a, _, err := runCmd(t, "-run", "baseline", "-seed", "100")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCmd(t, "-run", "baseline", "-seed", "200")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different -seed values produced identical output")
	}
}
