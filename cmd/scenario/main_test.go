package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipopt/internal/scenario"
)

// runCmd invokes run with captured output streams.
func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(args, &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestListNamesEveryBuiltin(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.BuiltinNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %q:\n%s", name, out)
		}
	}
	for _, name := range scenario.BuiltinSweepNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing sweep %q:\n%s", name, out)
		}
	}
}

func TestUnknownScenarioListsAvailableNames(t *testing.T) {
	_, _, err := runCmd(t, "-run", "no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range []string{"baseline", "netsplit-heal", "lossy-wan"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error does not list %q: %v", name, err)
		}
	}
}

// TestEveryBuiltinRuns drives each built-in through the real CLI path.
func TestEveryBuiltinRuns(t *testing.T) {
	for _, name := range scenario.BuiltinNames() {
		out, errOut, err := runCmd(t, "-run", name, "-workers", "2")
		if err != nil {
			t.Fatalf("scenario %q failed: %v", name, err)
		}
		if !strings.HasPrefix(out, "scenario,rep,seed,") {
			t.Fatalf("scenario %q: no CSV header:\n%s", name, out)
		}
		if !strings.Contains(errOut, "rep 0:") {
			t.Fatalf("scenario %q: no summary line:\n%s", name, errOut)
		}
	}
}

// Spec parse failures and flag errors exit with status 2: run must return
// an error that main maps to os.Exit(2) (every non-help error does).
func TestBadSpecFileIsAnError(t *testing.T) {
	_, _, err := runCmd(t, "-spec", filepath.Join("testdata", "bad.json"))
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if !strings.Contains(err.Error(), "nodez") {
		t.Fatalf("error should name the unknown field: %v", err)
	}
}

// TestValidSpecFileRuns covers the full -spec path with a good file on
// each engine — guarding against normalize-twice regressions that the
// built-in path (which skips Parse) cannot catch.
func TestValidSpecFileRuns(t *testing.T) {
	for label, raw := range map[string]string{
		"cycle": `{"name":"file-cycle","nodes":8,"stack":{"particles":4},
			"timeline":[{"at":2,"action":"partition","groups":2},{"at":4,"action":"heal"}],
			"metrics_every":5,"stop":{"cycles":10}}`,
		"event": `{"name":"file-event","engine":"event","nodes":4,"stack":{"particles":4},
			"timeline":[{"at":5,"action":"set-link","link":{"min_delay":1,"max_delay":2}}],
			"metrics_every":10,"stop":{"time":20}}`,
	} {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		out, _, err := runCmd(t, "-spec", path, "-reps", "2")
		if err != nil {
			t.Fatalf("%s spec file failed: %v", label, err)
		}
		if strings.Count(out, "\n") < 3 {
			t.Fatalf("%s spec produced almost no metrics:\n%s", label, out)
		}
	}
}

func TestBadFlagsError(t *testing.T) {
	_, _, err := runCmd(t, "-definitely-not-a-flag")
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("bad flag returned %v, want errBadFlags", err)
	}
	_, _, err = runCmd(t) // no -run/-spec/-list
	if !errors.Is(err, errBadFlags) {
		t.Fatalf("missing mode returned %v, want errBadFlags", err)
	}
	_, _, err = runCmd(t, "-run", "baseline", "-format", "xml")
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestShowEmitsRunnableSpec(t *testing.T) {
	for _, name := range []string{"netsplit-heal", "rumor-netsplit", "tman-ring-churn"} {
		out, _, err := runCmd(t, "-show", name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scenario.Parse([]byte(out)); err != nil {
			t.Fatalf("-show %s output is not a parseable spec: %v\n%s", name, err, out)
		}
	}
}

// TestGoldenDeterminism pins the exact bytes of a built-in campaign: any
// drift in engine scheduling, RNG use, or metric formatting fails here.
func TestGoldenDeterminism(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "baseline.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, "-run", "baseline", "-reps", "2")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("baseline campaign drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
}

// TestWorkerCountInvariance is the acceptance-criteria assertion: the same
// spec + seed yields byte-identical metric output across -workers 1 and
// -workers 8, for a scenario exercising partitions and for an event-driven
// one.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"netsplit-heal", "flash-churn", "lossy-wan"} {
		render := func(workers string) string {
			out, _, err := runCmd(t, "-run", name, "-reps", "2", "-workers", workers)
			if err != nil {
				t.Fatalf("scenario %q workers=%s: %v", name, workers, err)
			}
			return out
		}
		if one, eight := render("1"), render("8"); one != eight {
			t.Fatalf("scenario %q: output differs between -workers 1 and -workers 8", name)
		}
	}
}

// TestRepWorkersInvariance is the campaign-parallelism acceptance
// criterion at the CLI level: a -repworkers 4 campaign over a ported
// protocol emits bytes identical to the sequential -repworkers 1 run.
func TestRepWorkersInvariance(t *testing.T) {
	render := func(repWorkers string) string {
		out, _, err := runCmd(t, "-run", "rumor-netsplit", "-reps", "8", "-repworkers", repWorkers)
		if err != nil {
			t.Fatalf("repworkers=%s: %v", repWorkers, err)
		}
		return out
	}
	if seq, par := render("1"), render("4"); seq != par {
		t.Fatal("output differs between -repworkers 1 and -repworkers 4")
	}
}

func TestOutputFileAndJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	_, _, err := runCmd(t, "-run", "baseline", "-format", "jsonl", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"scenario":"baseline"`) {
		t.Fatalf("jsonl file wrong:\n%s", data)
	}
}

// TestSweepGoldenDeterminism pins the exact bytes of a built-in sweep's
// two outputs — the metric rows and the aggregated summary table — so any
// drift in grid expansion, seeding, scheduling, aggregation math, or
// formatting fails here.
func TestSweepGoldenDeterminism(t *testing.T) {
	sumPath := filepath.Join(t.TempDir(), "cells.csv")
	out, _, err := runCmd(t, "-sweep", "overlay-vs-churn", "-reps", "2", "-summary", sumPath)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := os.ReadFile(filepath.Join("testdata", "overlay-vs-churn.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(rows) {
		t.Fatalf("sweep rows drifted from golden file:\n--- got ---\n%s--- want ---\n%s", out, rows)
	}
	sum, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "overlay-vs-churn.summary.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(sum) != string(golden) {
		t.Fatalf("sweep summary drifted from golden file:\n--- got ---\n%s--- want ---\n%s", sum, golden)
	}
}

// TestSweepWorkersInvariance is the acceptance criterion: rows, summary
// table and comparison report are byte-identical for -sweepworkers 1/2/8.
func TestSweepWorkersInvariance(t *testing.T) {
	render := func(workers string) (string, string, string) {
		sumPath := filepath.Join(t.TempDir(), "cells.csv")
		out, errOut, err := runCmd(t, "-sweep", "protocol-vs-loss", "-reps", "2",
			"-sweepworkers", workers, "-summary", sumPath)
		if err != nil {
			t.Fatalf("sweepworkers=%s: %v", workers, err)
		}
		sum, err := os.ReadFile(sumPath)
		if err != nil {
			t.Fatal(err)
		}
		return out, string(sum), errOut
	}
	rows1, sum1, rep1 := render("1")
	for _, w := range []string{"2", "8"} {
		rows, sum, rep := render(w)
		if rows != rows1 {
			t.Fatalf("rows differ between -sweepworkers 1 and %s", w)
		}
		if sum != sum1 {
			t.Fatalf("summary differs between -sweepworkers 1 and %s", w)
		}
		if rep != rep1 {
			t.Fatalf("report differs between -sweepworkers 1 and %s", w)
		}
	}
	if !strings.Contains(rep1, "== sweep protocol-vs-loss ==") {
		t.Fatalf("comparison report missing:\n%s", rep1)
	}
}

// TestSweepFromFile covers the -sweep <file> path end to end, including
// the jsonl summary format.
func TestSweepFromFile(t *testing.T) {
	dir := t.TempDir()
	spec := `{"name":"file-sweep","base":{"nodes":8,"seed":5,"metrics_every":5,"stop":{"cycles":10}},
		"axes":[{"name":"n","path":"nodes","values":[{"value":8},{"value":12}]}],"reps":2,"threshold":1e18}`
	path := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	sumPath := filepath.Join(dir, "cells.jsonl")
	out, errOut, err := runCmd(t, "-sweep", path, "-format", "jsonl", "-summary", sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"scenario":"file-sweep/n=8"`) || !strings.Contains(out, `"scenario":"file-sweep/n=12"`) {
		t.Fatalf("rows missing cell names:\n%s", out)
	}
	sum, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), `"metric":"to_threshold"`) {
		t.Fatalf("jsonl summary missing to_threshold:\n%s", sum)
	}
	if !strings.Contains(errOut, "file-sweep/n=12") {
		t.Fatalf("report missing cells:\n%s", errOut)
	}
}

// TestSweepRepsDefault: without an explicit -reps the sweep's own reps
// field (4 for overlay-vs-churn) applies.
func TestSweepRepsDefault(t *testing.T) {
	sumPath := filepath.Join(t.TempDir(), "cells.csv")
	if _, _, err := runCmd(t, "-sweep", "overlay-vs-churn", "-o", os.DevNull, "-summary", sumPath); err != nil {
		t.Fatal(err)
	}
	sum, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), ",4,quality,4,") {
		t.Fatalf("sweep default reps (4) not applied:\n%s", sum)
	}
}

func TestSweepBadUsage(t *testing.T) {
	if _, _, err := runCmd(t, "-sweep", "no-such-sweep"); err == nil ||
		!strings.Contains(err.Error(), "overlay-vs-churn") {
		t.Fatalf("unknown sweep should list built-ins: %v", err)
	}
	if _, _, err := runCmd(t, "-sweep", "overlay-vs-churn", "-run", "baseline"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-run with -sweep accepted: %v", err)
	}
	if _, _, err := runCmd(t, "-sweep", "overlay-vs-churn", "-repworkers", "4"); err == nil ||
		!strings.Contains(err.Error(), "-sweepworkers") {
		t.Fatalf("inert -repworkers with -sweep accepted: %v", err)
	}
	if _, _, err := runCmd(t, "-run", "baseline", "-sweepworkers", "4"); err == nil ||
		!strings.Contains(err.Error(), "-repworkers") {
		t.Fatalf("inert -sweepworkers with -run accepted: %v", err)
	}
	if _, _, err := runCmd(t, "-run", "baseline", "-summary", "cells.csv"); err == nil ||
		!strings.Contains(err.Error(), "-summary") {
		t.Fatalf("inert -summary with -run accepted: %v", err)
	}
}

// TestBadNameDoesNotTruncateOutput: a typo'd name (or a bad format) must
// be rejected before the -o file is opened — an existing results file
// survives the failed invocation.
func TestBadNameDoesNotTruncateOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.csv")
	if err := os.WriteFile(path, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-run", "baselnie", "-o", path},
		{"-sweep", "no-such", "-o", path},
		{"-run", "baseline", "-format", "xml", "-o", path},
		{"-spec", filepath.Join("testdata", "bad.json"), "-o", path},
	} {
		if _, _, err := runCmd(t, args...); err == nil {
			t.Fatalf("%v: accepted", args)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "precious\n" {
			t.Fatalf("%v: failed invocation truncated the output file", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","axes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCmd(t, "-sweep", bad); err == nil ||
		!strings.Contains(err.Error(), "at least one axis") {
		t.Fatalf("empty-axes sweep accepted: %v", err)
	}
}

// TestShowSweep: -show prints a built-in sweep as JSON that ParseSweep
// round-trips.
func TestShowSweep(t *testing.T) {
	out, _, err := runCmd(t, "-show", "protocol-vs-loss")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.ParseSweep([]byte(out)); err != nil {
		t.Fatalf("-show sweep output is not a parseable sweep: %v\n%s", err, out)
	}
}

func TestSeedOverrideChangesOutput(t *testing.T) {
	a, _, err := runCmd(t, "-run", "baseline", "-seed", "100")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCmd(t, "-run", "baseline", "-seed", "200")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different -seed values produced identical output")
	}
}
