package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipopt/internal/scenario"
)

// TestProgressKeepsStdoutGolden is the satellite regression: with
// -progress set, stdout must still be exactly the golden CSV — every
// human-facing line (progress, summaries) belongs on stderr.
func TestProgressKeepsStdoutGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "baseline.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	out, errOut, err := runCmd(t, "-run", "baseline", "-reps", "2", "-progress")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("-progress changed stdout:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
	if !strings.Contains(errOut, "progress:") {
		t.Fatalf("-progress printed nothing to stderr:\n%s", errOut)
	}
}

// TestInstrumentationStdoutInvariance byte-compares every built-in
// scenario's stdout with the full observability layer on (progress,
// statsjson, debug endpoint) against a plain run — the tentpole's hard
// contract that instrumentation never touches a metric byte.
func TestInstrumentationStdoutInvariance(t *testing.T) {
	dir := t.TempDir()
	for _, name := range scenario.BuiltinNames() {
		plain, _, err := runCmd(t, "-run", name, "-reps", "2")
		if err != nil {
			t.Fatalf("scenario %q: %v", name, err)
		}
		inst, _, err := runCmd(t, "-run", name, "-reps", "2",
			"-progress", "-statsjson", filepath.Join(dir, name+".jsonl"), "-debugaddr", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("scenario %q instrumented: %v", name, err)
		}
		if plain != inst {
			t.Fatalf("scenario %q: instrumentation changed stdout:\n--- plain ---\n%s--- instrumented ---\n%s",
				name, plain, inst)
		}
	}
	for _, name := range scenario.BuiltinSweepNames() {
		plain, _, err := runCmd(t, "-sweep", name, "-reps", "2")
		if err != nil {
			t.Fatalf("sweep %q: %v", name, err)
		}
		inst, _, err := runCmd(t, "-sweep", name, "-reps", "2",
			"-progress", "-statsjson", filepath.Join(dir, "sweep-"+name+".jsonl"))
		if err != nil {
			t.Fatalf("sweep %q instrumented: %v", name, err)
		}
		if plain != inst {
			t.Fatalf("sweep %q: instrumentation changed stdout", name)
		}
	}
}

// statsLines parses a -statsjson file into per-line JSON objects.
func statsLines(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("%s: line %d does not parse: %v\n%s", path, len(lines)+1, err, sc.Text())
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestStatsJSONCampaign checks the campaign stats file: one line per
// repetition, in order, each carrying the engine snapshot.
func TestStatsJSONCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	if _, _, err := runCmd(t, "-run", "baseline", "-reps", "3", "-statsjson", path); err != nil {
		t.Fatal(err)
	}
	lines := statsLines(t, path)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, m := range lines {
		if m["scenario"] != "baseline" || m["rep"] != float64(i) {
			t.Fatalf("line %d mislabeled: %v", i, m)
		}
		st, ok := m["stats"].(map[string]any)
		if !ok {
			t.Fatalf("line %d has no stats: %v", i, m)
		}
		for _, k := range []string{"propose_ns", "apply_ns", "apply_rounds", "shard_mean_load", "freelist_hits"} {
			if _, ok := st[k]; !ok {
				t.Fatalf("line %d stats missing %q: %v", i, k, st)
			}
		}
		if st["cycles"].(float64) <= 0 || st["apply_rounds"].(float64) <= 0 {
			t.Fatalf("line %d has empty counters: %v", i, st)
		}
	}
}

// TestStatsJSONSweep checks the sweep stats file: rep lines in canonical
// cell-then-repetition order followed by one aggregated line per cell.
func TestStatsJSONSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	if _, _, err := runCmd(t, "-sweep", "overlay-vs-churn", "-reps", "2", "-statsjson", path); err != nil {
		t.Fatal(err)
	}
	lines := statsLines(t, path)
	var reps, cells int
	for _, m := range lines {
		if _, ok := m["sweep"]; ok {
			cells++
			st := m["stats"].(map[string]any)
			jobs, ok := st["apply_jobs"].(map[string]any)
			if !ok || jobs["n"] != float64(2) {
				t.Fatalf("cell line aggregates wrong rep count: %v", m)
			}
		} else {
			if cells != 0 {
				// Cell aggregate lines are written after the run, so every
				// rep line precedes every cell line.
				t.Fatalf("rep line after a cell line: %v", m)
			}
			reps++
		}
	}
	if cells == 0 || reps == 0 || reps != 2*cells {
		t.Fatalf("got %d rep lines and %d cell lines, want 2 reps per cell", reps, cells)
	}
}

// TestDebugAddrAnnouncesEndpoint checks the -debugaddr chatter lands on
// stderr (the scrape itself is covered by internal/obs and the CI smoke).
func TestDebugAddrAnnouncesEndpoint(t *testing.T) {
	out, errOut, err := runCmd(t, "-run", "baseline", "-debugaddr", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "debug: expvar and pprof on http://127.0.0.1:") {
		t.Fatalf("no debug endpoint announcement on stderr:\n%s", errOut)
	}
	if strings.Contains(out, "debug:") {
		t.Fatal("debug announcement leaked to stdout")
	}
}

// TestObsFlagsRejectedOutsideRuns: -list/-show have nothing to
// instrument, so the observability flags are errors there, mirroring the
// strictness of the mode-foreign parallelism flags.
func TestObsFlagsRejectedOutsideRuns(t *testing.T) {
	for _, args := range [][]string{
		{"-list", "-progress"},
		{"-list", "-statsjson", "x.jsonl"},
		{"-show", "baseline", "-debugaddr", "127.0.0.1:0"},
	} {
		if _, _, err := runCmd(t, args...); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestStatsJSONNotCreatedOnBadMode: like -o, the stats file must only be
// created after the mode resolves — a typo'd scenario name must not
// truncate an existing stats file.
func TestStatsJSONNotCreatedOnBadMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	if err := os.WriteFile(path, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCmd(t, "-run", "no-such-scenario", "-statsjson", path); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "precious\n" {
		t.Fatalf("stats file clobbered before validation: %q", data)
	}
}
