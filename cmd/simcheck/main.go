// Command simcheck runs the project's static-analysis suite (package
// internal/analysis): determinism, nodelocal, ownership and spectator.
//
// It speaks two protocols:
//
//   - as a vettool — `go build -o simcheck ./cmd/simcheck && go vet
//     -vettool=$PWD/simcheck ./...` — the go command drives it one
//     compilation unit at a time, which is how CI enforces the contracts;
//   - standalone — `go run ./cmd/simcheck ./...` — it loads the named
//     package patterns itself and prints every diagnostic, which is the
//     convenient local loop.
//
// Exit status is non-zero when any diagnostic survives (2 as a vettool,
// matching the convention the go command expects; 1 standalone).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gossipopt/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches between the vettool protocol and standalone mode.
func run(args []string) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Println(versionLine())
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags: the go command passes none.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVet(args[0])
		}
	}
	return runStandalone(args)
}

// versionLine answers -V=full: the go command caches vet results keyed on
// this line, so it must change whenever the tool binary does — hashing the
// executable guarantees that.
func versionLine() string {
	name := "simcheck"
	if len(os.Args) > 0 {
		name = strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel buildID=%s", name, id)
}

// runVet handles one compilation unit handed over by `go vet -vettool`.
func runVet(cfgPath string) int {
	diags, err := analysis.RunVetUnit(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads the given package patterns (default ./...) from the
// current directory and analyzes them all.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		diags := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.All())
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		bad += len(diags)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
