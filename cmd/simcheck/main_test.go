package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSimcheck compiles the vettool binary into a temp dir.
func buildSimcheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building simcheck: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol drives the built binary exactly as CI does: `go vet
// -vettool=simcheck` over the whole module must pass clean.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the module")
	}
	bin := buildSimcheck(t)

	// The protocol handshake the go command performs first.
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "simcheck version ") {
		t.Fatalf("-V=full output %q lacks the 'simcheck version ' prefix the go command parses", out)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.."
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, buf.String())
	}
}

// TestStandaloneMode runs the binary's own loader over the module.
func TestStandaloneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and analyzes the module")
	}
	bin := buildSimcheck(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone simcheck failed: %v\n%s", err, out)
	}
}
