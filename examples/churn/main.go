// Churn: the paper's motivating scenario — an organization's desktop pool
// where workstations join and leave at will — including a catastrophic
// failure of half the network mid-run. The optimization survives both, as
// §3.3.4 claims: no single point of failure, graceful slowdown only.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"io"
	"os"

	"gossipopt"
	"gossipopt/internal/sim"
)

// deskPool models continuous background churn plus one catastrophe: every
// cycle ~0.3 % of workstations shut down and ~0.3 of a workstation joins
// (fractions accumulate); at catastropheAt half the building loses power.
type deskPool struct {
	background  *sim.RateChurn
	catastrophe *sim.CatastropheChurn
}

// Apply implements sim.ChurnModel by composing both models.
func (d *deskPool) Apply(e *sim.Engine) {
	d.background.Apply(e)
	d.catastrophe.Apply(e)
}

func main() {
	run(os.Stdout, 1200, 400)
}

// run executes the example for the given horizon with the catastrophe at
// the given cycle (separated from main for testability).
func run(out io.Writer, cycles, catastropheAt int64) {
	churn := &deskPool{
		background:  &sim.RateChurn{CrashProb: 0.003, JoinPerCycle: 0.3, MinLive: 10},
		catastrophe: &sim.CatastropheChurn{AtCycle: catastropheAt, Fraction: 0.5},
	}
	net := gossipopt.New(gossipopt.Config{
		Nodes:       128,
		Particles:   16,
		GossipEvery: 16,
		Function:    gossipopt.Sphere,
		Seed:        7,
		Churn:       churn,
	})

	fmt.Fprintln(out, "cycle  live  quality")
	for cycle := int64(0); cycle < cycles; cycle++ {
		net.Step()
		if cycle%100 == 99 || cycle == catastropheAt {
			marker := ""
			if cycle == catastropheAt {
				marker = "  <- catastrophe: 50% of nodes crashed"
			}
			fmt.Fprintf(out, "%5d  %4d  %.6g%s\n",
				cycle+1, net.Engine().LiveCount(), net.Quality(), marker)
		}
	}

	fmt.Fprintf(out, "\nsurvived: %d nodes alive, quality %.6g after %d total evaluations\n",
		net.Engine().LiveCount(), net.Quality(), net.TotalEvals())
	fmt.Fprintln(out, "the computation never depended on any single node")
}
