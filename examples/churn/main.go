// Churn: the paper's motivating scenario — an organization's desktop pool
// where workstations join and leave at will — including a catastrophic
// failure of half the network mid-run. The optimization survives both, as
// §3.3.4 claims: no single point of failure, graceful slowdown only.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"

	"gossipopt"
	"gossipopt/internal/sim"
)

// deskPool models continuous background churn plus one catastrophe: every
// cycle ~0.3 % of workstations shut down and ~0.3 of a workstation joins
// (fractions accumulate); at cycle 400 half the building loses power.
type deskPool struct {
	background  *sim.RateChurn
	catastrophe *sim.CatastropheChurn
}

func (d *deskPool) Apply(e *sim.Engine) {
	d.background.Apply(e)
	d.catastrophe.Apply(e)
}

func main() {
	churn := &deskPool{
		background:  &sim.RateChurn{CrashProb: 0.003, JoinPerCycle: 0.3, MinLive: 10},
		catastrophe: &sim.CatastropheChurn{AtCycle: 400, Fraction: 0.5},
	}
	net := gossipopt.New(gossipopt.Config{
		Nodes:       128,
		Particles:   16,
		GossipEvery: 16,
		Function:    gossipopt.Sphere,
		Seed:        7,
		Churn:       churn,
	})

	fmt.Println("cycle  live  quality")
	for cycle := 0; cycle < 1200; cycle++ {
		net.Step()
		if cycle%100 == 99 || cycle == 400 {
			marker := ""
			if cycle == 400 {
				marker = "  <- catastrophe: 50% of nodes crashed"
			}
			fmt.Printf("%5d  %4d  %.6g%s\n",
				cycle+1, net.Engine().LiveCount(), net.Quality(), marker)
		}
	}

	fmt.Printf("\nsurvived: %d nodes alive, quality %.6g after %d total evaluations\n",
		net.Engine().LiveCount(), net.Quality(), net.TotalEvals())
	fmt.Println("the computation never depended on any single node")
}
