package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke test: a scaled-down run must survive its catastrophe and report a
// live network at the end.
func TestChurnExampleSurvives(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, 250, 100)
	out := buf.String()
	if !strings.Contains(out, "catastrophe: 50% of nodes crashed") {
		t.Fatalf("catastrophe marker missing:\n%s", out)
	}
	if !strings.Contains(out, "survived:") {
		t.Fatalf("no survival summary:\n%s", out)
	}
	if strings.Contains(out, "survived: 0 nodes") {
		t.Fatalf("network died out:\n%s", out)
	}
}
