// Convergence: records quality-vs-evaluations traces for three gossip
// rates and renders them as an ASCII chart — the dynamics behind the
// paper's Figure 3 (more gossip, faster convergence), visible as full
// curves rather than end-of-run points.
//
// Run with: go run ./examples/convergence
package main

import (
	"fmt"
	"io"
	"os"

	"gossipopt"
	"gossipopt/internal/core"
	"gossipopt/internal/exp"
)

func main() {
	run(os.Stdout, 50, 200000)
}

// run executes the example at the given network size and evaluation budget
// (separated from main for testability).
func run(out io.Writer, nodes int, budget int64) {
	traces := map[string]*exp.Trace{}
	for _, r := range []int{4, 32, 0} { // 0 = no coordination
		label := fmt.Sprintf("r=%d", r)
		if r == 0 {
			label = "isolated"
		}
		net := core.NewNetwork(core.Config{
			Nodes:       nodes,
			Particles:   16,
			GossipEvery: r,
			Function:    gossipopt.Rastrigin,
			Seed:        3,
		})
		traces[label] = exp.TraceRun(net, budget, budget/60)
		fmt.Fprintf(out, "%-9s final quality %.6g\n", label, traces[label].Final())
	}

	fmt.Fprintln(out)
	chart := exp.ConvergenceChart(fmt.Sprintf("Rastrigin, %d nodes x 16 particles — gossip rate", nodes), traces)
	fmt.Fprintln(out, chart.ASCII(76, 20))
	fmt.Fprintln(out, "frequent gossip (r=4) converges fastest; isolated swarms stall at")
	fmt.Fprintln(out, "whatever their luckiest member finds — the paper's Figure 3 dynamics.")
}
