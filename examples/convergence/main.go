// Convergence: records quality-vs-evaluations traces for three gossip
// rates and renders them as an ASCII chart — the dynamics behind the
// paper's Figure 3 (more gossip, faster convergence), visible as full
// curves rather than end-of-run points.
//
// Run with: go run ./examples/convergence
package main

import (
	"fmt"

	"gossipopt"
	"gossipopt/internal/core"
	"gossipopt/internal/exp"
)

func main() {
	const (
		nodes  = 50
		budget = 200000
	)
	traces := map[string]*exp.Trace{}
	for _, r := range []int{4, 32, 0} { // 0 = no coordination
		label := fmt.Sprintf("r=%d", r)
		if r == 0 {
			label = "isolated"
		}
		net := core.NewNetwork(core.Config{
			Nodes:       nodes,
			Particles:   16,
			GossipEvery: r,
			Function:    gossipopt.Rastrigin,
			Seed:        3,
		})
		traces[label] = exp.TraceRun(net, budget, budget/60)
		fmt.Printf("%-9s final quality %.6g\n", label, traces[label].Final())
	}

	fmt.Println()
	chart := exp.ConvergenceChart("Rastrigin, 50 nodes x 16 particles — gossip rate", traces)
	fmt.Println(chart.ASCII(76, 20))
	fmt.Println("frequent gossip (r=4) converges fastest; isolated swarms stall at")
	fmt.Println("whatever their luckiest member finds — the paper's Figure 3 dynamics.")
}
