package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke test: a scaled-down run must produce all three trace labels and a
// rendered chart.
func TestConvergenceExampleRuns(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, 12, 6000)
	out := buf.String()
	for _, label := range []string{"r=4", "r=32", "isolated"} {
		if !strings.Contains(out, label+" ") && !strings.Contains(out, label+"  ") {
			t.Fatalf("trace %q missing:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "final quality") || !strings.Contains(out, "Rastrigin") {
		t.Fatalf("chart or summary missing:\n%s", out)
	}
}
