// Epidemic: the Demers-style protocols behind the paper's coordination
// service, run through the engine's mailbox pipeline so a network
// partition actually bites. One rumor is seeded on a fixed random graph;
// a netsplit isolates the seed's island, the rumor saturates it and is
// visibly unable to cross (every attempt counts as a dropped message),
// then the cut heals and the epidemic finishes the job.
//
// Run with: go run ./examples/epidemic
package main

import (
	"fmt"
	"io"
	"os"

	"gossipopt/internal/gossip"
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

func main() {
	run(os.Stdout, 64, 0, 30, 60)
}

// run executes the example: n nodes, a partition installed before cycle
// splitAt and removed before cycle healAt, horizon cycles total (separated
// from main for testability).
func run(out io.Writer, n int, splitAt, healAt, horizon int64) {
	e := sim.NewEngine(11)
	nodes := e.AddNodes(n)
	overlay.InitStatic(e, 0, overlay.KRegularRandom(8))
	for _, nd := range nodes {
		nd.Protocols = append(nd.Protocols, &gossip.Rumor{
			Slot: 0, SelfSlot: 1, Fanout: 2, StopProb: 0.05,
		})
	}
	e.Node(0).Protocol(1).(*gossip.Rumor).Seed()

	fmt.Fprintln(out, "cycle  informed  delivered  dropped")
	for cycle := int64(0); cycle < horizon; cycle++ {
		switch cycle {
		case splitAt:
			e.SetDeliveryFilter(sim.SplitGroups(2))
			fmt.Fprintf(out, "  -- cycle %d: netsplit: two islands, the seed cut off from half the network\n", cycle)
		case healAt:
			e.SetDeliveryFilter(nil)
			fmt.Fprintf(out, "  -- cycle %d: heal\n", cycle)
		}
		e.RunCycle()
		if cycle%10 == 9 {
			fmt.Fprintf(out, "%5d  %8d  %9d  %7d\n",
				cycle+1, gossip.CountInformed(e, 1), e.Delivered(), e.Dropped())
		}
	}

	informed := gossip.CountInformed(e, 1)
	fmt.Fprintf(out, "\nfinal: %d/%d informed, %d messages dropped at the cut\n",
		informed, n, e.Dropped())
	if informed == n {
		fmt.Fprintln(out, "the rumor crossed only after the partition healed")
	}
}
