package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke test: the partition must block the rumor (drops accumulate) and
// the heal must let it finish.
func TestEpidemicExampleCrossesAfterHeal(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, 64, 0, 30, 60)
	out := buf.String()
	if !strings.Contains(out, "netsplit: two islands") {
		t.Fatalf("netsplit marker missing:\n%s", out)
	}
	if !strings.Contains(out, "the rumor crossed only after the partition healed") {
		t.Fatalf("rumor did not reach the whole network:\n%s", out)
	}
	if strings.Contains(out, " 0 messages dropped") {
		t.Fatalf("partition dropped nothing:\n%s", out)
	}
}
