// Livecluster: the same three-service protocol stack running over real TCP
// sockets on localhost — no simulator. Twelve OS-level peers bootstrap off
// the first node, self-organize via Newscast view exchanges, and cooperate
// on Rastrigin through anti-entropy best-point gossip.
//
// Run with: go run ./examples/livecluster
package main

import (
	"fmt"
	"math"
	"time"

	"gossipopt"
	"gossipopt/internal/p2p"
)

func main() {
	const nodes = 12
	cluster := make([]*p2p.Node, 0, nodes)
	defer func() {
		for _, n := range cluster {
			n.Stop()
		}
	}()

	for i := 0; i < nodes; i++ {
		cfg := p2p.NodeConfig{
			Function:         gossipopt.Rastrigin,
			Particles:        16,
			GossipEvery:      16,
			NewscastInterval: 50 * time.Millisecond,
			EvalThrottle:     200 * time.Microsecond, // pretend evaluations are costly
			Seed:             uint64(i + 1),
		}
		if i > 0 {
			cfg.Bootstrap = []string{cluster[0].Addr()}
		}
		n, err := p2p.Start(cfg)
		if err != nil {
			fmt.Println("start:", err)
			return
		}
		cluster = append(cluster, n)
		fmt.Printf("started node %2d at %s\n", i, n.Addr())
	}

	fmt.Println("\nletting the cluster self-organize and optimize...")
	for tick := 0; tick < 8; tick++ {
		time.Sleep(500 * time.Millisecond)
		best := math.Inf(1)
		var evals int64
		minPeers := 1 << 30
		for _, n := range cluster {
			if _, f, ok := n.Best(); ok && f < best {
				best = f
			}
			evals += n.Evals()
			if p := len(n.Peers()); p < minPeers {
				minPeers = p
			}
		}
		fmt.Printf("t=%.1fs  cluster best=%.6g  total evals=%d  min view size=%d\n",
			float64(tick+1)*0.5, best, evals, minPeers)
	}

	// Kill the bootstrap node: the overlay self-heals and work continues.
	fmt.Println("\ncrashing the bootstrap node...")
	cluster[0].Stop()
	time.Sleep(time.Second)
	best := math.Inf(1)
	for _, n := range cluster[1:] {
		if _, f, ok := n.Best(); ok && f < best {
			best = f
		}
	}
	fmt.Printf("survivors' best after crash: %.6g — computation unaffected\n", best)

	var exch, adopt int64
	for _, n := range cluster[1:] {
		e, a, _ := n.Stats()
		exch += e
		adopt += a
	}
	fmt.Printf("coordination totals: %d exchanges, %d adoptions\n", exch, adopt)
}
