// Multisolver: heterogeneous node populations — the paper's future-work
// scenario of "module diversification among peers". One third of the nodes
// run PSO swarms, one third differential evolution, one third (1+1)
// evolution strategies; all cooperate through the same anti-entropy
// coordination service, and the comparison against homogeneous populations
// is printed side by side.
//
// Run with: go run ./examples/multisolver
package main

import (
	"fmt"

	"gossipopt"
)

func run(label string, factory gossipopt.SolverFactory, f gossipopt.Function) float64 {
	net := gossipopt.New(gossipopt.Config{
		Nodes:         48,
		Particles:     16, // used by the default PSO factory only
		GossipEvery:   16,
		Function:      f,
		Seed:          11,
		SolverFactory: factory,
	})
	net.RunEvals(1 << 18)
	q := net.Quality()
	fmt.Printf("  %-10s quality %.6g\n", label, q)
	return q
}

func main() {
	mixed := gossipopt.MixedSolvers(
		gossipopt.PSOSolver(16, gossipopt.PSOConfig{}),
		gossipopt.DESolver(16),
		gossipopt.ESSolver(),
	)

	for _, f := range []gossipopt.Function{gossipopt.Rosenbrock, gossipopt.Rastrigin, gossipopt.Griewank} {
		fmt.Printf("%s (dim %d):\n", f.Name, f.Dim(0))
		run("pso", nil, f) // nil = default homogeneous PSO
		run("de", gossipopt.DESolver(16), f)
		run("es", gossipopt.ESSolver(), f)
		run("mixed", mixed, f)
		fmt.Println()
	}
	fmt.Println("heterogeneous populations hedge across landscapes: the mixed")
	fmt.Println("network tracks the best homogeneous solver on each function")
	fmt.Println("because gossip lets every solver adopt whatever any solver finds.")
}
