// Quickstart: optimize a 10-dimensional Rastrigin function with 64
// simulated nodes cooperating through gossip — the smallest complete use
// of the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"gossipopt"
)

func main() {
	// A network of 64 nodes, each running a 16-particle swarm. Nodes find
	// gossip partners via Newscast peer sampling and exchange their best
	// point every 16 local evaluations (r = k, the paper's default).
	net := gossipopt.New(gossipopt.Config{
		Nodes:       64,
		Particles:   16,
		GossipEvery: 16,
		Function:    gossipopt.Rastrigin,
		Seed:        42,
	})

	// Spend a global budget of 2^19 function evaluations, reporting
	// convergence as it happens.
	const budget = 1 << 19
	for net.TotalEvals() < budget {
		net.RunEvals(net.TotalEvals() + budget/8)
		fmt.Printf("evals=%7d  quality=%.6g\n", net.TotalEvals(), net.Quality())
	}

	best, _ := net.GlobalBest()
	fmt.Printf("\nfinal quality %.6g after %d evaluations\n", net.Quality(), net.TotalEvals())
	fmt.Printf("best point (first 3 coords): %.4f %.4f %.4f\n", best.X[0], best.X[1], best.X[2])

	m := net.Metrics()
	fmt.Printf("coordination: %d exchanges, %d adoptions\n", m.Exchanges, m.Adoptions)
}
