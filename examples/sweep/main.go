// Sweep: the scenario-sweep API used programmatically — the same grid
// machinery `cmd/scenario -sweep` drives from JSON, built as a Go value.
// The sweep asks one of the paper's questions (does solver
// diversification help on a deceptive function?) as a 2x2 grid: a
// homogeneous PSO deployment vs a mixed pso/de/ga one, on Sphere
// (unimodal) vs Rastrigin (highly multimodal). Every cell × repetition
// job runs on one bounded worker pool and the per-cell aggregates come
// back ready for the comparison report.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"io"
	"os"

	"gossipopt/internal/exp"
	"gossipopt/internal/scenario"
)

func main() {
	run(os.Stdout, 3, 4)
}

// raw abbreviates the JSON literals of the axis values.
func raw(s string) []byte { return []byte(s) }

// run executes the example sweep with the given repetitions per cell and
// pool size (separated from main for testability).
func run(out io.Writer, reps, workers int) {
	sw := scenario.SweepSpec{
		Name:        "diversity",
		Description: "homogeneous vs mixed solver deployments on an easy and a deceptive objective",
		Base: scenario.Spec{
			Nodes:        48,
			Seed:         29,
			Stack:        scenario.Stack{Particles: 8},
			MetricsEvery: 20,
			Stop:         scenario.Stop{Cycles: 100},
		},
		Axes: []scenario.Axis{
			{Name: "solvers", Values: []scenario.AxisValue{
				{Label: "pso", Value: raw(`{"stack":{"solvers":["pso"]}}`)},
				{Label: "mixed", Value: raw(`{"stack":{"solvers":["pso","de","ga"]}}`)},
			}},
			{Name: "f", Path: "stack.function", Values: []scenario.AxisValue{
				{Value: raw(`"Sphere"`)},
				{Value: raw(`"Rastrigin"`)},
			}},
		},
	}

	results, err := scenario.RunSweep(sw, scenario.Options{
		Reps:       reps,
		RepWorkers: workers,
	}, exp.DiscardSink{}) // rows discarded: this example wants the aggregates
	if err != nil {
		fmt.Fprintln(out, "sweep failed:", err)
		return
	}

	cells := make([]exp.CellSummary, len(results))
	for i, r := range results {
		cells[i] = r.Summary
	}
	fmt.Fprint(out, exp.SweepReport(sw.Name, cells))
	fmt.Fprintf(out, "\n%d cells x %d reps, byte-identical output for any pool size\n",
		len(results), reps)
}
