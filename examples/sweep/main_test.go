package main

import (
	"strings"
	"testing"
)

// TestSweepExampleRuns smokes the example at a reduced size and checks
// the report surfaces all four cells.
func TestSweepExampleRuns(t *testing.T) {
	var b strings.Builder
	run(&b, 2, 4)
	out := b.String()
	for _, cell := range []string{
		"diversity/solvers=pso,f=Sphere",
		"diversity/solvers=pso,f=Rastrigin",
		"diversity/solvers=mixed,f=Sphere",
		"diversity/solvers=mixed,f=Rastrigin",
	} {
		if !strings.Contains(out, cell) {
			t.Fatalf("report missing cell %q:\n%s", cell, out)
		}
	}
	if !strings.Contains(out, "4 cells x 2 reps") {
		t.Fatalf("summary line missing:\n%s", out)
	}
}

// TestSweepExamplePoolInvariance: the example's report is identical for
// any pool size.
func TestSweepExamplePoolInvariance(t *testing.T) {
	render := func(workers int) string {
		var b strings.Builder
		run(&b, 2, workers)
		return b.String()
	}
	if render(1) != render(8) {
		t.Fatal("example output differs across pool sizes")
	}
}
