module gossipopt

go 1.22
