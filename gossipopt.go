// Package gossipopt is a decentralized optimization framework: a Go
// reproduction of "Towards a Decentralized Architecture for Optimization"
// (Biazzini, Brunato, Montresor — IPPS 2008).
//
// A network of loosely coupled nodes cooperates on a single global
// optimization task with no central coordinator. Each node runs three
// services:
//
//   - topology: NEWSCAST gossip-based peer sampling keeps a self-repairing,
//     random-graph-like overlay under churn;
//   - optimization: a particle swarm (or any Solver) spends function
//     evaluations locally;
//   - coordination: an anti-entropy epidemic spreads the best known point,
//     one exchange every r local evaluations.
//
// Quick start:
//
//	net := gossipopt.New(gossipopt.Config{
//		Nodes:       64,
//		Particles:   16,
//		GossipEvery: 16,
//		Function:    gossipopt.Sphere,
//		Seed:        1,
//	})
//	net.RunEvals(1 << 20)
//	best, _ := net.GlobalBest()
//	fmt.Println(best.F)
//
// The package also exposes the simulation engine, the benchmark functions,
// alternative solvers (differential evolution, simulated annealing,
// (1+1)-ES, random search), the experiment harness that regenerates every
// table and figure of the paper, and a real TCP runtime (package p2p via
// cmd/p2pnode) for running the identical protocol stack over sockets.
package gossipopt

import (
	"gossipopt/internal/core"
	"gossipopt/internal/exp"
	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

// Core framework types.
type (
	// Config describes a deployment: n nodes × k particles, gossip period
	// r, topology, function, seed.
	Config = core.Config
	// Network is a running deployment.
	Network = core.Network
	// BestPoint is a position/fitness pair, the coordination payload.
	BestPoint = core.BestPoint
	// TopologyKind selects the topology service.
	TopologyKind = core.TopologyKind
	// Function is a benchmark objective with domain and known optimum.
	Function = funcs.Function
	// PSOConfig tunes the default per-node particle swarm.
	PSOConfig = pso.Config
	// Solver is the pluggable function-optimization service contract.
	Solver = solver.Solver
	// SolverFactory builds a fresh Solver per node.
	SolverFactory = solver.Factory
	// ChurnModel mutates the simulated population each cycle.
	ChurnModel = sim.ChurnModel
	// RNG is the deterministic random stream used throughout.
	RNG = rng.RNG
)

// Topology service choices.
const (
	TopoNewscast = core.TopoNewscast
	TopoRandom   = core.TopoRandom
	TopoRing     = core.TopoRing
	TopoStar     = core.TopoStar
	TopoFull     = core.TopoFull
	TopoCyclon   = core.TopoCyclon
)

// The paper's benchmark suite (all minimization, optimum value 0).
var (
	F2             = funcs.F2
	Zakharov       = funcs.Zakharov
	Rosenbrock     = funcs.Rosenbrock
	Sphere         = funcs.Sphere
	Schaffer       = funcs.Schaffer
	Griewank       = funcs.Griewank
	Rastrigin      = funcs.Rastrigin
	Ackley         = funcs.Ackley
	Levy           = funcs.Levy
	StyblinskiTang = funcs.StyblinskiTang
	Schwefel       = funcs.Schwefel
	// PaperSuite is the six functions of the paper's evaluation.
	PaperSuite = funcs.PaperSuite
	// ExtendedSuite adds five further standard benchmarks.
	ExtendedSuite = funcs.ExtendedSuite
)

// FunctionByName resolves a benchmark function by name (e.g. "Sphere").
func FunctionByName(name string) (Function, error) { return funcs.ByName(name) }

// New builds and wires a network. See Config for the knobs; zero values
// select the paper's defaults (Newscast topology, PSO solver, c = 20).
func New(cfg Config) *Network { return core.NewNetwork(cfg) }

// NewRNG returns a deterministic random stream for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// MixedSolvers round-robins the given factories across nodes
// (heterogeneous deployments — the paper's future-work scenario).
func MixedSolvers(factories ...SolverFactory) SolverFactory {
	return core.MixedFactory(factories...)
}

// Solver factories for the bundled solvers.

// PSOSolver returns a factory for per-node particle swarms of k particles.
func PSOSolver(k int, cfg PSOConfig) SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return pso.New(f, dim, k, cfg, r) }
}

// DESolver returns a factory for differential-evolution populations of np.
func DESolver(np int) SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return solver.NewDE(f, dim, np, r) }
}

// SASolver returns a factory for simulated annealers.
func SASolver() SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return solver.NewSA(f, dim, r) }
}

// ESSolver returns a factory for (1+1) evolution strategies.
func ESSolver() SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return solver.NewES(f, dim, r) }
}

// RandomSolver returns a factory for uniform random search.
func RandomSolver() SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return solver.NewRandomSearch(f, dim, r) }
}

// GASolver returns a factory for steady-state real-coded genetic
// algorithms with population np.
func GASolver(np int) SolverFactory {
	return func(f Function, dim int, _ int64, r *RNG) Solver { return solver.NewGA(f, dim, np, r) }
}

// Experiment harness re-exports: regenerate the paper's tables & figures.
type (
	// ExpSpec sizes an experiment sweep.
	ExpSpec = exp.Spec
	// ExpCell is one sweep configuration.
	ExpCell = exp.Cell
	// ExpRunner executes sweeps on a worker pool.
	ExpRunner = exp.Runner
	// ExpReport formats results as paper-style tables and figures.
	ExpReport = exp.Report
)

// PaperSpec returns the paper's exact experiment parameters (expensive).
func PaperSpec() ExpSpec { return exp.Paper() }

// QuickSpec returns a laptop-scale spec preserving the sweeps' shape.
func QuickSpec() ExpSpec { return exp.Quick() }

// Experiment builders (see DESIGN.md's per-experiment index).
var (
	Experiment1          = exp.Experiment1
	Experiment2          = exp.Experiment2
	Experiment3          = exp.Experiment3
	Experiment4          = exp.Experiment4
	AblationNoGossip     = exp.AblationNoGossip
	AblationTopology     = exp.AblationTopology
	AblationChurn        = exp.AblationChurn
	AblationMessageLoss  = exp.AblationMessageLoss
	AblationMixedSolvers = exp.AblationMixedSolvers
)
