package gossipopt_test

import (
	"math"
	"testing"

	"gossipopt"
)

func TestFacadeQuickstart(t *testing.T) {
	net := gossipopt.New(gossipopt.Config{
		Nodes:       16,
		Particles:   8,
		GossipEvery: 8,
		Function:    gossipopt.Sphere,
		Seed:        1,
	})
	net.RunEvals(30000)
	if q := net.Quality(); q > 1e-6 {
		t.Fatalf("quality %g", q)
	}
	best, ok := net.GlobalBest()
	if !ok || len(best.X) != 10 {
		t.Fatalf("best = %+v ok=%v", best, ok)
	}
}

func TestFacadeFunctionByName(t *testing.T) {
	f, err := gossipopt.FunctionByName("Griewank")
	if err != nil || f.Name != "Griewank" {
		t.Fatalf("f=%v err=%v", f.Name, err)
	}
	if _, err := gossipopt.FunctionByName("NoSuch"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(gossipopt.PaperSuite) != 6 {
		t.Fatalf("paper suite has %d functions", len(gossipopt.PaperSuite))
	}
	if len(gossipopt.ExtendedSuite) != 11 {
		t.Fatalf("extended suite has %d functions", len(gossipopt.ExtendedSuite))
	}
}

func TestFacadeSolverFactories(t *testing.T) {
	for name, factory := range map[string]gossipopt.SolverFactory{
		"pso":    gossipopt.PSOSolver(8, gossipopt.PSOConfig{}),
		"de":     gossipopt.DESolver(8),
		"sa":     gossipopt.SASolver(),
		"es":     gossipopt.ESSolver(),
		"random": gossipopt.RandomSolver(),
	} {
		s := factory(gossipopt.Sphere, 10, 0, gossipopt.NewRNG(1))
		for i := 0; i < 50; i++ {
			s.EvalOne()
		}
		if s.Evals() != 50 {
			t.Errorf("%s: evals = %d", name, s.Evals())
		}
		if _, f := s.Best(); math.IsInf(f, 0) || f < 0 {
			t.Errorf("%s: best = %v", name, f)
		}
	}
}

func TestFacadeMixedSolvers(t *testing.T) {
	mixed := gossipopt.MixedSolvers(gossipopt.ESSolver(), gossipopt.DESolver(8))
	net := gossipopt.New(gossipopt.Config{
		Nodes: 8, GossipEvery: 4, Function: gossipopt.Sphere, Seed: 2,
		SolverFactory: mixed,
	})
	net.RunEvals(20000)
	if q := net.Quality(); q > 1e-4 {
		t.Fatalf("mixed quality %g", q)
	}
}

func TestFacadeTopologies(t *testing.T) {
	for _, topo := range []gossipopt.TopologyKind{
		gossipopt.TopoNewscast, gossipopt.TopoRandom, gossipopt.TopoRing,
		gossipopt.TopoStar, gossipopt.TopoFull,
	} {
		net := gossipopt.New(gossipopt.Config{
			Nodes: 8, Particles: 8, GossipEvery: 8,
			Function: gossipopt.Sphere, Seed: 3, Topology: topo,
		})
		net.RunEvals(5000)
		if q := net.Quality(); math.IsInf(q, 1) {
			t.Errorf("%s: no progress", topo)
		}
	}
}

func TestFacadeExperimentSpecs(t *testing.T) {
	paper := gossipopt.PaperSpec()
	quick := gossipopt.QuickSpec()
	if paper.Reps != 50 {
		t.Fatalf("paper reps = %d", paper.Reps)
	}
	if quick.Reps >= paper.Reps {
		t.Fatal("quick not smaller than paper")
	}
	if cells := gossipopt.Experiment1(quick, true); len(cells) == 0 {
		t.Fatal("no E1 cells")
	}
	if cells := gossipopt.AblationMixedSolvers(quick, true); len(cells) == 0 {
		t.Fatal("no mixed-solver cells")
	}
}

func TestFacadeExperimentEndToEnd(t *testing.T) {
	spec := gossipopt.ExpSpec{
		Funcs:         []gossipopt.Function{gossipopt.Sphere},
		Reps:          2,
		BudgetPerNode: 200,
		Ns:            []int{1, 4},
		Ks:            []int{8},
	}
	cells := gossipopt.Experiment1(spec, true)
	runner := &gossipopt.ExpRunner{Reps: 2, BaseSeed: 4}
	report := &gossipopt.ExpReport{Title: "e2e", Results: runner.Sweep(cells)}
	if len(report.BestRows()) != 1 {
		t.Fatalf("best rows = %d", len(report.BestRows()))
	}
	if report.Table() == "" {
		t.Fatal("empty table")
	}
	if len(report.Figure1()) != 1 {
		t.Fatal("missing figure")
	}
}
