// Package analysis is the project's static-analysis suite: four analyzers
// that mechanize the invariants every PR since the seed has leaned on —
// byte-identical traces across the whole (propose × apply) worker grid,
// node-local apply handlers, sent-exactly-once payload ownership, and the
// strict-spectator rule for the observability layer. The golden files catch
// a violation after the fact; these analyzers catch it at vet time, before
// a contract drift becomes a cross-machine divergence in a distributed
// backend.
//
// The suite is built on the standard library alone (go/ast + go/types): the
// framework here mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run function over a Pass — without depending on it,
// and cmd/simcheck speaks `go vet -vettool` unitchecker protocol so CI
// enforces the contracts on every build.
//
// # Waivers
//
// A legitimate violation site (the stats wall-clock timings in
// Engine.RunCycle, for example) is waived in place:
//
//	//simcheck:allow determinism stats wall-times never reach the trace
//
// The comment names the analyzer and must carry a non-empty reason; it
// applies to its own line and to the line directly below it. A waiver with
// no reason, naming an unknown analyzer, or suppressing nothing is itself
// reported, so the waiver set stays exact: every waiver in the tree is
// explained and load-bearing.
//
// Test files (*_test.go) are exempt from all analyzers: the contracts
// govern code that can reach an engine trace, and tests exercise engines
// through the public API where the engine enforces ordering itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check of the suite. Run inspects a type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //simcheck:allow waiver comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's object resolution and expression types.
	Info *types.Info

	report func(pos token.Pos, msg string)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos is the finding's resolved source position.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// waiverPrefix introduces a waiver comment. The full syntax is
// "//simcheck:allow <analyzer> <reason>"; see the package comment.
const waiverPrefix = "//simcheck:allow"

// waiver is one parsed //simcheck:allow comment.
type waiver struct {
	pos      token.Position // of the comment itself
	analyzer string
	reason   string
	used     bool
}

// All returns the full suite in a fixed order: determinism, nodelocal,
// ownership, spectator.
func All() []*Analyzer {
	return []*Analyzer{Determinism, NodeLocal, Ownership, Spectator}
}

// knownAnalyzer reports whether name belongs to the suite — waivers naming
// anything else are typos and get reported.
func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// RunAnalyzers runs the given analyzers over one type-checked package and
// returns the surviving diagnostics sorted by position: raw findings minus
// waived ones, plus waiver-hygiene findings (missing reason, unknown
// analyzer, waiver that suppressed nothing). Findings positioned in
// *_test.go files are dropped (see the package comment).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	waivers := collectWaivers(fset, files)
	var out []Diagnostic

	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}

	for _, a := range analyzers {
		name := a.Name
		pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
		pass.report = func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			if strings.HasSuffix(p.Filename, "_test.go") {
				return
			}
			if w := waivers.lookup(name, p); w != nil {
				w.used = true
				return
			}
			out = append(out, Diagnostic{Analyzer: name, Pos: p, Message: msg})
		}
		a.Run(pass)
	}

	// Waiver hygiene: malformed waivers always get reported; an unused
	// waiver is only a finding when its analyzer actually ran (a fixture
	// running one analyzer must not complain about the others' waivers).
	for _, w := range waivers {
		switch {
		case w.analyzer == "":
			out = append(out, Diagnostic{Analyzer: "waiver", Pos: w.pos,
				Message: "simcheck:allow must name an analyzer: //simcheck:allow <analyzer> <reason>"})
		case !knownAnalyzer(w.analyzer):
			out = append(out, Diagnostic{Analyzer: "waiver", Pos: w.pos,
				Message: fmt.Sprintf("simcheck:allow names unknown analyzer %q", w.analyzer)})
		case w.reason == "":
			out = append(out, Diagnostic{Analyzer: "waiver", Pos: w.pos,
				Message: fmt.Sprintf("simcheck:allow %s needs a reason: every waiver documents why the site is safe", w.analyzer)})
		case !w.used && running[w.analyzer]:
			out = append(out, Diagnostic{Analyzer: "waiver", Pos: w.pos,
				Message: fmt.Sprintf("unused simcheck:allow %s waiver: the analyzer reports nothing here", w.analyzer)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

// collectWaivers parses every //simcheck:allow comment in the files.
func collectWaivers(fset *token.FileSet, files []*ast.File) waiverList {
	var list waiverList
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //simcheck:allowance — not a waiver
				}
				fields := strings.Fields(rest)
				w := &waiver{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					w.analyzer = fields[0]
				}
				if len(fields) > 1 {
					w.reason = strings.Join(fields[1:], " ")
				}
				list = append(list, w)
			}
		}
	}
	return list
}

// waiverList holds a file set's waivers and builds the line-indexed lookup
// table on demand.
type waiverList []*waiver

// lookup finds a waiver by analyzer covering the given position: a waiver
// applies to its own line (trailing comment) and to the line directly
// below it (comment above the flagged statement).
func (l waiverList) lookup(analyzer string, pos token.Position) *waiver {
	for _, w := range l {
		if w.analyzer != analyzer || w.reason == "" {
			continue
		}
		if w.pos.Filename == pos.Filename && (w.pos.Line == pos.Line || w.pos.Line == pos.Line-1) {
			return w
		}
	}
	return nil
}
