package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The determinism analyzer. Byte-identical traces across the whole
// (propose × apply) worker grid are the repo's load-bearing invariant;
// the two classic ways to lose them silently are iterating a Go map in an
// order-sensitive way (map iteration order is randomized per run) and
// drawing from an ambient source — wall clock, process-global RNG,
// environment — instead of the engine's seeded streams.
//
// In trace-affecting packages the analyzer flags:
//
//   - `for ... range m` over a map whose body does order-sensitive work.
//     Order-insensitive bodies pass: integer accumulation (x++, x += n),
//     constant flag sets, map-index writes, delete, and local declarations.
//     Appending to an outer slice passes only when a statement after the
//     loop sorts that slice (the collect-then-sort idiom SessionChurn
//     uses); anything else — calls, channel sends, float accumulation,
//     overwriting outer variables, returning — is flagged.
//   - calls to time.Now / time.Since / time.Until, to package-level
//     math/rand (and v2) functions, and to os.Getenv / os.LookupEnv /
//     os.Environ. Node-scoped draws come from n.RNG; wall-clock reads that
//     never reach the trace (the stats phase timings) carry a waiver.

// tracePackageFragments marks the packages whose code can reach an engine
// trace: the engine itself, every bundled protocol family, and the
// scenario compiler/runner.
var tracePackageFragments = []string{
	"internal/sim",
	"internal/gossip",
	"internal/overlay",
	"internal/core",
	"internal/scenario",
}

// Determinism flags order-sensitive map iteration and ambient
// nondeterminism sources (wall clock, global RNG, environment) in
// trace-affecting packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags order-sensitive map iteration and ambient nondeterminism " +
		"(time.Now, global math/rand, os.Getenv) in trace-affecting packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pkgPathContains(pass.Pkg.Path(), tracePackageFragments...) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAmbientCall(pass, n)
			case *ast.BlockStmt:
				checkBlockRanges(pass, n.List)
			case *ast.CaseClause:
				checkBlockRanges(pass, n.Body)
			case *ast.CommClause:
				checkBlockRanges(pass, n.Body)
			}
			return true
		})
	}
}

// ambientFuncs lists the banned ambient sources per package.
var ambientFuncs = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// checkAmbientCall flags wall-clock, environment, and process-global RNG
// calls.
func checkAmbientCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if banned, ok := ambientFuncs[path]; ok && banned[fn.Name()] {
		pass.Reportf(call.Pos(), "call to %s.%s in a trace-affecting package: ambient inputs break run-to-run determinism", path, fn.Name())
		return
	}
	if path == "math/rand" || path == "math/rand/v2" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(), "call to process-global %s.%s in a trace-affecting package: draw from the engine or node RNG stream instead", path, fn.Name())
		}
	}
}

// checkBlockRanges examines every map-range statement of a statement list,
// with the list's tail available for collect-then-sort detection.
func checkBlockRanges(pass *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			continue
		}
		checkMapRange(pass, rng, stmts[i+1:])
	}
}

// checkMapRange classifies one map-range body and reports it unless every
// statement is order-insensitive (appends excepted when a later statement
// in the same block sorts the collected slice).
func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	c := &rangeClassifier{pass: pass, rng: rng}
	c.classifyStmts(rng.Body.List)
	if c.reported {
		return
	}
	for _, target := range c.appendTargets {
		if !sortedAfter(pass, target, rest) {
			pass.Reportf(rng.Pos(), "map iteration appends to %q in map order without a subsequent sort: collect, sort, then act (map order is randomized per run)", target.Name())
			return
		}
	}
}

// rangeClassifier walks a map-range body collecting order-sensitivity
// verdicts. It reports at most one diagnostic per range statement (the
// first order-sensitive statement found) to keep the output reviewable.
type rangeClassifier struct {
	pass          *Pass
	rng           *ast.RangeStmt
	appendTargets []*types.Var
	reported      bool
}

// flag reports the range statement once, anchored at the offending
// statement.
func (c *rangeClassifier) flag(pos token.Pos, why string) {
	if c.reported {
		return
	}
	c.reported = true
	c.pass.Reportf(pos, "order-sensitive statement in map iteration (%s): map order is randomized per run; iterate sorted keys or make the body commutative", why)
}

func (c *rangeClassifier) classifyStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.classifyStmt(s)
		if c.reported {
			return
		}
	}
}

// localTo reports whether the identifier's object is declared inside the
// range statement — the Key/Value variables of the range clause included
// (per-iteration state is invisible outside and always safe to write).
func (c *rangeClassifier) localTo(id *ast.Ident) bool {
	obj := c.pass.Info.Defs[id]
	if obj == nil {
		obj = c.pass.Info.Uses[id]
	}
	return obj != nil && obj.Pos() >= c.rng.Pos() && obj.Pos() <= c.rng.Body.End()
}

// classifyStmt dispatches one statement of the loop body.
func (c *rangeClassifier) classifyStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.BranchStmt, *ast.EmptyStmt, *ast.DeclStmt:
		// Local declarations and control flow carry no cross-iteration
		// state.
	case *ast.IncDecStmt:
		// x++ / x-- add a constant per element: the same multiset of
		// updates in any order yields the same value.
	case *ast.AssignStmt:
		c.classifyAssign(s)
	case *ast.ExprStmt:
		c.classifyCallStmt(s)
	case *ast.IfStmt:
		c.classifyCond(s.Cond)
		if s.Init != nil {
			c.classifyStmt(s.Init)
		}
		c.classifyStmts(s.Body.List)
		if s.Else != nil {
			c.classifyStmt(s.Else)
		}
	case *ast.BlockStmt:
		c.classifyStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.classifyStmt(s.Init)
		}
		if s.Cond != nil {
			c.classifyCond(s.Cond)
		}
		if s.Post != nil {
			c.classifyStmt(s.Post)
		}
		c.classifyStmts(s.Body.List)
	case *ast.RangeStmt:
		// A nested range shares the outer loop's constraints; a nested
		// *map* range is additionally checked on its own by the outer
		// walk.
		c.classifyStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.classifyStmt(s.Init)
		}
		if s.Tag != nil {
			c.classifyCond(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.classifyStmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.classifyStmts(cl.Body)
			}
		}
	default:
		// return, send, go, defer, select, labeled...: all leak iteration
		// order (which element returned first, channel message order, ...).
		c.flag(s.Pos(), "statement kind leaks iteration order")
	}
}

// classifyCond flags conditions that call non-builtin functions (a call
// may mutate state in iteration order); pure reads are always safe.
func (c *rangeClassifier) classifyCond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if calleeBuiltin(c.pass.Info, call) == "" && !isConversion(c.pass.Info, call) {
				c.flag(call.Pos(), "function call inside condition may observe iteration order")
				return false
			}
		}
		return true
	})
}

// classifyCallStmt handles a bare call statement: delete is set-semantics
// safe, everything else can observe iteration order.
func (c *rangeClassifier) classifyCallStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		c.flag(s.Pos(), "expression statement")
		return
	}
	switch calleeBuiltin(c.pass.Info, call) {
	case "delete", "clear", "print", "println", "panic":
		// delete/clear are per-key set operations; print/panic are debug
		// paths that never reach a trace.
		return
	}
	c.flag(call.Pos(), "call may act in iteration order")
}

// classifyAssign judges one assignment inside the loop body.
func (c *rangeClassifier) classifyAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // fresh per-iteration locals
	}
	// Compound numeric accumulation: integer +=/-=/*=/|=/&=/^=/&^= is
	// commutative and associative, so element order cannot change the
	// result. Float (and string) accumulation is order-dependent.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		for _, lhs := range s.Lhs {
			if tv, ok := c.pass.Info.Types[lhs]; !ok || !isIntegerType(tv.Type) {
				c.flag(s.Pos(), "non-integer accumulation is order-dependent")
				return
			}
		}
		return
	case token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		c.flag(s.Pos(), "non-commutative accumulation")
		return
	}

	// Plain assignment: judge each LHS.
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		c.classifyStore(s, lhs, rhs)
		if c.reported {
			return
		}
	}
}

// classifyStore judges one plain `lhs = rhs` store.
func (c *rangeClassifier) classifyStore(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" || c.localTo(id) {
			return
		}
		// Append to an outer slice: allowed when sorted after the loop
		// (checked by the caller); anything else overwrites outer state in
		// iteration order — except a constant store, which is idempotent
		// (`found = true`).
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeBuiltin(c.pass.Info, call) == "append" {
			if target := rootIdent(ast.Unparen(call.Args[0])); target != nil {
				if obj, ok := c.pass.Info.Uses[target].(*types.Var); ok && obj == c.pass.Info.Uses[id] {
					c.appendTargets = append(c.appendTargets, obj)
					return
				}
			}
		}
		if rhs != nil {
			if tv, ok := c.pass.Info.Types[rhs]; ok && tv.Value != nil {
				return // constant store: idempotent across iterations
			}
		}
		c.flag(s.Pos(), "last-iteration-wins write to outer variable "+id.Name)
		return
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if tv, ok := c.pass.Info.Types[ix.X]; ok && isMapType(tv.Type) {
			return // per-key map store: set semantics
		}
	}
	if root := rootIdent(lhs); root != nil && c.localTo(root) {
		return
	}
	c.flag(s.Pos(), "write through non-local reference")
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// sortedAfter reports whether a statement in rest sorts the given slice
// variable: sort.Slice / sort.Sort / sort.Ints / ... or any slices.Sort*
// call mentioning the variable.
func sortedAfter(pass *Pass, target *types.Var, rest []ast.Stmt) bool {
	for _, s := range rest {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn) {
			continue
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == target {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				return true
			}
		}
	}
	return false
}

// isSortFunc recognizes the sorting entry points of sort and slices.
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
