package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture driver: each fixture package under testdata/src annotates the
// lines where an analyzer must report with `// want "substring"` comments
// (multiple quoted substrings allowed; `// want+N` shifts the expected line
// N lines down, for diagnostics that land on a line that cannot carry a
// trailing comment, like a waiver line). The driver loads the fixture, runs
// one analyzer, and requires an exact match: every expectation consumed by
// a diagnostic on its line containing the substring, and no diagnostic left
// over.

// wantRe matches a want comment: the optional +N offset, then one or more
// quoted substrings.
var wantRe = regexp.MustCompile(`// want(\+\d+)?((?: "[^"]*")+)`)

// quotedRe extracts the individual quoted substrings.
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file   string // base filename
	line   int
	substr string
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
					wants = append(wants, expectation{
						file:   filepath.Base(pos.Filename),
						line:   line,
						substr: q[1],
					})
				}
			}
		}
	}
	return wants
}

// runFixture loads one fixture package, runs one analyzer over it, and
// compares diagnostics against the want comments.
func runFixture(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	diags := RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*Analyzer{a})
	wants := collectWants(t, pkg)

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
				strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing diagnostic at %s:%d containing %q", importPath, w.file, w.line, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", importPath, d)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "internal/gossip")
}

func TestDeterminismIgnoresNonTracePackages(t *testing.T) {
	runFixture(t, Determinism, "plain")
}

func TestNodeLocalFixture(t *testing.T) {
	runFixture(t, NodeLocal, "handlers")
}

func TestNodeLocalExemptsEnginePackage(t *testing.T) {
	runFixture(t, NodeLocal, "internal/sim")
}

func TestOwnershipFixture(t *testing.T) {
	runFixture(t, Ownership, "ownfix")
}

func TestSpectatorFixture(t *testing.T) {
	runFixture(t, Spectator, "internal/obs")
}

func TestSpectatorStatsPathFixture(t *testing.T) {
	runFixture(t, Spectator, "statspath")
}
