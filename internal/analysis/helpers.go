package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// calleeFunc resolves the function or method a call expression invokes, or
// nil for builtins, conversions and dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeBuiltin returns the name of the builtin a call invokes ("append",
// "delete", ...), or "" when the call is not a builtin.
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// rootIdent walks to the base identifier of a selector/index/star/paren
// chain (x in x.a.b[i]), or nil when the base is not an identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// namedTypeIn reports whether t is the named type (or pointer to it) with
// the given base name declared in a package whose name is pkgName. It sees
// through pointers but not further composition.
func namedTypeIn(t types.Type, pkgName, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// pkgPathContains reports whether the import path contains any of the
// given fragments.
func pkgPathContains(path string, fragments ...string) bool {
	for _, f := range fragments {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// isPackageLevel reports whether obj is declared at package scope of pkg.
func isPackageLevel(obj types.Object, pkg *types.Package) bool {
	return obj != nil && obj.Pkg() == pkg && obj.Parent() == pkg.Scope()
}

// isIntegerType reports whether t's underlying type is an integer kind
// (accumulating with += / |= / ... over an unordered iteration is
// order-independent for integers, never for floats or strings).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
