package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
)

// Package loading for the in-repo drivers: the tree-wide test and the
// standalone mode of cmd/simcheck. Metadata comes from `go list -export
// -deps -json`, which also yields a gc export-data file for every
// dependency (standard library included), so target packages are parsed
// and type-checked from source while their imports resolve through the
// compiler's own export files — the same scheme `go vet` uses, with no
// dependency outside the standard library and the go tool itself.

// Package is one parsed, type-checked package ready for RunAnalyzers.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files are the parsed sources (non-test: `go list` GoFiles).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type information for every expression in Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports through gc export-data files, honoring
// the per-package ImportMap (vendoring / test-variant remapping).
type exportImporter struct {
	compiler  types.Importer
	importMap map[string]string
}

// Import implements types.Importer.
func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.compiler.Import(path)
}

// Load lists the patterns in dir (a module directory), then parses and
// type-checks every matched package. Dependencies — matched or not — are
// resolved from the gc export data `go list -export` produced, so loading
// a handful of packages does not type-check the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	compiler := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := typecheck(fset, p.ImportPath, files, &exportImporter{compiler: compiler, importMap: p.ImportMap})
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{ImportPath: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// typecheck runs the type checker over one package's files with a fully
// populated types.Info.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// fixtureLoader loads analyzer test fixtures from a GOPATH-style source
// tree (root/<importpath>/*.go). Fixture imports resolve within the tree
// first — so a fixture can model the sim package and a protocol package
// importing it — and fall back to gc export data for the standard library,
// obtained from one `go list -export -deps` over the std imports the
// fixture tree mentions.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// LoadFixture loads the fixture package at importPath below root (along
// with any fixture packages it imports) and returns it ready for
// RunAnalyzers. Used by the analyzer tests; exported so cmd/simcheck's
// tests can drive the same fixtures.
func LoadFixture(root, importPath string) (*Package, error) {
	l := &fixtureLoader{root: root, fset: token.NewFileSet(), cache: map[string]*Package{}}
	stdImports, err := l.scanStdImports(importPath, map[string]bool{})
	if err != nil {
		return nil, err
	}
	if len(stdImports) > 0 {
		listed, err := goList(root, stdImports)
		if err != nil {
			return nil, err
		}
		exports := make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
		l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return l.load(importPath)
}

// isFixturePath reports whether the import resolves inside the fixture
// tree.
func (l *fixtureLoader) isFixturePath(path string) bool {
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// scanStdImports walks the fixture import graph and collects every import
// that is not itself a fixture package.
func (l *fixtureLoader) scanStdImports(path string, seen map[string]bool) ([]string, error) {
	if seen[path] {
		return nil, nil
	}
	seen[path] = true
	files, err := l.parseDir(path)
	if err != nil {
		return nil, err
	}
	var std []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isFixturePath(p) {
				sub, err := l.scanStdImports(p, seen)
				if err != nil {
					return nil, err
				}
				std = append(std, sub...)
			} else if !seen[p] {
				seen[p] = true
				std = append(std, p)
			}
		}
	}
	return std, nil
}

// parseDir parses every .go file of the fixture package at importPath.
func (l *fixtureLoader) parseDir(importPath string) ([]*ast.File, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", importPath, dir)
	}
	return files, nil
}

// Import implements types.Importer over the fixture tree with std
// fallback.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isFixturePath(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if l.std == nil {
		return nil, fmt.Errorf("fixture import %q: no std importer", path)
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package, memoized.
func (l *fixtureLoader) load(importPath string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	files, err := l.parseDir(importPath)
	if err != nil {
		return nil, err
	}
	pkg, info, err := typecheck(l.fset, importPath, files, l)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", importPath, err)
	}
	p := &Package{ImportPath: importPath, Fset: l.fset, Files: files, Types: pkg, Info: info}
	l.cache[importPath] = p
	return p, nil
}
