package analysis

import (
	"go/ast"
	"go/types"
)

// The node-local apply contract (PR 5): a phase-2 handler — any method
// with the Receiver/Undeliverable shape, and a phase-1 Propose — runs on a
// parallel worker that owns exactly one node. It may touch its receiver
// protocol instance, the handled node, the restricted context
// (ApplyContext / Proposals), its own RNG and the message payload. It must
// not reach the engine (that is what ApplyContext deliberately hides),
// dereference another *Node (another worker may own it), or write
// package-level state (a cross-worker race and an ordering leak in one).
//
// Detection is structural: any function with a *sim.ApplyContext or
// *sim.Proposals parameter is a handler (the types are matched by name and
// defining-package name, so fixtures can model them). The package that
// defines ApplyContext — the engine itself — is exempt: its plumbing is
// the trusted side of the contract.
//
// Reads of package-level variables stay legal: the payload free lists are
// exactly that, shared pools with internally synchronized Get/Put. The
// analyzer bans writes (assignment, ++/--) whose target resolves to
// package scope.

// NodeLocal enforces the node-local handler contract on every function
// taking an ApplyContext or Proposals parameter.
var NodeLocal = &Analyzer{
	Name: "nodelocal",
	Doc: "flags apply/propose handlers that reach the engine, another node, " +
		"or package-level state instead of staying node-local",
	Run: runNodeLocal,
}

// simPackageName is the package name (not path) defining the engine types
// the analyzer matches structurally.
const simPackageName = "sim"

func runNodeLocal(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLegacyShape(pass, fd)
			h := classifyHandler(pass, fd)
			if h == nil {
				continue
			}
			h.check(fd)
		}
	}
}

// checkLegacyShape flags the pre-sharding handler signature: a method named
// Receive/Undelivered/Propose taking the whole *Engine. The interfaces are
// matched dynamically (sim.Protocol is untyped), so such a method still
// compiles — it just silently stops matching sim.Receiver and the protocol
// goes deaf. This subsumes the grep-guard the sim package used to carry.
func checkLegacyShape(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil {
		return
	}
	switch fd.Name.Name {
	case "Receive", "Undelivered", "Propose":
	default:
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !namedTypeIn(tv.Type, simPackageName, "Engine") || definedHere(pass, tv.Type) {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "legacy handler shape: %s takes *Engine and will not match the Receiver/Undeliverable/Proposer contracts; take the restricted context instead", fd.Name.Name)
		return
	}
}

// handler is one matched handler function under analysis.
type handler struct {
	pass *Pass
	kind string // "apply" or "propose"
	// allowedNodes are objects legitimately holding the handled node:
	// every *Node parameter plus locals derived from them.
	allowedNodes map[types.Object]bool
}

// classifyHandler matches fd against the handler shapes: a *ApplyContext
// parameter (apply-phase Receive/Undelivered) or a *Proposals parameter
// (propose phase). Functions in the package defining ApplyContext are the
// engine's own plumbing and exempt.
func classifyHandler(pass *Pass, fd *ast.FuncDecl) *handler {
	var kind string
	allowed := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		switch {
		case namedTypeIn(tv.Type, simPackageName, "ApplyContext"):
			kind = "apply"
			if definedHere(pass, tv.Type) {
				return nil
			}
		case namedTypeIn(tv.Type, simPackageName, "Proposals"):
			kind = "propose"
			if definedHere(pass, tv.Type) {
				return nil
			}
		case namedTypeIn(tv.Type, simPackageName, "Node"):
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					allowed[obj] = true
				}
			}
		}
	}
	if kind == "" {
		return nil
	}
	return &handler{pass: pass, kind: kind, allowedNodes: allowed}
}

// definedHere reports whether the named type (or pointee) is declared in
// the package under analysis.
func definedHere(pass *Pass, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Pkg() == pass.Pkg
	}
	return false
}

// check runs the three handler rules over the body.
func (h *handler) check(fd *ast.FuncDecl) {
	h.propagateNodeAliases(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			h.checkIdent(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				h.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			h.checkWrite(n.X)
		case *ast.CallExpr:
			h.checkCallResult(n)
		}
		return true
	})
}

// propagateNodeAliases extends allowedNodes with locals assigned directly
// from an allowed node object (`self := n`), iterating to a fixed point so
// chains of aliases resolve regardless of statement order.
func (h *handler) propagateNodeAliases(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				rObj := h.pass.Info.Uses[rid]
				if rObj == nil || !h.allowedNodes[rObj] {
					continue
				}
				lObj := h.pass.Info.Defs[lid]
				if lObj == nil {
					lObj = h.pass.Info.Uses[lid]
				}
				if lObj != nil && !h.allowedNodes[lObj] {
					h.allowedNodes[lObj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// checkIdent flags engine references and foreign-node references.
func (h *handler) checkIdent(id *ast.Ident) {
	obj := h.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	if _, isType := obj.(*types.TypeName); isType {
		return // naming the type (conversion, assertion) touches nothing
	}
	t := obj.Type()
	if namedTypeIn(t, simPackageName, "Engine") {
		h.pass.Reportf(id.Pos(), "%s handler references the engine (%s): handlers are node-local and see only their node and the %s context", h.kind, id.Name, h.kind)
		return
	}
	if namedTypeIn(t, simPackageName, "Node") && !h.allowedNodes[obj] {
		h.pass.Reportf(id.Pos(), "%s handler touches a node other than its own (%s): another worker may own it; exchange state via messages instead", h.kind, id.Name)
	}
}

// checkWrite flags stores whose target resolves to package-level state —
// in this package or, through a qualified identifier, any other.
func (h *handler) checkWrite(lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	var obj types.Object
	var name string
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if _, isPkg := h.pass.Info.Uses[x].(*types.PkgName); isPkg {
				obj = h.pass.Info.Uses[sel.Sel]
				name = x.Name + "." + sel.Sel.Name
			}
		}
	}
	if obj == nil {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj = h.pass.Info.Uses[root]
		if obj == nil {
			obj = h.pass.Info.Defs[root]
		}
		name = root.Name
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		h.pass.Reportf(lhs.Pos(), "%s handler writes package-level state (%s): handlers run on parallel workers; shared writes race and leak ordering into the trace", h.kind, name)
	}
}

// checkCallResult flags calls that yield a *Node: with the engine hidden,
// obtaining a node the handler was not given means reaching across the
// shard boundary.
func (h *handler) checkCallResult(call *ast.CallExpr) {
	tv, ok := h.pass.Info.Types[call]
	if !ok || tv.IsType() {
		return
	}
	if namedTypeIn(tv.Type, simPackageName, "Node") {
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			h.pass.Reportf(call.Pos(), "%s handler obtains a *Node from a call: handlers may touch only the node they were invoked on", h.kind)
		}
	}
}
