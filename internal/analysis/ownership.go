package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Payload ownership (PR 6): ownership of a payload transfers to the
// receiver on Send — Proposals.Send in the propose phase, ApplyContext.Send
// for reply legs — and the engine recycles every recyclable payload
// exactly once at cycle end. The two ways to break that silently:
//
//   - use-after-send: the sender keeps reading (or worse, mutating) the
//     payload it no longer owns — racing with the handler on another
//     worker, or double-recycling by sending the same pointer twice;
//   - a leaky Recycle: a pointer or slice field that Recycle does not
//     reset pins the previous cycle's data (and anything it references)
//     inside the free list, and a stale alias resurfaces in the next
//     payload handed out.
//
// The analyzer tracks the sent value's local variable — including plain
// aliases (`q := p`) — positionally: any use after the Send call in the
// same function is flagged unless the variable was reassigned in between.
// Scalar payloads (basic types) are exempt: value semantics make reuse
// harmless. The Recycle rule requires every direct reference-typed field
// (pointer, slice, map, chan, func, interface) of the receiver struct to
// be assigned somewhere in the method body (nil, or s[:0] to keep warm
// capacity), or the whole receiver to be reset with *r = T{...}.
//
// One field kind is exempt from the reset rule: a home-pool back-pointer,
// i.e. a field of type *sim.FreeList[...]. Generic payloads (PR 10) carry
// one because a generic type has no package-level pool per instantiation;
// the pointer must SURVIVE Recycle — resetting it to nil would orphan the
// payload on its next recycle — and it references only the process-shared
// pool, never a previous cycle's data, so keeping it pins nothing.
var Ownership = &Analyzer{
	Name: "ownership",
	Doc: "flags payload use-after-send (sent-exactly-once contract) and " +
		"Recycle methods that leave reference fields unreset",
	Run: runOwnership,
}

func runOwnership(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterSend(pass, fd)
			checkRecycle(pass, fd)
		}
	}
}

// isPayloadSend matches ax.Send / px.Send calls (ApplyContext or Proposals
// receiver, by name) and returns the payload argument.
func isPayloadSend(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" || len(call.Args) == 0 {
		return nil, false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return nil, false
	}
	if !namedTypeIn(tv.Type, simPackageName, "ApplyContext") && !namedTypeIn(tv.Type, simPackageName, "Proposals") {
		return nil, false
	}
	return call.Args[len(call.Args)-1], true
}

// checkUseAfterSend flags reads or writes of a sent payload variable (or
// an alias of it) after the Send call.
func checkUseAfterSend(pass *Pass, fd *ast.FuncDecl) {
	type send struct {
		end token.Pos
		obj types.Object
	}
	var sends []send
	aliases := map[types.Object]map[types.Object]bool{} // obj -> group (shared map)
	group := func(o types.Object) map[types.Object]bool {
		g, ok := aliases[o]
		if !ok {
			g = map[types.Object]bool{o: true}
			aliases[o] = g
		}
		return g
	}
	// reassigned[obj] lists positions where the variable is wholesale
	// replaced — a use after that point refers to a new payload.
	reassigned := map[types.Object][]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if payload, ok := isPayloadSend(pass, n); ok {
				if id := rootIdent(ast.Unparen(payload)); id != nil {
					if obj := pass.Info.Uses[id]; obj != nil && trackedPayload(obj.Type()) {
						sends = append(sends, send{end: n.End(), obj: obj})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lObj := pass.Info.Defs[lid]
				if lObj == nil {
					lObj = pass.Info.Uses[lid]
				}
				if lObj == nil {
					continue
				}
				reassigned[lObj] = append(reassigned[lObj], lid.Pos())
				// Alias tracking: `q := p` / `q = p` joins the groups.
				if len(n.Rhs) == len(n.Lhs) {
					if rid, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok {
						if rObj := pass.Info.Uses[rid]; rObj != nil && trackedPayload(rObj.Type()) {
							g := group(rObj)
							for o := range group(lObj) {
								g[o] = true
								aliases[o] = g
							}
							aliases[lObj] = g
						}
					}
				}
			}
		}
		return true
	})
	if len(sends) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, s := range sends {
			if id.Pos() <= s.end || !group(s.obj)[obj] {
				continue
			}
			// A wholesale reassignment between the send and this use means
			// the variable holds a fresh payload now.
			renewed := false
			for _, rp := range reassigned[obj] {
				if rp > s.end && rp <= id.Pos() {
					renewed = true
					break
				}
			}
			// Note `p = fresh` excuses its own LHS too: the LHS position is
			// recorded as a reassignment at exactly id.Pos(), and a `:=`
			// LHS never appears in Uses at all.
			if renewed {
				continue
			}
			pass.Reportf(id.Pos(), "payload %s used after Send: ownership transferred to the receiver (sent-exactly-once; a reused pointer double-recycles)", id.Name)
			return true
		}
		return true
	})
}

// trackedPayload reports whether a sent value of this type is worth
// tracking: anything but a plain scalar (basic types have value semantics;
// reusing them after send is harmless).
func trackedPayload(t types.Type) bool {
	if t == nil {
		return false
	}
	_, basic := t.Underlying().(*types.Basic)
	return !basic
}

// checkRecycle enforces the reset rule on Recycle methods: every direct
// reference-typed field of the receiver struct must be assigned in the
// body.
func checkRecycle(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "Recycle" || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() != 0 {
		return
	}
	recvField := fd.Recv.List[0]
	tv, ok := pass.Info.Types[recvField.Type]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	var recvObj types.Object
	if len(recvField.Names) == 1 {
		recvObj = pass.Info.Defs[recvField.Names[0]]
	}
	if recvObj == nil {
		// Unnamed receiver cannot reset anything; report every reference
		// field below via the empty assigned set.
		recvObj = types.NewVar(token.NoPos, nil, "", t)
	}

	assigned := map[string]bool{}
	fullReset := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			lhs = ast.Unparen(lhs)
			if star, ok := lhs.(*ast.StarExpr); ok {
				if id, ok := ast.Unparen(star.X).(*ast.Ident); ok && pass.Info.Uses[id] == recvObj {
					fullReset = true // *r = T{}
				}
				continue
			}
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.Uses[id] == recvObj {
					assigned[sel.Sel.Name] = true
				}
			}
		}
		return true
	})
	if fullReset {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !referenceType(f.Type()) || assigned[f.Name()] {
			continue
		}
		// Home-pool back-pointers are exempt (and must survive the reset):
		// they reference the payload's own free list, not cycle data.
		if namedTypeIn(f.Type(), simPackageName, "FreeList") {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "Recycle leaves reference field %s unreset: a recycled payload pins the previous cycle's %s (reset slices to [:0], nil everything else)", f.Name(), f.Name())
	}
}

// referenceType reports whether values of t can alias other memory:
// pointers, slices, maps, chans, funcs and interfaces.
func referenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
