package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The strict-spectator contract (PR 7): the observability layer renders
// progress and statistics without perturbing a run — no engine RNG draw,
// no engine mutation, no lock shared with the hot path. Two code regions
// carry the contract:
//
//   - the spectator packages (internal/obs): may hold engine references
//     only to read — calling anything outside the read-only allowlist of
//     Engine/Node methods, or writing through an Engine/Node-typed
//     expression, is a violation;
//   - the Stats() closure inside the engine package itself: Engine.Stats
//     is documented as safe to call from any goroutine concurrently with
//     RunCycle, so Stats and everything it reaches (same-package static
//     calls) must only load — an assignment to engine or node state, an
//     atomic Store/Add/Swap, or a channel send there is a data race
//     shipped to every concurrent reader.
var Spectator = &Analyzer{
	Name: "spectator",
	Doc: "flags engine/node mutation from the observability layer and from " +
		"the Engine.Stats read path",
	Run: runSpectator,
}

// spectatorPackageFragments marks the packages bound to the spectator
// contract.
var spectatorPackageFragments = []string{"internal/obs"}

// readOnlyEngineMethods are the Engine methods a spectator may call: pure
// counter/configuration reads. Notably absent: RNG (drawing from the
// engine stream perturbs the trace), AddNode/Crash/Revive/RunCycle/Close
// (mutations), Node (hands out mutable node state).
var readOnlyEngineMethods = map[string]bool{
	"Stats": true, "LiveCount": true, "Size": true, "Cycle": true,
	"Evals": true, "Delivered": true, "Dropped": true,
	"Workers": true, "ApplyWorkers": true, "String": true,
}

// readOnlyNodeMethods are the Node methods a spectator may call.
var readOnlyNodeMethods = map[string]bool{"Protocol": true, "String": true}

func runSpectator(pass *Pass) {
	if pkgPathContains(pass.Pkg.Path(), spectatorPackageFragments...) {
		for _, file := range pass.Files {
			checkSpectatorRegion(pass, file, "spectator package")
		}
	}
	checkStatsPath(pass)
}

// checkSpectatorRegion walks one region bound to the contract and flags
// engine/node mutation.
func checkSpectatorRegion(pass *Pass, root ast.Node, region string) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkSpectatorCall(pass, n, region)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkSpectatorWrite(pass, lhs, region)
			}
		case *ast.IncDecStmt:
			checkSpectatorWrite(pass, n.X, region)
		case *ast.SendStmt:
			// A channel send from the stats path can rendezvous with the
			// hot loop; flag it in the Stats closure region only — the
			// spectator packages use channels internally (progress
			// ticker) without engine involvement.
			if region != "spectator package" {
				pass.Reportf(n.Pos(), "channel send on the %s: the read path must not rendezvous with the hot loop", region)
			}
		}
		return true
	})
}

// checkSpectatorCall flags method calls on Engine/Node values outside the
// read-only allowlists, plus atomic mutation on the Stats path.
func checkSpectatorCall(pass *Pass, call *ast.CallExpr, region string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if region != "spectator package" && isAtomicMutator(pass, sel) {
		pass.Reportf(call.Pos(), "%s mutates an atomic (%s): Engine.Stats and its callees must only load", region, name)
		return
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return
	}
	// On the Stats path the allowlist does not apply: same-package callees
	// are followed by the BFS and judged by their bodies. In the spectator
	// packages the allowlist is the whole contract.
	switch {
	case namedTypeIn(tv.Type, simPackageName, "Engine"):
		if region == "spectator package" && !readOnlyEngineMethods[name] {
			pass.Reportf(call.Pos(), "%s calls Engine.%s: spectators may only read (allowlist: Stats, LiveCount, Size, Cycle, Evals, Delivered, Dropped, Workers, ApplyWorkers, String)", region, name)
		}
	case namedTypeIn(tv.Type, simPackageName, "Node"):
		if region == "spectator package" && !readOnlyNodeMethods[name] {
			pass.Reportf(call.Pos(), "%s calls Node.%s: spectators may only read node state", region, name)
		}
	}
}

// isAtomicMutator recognizes mutating sync/atomic operations in both
// spellings: methods on the atomic types (x.Store, x.Add, ...) and the
// package-level functions (atomic.StoreInt64, atomic.AddUint32, ...).
func isAtomicMutator(pass *Pass, sel *ast.SelectorExpr) bool {
	if !atomicMutatorName(sel.Sel.Name) {
		return false
	}
	if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[x].(*types.PkgName); ok {
			return pn.Imported().Path() == "sync/atomic"
		}
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicMutatorName matches the mutating operation names by prefix, which
// covers the method forms exactly and the typed function forms
// (StoreInt64, CompareAndSwapPointer, ...).
func atomicMutatorName(name string) bool {
	for _, p := range []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkSpectatorWrite flags stores whose target reaches through an Engine-
// or Node-typed expression anywhere along the selector chain — `e.cycles`,
// `r.eng.Cycles`, `n.Alive` all count; overwriting a plain local pointer
// variable does not.
func checkSpectatorWrite(pass *Pass, lhs ast.Expr, region string) {
	expr := ast.Unparen(lhs)
	for {
		var base ast.Expr
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		default:
			return
		}
		if tv, ok := pass.Info.Types[base]; ok {
			if namedTypeIn(tv.Type, simPackageName, "Engine") {
				pass.Reportf(lhs.Pos(), "%s writes engine state: the contract is read-only", region)
				return
			}
			if namedTypeIn(tv.Type, simPackageName, "Node") {
				pass.Reportf(lhs.Pos(), "%s writes node state: the contract is read-only", region)
				return
			}
		}
		expr = ast.Unparen(base)
	}
}

// checkStatsPath applies the spectator rules to Engine.Stats and every
// same-package function it (transitively, statically) calls — but only in
// a package that actually defines an Engine with a Stats method (the sim
// package or a fixture modeling it).
func checkStatsPath(pass *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Recv != nil && fd.Name.Name == "Stats" && len(fd.Recv.List) == 1 {
				if tv, ok := pass.Info.Types[fd.Recv.List[0].Type]; ok && namedTypeIn(tv.Type, simPackageName, "Engine") && pass.Pkg.Name() == simPackageName {
					roots = append(roots, fn)
				}
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	// BFS over same-package static calls.
	visited := map[*types.Func]bool{}
	queue := roots
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fd := decls[fn]
		if fd == nil {
			continue
		}
		checkSpectatorRegion(pass, fd.Body, "Engine.Stats path")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
				if _, hasBody := decls[callee]; hasBody && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
}
