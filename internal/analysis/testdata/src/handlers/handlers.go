// Package handlers is the nodelocal-analyzer fixture: protocol handlers
// built against the modeled sim package, some honoring the node-local
// contract and some reaching where handlers must not.
package handlers

import "internal/sim"

// maxPeers is read-only package state: reads stay legal (the free-list
// pools are exactly this shape).
var maxPeers = 8

// deliveries is written below — the violation.
var deliveries int

type Counter struct {
	seen int
}

// Receive stays node-local: receiver state, own node (through an alias),
// the context, the message.
func (c *Counter) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	c.seen++
	self := n
	if self.Alive && c.seen < maxPeers {
		ax.Send(msg.From, msg.Slot, nil)
	}
}

// Undelivered writes package-level state from a parallel worker.
func (c *Counter) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	deliveries++ // want "writes package-level state"
}

// Propose obtains a *Node from a call: reaching across the shard.
func (c *Counter) Propose(n *sim.Node, px *sim.Proposals) {
	_ = lookup(n.ID) // want "handler obtains a"
}

func lookup(id sim.NodeID) *sim.Node { return nil }

type EngineHolder struct {
	eng *sim.Engine
}

// Receive reaches the engine through a struct field.
func (h *EngineHolder) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	h.eng.Crash(msg.From) // want "references the engine"
}

type Legacy struct{}

// Receive takes the whole engine — the pre-sharding signature the dynamic
// protocol match would silently ignore.
func (l *Legacy) Receive(n *sim.Node, e *sim.Engine, msg sim.Message) { // want "legacy handler shape"
	_ = n
}

type Buddy struct {
	other *sim.Node
}

// Receive dereferences a node it was not invoked on.
func (b *Buddy) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	b.other.Alive = false // want "touches a node other than its own"
}
