// Package gossip is the determinism-analyzer fixture: its import path
// contains "internal/gossip", so it counts as trace-affecting.
package gossip

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

type table struct {
	peers map[int64]float64
}

func touch(id int64) {}

// Ambient sources are flagged outright.
func ambient() {
	_ = time.Now()        // want "time.Now"
	_ = rand.Intn(4)      // want "process-global"
	_ = os.Getenv("SEED") // want "os.Getenv"
}

// A waiver with analyzer and reason suppresses the finding.
func waived() time.Time {
	//simcheck:allow determinism boot banner timestamp never reaches the trace
	return time.Now()
}

// Hygiene: a reasonless waiver suppresses nothing and is itself reported.
func reasonless() {
	// want+1 "needs a reason"
	//simcheck:allow determinism
	_ = time.Now() // want "time.Now"
}

// Hygiene: a waiver naming an unknown analyzer is a typo.
func mistyped() {
	// want+1 "unknown analyzer"
	//simcheck:allow determinsm typo in the analyzer name
	_ = 1
}

// Hygiene: a waiver that suppresses nothing is stale.
func stale() {
	// want+1 "unused simcheck:allow"
	//simcheck:allow determinism nothing here needs waiving
	x := 1
	_ = x
}

// Float accumulation over map order drifts in the last ulp run to run.
func sumFloats(t *table) float64 {
	var total float64
	for _, w := range t.peers {
		total += w // want "non-integer accumulation"
	}
	return total
}

// Collecting keys without sorting leaks map order into whatever consumes
// the slice.
func collectNoSort(t *table) []int64 {
	var ids []int64
	for id := range t.peers { // want "without a subsequent sort"
		ids = append(ids, id)
	}
	return ids
}

// The collect-then-sort idiom is the approved fix.
func collectThenSort(t *table) []int64 {
	var ids []int64
	for id := range t.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// A waiver on the range line covers an append the analyzer cannot prove
// sorted.
func collectWaived(t *table) []int64 {
	var ids []int64
	//simcheck:allow determinism consumer treats ids as an unordered set
	for id := range t.peers {
		ids = append(ids, id)
	}
	return ids
}

// Integer counting, constant flag stores and blank discards are
// order-insensitive.
func countAndFlag(t *table) (int, bool) {
	n := 0
	found := false
	for id, w := range t.peers {
		n++
		if w > 0.5 {
			found = true
		}
		_ = id
	}
	return n, found
}

// Per-key deletes have set semantics.
func rebuild(t *table, alive map[int64]bool) {
	for id := range t.peers {
		if !alive[id] {
			delete(t.peers, id)
		}
	}
}

// A channel send forwards elements in iteration order.
func drain(t *table, ch chan int64) {
	for id := range t.peers {
		ch <- id // want "leaks iteration order"
	}
}

// Calling out of the loop body can act in iteration order.
func visit(t *table) {
	for id := range t.peers {
		touch(id) // want "call may act in iteration order"
	}
}

// A plain store to an outer variable keeps whichever element iterated
// last.
func pickAny(t *table) int64 {
	var last int64
	for id := range t.peers {
		last = id // want "last-iteration-wins"
	}
	return last
}
