// Package obs is the spectator-analyzer fixture for the spectator-package
// scope: its import path contains "internal/obs", so every engine/node
// touch outside the read-only allowlist is a violation.
package obs

import "internal/sim"

type Reporter struct {
	eng *sim.Engine
}

// Snapshot reads through the allowlist: legal.
func (r *Reporter) Snapshot() (sim.EngineStats, int) {
	return r.eng.Stats(), r.eng.LiveCount()
}

// Meddle calls mutating and trace-perturbing engine methods.
func (r *Reporter) Meddle(id sim.NodeID) {
	r.eng.Crash(id) // want "calls Engine.Crash"
	_ = r.eng.RNG() // want "calls Engine.RNG"
}

// Scribble writes engine state through a field chain.
func (r *Reporter) Scribble() {
	r.eng.Cycles = 0 // want "writes engine state"
}

// Poke mutates a node; String is allowlisted.
func (r *Reporter) Poke(n *sim.Node) {
	n.Alive = true // want "writes node state"
	_ = n.String()
}
