// Package sim models the engine surface the analyzers match structurally:
// just enough of Node, ApplyContext, Proposals and Engine for the fixture
// packages to compile. The analyzers identify these types by package NAME
// and type name, so this stand-in exercises exactly the same code paths as
// the real internal/sim.
package sim

// NodeID identifies a node.
type NodeID int64

// Message is one delivered exchange message.
type Message struct {
	From, To NodeID
	Slot     int
	Data     any
}

// Node is one simulated node.
type Node struct {
	ID    NodeID
	Alive bool
}

// String renders the node.
func (n *Node) String() string { return "node" }

// Protocol returns the protocol instance in a slot.
func (n *Node) Protocol(slot int) any { return nil }

// ApplyContext is the restricted per-node context of the apply phase.
type ApplyContext struct {
	engine *Engine
}

// Send hands a payload to the engine for delivery; ownership transfers.
func (ax *ApplyContext) Send(to NodeID, slot int, data any) {}

// Cycle returns the current cycle.
func (ax *ApplyContext) Cycle() int64 { return 0 }

// Proposals is the restricted per-node context of the propose phase.
type Proposals struct{}

// FreeList is a typed payload free list (home-pool back-pointer fields of
// this type are exempt from the Recycle reset rule).
type FreeList[T any] struct{ items []*T }

// Get returns a recycled or fresh payload.
func (f *FreeList[T]) Get() *T { return new(T) }

// Put returns a payload to the list.
func (f *FreeList[T]) Put(p *T) { f.items = append(f.items, p) }

// Send proposes a payload for delivery; ownership transfers.
func (px *Proposals) Send(to NodeID, slot int, data any) {}

// EngineStats is a read-only snapshot of engine counters.
type EngineStats struct {
	Cycle int64
	Live  int
}

// Engine drives the simulation.
type Engine struct {
	Cycles int64
	nodes  []*Node
}

// Stats snapshots the counters.
func (e *Engine) Stats() EngineStats { return EngineStats{Cycle: e.Cycles} }

// LiveCount counts live nodes.
func (e *Engine) LiveCount() int { return len(e.nodes) }

// Node returns a node by id.
func (e *Engine) Node(id NodeID) *Node { return nil }

// Crash kills a node.
func (e *Engine) Crash(id NodeID) {}

// RNG draws from the engine stream.
func (e *Engine) RNG() int64 { return 0 }

// dispatch has the handler shape (an *ApplyContext parameter) but lives in
// the package defining ApplyContext, so the nodelocal analyzer must exempt
// it: this is the trusted plumbing side of the contract.
func dispatch(n *Node, ax *ApplyContext, e *Engine) {
	e.Cycles++
	_ = n
	_ = ax
}
