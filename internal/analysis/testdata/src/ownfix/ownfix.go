// Package ownfix is the ownership-analyzer fixture: use-after-send in its
// direct, aliased and double-send forms, the renewal and scalar escapes,
// and Recycle methods both leaky and clean.
package ownfix

import "internal/sim"

type Payload struct {
	N    int
	Buf  []byte
	Next *Payload
}

// Recycle resets every reference field: clean.
func (p *Payload) Recycle() {
	p.N = 0
	p.Buf = p.Buf[:0]
	p.Next = nil
}

// direct keeps mutating a payload it no longer owns.
func direct(ax *sim.ApplyContext, to sim.NodeID) {
	p := &Payload{N: 1}
	ax.Send(to, 0, p)
	p.N = 2 // want "used after Send"
}

// aliased reaches the sent payload through a second name.
func aliased(ax *sim.ApplyContext, to sim.NodeID) {
	p := &Payload{}
	q := p
	ax.Send(to, 0, p)
	q.Next = nil // want "used after Send"
}

// double sends the same pointer twice: the second send double-recycles.
func double(px *sim.Proposals, to sim.NodeID) {
	p := &Payload{}
	px.Send(to, 0, p)
	px.Send(to, 1, p) // want "used after Send"
}

// renewed replaces the variable with a fresh payload between sends: legal.
func renewed(ax *sim.ApplyContext, to sim.NodeID) {
	p := &Payload{}
	ax.Send(to, 0, p)
	p = &Payload{}
	ax.Send(to, 1, p)
}

// scalar payloads have value semantics; reuse is harmless.
func scalar(px *sim.Proposals, to sim.NodeID) {
	n := 42
	px.Send(to, 0, n)
	_ = n
}

type Leaky struct {
	ID   int64
	Refs []*Payload
	Peer *Payload
}

// Recycle forgets Peer: the recycled payload pins last cycle's data.
func (l *Leaky) Recycle() { // want "leaves reference field Peer unreset"
	l.Refs = l.Refs[:0]
}

type Blanked struct {
	Data []byte
}

// Recycle by wholesale reset is clean.
func (b *Blanked) Recycle() {
	*b = Blanked{}
}

type Homed struct {
	Buf  []byte
	home *sim.FreeList[Homed]
}

// Recycle keeps the home-pool back-pointer across a field-wise reset:
// clean — the exemption for *sim.FreeList fields, which must survive so
// the payload can find its pool on the next recycle.
func (h *Homed) Recycle() {
	h.Buf = h.Buf[:0]
	h.home.Put(h)
}

type HomedLeaky struct {
	Peer *Payload
	home *sim.FreeList[HomedLeaky]
}

// Recycle keeps home (exempt) but also forgets Peer: still flagged — the
// exemption is per-field, not a blanket pass for pooled payloads.
func (h *HomedLeaky) Recycle() { // want "leaves reference field Peer unreset"
	h.home.Put(h)
}
