// Package plain is outside every trace-affecting package fragment, so the
// determinism analyzer must stay silent here even on patterns it would
// flag elsewhere.
package plain

import "time"

func unordered(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func clock() time.Time { return time.Now() }
