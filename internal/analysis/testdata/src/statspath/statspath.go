// Package sim (at fixture path statspath) models the engine package for
// the spectator analyzer's Stats-path scope: Engine.Stats and everything
// it reaches through same-package static calls must only load.
package sim

import "sync/atomic"

type EngineStats struct {
	Cycle int64
}

type Engine struct {
	cycles  int64
	sampled atomic.Int64
	legacy  int64
	wake    chan struct{}
}

// Stats reads counters but also calls three mutating helpers; each helper
// is flagged where it mutates.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{Cycle: e.cycles}
	e.bump()
	e.note()
	e.mark()
	e.signal()
	return s
}

func (e *Engine) bump() {
	e.cycles++ // want "writes engine state"
}

func (e *Engine) note() {
	e.sampled.Store(1) // want "mutates an atomic"
}

func (e *Engine) mark() {
	atomic.StoreInt64(&e.legacy, 1) // want "mutates an atomic"
}

func (e *Engine) signal() {
	e.wake <- struct{}{} // want "channel send"
}

// unreached mutates too, but Stats never calls it: the BFS must not flag
// functions off the path.
func (e *Engine) unreached() {
	e.cycles = 0
}
