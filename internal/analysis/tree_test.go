package analysis

import "testing"

// TestTreeClean runs the full suite over every trace-affecting and
// spectator package of the real tree and requires zero diagnostics: every
// violation is either fixed or carries an explained //simcheck:allow
// waiver. This is the in-repo twin of the CI `go vet -vettool=simcheck`
// step, so `go test ./internal/analysis` alone catches a contract drift.
func TestTreeClean(t *testing.T) {
	pkgs, err := Load("../..", "./internal/...", "./cmd/...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("expected the tree to list at least 5 packages, got %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags := RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, All())
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
