package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
)

// The `go vet -vettool` side of the suite. The go command drives a vettool
// one compilation unit at a time: it writes a JSON .cfg file describing the
// unit (sources, import map, export-data files for every dependency) and
// invokes the tool with that path as its sole argument. Dependency units
// arrive with VetxOnly set and only need their facts file written; target
// units are parsed, type-checked against the gc export data the go command
// already produced, and analyzed. This mirrors what
// golang.org/x/tools/go/analysis/unitchecker does, on the standard library
// alone.

// vetConfig is the subset of the go command's vet configuration file the
// driver needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit executes the full analyzer suite over one `go vet`
// compilation unit described by the .cfg file at cfgPath, returning the
// surviving diagnostics. Dependency units (VetxOnly) and units whose
// type-check failure the go command asked to tolerate return no
// diagnostics and no error.
func RunVetUnit(cfgPath string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	// The go command expects a facts file for every unit, dependencies
	// included; the suite carries no cross-package facts, so an empty file
	// satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerName := cfg.Compiler
	if compilerName == "" {
		compilerName = "gc"
	}
	compiler := importer.ForCompiler(fset, compilerName, func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	pkg, info, err := typecheck(fset, cfg.ImportPath, files, &exportImporter{compiler: compiler, importMap: cfg.ImportMap})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return RunAnalyzers(fset, files, pkg, info, All()), nil
}
