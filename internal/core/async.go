package core

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/overlay"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
	"gossipopt/internal/vec"
)

// The asynchronous network runs the identical three services on the
// event-driven engine: evaluations take (jittered) wall-clock time,
// Newscast exchanges and best-point gossip travel as messages subject to a
// LinkModel's latency and loss. It validates that the cycle-driven results
// are not artifacts of lock-step execution — the paper's deployment target
// is, after all, fully asynchronous.

// AsyncConfig describes an event-driven deployment. Times are in abstract
// simulated units (think milliseconds).
type AsyncConfig struct {
	// Nodes, Particles, GossipEvery, ViewSize: as in Config.
	Nodes       int
	Particles   int
	GossipEvery int
	ViewSize    int
	Function    funcs.Function
	Dim         int
	Seed        uint64
	// SolverFactory overrides the default PSO swarm.
	SolverFactory solver.Factory
	// EvalTime is the mean duration of one objective evaluation; each
	// evaluation is jittered ±20 % so nodes naturally desynchronize.
	EvalTime float64
	// NewscastPeriod is the wall-clock interval between view exchanges
	// (the paper suggests 10–60 s real time; scale freely).
	NewscastPeriod float64
	// Link models message latency and loss (nil: 0.1–1.0 time-unit
	// latency, no loss).
	Link sim.LinkModel
}

func (c AsyncConfig) withDefaults() AsyncConfig {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Particles == 0 {
		c.Particles = 16
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = c.Particles
	}
	if c.ViewSize == 0 {
		c.ViewSize = 20
	}
	if c.Function.Eval == nil {
		c.Function = funcs.Sphere
	}
	if c.EvalTime == 0 {
		c.EvalTime = 1
	}
	if c.NewscastPeriod == 0 {
		c.NewscastPeriod = 10
	}
	if c.Link == nil {
		c.Link = sim.UniformLink{MinDelay: 0.1, MaxDelay: 1}
	}
	return c
}

// Message types of the asynchronous protocol. The tick timers carry the
// node's restart generation: a crashed node's in-flight tick can outlive
// the crash (queued events are only dropped if delivered while the node is
// dead), and without the generation check such a stale tick arriving after
// a Revive would resume the old chain alongside the freshly armed one,
// doubling the node's eval rate for the rest of the run.
type (
	evalTick     struct{ gen int }
	newscastTick struct{ gen int }
	viewPush     struct {
		From sim.NodeID
		View []overlay.Descriptor
	}
	viewReply struct {
		View []overlay.Descriptor
	}
	bestPush struct {
		From sim.NodeID
		X    []float64
		F    float64
	}
	bestReply struct {
		X []float64
		F float64
	}
)

// asyncNode is the per-node handler: solver + view + counters.
type asyncNode struct {
	net    *AsyncNetwork
	id     sim.NodeID
	view   *overlay.View
	solver solver.Solver

	sinceGossip int
	// gen is the restart generation; ticks from older generations are
	// stale and must not re-arm their chains.
	gen int

	// Metrics.
	Evals     int64
	Exchanges int64
	Adoptions int64
}

// stamp converts engine time into a logical Newscast timestamp.
func stamp(e *sim.EventEngine) int64 { return int64(e.Now() * 1024) }

// Deliver implements sim.Handler.
func (a *asyncNode) Deliver(n *sim.Node, msg any, e *sim.EventEngine) {
	switch m := msg.(type) {
	case evalTick:
		if m.gen != a.gen {
			return // stale pre-crash timer; the revived chain already runs
		}
		a.solver.EvalOne()
		a.Evals++
		a.sinceGossip++
		if a.sinceGossip >= a.net.cfg.GossipEvery {
			a.sinceGossip = 0
			a.gossipBest(n, e)
		}
		jitter := 0.8 + 0.4*n.RNG.Float64()
		e.SendAfter(a.net.cfg.EvalTime*jitter, a.id, evalTick{gen: a.gen})

	case newscastTick:
		if m.gen != a.gen {
			return
		}
		if peer, ok := a.samplePeer(n.RNG); ok {
			view := append(a.view.Descriptors(),
				overlay.Descriptor{ID: a.id, Stamp: stamp(e)})
			e.Send(a.id, peer, viewPush{From: a.id, View: view})
		}
		e.SendAfter(a.net.cfg.NewscastPeriod, a.id, newscastTick{gen: a.gen})

	case viewPush:
		// Reply with our own view before merging theirs (symmetric
		// exchange over two messages).
		mine := append(a.view.Descriptors(),
			overlay.Descriptor{ID: a.id, Stamp: stamp(e)})
		e.Send(a.id, m.From, viewReply{View: mine})
		a.view.Merge(a.id, m.View)

	case viewReply:
		a.view.Merge(a.id, m.View)

	case bestPush:
		if a.solver.Inject(m.X, m.F) {
			a.Adoptions++
		}
		if x, f := a.solver.Best(); x != nil && f < m.F {
			e.Send(a.id, m.From, bestReply{X: vec.Clone(x), F: f})
		}

	case bestReply:
		if a.solver.Inject(m.X, m.F) {
			a.Adoptions++
		}
	}
}

func (a *asyncNode) samplePeer(r *rng.RNG) (sim.NodeID, bool) {
	ids := a.view.IDs()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[r.Intn(len(ids))], true
}

func (a *asyncNode) gossipBest(n *sim.Node, e *sim.EventEngine) {
	peer, ok := a.samplePeer(n.RNG)
	if !ok {
		return
	}
	x, f := a.solver.Best()
	if x == nil {
		return
	}
	a.Exchanges++
	e.Send(a.id, peer, bestPush{From: a.id, X: vec.Clone(x), F: f})
}

// AsyncNetwork is a running event-driven deployment.
type AsyncNetwork struct {
	cfg   AsyncConfig
	eng   *sim.EventEngine
	nodes []*asyncNode
}

// NewAsyncNetwork wires an event-driven network: every node gets a solver,
// a bootstrapped view, and staggered eval/newscast timers.
func NewAsyncNetwork(cfg AsyncConfig) *AsyncNetwork {
	cfg = cfg.withDefaults()
	eng := sim.NewEventEngine(cfg.Seed, cfg.Link)
	net := &AsyncNetwork{cfg: cfg, eng: eng}

	mk := cfg.SolverFactory
	if mk == nil {
		mk = func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return pso.New(f, dim, cfg.Particles, cfg.PSOConfig(), r)
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		a := &asyncNode{net: net}
		n := eng.AddNode(a)
		a.id = n.ID
		a.view = overlay.NewView(cfg.ViewSize)
		a.solver = mk(cfg.Function, cfg.Dim, int64(n.ID), n.RNG.Split())
		net.nodes = append(net.nodes, a)
	}
	// Bootstrap views with up to ViewSize random other nodes.
	r := eng.RNG()
	for _, a := range net.nodes {
		k := cfg.ViewSize
		if k > cfg.Nodes-1 {
			k = cfg.Nodes - 1
		}
		for _, idx := range r.Sample(cfg.Nodes-1, k) {
			j := idx
			if sim.NodeID(j) >= a.id {
				j++
			}
			a.view.Insert(a.id, overlay.Descriptor{ID: sim.NodeID(j), Stamp: 0})
		}
	}
	// Stagger timers so nodes do not tick in lockstep.
	for _, a := range net.nodes {
		eng.SendAfter(r.Float64()*cfg.EvalTime, a.id, evalTick{})
		eng.SendAfter(r.Float64()*cfg.NewscastPeriod, a.id, newscastTick{})
	}
	return net
}

// PSOConfig returns the PSO configuration used by the default factory
// (zero value: canonical convergent parameters).
func (c AsyncConfig) PSOConfig() pso.Config { return pso.Config{} }

// Engine exposes the underlying event engine.
func (net *AsyncNetwork) Engine() *sim.EventEngine { return net.eng }

// RunFor advances simulated time by dt (bounded by maxEvents deliveries).
func (net *AsyncNetwork) RunFor(dt float64, maxEvents int64) {
	net.eng.RunUntil(net.eng.Now()+dt, maxEvents)
}

// TotalEvals sums evaluations across all nodes.
func (net *AsyncNetwork) TotalEvals() int64 {
	var t int64
	for _, a := range net.nodes {
		t += a.Evals
	}
	return t
}

// GlobalBest returns the best point known to any live node.
func (net *AsyncNetwork) GlobalBest() (BestPoint, bool) {
	best := BestPoint{F: math.Inf(1)}
	found := false
	for _, a := range net.nodes {
		if n := net.eng.Node(a.id); n == nil || !n.Alive {
			continue
		}
		if x, f := a.solver.Best(); x != nil && f < best.F {
			best = BestPoint{X: x, F: f}
			found = true
		}
	}
	return best, found
}

// Quality returns f(best) − f(x*), infinity before any evaluation.
func (net *AsyncNetwork) Quality() float64 {
	b, ok := net.GlobalBest()
	if !ok {
		return math.Inf(1)
	}
	return b.F - net.cfg.Function.OptimumValue
}

// Crash kills node i (0-based), as a real host failure: its timers and
// queued messages are silently dropped.
func (net *AsyncNetwork) Crash(i int) {
	if i >= 0 && i < len(net.nodes) {
		net.eng.Crash(net.nodes[i].id)
	}
}

// Revive restarts node i after a crash: the node is marked live again and
// its eval/newscast timers are re-armed (they died with the node — a
// crashed host's pending events were dropped at delivery). Solver state
// survives the outage, like a process restarting from a checkpoint.
func (net *AsyncNetwork) Revive(i int) {
	if i < 0 || i >= len(net.nodes) {
		return
	}
	a := net.nodes[i]
	n := net.eng.Node(a.id)
	if n == nil || n.Alive {
		return
	}
	// Invalidate any pre-crash tick still in flight before arming new
	// chains, so the node cannot end up with two.
	a.gen++
	net.eng.Revive(a.id)
	net.eng.SendAfter(net.cfg.EvalTime, a.id, evalTick{gen: a.gen})
	net.eng.SendAfter(net.cfg.NewscastPeriod, a.id, newscastTick{gen: a.gen})
}

// LiveCount returns the number of live nodes.
func (net *AsyncNetwork) LiveCount() int {
	live := 0
	for _, a := range net.nodes {
		if n := net.eng.Node(a.id); n != nil && n.Alive {
			live++
		}
	}
	return live
}

// Size returns the total node count.
func (net *AsyncNetwork) Size() int { return len(net.nodes) }

// Metrics sums coordination counters across live nodes.
func (net *AsyncNetwork) Metrics() Metrics {
	var m Metrics
	for _, a := range net.nodes {
		if n := net.eng.Node(a.id); n == nil || !n.Alive {
			continue
		}
		m.Exchanges += a.Exchanges
		m.Adoptions += a.Adoptions
	}
	return m
}
