package core

import (
	"math"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/sim"
)

func TestAsyncSingleNodeConverges(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 1, Particles: 16, Function: funcs.Sphere, Seed: 1,
	})
	net.RunFor(40000, 1<<22)
	if q := net.Quality(); q > 1e-8 {
		t.Fatalf("quality %g after 40k time units (%d evals)", q, net.TotalEvals())
	}
}

func TestAsyncEvalsAccumulate(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 8, Particles: 8, Function: funcs.Sphere, Seed: 2, EvalTime: 1,
	})
	net.RunFor(1000, 1<<22)
	// 8 nodes × ~1000 evals (±20 % jitter).
	got := net.TotalEvals()
	if got < 6000 || got > 11000 {
		t.Fatalf("TotalEvals = %d, want ≈ 8000", got)
	}
}

func TestAsyncGossipDiffuses(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 16, Particles: 8, GossipEvery: 8,
		Function: funcs.Sphere, Seed: 3,
	})
	net.RunFor(4000, 1<<22)
	if m := net.Metrics(); m.Exchanges == 0 || m.Adoptions == 0 {
		t.Fatalf("no gossip traffic: %+v", m)
	}
	// All nodes should be near the global best.
	gb, ok := net.GlobalBest()
	if !ok {
		t.Fatal("no best")
	}
	for i, a := range net.nodes {
		_, f := a.solver.Best()
		if f > gb.F*1e9+1e-3 {
			t.Fatalf("node %d best %g far from global %g", i, f, gb.F)
		}
	}
}

func TestAsyncWithLatencyAndLoss(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 16, Particles: 8, GossipEvery: 8,
		Function: funcs.Sphere, Seed: 4,
		Link: sim.UniformLink{MinDelay: 1, MaxDelay: 20, LossProb: 0.3},
	})
	net.RunFor(5000, 1<<22)
	if q := net.Quality(); q > 1e-4 {
		t.Fatalf("quality %g under 30%% loss and high latency", q)
	}
	if net.Engine().Dropped() == 0 {
		t.Fatal("no messages dropped at LossProb 0.3")
	}
}

func TestAsyncCrashTolerance(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 20, Particles: 8, GossipEvery: 8,
		Function: funcs.Sphere, Seed: 5,
	})
	net.RunFor(500, 1<<22)
	for i := 0; i < 10; i++ {
		net.Crash(i)
	}
	before := net.TotalEvals()
	net.RunFor(3000, 1<<22)
	if net.TotalEvals() <= before {
		t.Fatal("survivors stopped evaluating after crashes")
	}
	if q := net.Quality(); math.IsInf(q, 1) {
		t.Fatal("no best among survivors")
	}
}

// TestAsyncReviveSingleTimerChain: a revive landing before the crashed
// node's in-flight tick is delivered must not leave two parallel eval
// chains (the stale pre-crash tick is generation-filtered), so the eval
// rate after the restart stays the single-chain rate.
func TestAsyncReviveSingleTimerChain(t *testing.T) {
	net := NewAsyncNetwork(AsyncConfig{
		Nodes: 1, Particles: 4, GossipEvery: 1 << 30, // no gossip noise
		Function: funcs.Sphere, Seed: 8, EvalTime: 1,
		NewscastPeriod: 1e9,
	})
	net.RunFor(20, 1<<22)
	// Crash with a tick in flight, revive immediately: the old tick is
	// still queued and will arrive after the node is live again.
	net.Crash(0)
	net.Revive(0)
	before := net.TotalEvals()
	net.RunFor(40, 1<<22)
	got := net.TotalEvals() - before
	// Single chain: ~40 evals (jitter 0.8–1.2 bounds it to [33, 50]).
	// A duplicated chain would be ~80.
	if got > 55 {
		t.Fatalf("%d evals in 40 time units: stale pre-crash tick resumed a second chain", got)
	}
	if got < 20 {
		t.Fatalf("%d evals in 40 time units: revived node barely runs", got)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	run := func() (float64, int64) {
		net := NewAsyncNetwork(AsyncConfig{
			Nodes: 8, Particles: 8, Function: funcs.Rastrigin, Seed: 6,
			Link: sim.UniformLink{MinDelay: 0.5, MaxDelay: 2, LossProb: 0.1},
		})
		net.RunFor(2000, 1<<22)
		return net.Quality(), net.TotalEvals()
	}
	q1, e1 := run()
	q2, e2 := run()
	if q1 != q2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%g, %d) vs (%g, %d)", q1, e1, q2, e2)
	}
}

func TestAsyncMatchesCycleDrivenShape(t *testing.T) {
	// The async network must show the same qualitative behaviour as the
	// cycle-driven one: coordination beats isolation at equal budget.
	quality := func(gossipEvery int) float64 {
		net := NewAsyncNetwork(AsyncConfig{
			Nodes: 24, Particles: 16, GossipEvery: gossipEvery,
			Function: funcs.Rastrigin, Seed: 7,
		})
		net.RunFor(3000, 1<<22)
		return net.Quality()
	}
	with := quality(16)
	without := quality(1 << 30) // effectively never gossips
	if with > without {
		t.Fatalf("async coordination (%g) lost to isolation (%g)", with, without)
	}
}

func TestAsyncDefaults(t *testing.T) {
	c := AsyncConfig{}.withDefaults()
	if c.Nodes != 1 || c.Particles != 16 || c.GossipEvery != 16 ||
		c.ViewSize != 20 || c.EvalTime != 1 || c.NewscastPeriod != 10 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Link == nil || c.Function.Name != "Sphere" {
		t.Fatal("link/function defaults missing")
	}
}
