// Package core implements the paper's primary contribution: the generic
// decentralized optimization framework of Section 3, composed of three
// services per node —
//
//   - a topology service (Newscast peer sampling, or any static topology)
//     maintaining the overlay used to find gossip partners;
//   - a function optimization service (a per-node PSO swarm by default,
//     or any solver.Solver) that spends one function evaluation per
//     simulation cycle;
//   - a coordination service: an anti-entropy epidemic that, every r local
//     evaluations, exchanges the node's swarm optimum ⟨g_p, f(g_p)⟩ with a
//     sampled peer, both sides keeping the better point.
//
// Network wires the three services onto a sim.Engine for n nodes and
// exposes the run/measure operations the paper's experiments need: run to
// a global evaluation budget, run to a quality threshold, and read the
// global best.
package core

import (
	"fmt"
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/overlay"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

// Protocol slots used by the framework on every node.
const (
	// SlotTopology holds the PeerSampler (Newscast or Static).
	SlotTopology = 0
	// SlotOpt holds the OptNode (optimizer + coordination services).
	SlotOpt = 1
)

// BestPoint is the coordination service's payload: a position in the
// search space and its fitness. Wire payloads travel as pooled *BestPoint
// (sim.Recyclable) so a million-node cycle does not allocate one position
// snapshot per exchange; solvers copy on Inject, so recycling the buffer
// at cycle end is safe.
type BestPoint struct {
	X []float64
	F float64
}

// Better reports whether b is strictly better (lower fitness) than o.
func (b BestPoint) Better(o BestPoint) bool { return b.F < o.F }

var (
	bestPointPool      sim.FreeList[BestPoint]
	bestPointReplyPool sim.FreeList[bestPointReply]
)

// Recycle implements sim.Recyclable. The position buffer is kept (len 0)
// for reuse; senders must explicitly nil X when shipping a "no best yet"
// point, since nil-ness is semantic on this payload.
func (b *BestPoint) Recycle() {
	b.X = b.X[:0]
	bestPointPool.Put(b)
}

// OptNode is the per-node composition of the function optimization service
// and the coordination service. It speaks the engine's two-phase exchange
// contract: each cycle the propose phase spends exactly one function
// evaluation, and after every R evaluations it proposes one anti-entropy
// exchange of the node's best point, completed during the apply phase.
type OptNode struct {
	// Solver is the node's function optimization service.
	Solver solver.Solver
	// R is the gossip cycle length: one exchange every R local
	// evaluations. R <= 0 disables coordination entirely (the paper's
	// "without coordination" extreme of independent searches).
	R int
	// DropProb loses each initiated exchange with this probability
	// (message loss; §3.3.4 — only slows diffusion down).
	DropProb float64

	sinceGossip int

	// Metrics.
	Exchanges     int64 // initiated exchanges
	LostExchanges int64 // exchanges lost to drops or dead peers
	Adoptions     int64 // times a remote best was adopted locally
}

// Compile-time guards: sim.Protocol is untyped, so assert the two-phase
// contracts explicitly — a signature drift must fail the build, not turn
// the optimizer into a silent no-op.
var (
	_ sim.Proposer      = (*OptNode)(nil)
	_ sim.Receiver      = (*OptNode)(nil)
	_ sim.Undeliverable = (*OptNode)(nil)
)

// Propose implements sim.Proposer: spend one evaluation on the local
// solver and, every R evaluations, propose the paper's §3.3.3 exchange by
// mailing the node's best point ⟨g_p, f(g_p)⟩ to a sampled peer. Only the
// node's own state is touched; the exchange settles in Receive.
func (o *OptNode) Propose(n *sim.Node, px *sim.Proposals) {
	o.Solver.EvalOne()
	px.CountEvals(1)
	if o.R <= 0 {
		return
	}
	o.sinceGossip++
	if o.sinceGossip < o.R {
		return
	}
	o.sinceGossip = 0
	sampler, ok := n.Protocol(SlotTopology).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	o.Exchanges++
	if o.DropProb > 0 && n.RNG.Bool(o.DropProb) {
		o.LostExchanges++
		return
	}
	gx, gf := o.Solver.Best()
	bp := bestPointPool.Get()
	if gx != nil {
		bp.X = append(bp.X[:0], gx...) // solver-owned slice mutates; ship a snapshot
	} else {
		bp.X = nil // "no best yet" is signalled by a nil position
	}
	bp.F = gf
	px.Send(peerID, SlotOpt, bp)
}

// bestPointReply is the reply leg of the §3.3.3 exchange: the contacted
// peer's better point, mailed back for the initiator to adopt. Pooled like
// the request leg.
type bestPointReply struct {
	P BestPoint
}

// Recycle implements sim.Recyclable.
func (r *bestPointReply) Recycle() {
	r.P.X = r.P.X[:0]
	bestPointReplyPool.Put(r)
}

// Receive implements sim.Receiver, node-locally, completing the
// anti-entropy exchange: if the initiator p's point is better the
// contacted peer q adopts it, otherwise q replies with its own and p
// adopts it when the reply arrives. Both sides end with the better point.
func (o *OptNode) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch bp := msg.Data.(type) {
	case *BestPoint:
		rx, rf := o.Solver.Best()
		switch {
		case bp.X == nil && rx == nil:
			return
		case rx == nil || (bp.X != nil && bp.F < rf):
			// p's point wins: q adopts. Solvers copy on Inject (they never
			// retain the slice), which is what lets the pooled payload's
			// buffer be recycled at cycle end.
			if o.Solver.Inject(bp.X, bp.F) {
				o.Adoptions++
			}
		case bp.X == nil || rf < bp.F:
			// q's point wins: mail it back for p to adopt. Snapshotted into
			// the pooled reply because the solver keeps mutating its own
			// best slice.
			rep := bestPointReplyPool.Get()
			rep.P.X = append(rep.P.X[:0], rx...)
			rep.P.F = rf
			ax.Send(msg.From, msg.Slot, rep)
		}
	case *bestPointReply:
		// Inject adopts only if still strictly better than whatever the
		// initiator has meanwhile, so a stale reply cannot regress it.
		if o.Solver.Inject(bp.P.X, bp.P.F) {
			o.Adoptions++
		}
	}
}

// Undelivered implements sim.Undeliverable: the sampled peer was dead or
// unreachable, so the exchange is lost (the coordination layer's
// message-loss path). A lost reply leg is not a lost initiation and does
// not count.
func (o *OptNode) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*BestPoint); initiated {
		o.LostExchanges++
	}
}

// TopologyKind selects the topology service implementation.
type TopologyKind int

// Topology service choices.
const (
	// TopoNewscast is the paper's choice: gossip-based peer sampling.
	TopoNewscast TopologyKind = iota
	// TopoRandom is a static k-regular random graph (Newscast's idealized
	// stationary shape, without maintenance traffic).
	TopoRandom
	// TopoRing is a static bidirectional ring.
	TopoRing
	// TopoStar is the master-slave star the paper contrasts with.
	TopoStar
	// TopoFull gives every node a full membership view.
	TopoFull
	// TopoCyclon uses the Cyclon shuffle-based peer sampling protocol
	// instead of Newscast.
	TopoCyclon
)

// String names the topology kind.
func (t TopologyKind) String() string {
	switch t {
	case TopoNewscast:
		return "newscast"
	case TopoRandom:
		return "random"
	case TopoRing:
		return "ring"
	case TopoStar:
		return "star"
	case TopoFull:
		return "full"
	case TopoCyclon:
		return "cyclon"
	}
	return "unknown"
}

// Config describes one distributed-optimization deployment, in the paper's
// notation: n nodes each running a swarm of k particles, exchanging the
// swarm optimum every r local evaluations over a view of size c.
type Config struct {
	// Nodes is n, the network size.
	Nodes int
	// Particles is k, the per-node swarm size (PSO default solver).
	Particles int
	// GossipEvery is r, the coordination cycle length in local
	// evaluations. The paper's default is r = k. Zero disables
	// coordination (independent swarms).
	GossipEvery int
	// ViewSize is Newscast's c (default 20).
	ViewSize int
	// Function is the objective; Dim overrides its default dimension when
	// positive.
	Function funcs.Function
	Dim      int
	// Seed makes the whole run reproducible.
	Seed uint64
	// Topology selects the topology service (default Newscast).
	Topology TopologyKind
	// PSO tunes the default PSO solver; ignored when SolverFactory is set.
	PSO pso.Config
	// SolverFactory, when non-nil, replaces the default per-node PSO
	// swarm (solver diversification; the paper's future work).
	SolverFactory solver.Factory
	// DropProb is the coordination message-loss probability.
	DropProb float64
	// Churn, when non-nil, is applied by the engine every cycle.
	Churn sim.ChurnModel
	// Workers is the engine's pool parallelism for both cycle phases
	// (<= 1: single-threaded). ApplyWorkers, when positive, overrides the
	// apply-phase parallelism independently. The trace is bit-identical
	// for every (Workers, ApplyWorkers) combination.
	Workers      int
	ApplyWorkers int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Particles == 0 {
		c.Particles = 16
	}
	if c.ViewSize == 0 {
		c.ViewSize = 20
	}
	if c.Function.Eval == nil {
		c.Function = funcs.Sphere
	}
	return c
}

// InitTopology wires the selected topology service into protocol slot
// `slot` of every live node. Exposed so stacks other than the optimizer
// (e.g. the scenario layer's epidemic-protocol networks) wire the same
// substrate the same way.
func InitTopology(eng *sim.Engine, slot int, kind TopologyKind, viewSize int) {
	switch kind {
	case TopoNewscast:
		overlay.InitNewscast(eng, slot, viewSize)
	case TopoRandom:
		overlay.InitStatic(eng, slot, overlay.KRegularRandom(viewSize))
	case TopoRing:
		overlay.InitStatic(eng, slot, overlay.Ring)
	case TopoStar:
		overlay.InitStatic(eng, slot, overlay.Star)
	case TopoFull:
		overlay.InitStatic(eng, slot, overlay.FullMesh)
	case TopoCyclon:
		overlay.InitCyclon(eng, slot, viewSize, viewSize/2)
	}
}

// Network is a running deployment of the framework.
type Network struct {
	cfg Config
	eng *sim.Engine
}

// NewNetwork builds and wires a network per cfg: n nodes, each with a
// topology service in slot 0 and an OptNode in slot 1. Nodes joining later
// through churn are wired identically and bootstrap their view from a
// random live node (the "bootstrap service" of a real deployment).
func NewNetwork(cfg Config) *Network {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine(cfg.Seed)

	eng.SetWorkers(cfg.Workers)
	if cfg.ApplyWorkers > 0 {
		eng.SetApplyWorkers(cfg.ApplyWorkers)
	}

	mkSolver := cfg.SolverFactory
	if mkSolver == nil {
		mkSolver = func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return pso.New(f, dim, cfg.Particles, cfg.PSO, r)
		}
	}
	newOptNode := func(id sim.NodeID, r *rng.RNG) *OptNode {
		return &OptNode{
			Solver:   mkSolver(cfg.Function, cfg.Dim, int64(id), r.Split()),
			R:        cfg.GossipEvery,
			DropProb: cfg.DropProb,
		}
	}

	// Factory handles churn-joined nodes; initial nodes are re-wired below.
	eng.SetNodeFactory(func(n *sim.Node) {
		nc := overlay.NewNewscast(n.ID, cfg.ViewSize, SlotTopology)
		if b := eng.RandomLiveNode(n.ID); b != nil {
			nc.Bootstrap([]sim.NodeID{b.ID})
		}
		n.Protocols = []sim.Protocol{nc, newOptNode(n.ID, n.RNG)}
	})

	nodes := eng.AddNodes(cfg.Nodes)

	// Topology service.
	InitTopology(eng, SlotTopology, cfg.Topology, cfg.ViewSize)

	// Optimizer + coordination service. InitNewscast/InitStatic already
	// sized the protocol slice; ensure slot 1 exists and fill it.
	for _, n := range nodes {
		for len(n.Protocols) <= SlotOpt {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[SlotOpt] = newOptNode(n.ID, n.RNG)
	}

	if cfg.Churn != nil {
		eng.SetChurn(cfg.Churn)
	}
	return &Network{cfg: cfg, eng: eng}
}

// Engine exposes the underlying simulation engine.
func (net *Network) Engine() *sim.Engine { return net.eng }

// Config returns the network's (defaulted) configuration.
func (net *Network) Config() Config { return net.cfg }

// Step runs one simulation cycle: every live node spends one evaluation
// and gossips if due.
func (net *Network) Step() { net.eng.RunCycle() }

// TotalEvals returns the number of objective evaluations performed by all
// nodes, dead or alive — the paper's global budget e. O(1): the engine
// maintains the counter (fed by OptNode.Propose), so the per-cycle budget
// checks of RunEvals/RunUntil no longer make a run quadratic in n.
func (net *Network) TotalEvals() int64 { return net.eng.Evals() }

// ScanTotalEvals recomputes TotalEvals by walking every node's solver —
// the historical O(n) implementation, kept as a cross-check of the
// engine-maintained counter (tests assert they agree).
func (net *Network) ScanTotalEvals() int64 {
	var total int64
	for _, n := range net.eng.AllNodes() {
		if len(n.Protocols) > SlotOpt {
			if o, ok := n.Protocol(SlotOpt).(*OptNode); ok {
				total += o.Solver.Evals()
			}
		}
	}
	return total
}

// GlobalBest returns the best point known to any live node (the paper's
// global optimum g) and false if no node has evaluated yet.
func (net *Network) GlobalBest() (BestPoint, bool) {
	best := BestPoint{F: math.Inf(1)}
	found := false
	net.eng.ForEachLive(func(n *sim.Node) {
		o, ok := n.Protocol(SlotOpt).(*OptNode)
		if !ok {
			return
		}
		if x, f := o.Solver.Best(); x != nil && f < best.F {
			best = BestPoint{X: x, F: f}
			found = true
		}
	})
	return best, found
}

// Quality returns the paper's solution-quality metric for the current
// global best: f(best) − f(x*). Infinity before any evaluation.
func (net *Network) Quality() float64 {
	b, ok := net.GlobalBest()
	if !ok {
		return math.Inf(1)
	}
	return b.F - net.cfg.Function.OptimumValue
}

// RunEvals runs cycles until at least totalEvals objective evaluations have
// been performed network-wide, the configuration of the paper's first
// three experiment sets. It returns the cycles executed.
func (net *Network) RunEvals(totalEvals int64) int64 {
	var cycles int64
	for net.TotalEvals() < totalEvals {
		if net.eng.LiveCount() == 0 {
			break
		}
		net.eng.RunCycle()
		cycles++
	}
	return cycles
}

// RunUntil runs cycles until the global solution quality reaches the
// threshold or the evaluation budget is exhausted. It returns the local
// time (cycles ≡ evaluations per node), the total evaluations spent, and
// whether the threshold was reached — the measurements of the paper's
// fourth experiment set.
func (net *Network) RunUntil(threshold float64, maxEvals int64) (cycles, evals int64, reached bool) {
	for {
		if net.Quality() <= threshold {
			return cycles, net.TotalEvals(), true
		}
		if net.TotalEvals() >= maxEvals || net.eng.LiveCount() == 0 {
			return cycles, net.TotalEvals(), false
		}
		net.eng.RunCycle()
		cycles++
	}
}

// Metrics aggregates coordination-service counters across all nodes.
type Metrics struct {
	Exchanges, LostExchanges, Adoptions int64
}

// Metrics returns the summed coordination counters (live nodes only).
func (net *Network) Metrics() Metrics {
	var m Metrics
	net.eng.ForEachLive(func(n *sim.Node) {
		if o, ok := n.Protocol(SlotOpt).(*OptNode); ok {
			m.Exchanges += o.Exchanges
			m.LostExchanges += o.LostExchanges
			m.Adoptions += o.Adoptions
		}
	})
	return m
}

// String summarizes the network.
func (net *Network) String() string {
	return fmt.Sprintf("core.Network{n=%d k=%d r=%d topo=%s f=%s evals=%d quality=%g}",
		net.cfg.Nodes, net.cfg.Particles, net.cfg.GossipEvery,
		net.cfg.Topology, net.cfg.Function.Name, net.TotalEvals(), net.Quality())
}

// MixedFactory round-robins over the given factories, assigning a
// different solver type to successive nodes — the paper's envisioned
// "module diversification among peers". The choice is keyed off the node
// ID (not a shared counter), so the assignment is deterministic and
// race-free even when node stacks are built on parallel workers.
func MixedFactory(factories ...solver.Factory) solver.Factory {
	return func(f funcs.Function, dim int, id int64, r *rng.RNG) solver.Solver {
		mk := factories[int(uint64(id)%uint64(len(factories)))]
		return mk(f, dim, id, r)
	}
}
