package core

import (
	"math"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

func TestSingleNodeEqualsPlainPSO(t *testing.T) {
	// n = 1 degenerates to a centralized swarm; it must converge on Sphere.
	net := NewNetwork(Config{Nodes: 1, Particles: 16, GossipEvery: 16, Seed: 1,
		Function: funcs.Sphere})
	net.RunEvals(20000)
	if q := net.Quality(); q > 1e-8 {
		t.Fatalf("single-node quality %g after 20k evals", q)
	}
}

func TestTotalEvalsBudgetRespected(t *testing.T) {
	net := NewNetwork(Config{Nodes: 10, Particles: 8, GossipEvery: 8, Seed: 2,
		Function: funcs.Sphere})
	net.RunEvals(5000)
	got := net.TotalEvals()
	// One cycle adds LiveCount evals, so overshoot is < n.
	if got < 5000 || got >= 5000+10 {
		t.Fatalf("TotalEvals = %d, want in [5000, 5010)", got)
	}
}

func TestCyclesEqualLocalEvals(t *testing.T) {
	net := NewNetwork(Config{Nodes: 4, Particles: 4, GossipEvery: 4, Seed: 3,
		Function: funcs.Sphere})
	cycles := net.RunEvals(4 * 250)
	if cycles != 250 {
		t.Fatalf("cycles = %d, want 250", cycles)
	}
}

func TestGossipSpreadsBest(t *testing.T) {
	// With coordination, all nodes should know (nearly) the same best
	// shortly after convergence.
	net := NewNetwork(Config{Nodes: 20, Particles: 8, GossipEvery: 8, Seed: 4,
		Function: funcs.Sphere})
	net.RunEvals(40000)
	gb, ok := net.GlobalBest()
	if !ok {
		t.Fatal("no global best")
	}
	worstLocal := -1.0
	net.Engine().ForEachLive(func(n *sim.Node) {
		o := n.Protocol(SlotOpt).(*OptNode)
		if _, f := o.Solver.Best(); f > worstLocal {
			worstLocal = f
		}
	})
	// All local bests must be within a few gossip rounds of the global
	// optimum; with r = 8 and 2000 cycles they should be essentially equal.
	if worstLocal > gb.F*1e6+1e-6 {
		t.Fatalf("stragglers: global best %g but worst local best %g", gb.F, worstLocal)
	}
	if m := net.Metrics(); m.Adoptions == 0 {
		t.Fatal("no adoptions despite coordination")
	}
}

func TestCoordinationBeatsIsolation(t *testing.T) {
	// The paper's central claim (Figure 3): more gossip → better quality
	// at equal budget. Compare r = k against no coordination on a
	// multimodal function, median of several seeds.
	quality := func(r int, seed uint64) float64 {
		net := NewNetwork(Config{Nodes: 50, Particles: 16, GossipEvery: r,
			Seed: seed, Function: funcs.Rastrigin})
		net.RunEvals(100000)
		return net.Quality()
	}
	wins := 0
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		if quality(16, s) <= quality(0, s) {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("coordination won only %d/%d trials", wins, trials)
	}
}

func TestQualityInfBeforeEvaluation(t *testing.T) {
	net := NewNetwork(Config{Nodes: 3, Seed: 5, Function: funcs.Sphere})
	if !math.IsInf(net.Quality(), 1) {
		t.Fatal("quality finite before any evaluation")
	}
	if _, ok := net.GlobalBest(); ok {
		t.Fatal("GlobalBest ok before any evaluation")
	}
}

func TestRunUntilThreshold(t *testing.T) {
	net := NewNetwork(Config{Nodes: 8, Particles: 16, GossipEvery: 16, Seed: 6,
		Function: funcs.Sphere})
	cycles, evals, reached := net.RunUntil(1e-10, 1<<20)
	if !reached {
		t.Fatalf("threshold not reached within 2^20 evals (quality %g)", net.Quality())
	}
	if cycles <= 0 || evals <= 0 {
		t.Fatalf("cycles=%d evals=%d", cycles, evals)
	}
	if net.Quality() > 1e-10 {
		t.Fatalf("reported reached but quality %g", net.Quality())
	}
}

func TestRunUntilBudgetExhaustion(t *testing.T) {
	// Griewank at tiny budget: must stop at budget, not spin forever.
	net := NewNetwork(Config{Nodes: 4, Particles: 16, GossipEvery: 16, Seed: 7,
		Function: funcs.Griewank})
	_, evals, reached := net.RunUntil(1e-10, 2000)
	if reached {
		t.Skip("Griewank unexpectedly solved at 2k evals")
	}
	if evals < 2000 || evals >= 2000+4 {
		t.Fatalf("evals = %d at budget exhaustion", evals)
	}
}

func TestTimeInverselyProportionalToNodes(t *testing.T) {
	// The paper's fourth experiment: time (local evals) to threshold
	// shrinks as nodes increase. Compare n=1 vs n=16 on Sphere.
	time := func(n int) int64 {
		net := NewNetwork(Config{Nodes: n, Particles: 8, GossipEvery: 8,
			Seed: 8, Function: funcs.Sphere})
		cycles, _, reached := net.RunUntil(1e-10, 1<<21)
		if !reached {
			t.Fatalf("n=%d never reached threshold", n)
		}
		return cycles
	}
	t1, t16 := time(1), time(16)
	if t16 >= t1 {
		t.Fatalf("time did not shrink with nodes: n=1 %d cycles, n=16 %d cycles", t1, t16)
	}
}

func TestChurnDoesNotKillComputation(t *testing.T) {
	net := NewNetwork(Config{Nodes: 64, Particles: 16, GossipEvery: 16, Seed: 9,
		Function: funcs.Sphere,
		Churn:    &sim.RateChurn{CrashProb: 0.002, JoinPerCycle: 0.13, MinLive: 8},
	})
	net.RunEvals(100000)
	// Churn slows refinement (joiners contribute fresh random particles
	// and crashed nodes' progress is lost), but must not stall it: random
	// sampling of Sphere in [-100,100]^10 yields ~1e4, so quality below
	// 0.1 demonstrates sustained convergence.
	if q := net.Quality(); q > 0.1 {
		t.Fatalf("quality %g under churn", q)
	}
}

func TestCatastropheRobustness(t *testing.T) {
	// §3.3.4: even if a large portion fails, the computation completes.
	net := NewNetwork(Config{Nodes: 100, Particles: 16, GossipEvery: 16, Seed: 10,
		Function: funcs.Sphere,
		Churn:    &sim.CatastropheChurn{AtCycle: 50, Fraction: 0.75},
	})
	net.RunEvals(60000)
	if net.Engine().LiveCount() != 25 {
		t.Fatalf("live = %d, want 25", net.Engine().LiveCount())
	}
	if q := net.Quality(); q > 1e-3 {
		t.Fatalf("quality %g after 75%% catastrophe", q)
	}
}

func TestMessageLossOnlySlowsDown(t *testing.T) {
	net := NewNetwork(Config{Nodes: 32, Particles: 16, GossipEvery: 16, Seed: 11,
		Function: funcs.Sphere, DropProb: 0.5})
	net.RunEvals(80000)
	if q := net.Quality(); q > 1e-6 {
		t.Fatalf("quality %g with 50%% message loss", q)
	}
	if m := net.Metrics(); m.LostExchanges == 0 {
		t.Fatal("no lost exchanges recorded at DropProb 0.5")
	}
}

func TestStaticTopologies(t *testing.T) {
	for _, topo := range []TopologyKind{TopoRandom, TopoRing, TopoStar, TopoFull, TopoCyclon} {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			net := NewNetwork(Config{Nodes: 16, Particles: 8, GossipEvery: 8,
				Seed: 12, Function: funcs.Sphere, Topology: topo})
			net.RunEvals(30000)
			if q := net.Quality(); q > 1e-6 {
				t.Fatalf("%s quality %g", topo, q)
			}
		})
	}
}

func TestTopologyKindString(t *testing.T) {
	want := map[TopologyKind]string{
		TopoNewscast: "newscast", TopoRandom: "random", TopoRing: "ring",
		TopoStar: "star", TopoFull: "full", TopoCyclon: "cyclon",
		TopologyKind(9): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestMixedSolvers(t *testing.T) {
	mixed := MixedFactory(
		func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewES(f, dim, r)
		},
		func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewDE(f, dim, 16, r)
		},
	)
	net := NewNetwork(Config{Nodes: 16, GossipEvery: 8, Seed: 13,
		Function: funcs.Sphere, SolverFactory: mixed})
	net.RunEvals(40000)
	if q := net.Quality(); q > 1e-6 {
		t.Fatalf("mixed-solver quality %g", q)
	}
}

func TestJoinersAdoptOptimum(t *testing.T) {
	// §3.3.4: joining nodes update their swarm optimum on first epidemic
	// message.
	net := NewNetwork(Config{Nodes: 16, Particles: 8, GossipEvery: 4, Seed: 14,
		Function: funcs.Sphere})
	net.RunEvals(20000)
	joiner := net.Engine().AddNode()
	for i := 0; i < 200; i++ {
		net.Step()
	}
	o := joiner.Protocol(SlotOpt).(*OptNode)
	_, f := o.Solver.Best()
	gb, _ := net.GlobalBest()
	if f > gb.F*1e3+1e-6 {
		t.Fatalf("joiner best %g far from global %g", f, gb.F)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		net := NewNetwork(Config{Nodes: 10, Particles: 8, GossipEvery: 8,
			Seed: 15, Function: funcs.Rastrigin})
		net.RunEvals(10000)
		return net.Quality()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different qualities: %g vs %g", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nodes != 1 || c.Particles != 16 || c.ViewSize != 20 || c.Function.Name != "Sphere" {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestStringSmoke(t *testing.T) {
	net := NewNetwork(Config{Nodes: 2, Seed: 16, Function: funcs.Sphere})
	if net.String() == "" {
		t.Fatal("empty String")
	}
	if net.Config().Nodes != 2 {
		t.Fatal("Config() wrong")
	}
}

func TestBestPointBetter(t *testing.T) {
	a := BestPoint{F: 1}
	b := BestPoint{F: 2}
	if !a.Better(b) || b.Better(a) || a.Better(a) {
		t.Fatal("Better wrong")
	}
}
