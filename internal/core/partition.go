package core

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/solver"
	"gossipopt/internal/vec"
)

// Search-space partitioning: the paper's Section 3.2 names, besides
// best-point broadcasting, an alternative coordination strategy —
// "partitioning of the search space in non-overlapping zones under the
// responsibility of each node". This file implements it: the domain is
// split into n equal slabs along the first coordinate, and node i's
// solver samples only slab i. Gossip still diffuses the best ⟨x, f(x)⟩
// found anywhere, so the network-wide result aggregates all zones, but a
// node never *moves its search* outside its own zone: injected remote
// bests update the node's reported best without steering its solver
// (steering would collapse the partition back into a plain swarm).
//
// Partitioning trades robustness for coverage: every zone is searched for
// sure (good on deceptive landscapes where the optimum hides in an
// unattractive slab), but a crashed node's zone is orphaned until a
// churn-joined replacement picks it up.

// zoneEval remaps coordinate 0 of the nominal box [Lo, Hi] affinely onto
// the zone [zoneLo, zoneHi] before evaluating f, so an unmodified solver
// exploring the nominal box effectively searches only the zone.
func zoneEval(f funcs.Function, zoneLo, zoneHi float64) (eval funcs.Objective, toTrue func([]float64) []float64) {
	width := f.Hi - f.Lo
	zw := zoneHi - zoneLo
	toTrue = func(x []float64) []float64 {
		out := vec.Clone(x)
		out[0] = zoneLo + (x[0]-f.Lo)/width*zw
		return out
	}
	inner := f.Eval
	eval = func(x []float64) float64 {
		tmp := vec.Clone(x)
		tmp[0] = zoneLo + (x[0]-f.Lo)/width*zw
		return inner(tmp)
	}
	return eval, toTrue
}

// zoneSolver wraps a solver confined to a zone. Best() reports in true
// coordinates; Inject() only updates the reported best (no steering).
type zoneSolver struct {
	inner  solver.Solver
	toTrue func([]float64) []float64

	bx []float64 // reported best in true coordinates
	bf float64
}

// EvalOne implements solver.Solver.
func (z *zoneSolver) EvalOne() float64 {
	fx := z.inner.EvalOne()
	if x, f := z.inner.Best(); x != nil && f < z.bf {
		z.bx = z.toTrue(x)
		z.bf = f
	}
	return fx
}

// Best implements solver.Solver (true coordinates).
func (z *zoneSolver) Best() ([]float64, float64) { return z.bx, z.bf }

// Inject implements solver.Solver: report-only adoption, preserving the
// zone partition.
func (z *zoneSolver) Inject(x []float64, fx float64) bool {
	if fx >= z.bf || len(x) == 0 {
		return false
	}
	z.bx = vec.Clone(x)
	z.bf = fx
	return true
}

// Evals implements solver.Solver.
func (z *zoneSolver) Evals() int64 { return z.inner.Evals() }

var _ solver.Solver = (*zoneSolver)(nil)

// PartitionedConfig derives a Config whose n nodes search non-overlapping
// slabs of the domain while gossiping best values. Zones are assigned
// round-robin by node ID, so churn-joined replacements cycle through the
// zones again and orphaned slabs are eventually re-covered — and the
// assignment stays deterministic when node stacks are built in parallel.
func PartitionedConfig(base Config) Config {
	base = base.withDefaults()
	n := base.Nodes
	f := base.Function
	width := f.Hi - f.Lo
	k := base.Particles
	psoCfg := base.PSO
	base.SolverFactory = func(_ funcs.Function, dim int, id int64, r *rng.RNG) solver.Solver {
		zone := int(uint64(id) % uint64(n))
		lo := f.Lo + float64(zone)/float64(n)*width
		hi := f.Lo + float64(zone+1)/float64(n)*width
		eval, toTrue := zoneEval(f, lo, hi)
		zf := f
		zf.Name = f.Name + "+zone"
		zf.Eval = eval
		return &zoneSolver{
			inner:  pso.New(zf, dim, k, psoCfg, r),
			toTrue: toTrue,
			bf:     math.Inf(1),
		}
	}
	return base
}

// Zones returns the n slab boundaries ([lo, hi] pairs) assigned by
// PartitionedConfig, for inspection and tests.
func Zones(f funcs.Function, n int) [][2]float64 {
	width := f.Hi - f.Lo
	out := make([][2]float64, n)
	for i := range out {
		out[i] = [2]float64{
			f.Lo + float64(i)/float64(n)*width,
			f.Lo + float64(i+1)/float64(n)*width,
		}
	}
	return out
}
