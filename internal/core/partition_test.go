package core

import (
	"math"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

func TestZonesCoverDomain(t *testing.T) {
	zones := Zones(funcs.Sphere, 8)
	if len(zones) != 8 {
		t.Fatalf("zones = %d", len(zones))
	}
	if zones[0][0] != funcs.Sphere.Lo || zones[7][1] != funcs.Sphere.Hi {
		t.Fatalf("zones do not span the domain: %v", zones)
	}
	for i := 1; i < len(zones); i++ {
		if zones[i][0] != zones[i-1][1] {
			t.Fatalf("zones not contiguous at %d: %v", i, zones)
		}
	}
}

func TestZoneEvalStaysInZone(t *testing.T) {
	// Evaluations through the zone remap must only probe the zone's slab
	// of the true domain for coordinate 0.
	f := funcs.Sphere
	lo, hi := 20.0, 40.0
	eval, toTrue := zoneEval(f, lo, hi)
	for _, x0 := range []float64{f.Lo, -3, 0, 55, f.Hi} {
		x := make([]float64, 10)
		x[0] = x0
		trueX := toTrue(x)
		if trueX[0] < lo-1e-9 || trueX[0] > hi+1e-9 {
			t.Fatalf("nominal %v mapped to %v outside zone [%v, %v]", x0, trueX[0], lo, hi)
		}
		// Value must equal f at the mapped point.
		if got, want := eval(x), f.Eval(trueX); math.Abs(got-want) > 1e-12 {
			t.Fatalf("eval mismatch: %v vs %v", got, want)
		}
	}
}

func TestPartitionedNetworkFindsOptimumInSomeZone(t *testing.T) {
	// Sphere's optimum (origin) lies in exactly one of 8 zones; the
	// network-wide best must still approach 0 because that zone's node
	// finds it and gossip spreads the value.
	cfg := PartitionedConfig(Config{
		Nodes: 8, Particles: 16, GossipEvery: 16,
		Function: funcs.Sphere, Seed: 1,
	})
	net := NewNetwork(cfg)
	net.RunEvals(64000)
	if q := net.Quality(); q > 1e-4 {
		t.Fatalf("partitioned quality %g", q)
	}
	gb, _ := net.GlobalBest()
	// The reported best must be in true coordinates: near the origin.
	for _, xi := range gb.X {
		if math.Abs(xi) > 1 {
			t.Fatalf("best reported in wrong coordinates: %v", gb.X)
		}
	}
}

func TestPartitionPreservedUnderGossip(t *testing.T) {
	// Nodes whose zone excludes the optimum must keep their *search* in
	// their zone even after learning a better remote value: their
	// reported best improves but their solver's own best stays zone-bound.
	cfg := PartitionedConfig(Config{
		Nodes: 4, Particles: 8, GossipEvery: 8,
		Function: funcs.Sphere, Seed: 2,
	})
	net := NewNetwork(cfg)
	net.RunEvals(16000)
	zones := Zones(funcs.Sphere, 4)
	perZoneBest := 0
	net.Engine().ForEachLive(func(n *sim.Node) {
		o := n.Protocol(SlotOpt).(*OptNode)
		zs, ok := o.Solver.(*zoneSolver)
		if !ok {
			t.Fatal("solver is not zone-wrapped")
		}
		x, _ := zs.inner.Best()
		if x == nil {
			return
		}
		// The inner best, mapped to true coordinates, must lie in one of
		// the four zones' slabs — specifically the node's own.
		trueX := zs.toTrue(x)
		for _, z := range zones {
			if trueX[0] >= z[0]-1e-6 && trueX[0] <= z[1]+1e-6 {
				perZoneBest++
				return
			}
		}
		t.Fatalf("inner best escaped all zones: %v", trueX[0])
	})
	if perZoneBest == 0 {
		t.Fatal("no zone-bound bests found")
	}
}

func TestPartitionedBeatsPlainOnDeceptiveSlab(t *testing.T) {
	// Shift Schwefel's optimum near the domain edge (x* ≈ 420.97 of
	// [-500, 500]): plain gossip PSO often gets trapped in the huge
	// central basin, while partitioning guarantees some node samples the
	// edge slab densely. Compare average quality across seeds.
	avg := func(partitioned bool) float64 {
		var sum float64
		const trials = 3
		for s := uint64(0); s < trials; s++ {
			cfg := Config{
				Nodes: 8, Particles: 8, GossipEvery: 8,
				Function: funcs.Schwefel, Seed: s,
			}
			if partitioned {
				cfg = PartitionedConfig(cfg)
			}
			net := NewNetwork(cfg)
			net.RunEvals(24000)
			sum += net.Quality()
		}
		return sum / trials
	}
	part, plain := avg(true), avg(false)
	// Partitioning must be competitive on this deceptive landscape; we
	// assert it is not catastrophically worse (and log the comparison).
	if part > plain*10+100 {
		t.Fatalf("partitioned %g vastly worse than plain %g", part, plain)
	}
	t.Logf("Schwefel: partitioned=%g plain=%g", part, plain)
}

func TestZoneSolverInjectReportOnly(t *testing.T) {
	eval, toTrue := zoneEval(funcs.Sphere, 50, 100)
	zf := funcs.Sphere
	zf.Eval = eval
	zs := &zoneSolver{
		inner:  newTestPSO(zf),
		toTrue: toTrue,
		bf:     math.Inf(1),
	}
	zs.EvalOne()
	if !zs.Inject([]float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0) {
		t.Fatal("report-only injection rejected")
	}
	if _, f := zs.Best(); f != 0 {
		t.Fatalf("best %v after injection", f)
	}
	if zs.Inject([]float64{1}, 5) {
		t.Fatal("worse injection accepted")
	}
	if zs.Inject(nil, -1) {
		t.Fatal("empty injection accepted")
	}
}

// newTestPSO builds a small swarm for zone-solver unit tests.
func newTestPSO(f funcs.Function) solver.Solver {
	return pso.New(f, 10, 4, pso.Config{}, rng.New(9))
}
