package core

import (
	"fmt"
	"sort"
	"strings"

	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/solver"
)

// The name registry lets declarative specs (internal/scenario, JSON files)
// name protocol stacks by string instead of wiring Go values: topologies
// resolve to TopologyKind, solver names to solver.Factory constructors.
// Both lookups are case-insensitive; the *Names functions return the
// sorted vocabulary for error messages and -list output.

// topologyByName mirrors TopologyKind.String.
var topologyByName = map[string]TopologyKind{
	"newscast": TopoNewscast,
	"random":   TopoRandom,
	"ring":     TopoRing,
	"star":     TopoStar,
	"full":     TopoFull,
	"cyclon":   TopoCyclon,
}

// TopologyByName resolves a topology service name ("newscast", "cyclon",
// "random", "ring", "star", "full").
func TopologyByName(name string) (TopologyKind, error) {
	if k, ok := topologyByName[strings.ToLower(name)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("unknown topology %q (available: %s)",
		name, strings.Join(TopologyNames(), ", "))
}

// TopologyNames returns the sorted registered topology names.
func TopologyNames() []string {
	out := make([]string, 0, len(topologyByName))
	for name := range topologyByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// solverByName builds a Factory given the population size (particles for
// PSO, NP for the population-based solvers; solvers without a population
// ignore it).
var solverByName = map[string]func(particles int) solver.Factory{
	"pso": func(particles int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return pso.New(f, dim, particles, pso.Config{}, r)
		}
	},
	"de": func(particles int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewDE(f, dim, particles, r)
		}
	},
	"ga": func(particles int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewGA(f, dim, particles, r)
		}
	},
	"sa": func(int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewSA(f, dim, r)
		}
	},
	"es": func(int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewES(f, dim, r)
		}
	},
	"random": func(int) solver.Factory {
		return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return solver.NewRandomSearch(f, dim, r)
		}
	},
}

// SolverByName resolves a solver service name ("pso", "de", "ga", "sa",
// "es", "random") to a factory; particles sizes the population where the
// solver has one.
func SolverByName(name string, particles int) (solver.Factory, error) {
	mk, ok := solverByName[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown solver %q (available: %s)",
			name, strings.Join(SolverNames(), ", "))
	}
	return mk(particles), nil
}

// SolversByName resolves a list of solver names to one factory: a single
// name yields its factory, several yield a MixedFactory assigning solver
// types to nodes round-robin by node ID (the paper's "module
// diversification among peers").
func SolversByName(names []string, particles int) (solver.Factory, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("no solver names given")
	}
	factories := make([]solver.Factory, len(names))
	for i, name := range names {
		mk, err := SolverByName(name, particles)
		if err != nil {
			return nil, err
		}
		factories[i] = mk
	}
	if len(factories) == 1 {
		return factories[0], nil
	}
	return MixedFactory(factories...), nil
}

// SolverNames returns the sorted registered solver names.
func SolverNames() []string {
	out := make([]string, 0, len(solverByName))
	for name := range solverByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
