package core

import (
	"strings"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
)

func TestTopologyByName(t *testing.T) {
	for _, name := range TopologyNames() {
		k, err := TopologyByName(name)
		if err != nil {
			t.Fatalf("registered topology %q failed: %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("round-trip %q -> %v -> %q", name, k, k.String())
		}
	}
	if k, err := TopologyByName("Newscast"); err != nil || k != TopoNewscast {
		t.Fatalf("lookup not case-insensitive: %v %v", k, err)
	}
	_, err := TopologyByName("hypercube")
	if err == nil || !strings.Contains(err.Error(), "newscast") {
		t.Fatalf("unknown-topology error must list names, got %v", err)
	}
}

func TestSolverByName(t *testing.T) {
	r := rng.New(1)
	for _, name := range SolverNames() {
		mk, err := SolverByName(name, 8)
		if err != nil {
			t.Fatalf("registered solver %q failed: %v", name, err)
		}
		s := mk(funcs.Sphere, 0, 0, r.Split())
		s.EvalOne()
		if s.Evals() != 1 {
			t.Fatalf("solver %q did not evaluate", name)
		}
	}
	_, err := SolverByName("gradient-descent", 8)
	if err == nil || !strings.Contains(err.Error(), "pso") {
		t.Fatalf("unknown-solver error must list names, got %v", err)
	}
}

func TestSolversByNameMixed(t *testing.T) {
	mk, err := SolversByName([]string{"pso", "sa"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	// Round-robin by id: even ids PSO, odd ids SA; both must work.
	for id := int64(0); id < 4; id++ {
		s := mk(funcs.Sphere, 0, id, r.Split())
		s.EvalOne()
		if s.Evals() != 1 {
			t.Fatalf("mixed solver for id %d did not evaluate", id)
		}
	}
	if _, err := SolversByName(nil, 4); err == nil {
		t.Fatal("empty solver list accepted")
	}
	if _, err := SolversByName([]string{"pso", "nope"}, 4); err == nil {
		t.Fatal("bad name inside list accepted")
	}
}
