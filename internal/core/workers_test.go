package core

import (
	"math"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

// qualityTrace runs a network for the given cycles and records Quality()
// after every cycle.
func qualityTrace(t *testing.T, cfg Config, cycles int) []float64 {
	t.Helper()
	net := NewNetwork(cfg)
	out := make([]float64, 0, cycles)
	for i := 0; i < cycles; i++ {
		net.Step()
		out = append(out, net.Quality())
	}
	return out
}

// TestWorkerCountInvariance is the tentpole acceptance test: for a fixed
// seed the Quality() trace is bit-identical across workers ∈ {1, 4, 8} —
// parallelism changes wall-clock only, never results.
func TestWorkerCountInvariance(t *testing.T) {
	base := Config{
		Nodes:       96,
		Particles:   4,
		GossipEvery: 4,
		Function:    funcs.Rastrigin,
		Seed:        42,
		DropProb:    0.1,
		Churn:       nil,
	}
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"newscast", func(*Config) {}},
		{"cyclon", func(c *Config) { c.Topology = TopoCyclon }},
		{"static-ring", func(c *Config) { c.Topology = TopoRing }},
		{"churn", func(c *Config) {
			// Churn models are stateful; mut runs once per network build,
			// so every run gets a fresh model.
			c.Churn = &sim.RateChurn{CrashProb: 0.02, JoinPerCycle: 0.7, MinLive: 8}
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			mk := func(workers, applyWorkers int) []float64 {
				cfg := base
				v.mut(&cfg)
				cfg.Workers = workers
				cfg.ApplyWorkers = applyWorkers
				return qualityTrace(t, cfg, 30)
			}
			want := mk(1, 0)
			for _, w := range [][2]int{{4, 0}, {8, 0}, {1, 8}, {8, 2}} {
				got := mk(w[0], w[1])
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("workers=%dx%d cycle %d: quality %v != %v (workers=1)",
							w[0], w[1], i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestEvalCounterMatchesScan cross-checks the engine-maintained O(1)
// evaluation counter against the historical O(n) solver scan, including
// under churn (dead nodes keep their spent evaluations).
func TestEvalCounterMatchesScan(t *testing.T) {
	net := NewNetwork(Config{
		Nodes: 40, Particles: 4, GossipEvery: 4, Seed: 7,
		Function: funcs.Sphere, Workers: 4,
		Churn: &sim.RateChurn{CrashProb: 0.03, JoinPerCycle: 0.5, MinLive: 4},
	})
	for i := 0; i < 50; i++ {
		net.Step()
		if got, want := net.TotalEvals(), net.ScanTotalEvals(); got != want {
			t.Fatalf("cycle %d: counter %d != scan %d", i, got, want)
		}
	}
}

// TestMixedFactoryKeyedByNodeID: the round-robin must depend only on the
// node ID, so rebuilding a network (or building it on parallel workers)
// assigns identical solver types.
func TestMixedFactoryKeyedByNodeID(t *testing.T) {
	mixed := MixedFactory(
		func(f funcs.Function, dim int, id int64, r *rng.RNG) solver.Solver {
			return &tagSolver{tag: "a"}
		},
		func(f funcs.Function, dim int, id int64, r *rng.RNG) solver.Solver {
			return &tagSolver{tag: "b"}
		},
		func(f funcs.Function, dim int, id int64, r *rng.RNG) solver.Solver {
			return &tagSolver{tag: "c"}
		},
	)
	tags := func() []string {
		var out []string
		for id := int64(0); id < 9; id++ {
			s := mixed(funcs.Sphere, 2, id, nil).(*tagSolver)
			out = append(out, s.tag)
		}
		return out
	}
	a, b := tags(), tags()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment not reproducible at node %d: %s vs %s", i, a[i], b[i])
		}
		want := []string{"a", "b", "c"}[i%3]
		if a[i] != want {
			t.Fatalf("node %d got solver %s, want %s (ID-keyed round-robin)", i, a[i], want)
		}
	}
}

// tagSolver is a do-nothing solver labelled by its factory, for asserting
// factory assignment.
type tagSolver struct{ tag string }

func (s *tagSolver) EvalOne() float64                    { return 0 }
func (s *tagSolver) Best() ([]float64, float64)          { return nil, math.Inf(1) }
func (s *tagSolver) Inject(x []float64, fx float64) bool { return false }
func (s *tagSolver) Evals() int64                        { return 0 }
