package exp

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"gossipopt/internal/stats"
)

// Per-cell aggregation for scenario sweeps. A sweep expands into cells
// (one spec per grid point); every cell runs Reps repetitions, and this
// file reduces each cell's final-sample records to min/mean/max/stddev
// per metric plus the cycles-to-threshold statistic, rendered as a
// deterministic long-format summary table (CSV or JSONL) and consumed by
// the human-readable comparison report in report.go. exp.Runner sweeps
// bridge into the same shape via CellResult.Summary.

// MetricStat summarizes one metric across a cell's repetitions.
type MetricStat struct {
	// N is the number of samples aggregated (repetitions; for
	// to_threshold, only the repetitions that reached the threshold).
	N int64 `json:"n"`
	// Min, Mean, Max, Std are the sample statistics (Std is the unbiased
	// sample standard deviation; 0 for fewer than two samples).
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	Std  float64 `json:"std"`
}

// statOf freezes a streaming accumulator into a MetricStat.
func statOf(a *stats.Acc) MetricStat {
	return MetricStat{N: a.N(), Min: a.Min(), Mean: a.Mean(), Max: a.Max(), Std: a.Std()}
}

// CellSummary is the per-cell aggregate of a sweep: every Record metric at
// the final sample, summarized over the cell's repetitions, plus the
// time-to-threshold statistic when the sweep declares a quality threshold.
type CellSummary struct {
	// Sweep and Cell identify the grid point; Reps is the repetition count.
	Sweep string
	Cell  string
	Reps  int
	// Final-sample statistics, one per Record metric.
	Quality   MetricStat
	Time      MetricStat
	Evals     MetricStat
	Live      MetricStat
	Exchanges MetricStat
	Lost      MetricStat
	Adoptions MetricStat
	Delivered MetricStat
	Dropped   MetricStat
	// Threshold, when non-nil, is the quality threshold the sweep measured
	// convergence against; ToThreshold summarizes the first sample time at
	// which each repetition's quality reached it, over the Reached
	// repetitions only (Censored repetitions never reached it).
	Threshold   *float64
	ToThreshold MetricStat
	Reached     int
	Censored    int
	// Engine, when the runner collected instrumentation, summarizes the
	// cell's engine stats snapshots. The summary-table writers ignore it
	// (the fixed metric list above is the table), so its presence never
	// changes the emitted bytes; cmd/scenario -statsjson renders it.
	Engine *EngineStatsSummary
}

// AggregateCell reduces one cell's repetitions: finals holds each
// repetition's final-sample Record, and toThreshold (parallel to finals,
// used only when threshold is non-nil) holds each repetition's first
// sample time with quality <= threshold, NaN when never reached.
func AggregateCell(sweep, cell string, finals []Record, toThreshold []float64, threshold *float64) CellSummary {
	var q, tm, ev, lv, ex, lo, ad, dl, dr, tth stats.Acc
	cs := CellSummary{Sweep: sweep, Cell: cell, Reps: len(finals), Threshold: threshold}
	for _, r := range finals {
		q.Add(r.Quality)
		tm.Add(r.Time)
		ev.Add(float64(r.Evals))
		lv.Add(float64(r.Live))
		ex.Add(float64(r.Exchanges))
		lo.Add(float64(r.Lost))
		ad.Add(float64(r.Adoptions))
		dl.Add(float64(r.Delivered))
		dr.Add(float64(r.Dropped))
	}
	if threshold != nil {
		for _, t := range toThreshold {
			if math.IsNaN(t) {
				cs.Censored++
				continue
			}
			cs.Reached++
			tth.Add(t)
		}
	}
	cs.Quality, cs.Time, cs.Evals, cs.Live = statOf(&q), statOf(&tm), statOf(&ev), statOf(&lv)
	cs.Exchanges, cs.Lost, cs.Adoptions = statOf(&ex), statOf(&lo), statOf(&ad)
	cs.Delivered, cs.Dropped, cs.ToThreshold = statOf(&dl), statOf(&dr), statOf(&tth)
	return cs
}

// Summary bridges a Runner sweep cell into the scenario-sweep summary
// shape, so paper-style exp.Runner results render through the same
// CSV/JSONL summary table and comparison report as scenario sweeps.
// Threshold-mode cells (Cell.Threshold >= 0) map their time summary onto
// ToThreshold with the Reached/Censored counts carried over.
func (r CellResult) Summary(sweep string) CellSummary {
	conv := func(s stats.Summary) MetricStat {
		return MetricStat{N: s.N, Min: s.Min, Mean: s.Avg, Max: s.Max, Std: math.Sqrt(s.Var)}
	}
	cs := CellSummary{
		Sweep:   sweep,
		Cell:    r.Cell.Label(),
		Reps:    r.Reps,
		Quality: conv(r.Quality),
		Time:    conv(r.Time),
		Evals:   conv(r.Evals),
	}
	if r.Cell.Threshold >= 0 {
		th := r.Cell.Threshold
		cs.Threshold = &th
		cs.ToThreshold = conv(r.Time)
		cs.Reached, cs.Censored = r.Reached, r.Censored
	}
	return cs
}

// summaryColumns is the fixed header of the long-format summary table:
// one row per (cell, metric) pair, metrics in a fixed order, so the table
// is byte-deterministic and trivially greppable/pivotable.
var summaryColumns = []string{
	"sweep", "cell", "reps", "metric", "n", "min", "mean", "max", "std",
}

// summaryMetrics lists each cell's rows in emission order. The
// to_threshold row is appended only when the sweep declares a threshold.
func (c *CellSummary) summaryMetrics() []struct {
	Name string
	Stat MetricStat
} {
	rows := []struct {
		Name string
		Stat MetricStat
	}{
		{"quality", c.Quality},
		{"time", c.Time},
		{"evals", c.Evals},
		{"live", c.Live},
		{"exchanges", c.Exchanges},
		{"lost", c.Lost},
		{"adoptions", c.Adoptions},
		{"delivered", c.Delivered},
		{"dropped", c.Dropped},
	}
	if c.Threshold != nil {
		rows = append(rows, struct {
			Name string
			Stat MetricStat
		}{"to_threshold", c.ToThreshold})
	}
	return rows
}

// WriteCellSummariesCSV renders the summary table as CSV with a fixed
// header; floats use the same shortest-round-trip form as the metric
// sinks, so identical sweeps produce identical files.
func WriteCellSummariesCSV(w io.Writer, cells []CellSummary) error {
	if _, err := io.WriteString(w, strings.Join(summaryColumns, ",")+"\n"); err != nil {
		return err
	}
	for i := range cells {
		c := &cells[i]
		for _, m := range c.summaryMetrics() {
			_, err := fmt.Fprintf(w, "%s,%s,%d,%s,%d,%s,%s,%s,%s\n",
				csvEscape(c.Sweep), csvEscape(c.Cell), c.Reps, m.Name, m.Stat.N,
				fnum(m.Stat.Min), fnum(m.Stat.Mean), fnum(m.Stat.Max), fnum(m.Stat.Std))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCellSummariesJSONL renders the summary table as JSON lines, one
// object per (cell, metric) row, keys in the CSV column order.
func WriteCellSummariesJSONL(w io.Writer, cells []CellSummary) error {
	for i := range cells {
		c := &cells[i]
		for _, m := range c.summaryMetrics() {
			_, err := fmt.Fprintf(w,
				`{"sweep":%s,"cell":%s,"reps":%d,"metric":%s,"n":%d,"min":%s,"mean":%s,"max":%s,"std":%s}`+"\n",
				strconv.Quote(c.Sweep), strconv.Quote(c.Cell), c.Reps, strconv.Quote(m.Name), m.Stat.N,
				jsonNum(m.Stat.Min), jsonNum(m.Stat.Mean), jsonNum(m.Stat.Max), jsonNum(m.Stat.Std))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// TimeToThreshold scans one repetition's emitted records (in sample
// order) and returns the first sample time at which quality reached the
// threshold, or NaN when no sample did (a censored repetition). A
// threshold reached at the very first sample — including a sample at
// cycle/time 0 — reports that sample's time.
func TimeToThreshold(recs []Record, threshold float64) float64 {
	for _, r := range recs {
		if r.Quality <= threshold {
			return r.Time
		}
	}
	return math.NaN()
}
