package exp

import (
	"math"
	"strings"
	"testing"

	"gossipopt/internal/funcs"
)

// TestAggregateCellStddev checks the aggregation math on known inputs:
// qualities {2,4,4,4,5,5,7,9} have mean 5 and unbiased sample variance
// 32/7, so std = sqrt(32/7).
func TestAggregateCellStddev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	finals := make([]Record, len(vals))
	for i, v := range vals {
		finals[i] = Record{Quality: v, Time: 10, Evals: int64(i), Live: 3}
	}
	cs := AggregateCell("s", "c", finals, nil, nil)
	q := cs.Quality
	if q.N != 8 || q.Min != 2 || q.Max != 9 || q.Mean != 5 {
		t.Fatalf("quality stat wrong: %+v", q)
	}
	if want := math.Sqrt(32.0 / 7.0); math.Abs(q.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", q.Std, want)
	}
	if cs.Time.Std != 0 || cs.Time.Mean != 10 {
		t.Fatalf("constant metric should have zero std: %+v", cs.Time)
	}
	if cs.Evals.Min != 0 || cs.Evals.Max != 7 || cs.Evals.Mean != 3.5 {
		t.Fatalf("evals stat wrong: %+v", cs.Evals)
	}
	if cs.Threshold != nil || cs.Reached != 0 || cs.Censored != 0 {
		t.Fatalf("threshold fields set without a threshold: %+v", cs)
	}
}

// TestAggregateCellToThreshold covers the censoring edge cases: never
// reached (NaN), reached at time 0, and the mixed case.
func TestAggregateCellToThreshold(t *testing.T) {
	th := 0.5
	finals := []Record{{Quality: 0.1}, {Quality: 0.9}, {Quality: 0.2}}
	tth := []float64{0, math.NaN(), 30}
	cs := AggregateCell("s", "c", finals, tth, &th)
	if cs.Reached != 2 || cs.Censored != 1 {
		t.Fatalf("reached/censored wrong: %+v", cs)
	}
	if cs.ToThreshold.N != 2 || cs.ToThreshold.Min != 0 || cs.ToThreshold.Max != 30 || cs.ToThreshold.Mean != 15 {
		t.Fatalf("to-threshold stat wrong: %+v", cs.ToThreshold)
	}
	// All censored: the stat stays empty instead of reporting zeros as
	// if they were measurements.
	all := AggregateCell("s", "c", finals, []float64{math.NaN(), math.NaN(), math.NaN()}, &th)
	if all.Reached != 0 || all.Censored != 3 || all.ToThreshold.N != 0 {
		t.Fatalf("all-censored accounting wrong: %+v", all)
	}
}

// TestTimeToThreshold covers the scan edge cases: reached at the first
// sample (time 0 included), reached mid-run, never reached, no rows.
func TestTimeToThreshold(t *testing.T) {
	recs := []Record{
		{Time: 0, Quality: 10},
		{Time: 10, Quality: 2},
		{Time: 20, Quality: 0.5},
		{Time: 30, Quality: 0.1},
	}
	if got := TimeToThreshold(recs, 1); got != 20 {
		t.Fatalf("threshold 1 reached at %v, want 20", got)
	}
	if got := TimeToThreshold(recs, 100); got != 0 {
		t.Fatalf("loose threshold should be reached at the first sample (time 0): %v", got)
	}
	if got := TimeToThreshold(recs, 0.01); !math.IsNaN(got) {
		t.Fatalf("unreachable threshold should be NaN, got %v", got)
	}
	if got := TimeToThreshold(nil, 1); !math.IsNaN(got) {
		t.Fatalf("no rows should be NaN, got %v", got)
	}
}

// TestCellSummaryTables pins the deterministic rendering of the summary
// table in both formats.
func TestCellSummaryTables(t *testing.T) {
	th := 0.5
	cells := []CellSummary{
		AggregateCell("sw", "sw/a=1", []Record{{Quality: 1, Time: 10}, {Quality: 3, Time: 10}}, []float64{5, math.NaN()}, &th),
	}
	var csv strings.Builder
	if err := WriteCellSummariesCSV(&csv, cells); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "sweep,cell,reps,metric,n,min,mean,max,std\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "sw,sw/a=1,2,quality,2,1,2,3,") {
		t.Fatalf("quality row missing:\n%s", out)
	}
	if !strings.Contains(out, ",to_threshold,1,5,5,5,0\n") {
		t.Fatalf("to_threshold row missing (n must count reaching reps only):\n%s", out)
	}
	if strings.Count(out, "\n") != 1+10 {
		t.Fatalf("expected header + 10 metric rows:\n%s", out)
	}

	var jsonl strings.Builder
	if err := WriteCellSummariesJSONL(&jsonl, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `{"sweep":"sw","cell":"sw/a=1","reps":2,"metric":"quality","n":2,"min":1,"mean":2,"max":3,"std":`) {
		t.Fatalf("jsonl row missing:\n%s", jsonl.String())
	}

	// Without a threshold the to_threshold row is omitted entirely.
	bare := []CellSummary{AggregateCell("sw", "c", []Record{{Quality: 1}}, nil, nil)}
	var b2 strings.Builder
	if err := WriteCellSummariesCSV(&b2, bare); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "to_threshold") {
		t.Fatalf("to_threshold emitted without a threshold:\n%s", b2.String())
	}
}

// TestCellResultSummaryBridge: Runner sweep cells render through the
// same summary shape as scenario sweeps.
func TestCellResultSummaryBridge(t *testing.T) {
	r := Runner{Reps: 3, BaseSeed: 1, Workers: 2}
	cells := []Cell{{Function: funcs.Sphere, N: 4, K: 4, R: 4, Budget: 400, Threshold: -1}}
	res := r.Sweep(cells)
	cs := res[0].Summary("paper")
	if cs.Sweep != "paper" || cs.Reps != 3 || cs.Quality.N != 3 {
		t.Fatalf("bridge mislabeled: %+v", cs)
	}
	if cs.Quality.Mean != res[0].Quality.Avg {
		t.Fatalf("bridge mean %v != runner avg %v", cs.Quality.Mean, res[0].Quality.Avg)
	}
	if want := math.Sqrt(res[0].Quality.Var); math.Abs(cs.Quality.Std-want) > 1e-12 {
		t.Fatalf("bridge std %v, want sqrt(var) %v", cs.Quality.Std, want)
	}
	if cs.Threshold != nil {
		t.Fatalf("budget-mode cell must not set a threshold: %+v", cs)
	}

	thr := r.Sweep([]Cell{{Function: funcs.Sphere, N: 4, K: 4, R: 4, Threshold: 1e3, MaxEvals: 400}})
	ct := thr[0].Summary("paper")
	if ct.Threshold == nil || *ct.Threshold != 1e3 {
		t.Fatalf("threshold-mode cell lost its threshold: %+v", ct)
	}
	if ct.Reached != thr[0].Reached || ct.Censored != thr[0].Censored {
		t.Fatalf("reached/censored not carried over: %+v vs %+v", ct, thr[0])
	}
	report := SweepReport("paper", []CellSummary{cs, ct})
	if !strings.Contains(report, "== sweep paper ==") || !strings.Contains(report, "quality") {
		t.Fatalf("report malformed:\n%s", report)
	}
}

// TestSweepReportMarksBest: the lowest-mean-quality row gets '*' and,
// with a threshold, the fastest fully-reaching row gets '>'.
func TestSweepReportMarksBest(t *testing.T) {
	th := 0.5
	a := AggregateCell("sw", "slowbutgood", []Record{{Quality: 0.1, Time: 100}}, []float64{90}, &th)
	b := AggregateCell("sw", "fastbutworse", []Record{{Quality: 0.4, Time: 100}}, []float64{20}, &th)
	c := AggregateCell("sw", "censored", []Record{{Quality: 0.9, Time: 100}}, []float64{math.NaN()}, &th)
	report := SweepReport("sw", []CellSummary{a, b, c})
	lines := strings.Split(report, "\n")
	var star, arrow, dash string
	for _, l := range lines {
		if strings.HasPrefix(l, "*") {
			star = l
		}
		if strings.HasPrefix(l, ">") {
			arrow = l
		}
		if strings.Contains(l, "censored") {
			dash = l
		}
	}
	if !strings.Contains(star, "slowbutgood") {
		t.Fatalf("best quality row not starred:\n%s", report)
	}
	if !strings.Contains(arrow, "fastbutworse") {
		t.Fatalf("best to-threshold row not marked:\n%s", report)
	}
	if !strings.Contains(dash, "         - ") || !strings.Contains(dash, " 0/ 1") {
		t.Fatalf("censored row should show an aligned dash and 0/1:\n%s", report)
	}
}
