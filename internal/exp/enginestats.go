package exp

import (
	"gossipopt/internal/sim"
	"gossipopt/internal/stats"
)

// EngineStatsSummary aggregates per-repetition engine instrumentation
// snapshots (sim.EngineStats) across a sweep cell: one MetricStat per
// instrumentation counter, over the cell's repetitions. It rides on
// CellSummary as an optional extra — the summary-table writers ignore it,
// so enabling instrumentation never changes the table bytes; it surfaces
// through cmd/scenario -statsjson cell lines instead.
type EngineStatsSummary struct {
	// ProposeNanos and ApplyNanos summarize the cumulative per-phase wall
	// times (nanoseconds per repetition).
	ProposeNanos MetricStat `json:"propose_ns"`
	ApplyNanos   MetricStat `json:"apply_ns"`
	// ApplyRounds and ApplyJobs summarize apply-phase volume; ApplyBatches
	// the batched-dispatch granularity (0 under a single apply worker:
	// the fused path materializes no batches).
	ApplyRounds  MetricStat `json:"apply_rounds"`
	ApplyJobs    MetricStat `json:"apply_jobs"`
	ApplyBatches MetricStat `json:"apply_batches"`
	// ShardSkew summarizes each repetition's apply-shard load-imbalance
	// ratio (sim.EngineStats.ShardSkew; 1 = perfectly even).
	ShardSkew MetricStat `json:"shard_skew"`
	// LiveRebuilds and PoolTasks summarize live-index rebuild and
	// worker-pool submission counts.
	LiveRebuilds MetricStat `json:"live_rebuilds"`
	PoolTasks    MetricStat `json:"pool_tasks"`
	// PayloadsRecycled summarizes end-of-cycle payload recycles (engine-owned
	// and worker-invariant, unlike the process-global free-list counters).
	PayloadsRecycled MetricStat `json:"payloads_recycled"`
	// Delayed and Corrupted summarize the per-link network model's verdict
	// counts (sim.EngineStats.Delayed/Corrupted); zero when no model runs.
	Delayed   MetricStat `json:"delayed"`
	Corrupted MetricStat `json:"corrupted"`
}

// AggregateEngineStats reduces one cell's per-repetition engine snapshots
// to an EngineStatsSummary.
func AggregateEngineStats(snaps []sim.EngineStats) EngineStatsSummary {
	var pn, an, ar, aj, ab, sk, lr, pt, pr, dl, co stats.Acc
	for _, s := range snaps {
		pn.Add(float64(s.ProposeNanos))
		an.Add(float64(s.ApplyNanos))
		ar.Add(float64(s.ApplyRounds))
		aj.Add(float64(s.ApplyJobs))
		ab.Add(float64(s.ApplyBatches))
		sk.Add(s.ShardSkew())
		lr.Add(float64(s.LiveRebuilds))
		pt.Add(float64(s.PoolTasks))
		pr.Add(float64(s.PayloadsRecycled))
		dl.Add(float64(s.Delayed))
		co.Add(float64(s.Corrupted))
	}
	return EngineStatsSummary{
		ProposeNanos:     statOf(&pn),
		ApplyNanos:       statOf(&an),
		ApplyRounds:      statOf(&ar),
		ApplyJobs:        statOf(&aj),
		ApplyBatches:     statOf(&ab),
		ShardSkew:        statOf(&sk),
		LiveRebuilds:     statOf(&lr),
		PoolTasks:        statOf(&pt),
		PayloadsRecycled: statOf(&pr),
		Delayed:          statOf(&dl),
		Corrupted:        statOf(&co),
	}
}
