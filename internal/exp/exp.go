// Package exp reproduces the paper's four experiment sets (Tables 1–4,
// Figures 1–4) plus the ablations listed in DESIGN.md. Each experiment is a
// parameter sweep over (function, n, k, r) cells; every cell is repeated
// Reps times with derived seeds and summarized as avg/min/max/Var — the
// exact columns of the paper's tables — and assembled into the figures'
// series.
//
// Experiments run cells in parallel across a worker pool; results are
// deterministic regardless of worker count because every (cell, repetition)
// pair derives its seed from the base seed and its own indices.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"gossipopt/internal/core"
	"gossipopt/internal/funcs"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
	"gossipopt/internal/stats"
)

// Cell is one sweep point: a full network configuration plus the stopping
// rule (budget or threshold).
type Cell struct {
	Function funcs.Function
	// N, K, R are the paper's parameters: nodes, particles per node, and
	// gossip cycle length in local evaluations.
	N, K, R int
	// Budget is the total (network-wide) evaluation budget; used when
	// Threshold < 0.
	Budget int64
	// Threshold, when >= 0, switches the cell to run-until-quality mode
	// with MaxEvals as a safety cap (the paper's fourth experiment).
	Threshold float64
	MaxEvals  int64
	// Topology and churn variations (ablations).
	Topology core.TopologyKind
	Churn    func() sim.ChurnModel
	DropProb float64
	// NoCoordination disables gossip entirely (sets r = 0).
	NoCoordination bool
	// Solvers, when non-nil, builds a fresh per-repetition solver factory
	// (heterogeneous deployments; factories may be stateful, so each
	// repetition gets its own).
	Solvers func() solver.Factory
	// Workers is the per-repetition engine parallelism (propose-phase
	// worker goroutines); results are identical for every value.
	Workers int
	// Tag labels ablation variants (e.g. "churn=0.50", "topo=ring").
	Tag string
}

// RepResult is the outcome of a single repetition.
type RepResult struct {
	Quality float64
	// Cycles is the paper's "time": local evaluations per node.
	Cycles int64
	Evals  int64
	// Reached reports whether the threshold was hit (threshold mode).
	Reached bool
}

// CellResult aggregates all repetitions of one cell.
type CellResult struct {
	Cell     Cell
	Quality  stats.Summary
	Time     stats.Summary // over cycles; threshold mode: reaching runs only
	Evals    stats.Summary
	Reached  int
	Reps     int
	PerRep   []RepResult
	Censored int // runs that never reached the threshold
}

// Label renders the cell compactly for tables and logs.
func (c Cell) Label() string {
	s := fmt.Sprintf("%s n=%d k=%d r=%d", c.Function.Name, c.N, c.K, c.R)
	if c.NoCoordination {
		s += " nogossip"
	}
	if c.Tag != "" {
		s += " " + c.Tag
	}
	return s
}

// SeedFor derives a deterministic repetition seed from a base seed and
// the repetition's indices (SplitMix64-style mixing). Sweeps use their
// cell index; single-spec campaigns (internal/scenario) pass cellIdx 0 —
// one mixer, so campaign and sweep seeding can never drift apart.
func SeedFor(base uint64, cellIdx, rep int) uint64 {
	x := base ^ uint64(cellIdx)*0x9e3779b97f4a7c15 ^ uint64(rep)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// RunRep executes one repetition of a cell with the given seed.
func RunRep(c Cell, seed uint64) RepResult {
	r := c.R
	if c.NoCoordination {
		r = 0
	}
	cfg := core.Config{
		Nodes:       c.N,
		Particles:   c.K,
		GossipEvery: r,
		Function:    c.Function,
		Seed:        seed,
		Topology:    c.Topology,
		DropProb:    c.DropProb,
		Workers:     c.Workers,
	}
	if c.Churn != nil {
		cfg.Churn = c.Churn()
	}
	if c.Solvers != nil {
		cfg.SolverFactory = c.Solvers()
	}
	net := core.NewNetwork(cfg)
	// One engine per repetition: release its worker pool deterministically
	// rather than leaving parked goroutines to the finalizer backstop.
	defer net.Engine().Close()
	if c.Threshold >= 0 {
		cycles, evals, reached := net.RunUntil(c.Threshold, c.MaxEvals)
		return RepResult{Quality: net.Quality(), Cycles: cycles, Evals: evals, Reached: reached}
	}
	cycles := net.RunEvals(c.Budget)
	return RepResult{Quality: net.Quality(), Cycles: cycles, Evals: net.TotalEvals()}
}

// Runner executes sweeps.
type Runner struct {
	// Reps is the number of repetitions per cell (the paper uses 50).
	Reps int
	// BaseSeed drives all derived seeds.
	BaseSeed uint64
	// Workers bounds parallelism (default: NumCPU).
	Workers int
	// Progress, when non-nil, is invoked once per cell during the final
	// aggregation pass (after all repetitions have run).
	Progress func(done, total int, c Cell)
}

// Sweep runs every cell×repetition on a worker pool and aggregates.
func (r *Runner) Sweep(cells []Cell) []CellResult {
	reps := r.Reps
	if reps <= 0 {
		reps = 50
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	type job struct{ cell, rep int }
	jobs := make(chan job)
	results := make([]CellResult, len(cells))
	for i := range results {
		results[i] = CellResult{
			Cell:   cells[i],
			Reps:   reps,
			PerRep: make([]RepResult, reps),
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res := RunRep(cells[j.cell], SeedFor(r.BaseSeed, j.cell, j.rep))
				results[j.cell].PerRep[j.rep] = res
			}
		}()
	}
	for ci := range cells {
		for rep := 0; rep < reps; rep++ {
			jobs <- job{ci, rep}
		}
	}
	close(jobs)
	wg.Wait()

	for i := range results {
		res := &results[i]
		var q, tm, ev stats.Acc
		for _, rr := range res.PerRep {
			q.Add(rr.Quality)
			ev.Add(float64(rr.Evals))
			if res.Cell.Threshold >= 0 {
				if rr.Reached {
					res.Reached++
					tm.Add(float64(rr.Cycles))
				} else {
					res.Censored++
				}
			} else {
				tm.Add(float64(rr.Cycles))
			}
		}
		res.Quality = stats.Summary{N: q.N(), Avg: q.Mean(), Min: q.Min(), Max: q.Max(), Var: q.Var()}
		res.Time = stats.Summary{N: tm.N(), Avg: tm.Mean(), Min: tm.Min(), Max: tm.Max(), Var: tm.Var()}
		res.Evals = stats.Summary{N: ev.N(), Avg: ev.Mean(), Min: ev.Min(), Max: ev.Max(), Var: ev.Var()}
		if r.Progress != nil {
			r.Progress(i+1, len(results), res.Cell)
		}
	}
	return results
}
