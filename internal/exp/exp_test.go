package exp

import (
	"strings"
	"testing"

	"gossipopt/internal/core"
	"gossipopt/internal/funcs"
)

// tinySpec keeps unit-test sweeps fast.
func tinySpec() Spec {
	return Spec{
		Funcs:         []funcs.Function{funcs.Sphere, funcs.F2},
		Reps:          3,
		BudgetPerNode: 200,
		TotalBudget:   4000,
		Threshold:     1e-10,
		MaxEvals:      60000,
	}.withDefaults()
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for cell := 0; cell < 20; cell++ {
		for rep := 0; rep < 20; rep++ {
			s := SeedFor(42, cell, rep)
			if seen[s] {
				t.Fatalf("seed collision at cell=%d rep=%d", cell, rep)
			}
			seen[s] = true
		}
	}
}

func TestRunRepBudgetMode(t *testing.T) {
	c := Cell{Function: funcs.Sphere, N: 4, K: 8, R: 8, Budget: 2000, Threshold: -1}
	res := RunRep(c, 1)
	if res.Evals < 2000 || res.Evals > 2000+4 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if res.Cycles != 500 {
		t.Fatalf("cycles = %d, want 500", res.Cycles)
	}
	if res.Quality < 0 {
		t.Fatalf("quality = %g", res.Quality)
	}
}

func TestRunRepThresholdMode(t *testing.T) {
	c := Cell{Function: funcs.Sphere, N: 4, K: 16, R: 16, Threshold: 1e-6, MaxEvals: 1 << 20}
	res := RunRep(c, 2)
	if !res.Reached {
		t.Fatalf("threshold not reached, quality %g", res.Quality)
	}
	if res.Quality > 1e-6 {
		t.Fatalf("quality %g above threshold", res.Quality)
	}
}

func TestRunRepDeterministic(t *testing.T) {
	c := Cell{Function: funcs.Rastrigin, N: 4, K: 8, R: 8, Budget: 1000, Threshold: -1}
	a, b := RunRep(c, 7), RunRep(c, 7)
	if a != b {
		t.Fatalf("RunRep not deterministic: %+v vs %+v", a, b)
	}
}

func TestSweepAggregation(t *testing.T) {
	cells := []Cell{
		{Function: funcs.Sphere, N: 2, K: 8, R: 8, Budget: 500, Threshold: -1},
		{Function: funcs.F2, N: 2, K: 8, R: 8, Budget: 500, Threshold: -1},
	}
	r := &Runner{Reps: 4, BaseSeed: 1}
	results := r.Sweep(cells)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if res.Quality.N != 4 {
			t.Fatalf("quality N = %d, want 4", res.Quality.N)
		}
		if res.Quality.Min > res.Quality.Avg || res.Quality.Avg > res.Quality.Max {
			t.Fatalf("summary ordering broken: %+v", res.Quality)
		}
		if len(res.PerRep) != 4 {
			t.Fatalf("PerRep = %d", len(res.PerRep))
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := Experiment1(tinySpec(), true)[:4]
	run := func(workers int) []CellResult {
		r := &Runner{Reps: 3, BaseSeed: 9, Workers: workers}
		return r.Sweep(cells)
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i].Quality != b[i].Quality {
			t.Fatalf("cell %d differs across worker counts: %+v vs %+v",
				i, a[i].Quality, b[i].Quality)
		}
	}
}

func TestExperimentCellCounts(t *testing.T) {
	s := Paper()
	if got := len(Experiment1(s, false)); got != 6*4*5 {
		t.Fatalf("E1 cells = %d, want 120", got)
	}
	if got := len(Experiment2(s, false)); got != 6*17*4 {
		t.Fatalf("E2 cells = %d, want 408", got)
	}
	if got := len(Experiment3(s, false)); got != 6*3*17 {
		t.Fatalf("E3 cells = %d, want 306", got)
	}
	if got := len(Experiment4(s, false)); got != 6*11*4 {
		t.Fatalf("E4 cells = %d, want 264", got)
	}
}

func TestExperimentParamsMatchPaper(t *testing.T) {
	s := Paper()
	e1 := Experiment1(s, false)
	for _, c := range e1 {
		if c.R != c.K {
			t.Fatalf("E1 cell %s: r != k", c.Label())
		}
		if c.Budget != int64(c.N)*1000 {
			t.Fatalf("E1 cell %s: budget %d != 1000n", c.Label(), c.Budget)
		}
	}
	e2 := Experiment2(s, false)
	for _, c := range e2 {
		if c.Budget != 1<<20 {
			t.Fatalf("E2 budget %d != 2^20", c.Budget)
		}
	}
	e4 := Experiment4(s, false)
	for _, c := range e4 {
		if c.Threshold != 1e-10 {
			t.Fatalf("E4 threshold %g", c.Threshold)
		}
	}
}

func TestAblationCells(t *testing.T) {
	s := tinySpec()
	ng := AblationNoGossip(s, true)
	if len(ng)%2 != 0 {
		t.Fatal("AblationNoGossip must pair cells")
	}
	half := 0
	for _, c := range ng {
		if c.NoCoordination {
			half++
		}
	}
	if half != len(ng)/2 {
		t.Fatalf("NoCoordination in %d of %d cells", half, len(ng))
	}
	topo := AblationTopology(s, true)
	kinds := map[core.TopologyKind]bool{}
	for _, c := range topo {
		kinds[c.Topology] = true
	}
	if len(kinds) != 4 {
		t.Fatalf("topology ablation covers %d kinds", len(kinds))
	}
	churn := AblationChurn(s, true)
	withChurn := 0
	for _, c := range churn {
		if c.Churn != nil {
			withChurn++
			if c.Churn() == nil {
				t.Fatal("churn factory returned nil")
			}
		}
	}
	if withChurn == 0 {
		t.Fatal("no churn cells")
	}
	loss := AblationMessageLoss(s, true)
	if loss[0].DropProb != 0 || loss[1].DropProb == 0 {
		t.Fatal("loss sweep shape wrong")
	}
}

func TestReportTableAndBestRows(t *testing.T) {
	cells := []Cell{
		{Function: funcs.Sphere, N: 1, K: 4, R: 4, Budget: 300, Threshold: -1},
		{Function: funcs.Sphere, N: 4, K: 8, R: 8, Budget: 1200, Threshold: -1},
		{Function: funcs.F2, N: 1, K: 4, R: 4, Budget: 300, Threshold: -1},
	}
	r := &Runner{Reps: 2, BaseSeed: 3}
	rep := &Report{Title: "test", Results: r.Sweep(cells)}
	table := rep.Table()
	if !strings.Contains(table, "Sphere") || !strings.Contains(table, "F2") {
		t.Fatalf("table missing functions:\n%s", table)
	}
	if !strings.Contains(table, "*") {
		t.Fatal("no best row marked")
	}
	best := rep.BestRows()
	if len(best) != 2 {
		t.Fatalf("BestRows = %d, want 2 (one per function)", len(best))
	}
}

func TestReportFigures(t *testing.T) {
	cells := Experiment1(Spec{
		Funcs: []funcs.Function{funcs.Sphere},
		Reps:  2, BudgetPerNode: 100,
		Ns: []int{1, 4}, Ks: []int{4, 8},
	}.withDefaults(), true)
	r := &Runner{Reps: 2, BaseSeed: 5}
	rep := &Report{Title: "fig", Results: r.Sweep(cells)}
	charts := rep.Figure1()
	if len(charts) != 1 {
		t.Fatalf("charts = %d", len(charts))
	}
	ch := charts[0]
	if len(ch.Series) != 2 {
		t.Fatalf("series = %d, want one per network size", len(ch.Series))
	}
	if out := ch.ASCII(60, 12); !strings.Contains(out, "size=1") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if tsv := ch.TSV(); !strings.Contains(tsv, "size=4") {
		t.Fatalf("tsv missing series:\n%s", tsv)
	}
}

func TestFigure4SkipsCensored(t *testing.T) {
	// Griewank at a tiny eval cap never reaches 1e-10; its series must be
	// dropped rather than plotted at 0.
	cells := []Cell{
		{Function: funcs.Griewank, N: 2, K: 8, R: 8, Threshold: 1e-10, MaxEvals: 500},
	}
	r := &Runner{Reps: 2, BaseSeed: 6}
	rep := &Report{Title: "cens", Results: r.Sweep(cells)}
	charts := rep.Figure4()
	if len(charts) != 1 {
		t.Fatalf("charts = %d", len(charts))
	}
	if len(charts[0].Series) != 0 {
		t.Fatalf("censored series plotted: %+v", charts[0].Series)
	}
	if !strings.Contains(rep.Table(), "never reached") {
		t.Fatalf("table does not mark censored rows:\n%s", rep.Table())
	}
}

func TestQuickSpecSmallerThanPaper(t *testing.T) {
	if len(Experiment2(Quick(), true)) >= len(Experiment2(Paper(), false)) {
		t.Fatal("quick spec not smaller")
	}
}
