package exp

import (
	"fmt"

	"gossipopt/internal/core"
	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
	"gossipopt/internal/solver"
)

// Spec sizes an experiment. Paper() returns the exact parameters of the
// paper; Quick(f) shrinks network sizes, budgets and repetitions by roughly
// the given factor while preserving the swept shapes, so the full suite
// runs on a laptop in minutes (benchmarks use even smaller settings).
type Spec struct {
	// Funcs is the benchmark suite (default: the paper's six functions).
	Funcs []funcs.Function
	// Reps is the number of repetitions per cell (paper: 50).
	Reps int
	// Seed is the base seed for derived per-repetition seeds.
	Seed uint64

	// Ns, Ks, Rs are the swept values for the experiment (interpretation
	// varies per experiment; unset fields take the experiment's paper
	// values).
	Ns, Ks, Rs []int
	// BudgetPerNode is experiment 1/3's e/n (paper: 1000).
	BudgetPerNode int64
	// TotalBudget is experiment 2's e (paper: 2^20).
	TotalBudget int64
	// Threshold and MaxEvals drive experiment 4 (paper: 1e-10, cap 2^20).
	Threshold float64
	MaxEvals  int64
}

func (s Spec) withDefaults() Spec {
	if s.Funcs == nil {
		s.Funcs = funcs.PaperSuite
	}
	if s.Reps == 0 {
		s.Reps = 50
	}
	if s.BudgetPerNode == 0 {
		s.BudgetPerNode = 1000
	}
	if s.TotalBudget == 0 {
		s.TotalBudget = 1 << 20
	}
	if s.Threshold == 0 {
		s.Threshold = 1e-10
	}
	if s.MaxEvals == 0 {
		s.MaxEvals = 1 << 20
	}
	return s
}

// Paper returns the paper's exact experiment parameters.
func Paper() Spec { return Spec{}.withDefaults() }

// Quick returns a laptop-scale spec preserving the sweeps' shape: smaller
// networks, smaller budgets, fewer repetitions.
func Quick() Spec {
	return Spec{
		Reps:          5,
		BudgetPerNode: 1000,
		TotalBudget:   1 << 15,
		Threshold:     1e-10,
		MaxEvals:      1 << 17,
		Ns:            nil, // experiments pick reduced defaults
	}.withDefaults()
}

func pow2s(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, 1<<i)
	}
	return out
}

// Experiment1 is the paper's first set (Table 1, Figure 1): solution
// quality after a fixed per-node budget (e = 1000·n, r = k) as the swarm
// size k and network size n vary.
func Experiment1(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	ns := s.Ns
	ks := s.Ks
	if ns == nil {
		if quick {
			ns = []int{1, 10, 100}
		} else {
			ns = []int{1, 10, 100, 1000}
		}
	}
	if ks == nil {
		ks = []int{1, 4, 8, 16, 32}
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, n := range ns {
			for _, k := range ks {
				cells = append(cells, Cell{
					Function: f, N: n, K: k, R: k,
					Budget:    int64(n) * s.BudgetPerNode,
					Threshold: -1,
				})
			}
		}
	}
	return cells
}

// Experiment2 is the second set (Table 2, Figure 2): quality under a fixed
// *total* budget e = 2^20 as the network size n = 2^i grows, for several
// swarm sizes. The paper's finding: quality depends on the total particle
// count n·k, not on how particles are spread across nodes.
func Experiment2(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	ns := s.Ns
	ks := s.Ks
	if ns == nil {
		if quick {
			ns = pow2s(0, 8)
		} else {
			ns = pow2s(0, 16)
		}
	}
	if ks == nil {
		ks = []int{1, 4, 8, 16}
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, n := range ns {
			for _, k := range ks {
				cells = append(cells, Cell{
					Function: f, N: n, K: k, R: k,
					Budget:    s.TotalBudget,
					Threshold: -1,
				})
			}
		}
	}
	return cells
}

// Experiment3 is the third set (Table 3, Figure 3): quality as the gossip
// cycle length r varies from 2 to 64 local evaluations, k = 16, per-node
// budget 1000 evaluations — the coordination-rate sweep.
func Experiment3(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	ns := s.Ns
	rs := s.Rs
	if ns == nil {
		if quick {
			ns = []int{10, 100}
		} else {
			ns = []int{10, 100, 1000}
		}
	}
	if rs == nil {
		if quick {
			rs = []int{2, 8, 16, 32, 64}
		} else {
			rs = []int{2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64}
		}
	}
	k := 16
	var cells []Cell
	for _, f := range s.Funcs {
		for _, n := range ns {
			for _, r := range rs {
				cells = append(cells, Cell{
					Function: f, N: n, K: k, R: r,
					Budget:    int64(n) * s.BudgetPerNode,
					Threshold: -1,
				})
			}
		}
	}
	return cells
}

// Experiment4 is the fourth set (Table 4, Figure 4): total time (local
// evaluations per node) to reach quality 1e−10, as network size n = 2^i
// and swarm size k vary. Griewank is expected to be censored (the paper
// reports no value for it).
func Experiment4(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	ns := s.Ns
	ks := s.Ks
	if ns == nil {
		if quick {
			ns = pow2s(0, 6)
		} else {
			ns = pow2s(0, 10)
		}
	}
	if ks == nil {
		ks = []int{1, 4, 8, 16}
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, n := range ns {
			for _, k := range ks {
				cells = append(cells, Cell{
					Function: f, N: n, K: k, R: k,
					Threshold: s.Threshold,
					MaxEvals:  s.MaxEvals,
				})
			}
		}
	}
	return cells
}

// AblationNoGossip compares the full coordination service against fully
// independent swarms (r = ∞) on the Experiment-1 grid: the paper's
// "without coordination: exploiting stochasticity" extreme.
func AblationNoGossip(s Spec, quick bool) []Cell {
	base := Experiment1(s, quick)
	var cells []Cell
	for _, c := range base {
		on := c
		on.Tag = "gossip"
		off := c
		off.NoCoordination = true
		cells = append(cells, on, off)
	}
	return cells
}

// AblationTopology sweeps the topology service: Newscast vs static random
// graph vs ring vs star, at fixed n, k, r.
func AblationTopology(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	n := 256
	if quick {
		n = 64
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, topo := range []core.TopologyKind{core.TopoNewscast, core.TopoRandom, core.TopoRing, core.TopoStar} {
			cells = append(cells, Cell{
				Function: f, N: n, K: 16, R: 16,
				Budget:    int64(n) * s.BudgetPerNode,
				Threshold: -1,
				Topology:  topo,
				Tag:       "topo=" + topo.String(),
			})
		}
	}
	return cells
}

// AblationChurn sweeps a one-shot catastrophe killing a fraction of the
// network mid-run (§3.3.4's robustness claim).
func AblationChurn(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	n := 256
	if quick {
		n = 64
	}
	fractions := []float64{0, 0.25, 0.5, 0.75}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, frac := range fractions {
			frac := frac
			c := Cell{
				Function: f, N: n, K: 16, R: 16,
				Budget:    int64(n) * s.BudgetPerNode,
				Threshold: -1,
				Tag:       fmt.Sprintf("crash=%.2f", frac),
			}
			if frac > 0 {
				c.Churn = func() sim.ChurnModel {
					return &sim.CatastropheChurn{AtCycle: int64(s.BudgetPerNode / 4), Fraction: frac}
				}
			}
			cells = append(cells, c)
		}
	}
	return cells
}

// AblationMixedSolvers compares homogeneous PSO against heterogeneous
// node populations (PSO + DE + ES round-robin) and homogeneous DE/ES —
// the paper's future-work "module diversification among peers".
func AblationMixedSolvers(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	n := 128
	if quick {
		n = 32
	}
	k := 16
	variants := []struct {
		tag string
		mk  func() solver.Factory
	}{
		{"solver=pso", nil}, // nil keeps the default PSO factory
		{"solver=de", func() solver.Factory {
			return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
				return solver.NewDE(f, dim, k, r)
			}
		}},
		{"solver=es", func() solver.Factory {
			return func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
				return solver.NewES(f, dim, r)
			}
		}},
		{"solver=mixed", func() solver.Factory {
			return core.MixedFactory(
				func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
					return pso.New(f, dim, k, pso.Config{}, r)
				},
				func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
					return solver.NewDE(f, dim, k, r)
				},
				func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
					return solver.NewES(f, dim, r)
				},
			)
		}},
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, v := range variants {
			cells = append(cells, Cell{
				Function: f, N: n, K: k, R: k,
				Budget:    int64(n) * s.BudgetPerNode,
				Threshold: -1,
				Solvers:   v.mk,
				Tag:       v.tag,
			})
		}
	}
	return cells
}

// AblationMessageLoss sweeps coordination message loss probabilities.
func AblationMessageLoss(s Spec, quick bool) []Cell {
	s = s.withDefaults()
	n := 128
	if quick {
		n = 32
	}
	var cells []Cell
	for _, f := range s.Funcs {
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9} {
			cells = append(cells, Cell{
				Function: f, N: n, K: 16, R: 16,
				Budget:    int64(n) * s.BudgetPerNode,
				Threshold: -1,
				DropProb:  p,
				Tag:       fmt.Sprintf("loss=%.2f", p),
			})
		}
	}
	return cells
}
