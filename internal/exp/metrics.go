package exp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Structured per-cycle metric emission. Experiments and the scenario
// runner emit one Record per sample point into a Sink; the CSV and JSONL
// sinks render rows byte-deterministically (fields in a fixed order,
// floats via strconv's shortest round-trip form), so identical runs
// produce identical files — the property the scenario subsystem's golden
// and worker-invariance tests assert.

// Record is one metric sample of a running network.
type Record struct {
	// Scenario names the spec (or experiment) being run; Rep and Seed
	// identify the repetition within a campaign.
	Scenario string
	Rep      int
	Seed     uint64
	// Cycle is the completed-cycle count (cycle engine) or the sample
	// index (event engine); Time is the simulated time (== Cycle on the
	// cycle engine).
	Cycle int64
	Time  float64
	// Live is the live-node count.
	Live int
	// Evals is the network-wide objective evaluation count.
	Evals int64
	// Quality is f(best) − f(x*); +Inf before any evaluation.
	Quality float64
	// Exchanges/Lost/Adoptions are the coordination-service counters.
	Exchanges int64
	Lost      int64
	Adoptions int64
	// Delivered/Dropped are the engine's message counters (dropped counts
	// dead destinations, partitions and link loss).
	Delivered int64
	Dropped   int64
}

// Sink consumes metric records.
type Sink interface {
	Emit(Record) error
	// Flush forces buffered rows out (sinks are buffered for the many-
	// small-rows emission pattern).
	Flush() error
}

// recordColumns is the fixed CSV header / JSON key order.
var recordColumns = []string{
	"scenario", "rep", "seed", "cycle", "time", "live", "evals",
	"quality", "exchanges", "lost", "adoptions", "delivered", "dropped",
}

// fnum renders a float deterministically: shortest form that round-trips,
// infinities as ±inf (quality is +Inf before the first evaluation).
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonNum renders a float as a JSON value; non-finite values (not
// representable in JSON) become null.
func jsonNum(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CSVSink writes records as CSV with a fixed header, emitted before the
// first row.
type CSVSink struct {
	w      *bufio.Writer
	header bool
}

// NewCSVSink returns a Sink rendering records as CSV rows on w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: bufio.NewWriter(w)} }

// Emit implements Sink.
func (s *CSVSink) Emit(r Record) error {
	if !s.header {
		s.header = true
		if _, err := s.w.WriteString(strings.Join(recordColumns, ",") + "\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "%s,%d,%d,%d,%s,%d,%d,%s,%d,%d,%d,%d,%d\n",
		csvEscape(r.Scenario), r.Rep, r.Seed, r.Cycle, fnum(r.Time), r.Live, r.Evals,
		fnum(r.Quality), r.Exchanges, r.Lost, r.Adoptions, r.Delivered, r.Dropped)
	return err
}

// Flush implements Sink.
func (s *CSVSink) Flush() error { return s.w.Flush() }

// csvEscape quotes a field when it contains CSV metacharacters.
func csvEscape(f string) string {
	if !strings.ContainsAny(f, ",\"\n") {
		return f
	}
	return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
}

// JSONLSink writes one JSON object per record per line, keys in the same
// fixed order as the CSV columns.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink returns a Sink rendering records as JSON lines on w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: bufio.NewWriter(w)} }

// Emit implements Sink.
func (s *JSONLSink) Emit(r Record) error {
	_, err := fmt.Fprintf(s.w,
		`{"scenario":%s,"rep":%d,"seed":%d,"cycle":%d,"time":%s,"live":%d,"evals":%d,"quality":%s,"exchanges":%d,"lost":%d,"adoptions":%d,"delivered":%d,"dropped":%d}`+"\n",
		strconv.Quote(r.Scenario), r.Rep, r.Seed, r.Cycle, jsonNum(r.Time), r.Live, r.Evals,
		jsonNum(r.Quality), r.Exchanges, r.Lost, r.Adoptions, r.Delivered, r.Dropped)
	return err
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// DiscardSink drops every record (benchmarks, dry runs).
type DiscardSink struct{}

// Emit implements Sink.
func (DiscardSink) Emit(Record) error { return nil }

// Flush implements Sink.
func (DiscardSink) Flush() error { return nil }
