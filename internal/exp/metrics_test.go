package exp

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

var sampleRecords = []Record{
	{Scenario: "baseline", Rep: 0, Seed: 42, Cycle: 10, Time: 10, Live: 64,
		Evals: 640, Quality: 1.25, Exchanges: 40, Lost: 2, Adoptions: 11,
		Delivered: 38, Dropped: 2},
	{Scenario: "weird,\"name\"", Rep: 1, Seed: 7, Cycle: 0, Time: 0.5, Live: 1,
		Evals: 0, Quality: math.Inf(1)},
}

func TestCSVSinkRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	for _, r := range sampleRecords {
		if err := s.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if rows[0][0] != "scenario" || rows[0][len(rows[0])-1] != "dropped" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	if rows[1][7] != "1.25" || rows[2][7] != "inf" {
		t.Fatalf("quality cells wrong: %q %q", rows[1][7], rows[2][7])
	}
	if rows[2][0] != `weird,"name"` {
		t.Fatalf("escaping broke the scenario name: %q", rows[2][0])
	}
}

func TestJSONLSinkParses(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, r := range sampleRecords {
		if err := s.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 invalid JSON: %v", err)
	}
	if obj["quality"] != 1.25 || obj["scenario"] != "baseline" || obj["evals"] != float64(640) {
		t.Fatalf("line 0 fields wrong: %v", obj)
	}
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatalf("line 1 invalid JSON: %v", err)
	}
	if obj["quality"] != nil {
		t.Fatalf("+Inf quality must encode as null, got %v", obj["quality"])
	}
}

func TestSinkDeterminism(t *testing.T) {
	render := func(mk func(b *bytes.Buffer) Sink) string {
		var buf bytes.Buffer
		s := mk(&buf)
		for _, r := range sampleRecords {
			if err := s.Emit(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	mkCSV := func(b *bytes.Buffer) Sink { return NewCSVSink(b) }
	mkJSONL := func(b *bytes.Buffer) Sink { return NewJSONLSink(b) }
	if render(mkCSV) != render(mkCSV) {
		t.Fatal("CSV output not byte-stable")
	}
	if render(mkJSONL) != render(mkJSONL) {
		t.Fatal("JSONL output not byte-stable")
	}
}
