package exp

import (
	"fmt"
	"sort"
	"strings"

	"gossipopt/internal/plot"
)

// Report assembles sweep results into the paper's artifacts: a table in
// the avg/min/max/Var format and one figure (chart) per function.
type Report struct {
	Title   string
	Results []CellResult
}

// Table renders the paper-style table. For budget-mode experiments the
// reported metric is solution quality; for threshold mode it is time
// (local evaluations per node), with censored runs counted. Rows are
// grouped by function; within a function, the best row (lowest avg) is
// marked with '*' — the paper's tables report exactly these per-function
// best results.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	fmt.Fprintf(&b, "%-44s %12s %12s %12s %12s %s\n",
		"configuration", "avg", "min", "max", "var", "notes")

	byFunc := map[string][]CellResult{}
	var order []string
	for _, res := range r.Results {
		name := res.Cell.Function.Name
		if _, ok := byFunc[name]; !ok {
			order = append(order, name)
		}
		byFunc[name] = append(byFunc[name], res)
	}
	for _, name := range order {
		group := byFunc[name]
		bestIdx := -1
		for i, res := range group {
			s := res.Quality
			if res.Cell.Threshold >= 0 {
				s = res.Time
			}
			if s.N == 0 {
				continue
			}
			if bestIdx < 0 {
				bestIdx = i
				continue
			}
			prev := group[bestIdx].Quality
			if group[bestIdx].Cell.Threshold >= 0 {
				prev = group[bestIdx].Time
			}
			if s.Avg < prev.Avg {
				bestIdx = i
			}
		}
		for i, res := range group {
			s := res.Quality
			note := ""
			if res.Cell.Threshold >= 0 {
				s = res.Time
				if res.Censored > 0 {
					note = fmt.Sprintf("censored %d/%d", res.Censored, res.Reps)
				}
				if res.Reached == 0 {
					s.Avg, s.Min, s.Max, s.Var = 0, 0, 0, 0
					note = "never reached (–)"
				}
			}
			mark := " "
			if i == bestIdx {
				mark = "*"
			}
			fmt.Fprintf(&b, "%s%-43s %12.5g %12.5g %12.5g %12.5g %s\n",
				mark, res.Cell.Label(), s.Avg, s.Min, s.Max, s.Var, note)
		}
	}
	return b.String()
}

// BestRows returns, per function (in first-seen order), the cell result
// with the lowest average metric — the paper tables' per-function rows.
func (r *Report) BestRows() []CellResult {
	byFunc := map[string]*CellResult{}
	var order []string
	for i := range r.Results {
		res := r.Results[i]
		metric := func(cr CellResult) (float64, bool) {
			if cr.Cell.Threshold >= 0 {
				if cr.Reached == 0 {
					return 0, false
				}
				return cr.Time.Avg, true
			}
			return cr.Quality.Avg, true
		}
		m, ok := metric(res)
		if !ok {
			continue
		}
		name := res.Cell.Function.Name
		cur, seen := byFunc[name]
		if !seen {
			order = append(order, name)
			cp := res
			byFunc[name] = &cp
			continue
		}
		curM, _ := metric(*cur)
		if m < curM {
			cp := res
			byFunc[name] = &cp
		}
	}
	out := make([]CellResult, 0, len(order))
	for _, name := range order {
		out = append(out, *byFunc[name])
	}
	return out
}

// axis selects the figure's x value for a cell given the experiment shape.
type axis func(Cell) float64

// series selects the figure's series key for a cell.
type series func(Cell) string

// Figure builds one chart per function from the results, with the given
// axis/series selectors and y metric ("quality" or "time").
func (r *Report) Figure(xOf axis, seriesOf series, xLabel, metric string, logX bool) []*plot.Chart {
	byFunc := map[string][]CellResult{}
	var order []string
	for _, res := range r.Results {
		name := res.Cell.Function.Name
		if _, ok := byFunc[name]; !ok {
			order = append(order, name)
		}
		byFunc[name] = append(byFunc[name], res)
	}
	var charts []*plot.Chart
	for _, name := range order {
		ch := &plot.Chart{
			Title:  fmt.Sprintf("%s — %s", r.Title, name),
			XLabel: xLabel,
			YLabel: metric,
			LogX:   logX,
			LogY:   true,
		}
		group := byFunc[name]
		bySeries := map[string][]CellResult{}
		var sOrder []string
		for _, res := range group {
			key := seriesOf(res.Cell)
			if _, ok := bySeries[key]; !ok {
				sOrder = append(sOrder, key)
			}
			bySeries[key] = append(bySeries[key], res)
		}
		sort.Strings(sOrder)
		for _, key := range sOrder {
			var xs, ys []float64
			for _, res := range bySeries[key] {
				y := res.Quality.Avg
				if metric == "time" {
					if res.Reached == 0 {
						continue // censored: the paper leaves these out
					}
					y = res.Time.Avg
				}
				xs = append(xs, xOf(res.Cell))
				ys = append(ys, y)
			}
			if len(xs) > 0 {
				ch.Add(key, xs, ys)
			}
		}
		charts = append(charts, ch)
	}
	return charts
}

// Standard figure selectors for the four experiments.

// Figure1 plots quality vs particles per node, one series per network size.
func (r *Report) Figure1() []*plot.Chart {
	return r.Figure(
		func(c Cell) float64 { return float64(c.K) },
		func(c Cell) string { return fmt.Sprintf("size=%d", c.N) },
		"particles per node", "quality", false)
}

// Figure2 plots quality vs network size (log2), one series per swarm size.
func (r *Report) Figure2() []*plot.Chart {
	return r.Figure(
		func(c Cell) float64 { return float64(c.N) },
		func(c Cell) string { return fmt.Sprintf("particles=%d", c.K) },
		"network size", "quality", true)
}

// Figure3 plots quality vs gossip cycle length, one series per network
// size.
func (r *Report) Figure3() []*plot.Chart {
	return r.Figure(
		func(c Cell) float64 { return float64(c.R) },
		func(c Cell) string { return fmt.Sprintf("size=%d", c.N) },
		"gossip cycle length", "quality", false)
}

// Figure4 plots time-to-threshold vs network size, one series per swarm
// size.
func (r *Report) Figure4() []*plot.Chart {
	return r.Figure(
		func(c Cell) float64 { return float64(c.N) },
		func(c Cell) string { return fmt.Sprintf("particles=%d", c.K) },
		"# of nodes", "time", true)
}

// SweepReport renders cell summaries as a human-readable comparison
// table: one row per cell with the final-sample quality (mean ± std over
// repetitions), mean time and evaluation counts, mean dropped messages,
// and — when the sweep declares a threshold — the mean time-to-threshold
// with the reached/total ratio. The row with the best (lowest) mean
// quality is marked '*'; with a threshold, the row with the best mean
// time-to-threshold among fully-reaching cells is marked '>' ('*>' when
// one cell wins both).
func SweepReport(title string, cells []CellSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sweep %s ==\n", title)
	hasThreshold := false
	for i := range cells {
		if cells[i].Threshold != nil {
			hasThreshold = true
			break
		}
	}
	width := 12
	for i := range cells {
		if n := len(cells[i].Cell); n > width {
			width = n
		}
	}
	fmt.Fprintf(&b, "   %-*s %5s %24s %10s %10s %10s", width, "cell", "reps",
		"quality (mean±std)", "time", "evals", "dropped")
	if hasThreshold {
		fmt.Fprintf(&b, " %16s", "to-thr (reached)")
	}
	b.WriteString("\n")

	bestQ, bestT := -1, -1
	for i := range cells {
		c := &cells[i]
		if c.Quality.N > 0 && (bestQ < 0 || c.Quality.Mean < cells[bestQ].Quality.Mean) {
			bestQ = i
		}
		if c.Threshold != nil && c.Reached == c.Reps && c.Reps > 0 &&
			(bestT < 0 || c.ToThreshold.Mean < cells[bestT].ToThreshold.Mean) {
			bestT = i
		}
	}
	for i := range cells {
		c := &cells[i]
		mark := ""
		if i == bestQ {
			mark += "*"
		}
		if i == bestT {
			mark += ">"
		}
		fmt.Fprintf(&b, "%-2s %-*s %5d %24s %10.5g %10.5g %10.5g", mark, width, c.Cell, c.Reps,
			fmt.Sprintf("%.5g±%.3g", c.Quality.Mean, c.Quality.Std),
			c.Time.Mean, c.Evals.Mean, c.Dropped.Mean)
		if hasThreshold {
			if c.Reached > 0 {
				fmt.Fprintf(&b, " %10.5g %2d/%2d", c.ToThreshold.Mean, c.Reached, c.Reps)
			} else {
				// ASCII dash: %10s pads by bytes, so a multi-byte dash
				// would misalign the column.
				fmt.Fprintf(&b, " %10s %2d/%2d", "-", 0, c.Reps)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
