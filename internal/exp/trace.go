package exp

import (
	"fmt"
	"sort"
	"strings"

	"gossipopt/internal/core"
	"gossipopt/internal/plot"
)

// Trace records a network's convergence curve: global solution quality as
// a function of total evaluations. Traces feed convergence figures (an
// extension beyond the paper's end-of-run tables) and regression tests
// that assert monotone improvement.
type Trace struct {
	Evals   []int64
	Quality []float64
}

// Record appends one sample.
func (t *Trace) Record(evals int64, quality float64) {
	t.Evals = append(t.Evals, evals)
	t.Quality = append(t.Quality, quality)
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Evals) }

// Final returns the last quality sample (or +Inf semantics via NaN-free 0
// guard: it panics on an empty trace, which is a harness bug).
func (t *Trace) Final() float64 {
	if len(t.Quality) == 0 {
		panic("exp: Final on empty trace")
	}
	return t.Quality[len(t.Quality)-1]
}

// EvalsToReach returns the first evaluation count at which quality reached
// the threshold, and ok = false if it never did.
func (t *Trace) EvalsToReach(threshold float64) (int64, bool) {
	for i, q := range t.Quality {
		if q <= threshold {
			return t.Evals[i], true
		}
	}
	return 0, false
}

// IsMonotone reports whether quality never increases along the trace
// (global best is monotone by construction; violation indicates a bug).
func (t *Trace) IsMonotone() bool {
	for i := 1; i < len(t.Quality); i++ {
		if t.Quality[i] > t.Quality[i-1] {
			return false
		}
	}
	return true
}

// TraceRun runs the network to the evaluation budget, sampling quality
// every sampleEvery evaluations (in addition to the final state).
func TraceRun(net *core.Network, budget int64, sampleEvery int64) *Trace {
	tr := &Trace{}
	if sampleEvery <= 0 {
		sampleEvery = budget / 100
		if sampleEvery <= 0 {
			sampleEvery = 1
		}
	}
	next := sampleEvery
	for net.TotalEvals() < budget {
		if net.Engine().LiveCount() == 0 {
			break
		}
		net.Step()
		if ev := net.TotalEvals(); ev >= next {
			tr.Record(ev, net.Quality())
			next = ev + sampleEvery
		}
	}
	tr.Record(net.TotalEvals(), net.Quality())
	return tr
}

// ConvergenceChart renders one or more labelled traces as a log-quality
// chart over evaluations. Series appear in sorted label order so marker
// assignment is deterministic.
func ConvergenceChart(title string, traces map[string]*Trace) *plot.Chart {
	ch := &plot.Chart{Title: title, XLabel: "evaluations", YLabel: "quality", LogY: true}
	labels := make([]string, 0, len(traces))
	for label := range traces {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		tr := traces[label]
		xs := make([]float64, tr.Len())
		for i, e := range tr.Evals {
			xs[i] = float64(e)
		}
		ch.Add(label, xs, append([]float64(nil), tr.Quality...))
	}
	return ch
}

// Markdown renders a set of cell results as a GitHub-flavored markdown
// table — the format EXPERIMENTS.md embeds.
func Markdown(title string, results []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| configuration | avg | min | max | var | notes |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, res := range results {
		s := res.Quality
		note := ""
		if res.Cell.Threshold >= 0 {
			s = res.Time
			if res.Reached == 0 {
				fmt.Fprintf(&b, "| %s | – | – | – | – | never reached |\n", res.Cell.Label())
				continue
			}
			if res.Censored > 0 {
				note = fmt.Sprintf("censored %d/%d", res.Censored, res.Reps)
			}
		}
		fmt.Fprintf(&b, "| %s | %.5g | %.5g | %.5g | %.5g | %s |\n",
			res.Cell.Label(), s.Avg, s.Min, s.Max, s.Var, note)
	}
	return b.String()
}
