package exp

import (
	"strings"
	"testing"

	"gossipopt/internal/core"
	"gossipopt/internal/funcs"
)

func traceNet(seed uint64) *core.Network {
	return core.NewNetwork(core.Config{
		Nodes: 8, Particles: 8, GossipEvery: 8,
		Function: funcs.Sphere, Seed: seed,
	})
}

func TestTraceRunSamples(t *testing.T) {
	tr := TraceRun(traceNet(1), 8000, 800)
	if tr.Len() < 10 {
		t.Fatalf("trace has %d samples", tr.Len())
	}
	if tr.Evals[tr.Len()-1] < 8000 {
		t.Fatalf("final sample at %d evals", tr.Evals[tr.Len()-1])
	}
}

func TestTraceMonotone(t *testing.T) {
	tr := TraceRun(traceNet(2), 16000, 400)
	if !tr.IsMonotone() {
		t.Fatalf("global-best trace not monotone: %v", tr.Quality)
	}
}

func TestTraceEvalsToReach(t *testing.T) {
	tr := TraceRun(traceNet(3), 40000, 500)
	final := tr.Final()
	ev, ok := tr.EvalsToReach(final * 2)
	if !ok {
		t.Fatal("threshold above final never reached")
	}
	if ev <= 0 || ev > 40000+8 {
		t.Fatalf("EvalsToReach = %d", ev)
	}
	if _, ok := tr.EvalsToReach(-1); ok {
		t.Fatal("impossible threshold reported reached")
	}
}

func TestTraceDefaultSampling(t *testing.T) {
	tr := TraceRun(traceNet(4), 1000, 0) // defaults to budget/100
	if tr.Len() < 50 {
		t.Fatalf("default sampling too sparse: %d", tr.Len())
	}
}

func TestTraceFinalPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Trace{}).Final()
}

func TestConvergenceChart(t *testing.T) {
	a := TraceRun(traceNet(5), 4000, 400)
	b := TraceRun(traceNet(6), 4000, 400)
	ch := ConvergenceChart("conv", map[string]*Trace{"a": a, "b": b})
	if len(ch.Series) != 2 {
		t.Fatalf("series = %d", len(ch.Series))
	}
	out := ch.ASCII(60, 12)
	if !strings.Contains(out, "conv") {
		t.Fatal("title missing")
	}
}

func TestMarkdownTable(t *testing.T) {
	cells := []Cell{
		{Function: funcs.Sphere, N: 2, K: 8, R: 8, Budget: 400, Threshold: -1},
		{Function: funcs.Griewank, N: 2, K: 8, R: 8, Threshold: 1e-10, MaxEvals: 400},
	}
	r := &Runner{Reps: 2, BaseSeed: 7}
	md := Markdown("test table", r.Sweep(cells))
	if !strings.Contains(md, "| configuration |") {
		t.Fatalf("markdown header missing:\n%s", md)
	}
	if !strings.Contains(md, "Sphere") {
		t.Fatal("row missing")
	}
	if !strings.Contains(md, "never reached") {
		t.Fatalf("censored marker missing:\n%s", md)
	}
}
