// Package funcs implements the continuous benchmark functions used in the
// paper's evaluation — De Jong's F2, Zakharov, Rosenbrock, Sphere,
// Schaffer's F6 and Griewank — plus several additional standard test
// functions useful for wider experiments.
//
// Every function is exposed as a Function value carrying its name, domain
// bounds, dimensionality conventions and the location/value of the known
// global optimum, so experiments can compute solution quality
// f(best) − f(x*) uniformly. All functions here are minimization problems
// with optimum value 0 (Schwefel is shifted to make this hold).
package funcs

import (
	"fmt"
	"math"
)

// Objective is a real-valued function of a real vector.
type Objective func(x []float64) float64

// Function describes a benchmark objective: its evaluator, box domain
// [Lo, Hi]^dim, the dimension used in the paper (FixedDim > 0 forces that
// dimension, e.g. De Jong F2 is 2-D), and the known global optimum.
type Function struct {
	Name string
	Eval Objective
	// Lo and Hi bound each coordinate of the search domain.
	Lo, Hi float64
	// DefaultDim is the dimension used by the paper's experiments (10 for
	// all functions except F2). FixedDim, when nonzero, is the only valid
	// dimension for the function.
	DefaultDim int
	FixedDim   int
	// OptimumAt returns the location of the global optimum for dimension d.
	OptimumAt func(d int) []float64
	// OptimumValue is f at the global optimum (0 for all functions here).
	OptimumValue float64
	// Hardness is the paper's informal classification: "easy" (F2),
	// "nice" (Zakharov, Sphere, Rosenbrock) or "hard" (Schaffer, Griewank).
	Hardness string
}

// Dim resolves the working dimension for the function: FixedDim when set,
// otherwise d when positive, otherwise DefaultDim.
func (f Function) Dim(d int) int {
	if f.FixedDim > 0 {
		return f.FixedDim
	}
	if d > 0 {
		return d
	}
	return f.DefaultDim
}

// Quality returns the solution quality of x: f(x) − f(x*). Since every
// optimum value is 0, this is simply f(x); kept explicit for clarity.
func (f Function) Quality(x []float64) float64 {
	return f.Eval(x) - f.OptimumValue
}

func origin(d int) []float64 { return make([]float64, d) }

func ones(d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Sphere is the d-dimensional sphere function: sum x_i^2.
// Domain [-100, 100]^d, optimum 0 at the origin. "Nice" for PSO.
var Sphere = Function{
	Name: "Sphere",
	Eval: func(x []float64) float64 {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		return s
	},
	Lo: -100, Hi: 100,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "nice",
}

// Rosenbrock is the classic banana valley:
// sum_{i<d} 100(x_{i+1} − x_i^2)^2 + (1 − x_i)^2.
// Domain [-30, 30]^d, optimum 0 at (1, ..., 1). "Nice" but with a long flat
// valley that slows convergence.
var Rosenbrock = Function{
	Name: "Rosenbrock",
	Eval: func(x []float64) float64 {
		var s float64
		for i := 0; i+1 < len(x); i++ {
			a := x[i+1] - x[i]*x[i]
			b := 1 - x[i]
			s += 100*a*a + b*b
		}
		return s
	},
	Lo: -30, Hi: 30,
	DefaultDim: 10,
	OptimumAt:  ones,
	Hardness:   "nice",
}

// F2 is De Jong's F2: the 2-dimensional Rosenbrock specialization used by
// the paper. Domain [-2.048, 2.048]^2, optimum 0 at (1, 1). "Easy".
var F2 = Function{
	Name: "F2",
	Eval: func(x []float64) float64 {
		a := x[1] - x[0]*x[0]
		b := 1 - x[0]
		return 100*a*a + b*b
	},
	Lo: -2.048, Hi: 2.048,
	DefaultDim: 2,
	FixedDim:   2,
	OptimumAt:  ones,
	Hardness:   "easy",
}

// Zakharov: sum x_i^2 + (sum 0.5 i x_i)^2 + (sum 0.5 i x_i)^4,
// with i counted from 1. Domain [-5, 10]^d, optimum 0 at the origin.
var Zakharov = Function{
	Name: "Zakharov",
	Eval: func(x []float64) float64 {
		var s1, s2 float64
		for i, xi := range x {
			s1 += xi * xi
			s2 += 0.5 * float64(i+1) * xi
		}
		return s1 + s2*s2 + s2*s2*s2*s2
	},
	Lo: -5, Hi: 10,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "nice",
}

// Schaffer is Schaffer's F6 generalized to d dimensions by applying the
// classic 2-D form to the squared norm:
// 0.5 + (sin^2 sqrt(sum x_i^2) − 0.5) / (1 + 0.001 sum x_i^2)^2.
// Domain [-100, 100]^d, optimum 0 at the origin. "Hard": concentric ripples
// with a strong local optimum ring at quality ≈ 0.00972 for 10-D PSO, which
// is exactly the floor visible in the paper's tables.
var Schaffer = Function{
	Name: "Schaffer",
	Eval: func(x []float64) float64 {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		sin := math.Sin(math.Sqrt(s))
		den := 1 + 0.001*s
		return 0.5 + (sin*sin-0.5)/(den*den)
	},
	Lo: -100, Hi: 100,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "hard",
}

// Griewank: 1 + sum x_i^2/4000 − prod cos(x_i/sqrt(i)), i from 1.
// Domain [-600, 600]^d, optimum 0 at the origin. "Hard": thousands of
// regularly spaced local minima.
var Griewank = Function{
	Name: "Griewank",
	Eval: func(x []float64) float64 {
		var sum float64
		prod := 1.0
		for i, xi := range x {
			sum += xi * xi
			prod *= math.Cos(xi / math.Sqrt(float64(i+1)))
		}
		return 1 + sum/4000 - prod
	},
	Lo: -600, Hi: 600,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "hard",
}

// Rastrigin: 10 d + sum (x_i^2 − 10 cos(2π x_i)).
// Domain [-5.12, 5.12]^d, optimum 0 at the origin.
var Rastrigin = Function{
	Name: "Rastrigin",
	Eval: func(x []float64) float64 {
		s := 10 * float64(len(x))
		for _, xi := range x {
			s += xi*xi - 10*math.Cos(2*math.Pi*xi)
		}
		return s
	},
	Lo: -5.12, Hi: 5.12,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "hard",
}

// Ackley: −20 exp(−0.2 sqrt(mean x_i^2)) − exp(mean cos 2π x_i) + 20 + e.
// Domain [-32.768, 32.768]^d, optimum 0 at the origin.
var Ackley = Function{
	Name: "Ackley",
	Eval: func(x []float64) float64 {
		d := float64(len(x))
		var s1, s2 float64
		for _, xi := range x {
			s1 += xi * xi
			s2 += math.Cos(2 * math.Pi * xi)
		}
		return -20*math.Exp(-0.2*math.Sqrt(s1/d)) - math.Exp(s2/d) + 20 + math.E
	},
	Lo: -32.768, Hi: 32.768,
	DefaultDim: 10,
	OptimumAt:  origin,
	Hardness:   "hard",
}

// Levy function. Domain [-10, 10]^d, optimum 0 at (1, ..., 1).
var Levy = Function{
	Name: "Levy",
	Eval: func(x []float64) float64 {
		w := func(xi float64) float64 { return 1 + (xi-1)/4 }
		d := len(x)
		w1 := w(x[0])
		s := math.Pow(math.Sin(math.Pi*w1), 2)
		for i := 0; i < d-1; i++ {
			wi := w(x[i])
			t := math.Sin(math.Pi*wi + 1)
			s += (wi - 1) * (wi - 1) * (1 + 10*t*t)
		}
		wd := w(x[d-1])
		t := math.Sin(2 * math.Pi * wd)
		s += (wd - 1) * (wd - 1) * (1 + t*t)
		return s
	},
	Lo: -10, Hi: 10,
	DefaultDim: 10,
	OptimumAt:  ones,
	Hardness:   "hard",
}

// StyblinskiTang, shifted so the optimum value is exactly 0:
// 0.5 sum (x_i^4 − 16 x_i^2 + 5 x_i) + 39.16617 d... The per-dimension
// minimum is at x_i ≈ −2.903534 with value ≈ −39.16616570377142.
// Domain [-5, 5]^d.
var StyblinskiTang = Function{
	Name: "StyblinskiTang",
	Eval: func(x []float64) float64 {
		var s float64
		for _, xi := range x {
			s += xi*xi*xi*xi - 16*xi*xi + 5*xi
		}
		return 0.5*s + 39.16616570377142*float64(len(x))
	},
	Lo: -5, Hi: 5,
	DefaultDim: 10,
	OptimumAt: func(d int) []float64 {
		v := make([]float64, d)
		for i := range v {
			v[i] = -2.9035340276896057
		}
		return v
	},
	Hardness: "hard",
}

// Schwefel 2.26, shifted to optimum 0:
// 418.9829 d − sum x_i sin(sqrt |x_i|). Domain [-500, 500]^d,
// optimum at x_i ≈ 420.9687. Unlike the other benchmarks, Schwefel's
// formula is unbounded below *outside* the domain, so out-of-box
// coordinates are clamped to the boundary with a quadratic distance
// penalty (the standard treatment); otherwise unclamped solvers could
// report fitness below the true optimum.
var Schwefel = Function{
	Name: "Schwefel",
	Eval: func(x []float64) float64 {
		s := 418.9828872724339 * float64(len(x))
		var penalty float64
		for _, xi := range x {
			switch {
			case xi > 500:
				penalty += (xi - 500) * (xi - 500)
				xi = 500
			case xi < -500:
				penalty += (xi + 500) * (xi + 500)
				xi = -500
			}
			s -= xi * math.Sin(math.Sqrt(math.Abs(xi)))
		}
		return s + penalty
	},
	Lo: -500, Hi: 500,
	DefaultDim: 10,
	OptimumAt: func(d int) []float64 {
		v := make([]float64, d)
		for i := range v {
			v[i] = 420.968746
		}
		return v
	},
	Hardness: "hard",
}

// PaperSuite is the six-function suite evaluated in the paper, in the order
// the tables report them.
var PaperSuite = []Function{F2, Zakharov, Rosenbrock, Sphere, Schaffer, Griewank}

// ExtendedSuite adds the extra standard functions to the paper suite.
var ExtendedSuite = append(append([]Function{}, PaperSuite...),
	Rastrigin, Ackley, Levy, StyblinskiTang, Schwefel)

// ByName returns the function with the given (case-sensitive) name.
func ByName(name string) (Function, error) {
	for _, f := range ExtendedSuite {
		if f.Name == name {
			return f, nil
		}
	}
	return Function{}, fmt.Errorf("funcs: unknown function %q", name)
}

// Names returns the names of all available functions.
func Names() []string {
	out := make([]string, len(ExtendedSuite))
	for i, f := range ExtendedSuite {
		out[i] = f.Name
	}
	return out
}

// Counting wraps f so that every evaluation increments *n. It is the hook
// experiments use to enforce global evaluation budgets.
func Counting(f Objective, n *int64) Objective {
	return func(x []float64) float64 {
		*n++
		return f(x)
	}
}
