package funcs

import (
	"math"
	"testing"
	"testing/quick"

	"gossipopt/internal/rng"
)

func TestOptimumValues(t *testing.T) {
	for _, f := range ExtendedSuite {
		d := f.Dim(0)
		x := f.OptimumAt(d)
		if len(x) != d {
			t.Fatalf("%s: OptimumAt(%d) has dim %d", f.Name, d, len(x))
		}
		got := f.Eval(x)
		if math.Abs(got-f.OptimumValue) > 1e-6 {
			t.Errorf("%s: f(x*) = %g, want %g", f.Name, got, f.OptimumValue)
		}
	}
}

func TestOptimumInsideDomain(t *testing.T) {
	for _, f := range ExtendedSuite {
		for _, xi := range f.OptimumAt(f.Dim(0)) {
			if xi < f.Lo || xi > f.Hi {
				t.Errorf("%s: optimum coordinate %g outside [%g, %g]", f.Name, xi, f.Lo, f.Hi)
			}
		}
	}
}

// Property: every function is nonnegative over its domain (all are shifted
// to have minimum value 0).
func TestNonNegativeOverDomain(t *testing.T) {
	r := rng.New(99)
	for _, f := range ExtendedSuite {
		f := f
		d := f.Dim(0)
		if err := quick.Check(func(seed uint32) bool {
			rr := rng.New(uint64(seed) ^ r.Uint64())
			x := make([]float64, d)
			for i := range x {
				x[i] = rr.UniformIn(f.Lo, f.Hi)
			}
			v := f.Eval(x)
			return v >= -1e-9 && !math.IsNaN(v) && !math.IsInf(v, 0)
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestSphereKnownValues(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{0, 0}, 0},
		{[]float64{1, 2}, 5},
		{[]float64{-3}, 9},
	}
	for _, c := range cases {
		if got := Sphere.Eval(c.x); got != c.want {
			t.Errorf("Sphere(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRosenbrockKnownValues(t *testing.T) {
	if got := Rosenbrock.Eval([]float64{1, 1, 1}); got != 0 {
		t.Errorf("Rosenbrock(1,1,1) = %v", got)
	}
	// f(0,0) = 100*0 + 1 = 1
	if got := Rosenbrock.Eval([]float64{0, 0}); got != 1 {
		t.Errorf("Rosenbrock(0,0) = %v", got)
	}
}

func TestF2MatchesRosenbrock2D(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		x := []float64{r.UniformIn(-2, 2), r.UniformIn(-2, 2)}
		if f2, rb := F2.Eval(x), Rosenbrock.Eval(x); math.Abs(f2-rb) > 1e-12 {
			t.Fatalf("F2(%v)=%v != Rosenbrock=%v", x, f2, rb)
		}
	}
}

func TestF2IsFixed2D(t *testing.T) {
	if F2.Dim(10) != 2 {
		t.Fatalf("F2.Dim(10) = %d, want 2", F2.Dim(10))
	}
}

func TestZakharovKnownValues(t *testing.T) {
	// x = (1, 0): s1 = 1, s2 = 0.5 -> 1 + 0.25 + 0.0625
	got := Zakharov.Eval([]float64{1, 0})
	want := 1 + 0.25 + 0.0625
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Zakharov(1,0) = %v, want %v", got, want)
	}
}

func TestGriewankKnownValues(t *testing.T) {
	// Origin: 1 + 0 - 1 = 0.
	if got := Griewank.Eval(make([]float64, 10)); got != 0 {
		t.Errorf("Griewank(0) = %v", got)
	}
}

func TestSchafferRippleFloor(t *testing.T) {
	// The first local-minimum ring of Schaffer F6 sits at ||x|| = π (where
	// sin²||x|| = 0) with value 0.5·(1 − 1/(1+0.001π²)²) ≈ 0.0097. This
	// floor matches the paper's tables where Schaffer min = max = 0.00972.
	d := 10
	x := make([]float64, d)
	x[0] = math.Pi
	got := Schaffer.Eval(x)
	if got < 0.008 || got > 0.011 {
		t.Errorf("Schaffer ring value = %v, want ≈ 0.0097", got)
	}
}

func TestRastriginKnownValues(t *testing.T) {
	// x_i = 1 for all i: each term is 1 - 10*cos(2π) = 1 - 10, plus 10d.
	d := 4
	x := make([]float64, d)
	for i := range x {
		x[i] = 1
	}
	got := Rastrigin.Eval(x)
	want := float64(d) // 10d + d(1-10) = d
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Rastrigin(1...) = %v, want %v", got, want)
	}
}

func TestAckleyOrigin(t *testing.T) {
	if got := Ackley.Eval(make([]float64, 10)); math.Abs(got) > 1e-12 {
		t.Errorf("Ackley(0) = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, f.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestPaperSuiteOrder(t *testing.T) {
	want := []string{"F2", "Zakharov", "Rosenbrock", "Sphere", "Schaffer", "Griewank"}
	if len(PaperSuite) != len(want) {
		t.Fatalf("PaperSuite has %d functions", len(PaperSuite))
	}
	for i, f := range PaperSuite {
		if f.Name != want[i] {
			t.Errorf("PaperSuite[%d] = %s, want %s", i, f.Name, want[i])
		}
	}
}

func TestCounting(t *testing.T) {
	var n int64
	f := Counting(Sphere.Eval, &n)
	for i := 0; i < 7; i++ {
		f([]float64{1, 2})
	}
	if n != 7 {
		t.Fatalf("Counting recorded %d evals, want 7", n)
	}
}

func TestDimResolution(t *testing.T) {
	if Sphere.Dim(0) != 10 {
		t.Errorf("Sphere.Dim(0) = %d", Sphere.Dim(0))
	}
	if Sphere.Dim(5) != 5 {
		t.Errorf("Sphere.Dim(5) = %d", Sphere.Dim(5))
	}
}

func TestQualityEqualsEvalForZeroOptima(t *testing.T) {
	x := []float64{1, 2, 3}
	if Sphere.Quality(x) != Sphere.Eval(x) {
		t.Fatal("Quality != Eval for zero-optimum function")
	}
}

func BenchmarkEval(b *testing.B) {
	for _, f := range PaperSuite {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			d := f.Dim(0)
			x := make([]float64, d)
			for i := range x {
				x[i] = 0.5
			}
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = f.Eval(x)
			}
			_ = sink
		})
	}
}

// Property: all origin-optimum paper functions are invariant under
// coordinate sign flips at the origin-symmetric ones (Sphere, Schaffer,
// Rastrigin, Ackley are even functions).
func TestEvenFunctions(t *testing.T) {
	even := []Function{Sphere, Schaffer, Rastrigin, Ackley}
	r := rng.New(77)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		for _, f := range even {
			d := f.Dim(0)
			x := make([]float64, d)
			neg := make([]float64, d)
			for i := range x {
				x[i] = rr.UniformIn(f.Lo/2, f.Hi/2)
				neg[i] = -x[i]
			}
			if math.Abs(f.Eval(x)-f.Eval(neg)) > 1e-9*(1+math.Abs(f.Eval(x))) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sphere and Rastrigin are permutation-symmetric.
func TestPermutationSymmetry(t *testing.T) {
	r := rng.New(78)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		for _, f := range []Function{Sphere, Rastrigin, Griewank} {
			if f.Name == "Griewank" {
				continue // Griewank's cos(x_i/sqrt(i)) is NOT symmetric
			}
			d := f.Dim(0)
			x := make([]float64, d)
			for i := range x {
				x[i] = rr.UniformIn(f.Lo/2, f.Hi/2)
			}
			perm := rr.Perm(d)
			y := make([]float64, d)
			for i, p := range perm {
				y[i] = x[p]
			}
			if math.Abs(f.Eval(x)-f.Eval(y)) > 1e-9*(1+math.Abs(f.Eval(x))) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchwefelPenaltyOutsideDomain(t *testing.T) {
	// Outside the box, Schwefel must never fall below its optimum value —
	// the quadratic penalty guarantees it.
	r := rng.New(79)
	for i := 0; i < 1000; i++ {
		x := make([]float64, 10)
		for j := range x {
			x[j] = r.UniformIn(-5000, 5000)
		}
		if v := Schwefel.Eval(x); v < -1e-9 {
			t.Fatalf("Schwefel(%v...) = %g below optimum", x[0], v)
		}
	}
}

func TestGriewankProductTermMatters(t *testing.T) {
	// Regression: the product index must start at 1 (cos(x_i/sqrt(i+1))).
	// At x = (π·sqrt(1), 0, ..., 0) the first cos term is cos(π) = -1.
	x := make([]float64, 10)
	x[0] = math.Pi
	got := Griewank.Eval(x)
	want := 1 + math.Pi*math.Pi/4000 + 1 // prod = -1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Griewank = %v, want %v", got, want)
	}
}
