package funcs

import (
	"fmt"

	"gossipopt/internal/rng"
)

// Landscape transformations, standard practice in optimization
// benchmarking: shifting moves the optimum away from the origin (defeating
// origin-biased solvers), noise models measurement error, and dimension
// pinning fixes a function to a specific dimensionality.

// Shifted returns f with its landscape translated so the global optimum
// moves to `at` (which must lie inside the domain and have the function's
// dimension). The domain box is unchanged; regions shifted outside simply
// become unreachable, as is conventional.
func Shifted(f Function, at []float64) (Function, error) {
	d := f.Dim(len(at))
	if len(at) != d {
		return Function{}, fmt.Errorf("funcs: shift point has dim %d, function wants %d", len(at), d)
	}
	for _, xi := range at {
		if xi < f.Lo || xi > f.Hi {
			return Function{}, fmt.Errorf("funcs: shift point %v outside domain [%g, %g]", xi, f.Lo, f.Hi)
		}
	}
	orig := f.OptimumAt(d)
	delta := make([]float64, d)
	for i := range delta {
		delta[i] = at[i] - orig[i]
	}
	inner := f.Eval
	shifted := f
	shifted.Name = f.Name + "+shift"
	shifted.FixedDim = d
	shifted.Eval = func(x []float64) float64 {
		tmp := make([]float64, len(x))
		for i := range x {
			tmp[i] = x[i] - delta[i]
		}
		return inner(tmp)
	}
	atCopy := append([]float64(nil), at...)
	shifted.OptimumAt = func(int) []float64 {
		return append([]float64(nil), atCopy...)
	}
	return shifted, nil
}

// RandomShift builds a Shifted copy of f with the optimum moved to a
// uniform random point in the central half of the domain (staying away
// from the boundary keeps the basin fully inside the box).
func RandomShift(f Function, dim int, r *rng.RNG) Function {
	d := f.Dim(dim)
	at := make([]float64, d)
	mid := (f.Lo + f.Hi) / 2
	half := (f.Hi - f.Lo) / 4
	for i := range at {
		at[i] = r.UniformIn(mid-half, mid+half)
	}
	out, err := Shifted(f, at)
	if err != nil {
		// Unreachable by construction; fail loudly in development.
		panic(err)
	}
	return out
}

// Noisy returns f with additive Gaussian evaluation noise of the given
// standard deviation drawn from r. The optimum metadata is unchanged:
// solution quality is still measured against the true landscape, while the
// solver only sees noisy values — the usual noisy-optimization setup.
// The returned function is NOT safe for concurrent evaluation (r is
// shared); give each node its own Noisy wrapper.
func Noisy(f Function, sigma float64, r *rng.RNG) Function {
	inner := f.Eval
	noisy := f
	noisy.Name = f.Name + "+noise"
	noisy.Eval = func(x []float64) float64 {
		return inner(x) + sigma*r.NormFloat64()
	}
	return noisy
}

// WithDim pins f to dimension d (returns f unchanged for fixed-dimension
// functions such as F2).
func WithDim(f Function, d int) Function {
	if f.FixedDim > 0 || d <= 0 {
		return f
	}
	f.FixedDim = d
	return f
}
