package funcs

import (
	"math"
	"testing"

	"gossipopt/internal/rng"
)

func TestShiftedMovesOptimum(t *testing.T) {
	at := make([]float64, 10)
	for i := range at {
		at[i] = float64(i) - 4.5
	}
	sh, err := Shifted(Rastrigin, at)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Eval(at); math.Abs(got) > 1e-9 {
		t.Fatalf("f(new optimum) = %g", got)
	}
	opt := sh.OptimumAt(10)
	for i := range opt {
		if opt[i] != at[i] {
			t.Fatalf("OptimumAt = %v", opt)
		}
	}
	// The origin is no longer optimal.
	if sh.Eval(make([]float64, 10)) < 1 {
		t.Fatal("origin still near-optimal after shift")
	}
}

func TestShiftedPreservesValuesUpToTranslation(t *testing.T) {
	at := []float64{1, -2, 3, 0, 1, -1, 2, 0.5, -0.5, 1.5}
	sh, err := Shifted(Sphere, at)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		x := make([]float64, 10)
		for j := range x {
			x[j] = r.UniformIn(-5, 5)
		}
		moved := make([]float64, 10)
		for j := range x {
			moved[j] = x[j] + at[j]
		}
		if d := math.Abs(sh.Eval(moved) - Sphere.Eval(x)); d > 1e-9 {
			t.Fatalf("translation broken: delta %g", d)
		}
	}
}

func TestShiftedRejectsBadInput(t *testing.T) {
	if _, err := Shifted(F2, []float64{1, 2, 3}); err == nil {
		t.Fatal("dimension mismatch accepted (F2 is fixed 2-D)")
	}
	out := make([]float64, 10)
	out[0] = 1e9
	if _, err := Shifted(Sphere, out); err == nil {
		t.Fatal("out-of-domain shift accepted")
	}
}

func TestShiftedDimFromPoint(t *testing.T) {
	// Sphere has no FixedDim; a 2-D shift point pins the result to 2-D.
	sh, err := Shifted(Sphere, []float64{1, 2})
	if err == nil {
		if sh.Dim(0) != 2 {
			t.Fatalf("dim = %d", sh.Dim(0))
		}
	}
}

func TestRandomShiftSolvableByPSO(t *testing.T) {
	r := rng.New(2)
	sh := RandomShift(Sphere, 10, r)
	opt := sh.OptimumAt(10)
	if got := sh.Eval(opt); math.Abs(got) > 1e-9 {
		t.Fatalf("f(optimum) = %g", got)
	}
	for _, xi := range opt {
		if xi < sh.Lo || xi > sh.Hi {
			t.Fatalf("optimum coordinate %g outside domain", xi)
		}
	}
}

func TestNoisyMeanIsTrueValue(t *testing.T) {
	r := rng.New(3)
	nf := Noisy(Sphere, 0.5, r)
	x := []float64{1, 2, 0, 0, 0, 0, 0, 0, 0, 0}
	truth := Sphere.Eval(x)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += nf.Eval(x)
	}
	if mean := sum / n; math.Abs(mean-truth) > 0.02 {
		t.Fatalf("noisy mean %g, truth %g", mean, truth)
	}
}

func TestNoisyZeroSigmaIsExact(t *testing.T) {
	nf := Noisy(Sphere, 0, rng.New(4))
	x := []float64{3, 4}
	if nf.Eval(x) != 25 {
		t.Fatal("zero-sigma noise changed values")
	}
}

func TestWithDim(t *testing.T) {
	f5 := WithDim(Sphere, 5)
	if f5.Dim(0) != 5 || f5.Dim(30) != 5 {
		t.Fatalf("WithDim not pinned: %d", f5.Dim(0))
	}
	// F2 already fixed: unchanged.
	if WithDim(F2, 7).Dim(0) != 2 {
		t.Fatal("WithDim overrode FixedDim")
	}
	if WithDim(Sphere, 0).Dim(0) != 10 {
		t.Fatal("WithDim(0) should be identity")
	}
}
