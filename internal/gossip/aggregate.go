package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Average implements gossip-based averaging aggregation (Jelasity,
// Montresor & Babaoglu, ACM TOCS 2005): each cycle a node picks a random
// peer and both replace their values with the pairwise mean. The global sum
// is invariant while the empirical variance contracts exponentially, so
// every node's value converges to the network-wide average. The paper cites
// this protocol as a canonical application of peer sampling; it is also
// independently useful for estimating network size (push one 1.0 and
// average: the mean tends to 1/n).
type Average struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Average instances live.
	SelfSlot int

	value float64

	// Exchanges counts initiated pairwise averaging steps.
	Exchanges int64
}

// Value returns the node's current estimate.
func (a *Average) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Average) SetValue(v float64) { a.value = v }

// NextCycle implements sim.Protocol: one pairwise averaging exchange.
func (a *Average) NextCycle(n *sim.Node, e *sim.Engine) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	peer := e.Node(peerID)
	if peer == nil || !peer.Alive {
		return
	}
	remote, ok := peer.Protocol(a.SelfSlot).(*Average)
	if !ok {
		return
	}
	mean := (a.value + remote.value) / 2
	a.value = mean
	remote.value = mean
	a.Exchanges++
}

// Aggregate generalizes pairwise gossip aggregation to any commutative,
// associative, idempotent-converging combiner: both parties replace their
// values with Combine(a, b). With Combine = min or max every node
// converges to the global extremum in O(log n) cycles; with the
// mean combiner this degenerates to Average (kept separate because the
// mean combiner must update both sides with the same value, which
// Aggregate also guarantees).
type Aggregate struct {
	// Slot is the protocol slot of the node's PeerSampler. SelfSlot is
	// where Aggregate instances live. Combine merges two values.
	Slot     int
	SelfSlot int
	Combine  func(a, b float64) float64

	value float64

	// Exchanges counts initiated pairwise steps.
	Exchanges int64
}

// Value returns the node's current estimate.
func (a *Aggregate) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Aggregate) SetValue(v float64) { a.value = v }

// NextCycle implements sim.Protocol.
func (a *Aggregate) NextCycle(n *sim.Node, e *sim.Engine) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	peer := e.Node(peerID)
	if peer == nil || !peer.Alive {
		return
	}
	remote, ok := peer.Protocol(a.SelfSlot).(*Aggregate)
	if !ok {
		return
	}
	combined := a.Combine(a.value, remote.value)
	a.value = combined
	remote.value = combined
	a.Exchanges++
}

// MinCombine and MaxCombine are the extremum combiners.
func MinCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxCombine returns the larger of a and b.
func MaxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// EstimateSize reads the network-size estimate off an Average instance
// seeded with a single 1.0 (all other nodes 0): the converged mean is 1/n.
// It returns 0 if the node's current value is not yet positive.
func EstimateSize(a *Average) float64 {
	v := a.Value()
	if v <= 0 {
		return 0
	}
	return 1 / v
}

// Sum returns the sum of all live nodes' values (the conserved quantity).
func Sum(e *sim.Engine, selfSlot int) float64 {
	var s float64
	e.ForEachLive(func(n *sim.Node) {
		if a, ok := n.Protocol(selfSlot).(*Average); ok {
			s += a.Value()
		}
	})
	return s
}

// Spread returns max-min of all live nodes' values (convergence measure).
func Spread(e *sim.Engine, selfSlot int) float64 {
	first := true
	var lo, hi float64
	e.ForEachLive(func(n *sim.Node) {
		a, ok := n.Protocol(selfSlot).(*Average)
		if !ok {
			return
		}
		v := a.Value()
		if first {
			lo, hi = v, v
			first = false
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	})
	return hi - lo
}
