package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Average implements gossip-based averaging aggregation (Jelasity,
// Montresor & Babaoglu, ACM TOCS 2005): each cycle a node picks a random
// peer and both replace their values with the pairwise mean. The global sum
// is invariant while the empirical variance contracts exponentially, so
// every node's value converges to the network-wide average. The paper cites
// this protocol as a canonical application of peer sampling; it is also
// independently useful for estimating network size (push one 1.0 and
// average: the mean tends to 1/n).
//
// Average speaks the engine's two-phase exchange contract, so it is
// stepped on parallel propose workers. Propose only samples the partner;
// the pairwise averaging happens atomically in Receive, which reads the
// *initiator's value at delivery time* (not a propose-time snapshot) —
// with stale snapshots two exchanges touching the same node in one cycle
// would destroy the sum invariant that makes the protocol an aggregator.
type Average struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Average instances live.
	SelfSlot int

	value float64

	// Exchanges counts initiated pairwise averaging steps; Lost counts
	// initiations that died in transit (dead peer or network partition).
	Exchanges int64
	Lost      int64
}

// exchangeReq is the (payload-free) pairwise exchange proposal: both
// sides' current values are read from live node state during apply.
type exchangeReq struct{}

var (
	_ sim.Proposer      = (*Average)(nil)
	_ sim.Receiver      = (*Average)(nil)
	_ sim.Undeliverable = (*Average)(nil)
)

// Value returns the node's current estimate.
func (a *Average) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Average) SetValue(v float64) { a.value = v }

// Propose implements sim.Proposer: sample a partner from the node's own
// view and propose one averaging exchange.
func (a *Average) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Exchanges++
	px.Send(peerID, a.SelfSlot, exchangeReq{})
}

// Receive implements sim.Receiver: both parties replace their values with
// the pairwise mean. Apply is sequential, so reading and writing the
// initiator's state here is race-free and the exchange is atomic.
func (a *Average) Receive(n *sim.Node, e *sim.Engine, msg sim.Message) {
	peer := e.Node(msg.From)
	if peer == nil || !peer.Alive {
		return
	}
	remote, ok := peer.Protocol(msg.Slot).(*Average)
	if !ok {
		return
	}
	mean := (a.value + remote.value) / 2
	a.value = mean
	remote.value = mean
}

// Undelivered implements sim.Undeliverable: the sampled partner was dead
// or unreachable, so the exchange is lost.
func (a *Average) Undelivered(n *sim.Node, e *sim.Engine, msg sim.Message) { a.Lost++ }

// Aggregate generalizes pairwise gossip aggregation to any commutative,
// associative, idempotent-converging combiner: both parties replace their
// values with Combine(a, b). With Combine = min or max every node
// converges to the global extremum in O(log n) cycles; with the
// mean combiner this degenerates to Average (kept separate because the
// mean combiner must update both sides with the same value, which
// Aggregate also guarantees).
//
// Like Average, Aggregate speaks the two-phase exchange contract and
// resolves each pairwise step atomically in Receive.
type Aggregate struct {
	// Slot is the protocol slot of the node's PeerSampler. SelfSlot is
	// where Aggregate instances live. Combine merges two values.
	Slot     int
	SelfSlot int
	Combine  func(a, b float64) float64

	value float64

	// Exchanges counts initiated pairwise steps; Lost counts initiations
	// that died in transit.
	Exchanges int64
	Lost      int64
}

var (
	_ sim.Proposer      = (*Aggregate)(nil)
	_ sim.Receiver      = (*Aggregate)(nil)
	_ sim.Undeliverable = (*Aggregate)(nil)
)

// Value returns the node's current estimate.
func (a *Aggregate) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Aggregate) SetValue(v float64) { a.value = v }

// Propose implements sim.Proposer: sample a partner and propose one
// combining exchange.
func (a *Aggregate) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Exchanges++
	px.Send(peerID, a.SelfSlot, exchangeReq{})
}

// Receive implements sim.Receiver: both parties adopt Combine of their
// current values, atomically on the apply goroutine.
func (a *Aggregate) Receive(n *sim.Node, e *sim.Engine, msg sim.Message) {
	peer := e.Node(msg.From)
	if peer == nil || !peer.Alive {
		return
	}
	remote, ok := peer.Protocol(msg.Slot).(*Aggregate)
	if !ok {
		return
	}
	combined := a.Combine(a.value, remote.value)
	a.value = combined
	remote.value = combined
}

// Undelivered implements sim.Undeliverable.
func (a *Aggregate) Undelivered(n *sim.Node, e *sim.Engine, msg sim.Message) { a.Lost++ }

// MinCombine and MaxCombine are the extremum combiners.
func MinCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxCombine returns the larger of a and b.
func MaxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// EstimateSize reads the network-size estimate off an Average instance
// seeded with a single 1.0 (all other nodes 0): the converged mean is 1/n.
// It returns 0 if the node's current value is not yet positive.
func EstimateSize(a *Average) float64 {
	v := a.Value()
	if v <= 0 {
		return 0
	}
	return 1 / v
}

// Sum returns the sum of all live nodes' values (the conserved quantity).
func Sum(e *sim.Engine, selfSlot int) float64 {
	var s float64
	e.ForEachLive(func(n *sim.Node) {
		if a, ok := n.Protocol(selfSlot).(*Average); ok {
			s += a.Value()
		}
	})
	return s
}

// Spread returns max-min of all live nodes' values (convergence measure).
func Spread(e *sim.Engine, selfSlot int) float64 {
	first := true
	var lo, hi float64
	e.ForEachLive(func(n *sim.Node) {
		a, ok := n.Protocol(selfSlot).(*Average)
		if !ok {
			return
		}
		v := a.Value()
		if first {
			lo, hi = v, v
			first = false
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	})
	return hi - lo
}
