package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Average implements gossip-based averaging aggregation (Jelasity,
// Montresor & Babaoglu, ACM TOCS 2005): each cycle a node picks a random
// peer and both replace their values with the pairwise mean. The global sum
// is invariant while the empirical variance contracts exponentially, so
// every node's value converges to the network-wide average. The paper cites
// this protocol as a canonical application of peer sampling; it is also
// independently useful for estimating network size (push one 1.0 and
// average: the mean tends to 1/n).
//
// Average speaks the engine's two-phase exchange contract and is
// node-local in both phases. The exchange transfers *mass*, not values:
// the initiator p mails a snapshot of its value; the contacted peer q
// moves halfway toward it (q += d) and replies with the opposite delta,
// which p applies to itself (p -= d). Deltas make the global sum exactly
// conserved under any interleaving — when several exchanges touch one
// node in a cycle the pair may not land on the exact pairwise mean, but
// the sum invariant (what makes the protocol an aggregator) holds to the
// last bit, and the variance still contracts exponentially. If the reply
// leg dies (one-way partition, q's Undelivered fires with the delta), q
// rolls its half back, so even a half-completed exchange conserves the
// sum.
type Average struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Average instances live.
	SelfSlot int

	value float64

	// Exchanges counts initiated pairwise averaging steps; Lost counts
	// initiations that died in transit (dead peer or network partition).
	Exchanges int64
	Lost      int64
}

// avgReq is the pairwise averaging proposal, carrying the initiator's
// value at propose time. Payloads are drawn from a package-level free
// list and recycled by the engine at cycle end — a scalar in a boxed
// interface still costs one heap allocation per exchange when allocated
// fresh, which at n = 10^6 dominates the protocol's footprint.
type avgReq struct {
	V float64
}

var avgReqPool sim.FreeList[avgReq]

// Recycle implements sim.Recyclable.
func (r *avgReq) Recycle() {
	*r = avgReq{}
	avgReqPool.Put(r)
}

// avgDelta is the settle leg: the delta the initiator must apply to its
// own value (the opposite of the receiver's move), keeping the pair's sum
// exactly unchanged. Pooled like avgReq.
type avgDelta struct {
	D float64
}

var avgDeltaPool sim.FreeList[avgDelta]

// Recycle implements sim.Recyclable.
func (d *avgDelta) Recycle() {
	*d = avgDelta{}
	avgDeltaPool.Put(d)
}

var (
	_ sim.Proposer      = (*Average)(nil)
	_ sim.Receiver      = (*Average)(nil)
	_ sim.Undeliverable = (*Average)(nil)
)

// Value returns the node's current estimate.
func (a *Average) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Average) SetValue(v float64) { a.value = v }

// Propose implements sim.Proposer: sample a partner from the node's own
// view and propose one averaging exchange.
func (a *Average) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Exchanges++
	req := avgReqPool.Get()
	req.V = a.value
	px.Send(peerID, a.SelfSlot, req)
}

// Receive implements sim.Receiver, node-locally. On the initiating leg the
// contacted peer moves halfway toward the initiator's snapshot and mails
// the opposite delta back; on the settle leg the initiator applies it. The
// two moves cancel exactly, so the global sum is conserved bit-for-bit
// under any interleaving.
func (a *Average) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case *avgReq:
		d := (req.V - a.value) / 2
		a.value += d
		rep := avgDeltaPool.Get()
		rep.D = -d
		ax.Send(msg.From, msg.Slot, rep)
	case *avgDelta:
		a.value += req.D
	}
}

// Undelivered implements sim.Undeliverable: the sampled partner was dead
// or unreachable, so the exchange is lost. A dead settle leg (one-way
// partition) means this node already moved while the initiator never
// will — roll the move back (the delta it failed to deliver is exactly
// its own move, negated), restoring the sum invariant.
func (a *Average) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case *avgReq:
		a.Lost++
	case *avgDelta:
		a.value += req.D
	}
}

// Aggregate generalizes pairwise gossip aggregation to any commutative,
// associative, idempotent combiner: both parties converge onto
// Combine(a, b). With Combine = min or max every node converges to the
// global extremum in O(log n) cycles.
//
// Like Average, Aggregate speaks the two-phase exchange contract
// node-locally: the contacted peer combines the initiator's snapshot into
// its own value and replies with the combined result, which the initiator
// re-combines into its own (possibly since-updated) value. Re-combining
// is exact for idempotent combiners like min/max; a non-idempotent
// combiner (e.g. the mean) is not supported here — use Average, whose
// delta exchange conserves the sum.
type Aggregate struct {
	// Slot is the protocol slot of the node's PeerSampler. SelfSlot is
	// where Aggregate instances live. Combine merges two values.
	Slot     int
	SelfSlot int
	Combine  func(a, b float64) float64

	value float64

	// Exchanges counts initiated pairwise steps; Lost counts initiations
	// that died in transit.
	Exchanges int64
	Lost      int64
}

var (
	_ sim.Proposer      = (*Aggregate)(nil)
	_ sim.Receiver      = (*Aggregate)(nil)
	_ sim.Undeliverable = (*Aggregate)(nil)
)

// Value returns the node's current estimate.
func (a *Aggregate) Value() float64 { return a.value }

// SetValue initializes the node's local value.
func (a *Aggregate) SetValue(v float64) { a.value = v }

// Propose implements sim.Proposer: sample a partner and propose one
// combining exchange.
func (a *Aggregate) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Exchanges++
	req := aggReqPool.Get()
	req.V = a.value
	px.Send(peerID, a.SelfSlot, req)
}

// aggReq is the combining proposal, carrying the initiator's value at
// propose time; aggVal is the reply carrying the combined result. Both are
// pooled like Average's payloads.
type aggReq struct {
	V float64
}

var aggReqPool sim.FreeList[aggReq]

// Recycle implements sim.Recyclable.
func (r *aggReq) Recycle() {
	*r = aggReq{}
	aggReqPool.Put(r)
}

// aggVal is the reply leg of an Aggregate exchange.
type aggVal struct {
	V float64
}

var aggValPool sim.FreeList[aggVal]

// Recycle implements sim.Recyclable.
func (v *aggVal) Recycle() {
	*v = aggVal{}
	aggValPool.Put(v)
}

// Receive implements sim.Receiver, node-locally: the contacted peer
// combines the initiator's snapshot into its value and replies with the
// result; the initiator re-combines the reply into its own. For
// idempotent combiners both sides end at Combine of their values, exactly
// as in an inline exchange.
func (a *Aggregate) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case *aggReq:
		a.value = a.Combine(a.value, req.V)
		rep := aggValPool.Get()
		rep.V = a.value
		ax.Send(msg.From, msg.Slot, rep)
	case *aggVal:
		a.value = a.Combine(a.value, req.V)
	}
}

// Undelivered implements sim.Undeliverable: a lost initiation counts; a
// lost reply leg (one-way partition) leaves a one-sided combine, which is
// harmless for idempotent combiners.
func (a *Aggregate) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*aggReq); initiated {
		a.Lost++
	}
}

// MinCombine and MaxCombine are the extremum combiners.
func MinCombine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxCombine returns the larger of a and b.
func MaxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// EstimateSize reads the network-size estimate off an Average instance
// seeded with a single 1.0 (all other nodes 0): the converged mean is 1/n.
// It returns 0 if the node's current value is not yet positive.
func EstimateSize(a *Average) float64 {
	v := a.Value()
	if v <= 0 {
		return 0
	}
	return 1 / v
}

// Sum returns the sum of all live nodes' values (the conserved quantity).
func Sum(e *sim.Engine, selfSlot int) float64 {
	var s float64
	e.ForEachLive(func(n *sim.Node) {
		if a, ok := n.Protocol(selfSlot).(*Average); ok {
			s += a.Value()
		}
	})
	return s
}

// Spread returns max-min of all live nodes' values (convergence measure).
func Spread(e *sim.Engine, selfSlot int) float64 {
	first := true
	var lo, hi float64
	e.ForEachLive(func(n *sim.Node) {
		a, ok := n.Protocol(selfSlot).(*Average)
		if !ok {
			return
		}
		v := a.Value()
		if first {
			lo, hi = v, v
			first = false
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	})
	return hi - lo
}
