// Package gossip implements the epidemic protocols from Demers et al. that
// the paper builds its coordination service on: anti-entropy exchanges
// (push, pull, push-pull), rumor mongering with a stop probability, and
// gossip-based averaging aggregation (Jelasity et al.). All protocols run on
// the cycle-driven simulator and obtain partners from a PeerSampler
// (Newscast or a static topology) in a configurable protocol slot.
//
// Every protocol in this package speaks the engine's two-phase exchange
// contract (sim.Proposer/Receiver/Undeliverable): partners are sampled
// during the parallel propose phase, exchanges resolve atomically during
// the deterministic apply phase, and every message flows through the
// engine's mailbox — so delivery filters (network partitions) and the
// Delivered/Dropped counters apply to all of them.
package gossip

import (
	"reflect"
	"sync"

	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Mode selects the anti-entropy exchange direction.
type Mode int

// Exchange directions, after Demers et al.: the originator pushes its state,
// pulls the peer's state, or both.
const (
	Push Mode = iota
	Pull
	PushPull
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	}
	return "unknown"
}

// AntiEntropy diffuses the "best" value of type T through periodic pairwise
// exchanges. Better defines a strict partial order; both parties converge to
// the better of their two values, so the global best is monotone and
// eventually reaches every live node.
//
// This is the paper's coordination service in its general form: with T
// bound to a (position, fitness) pair and Better comparing fitness it is
// exactly the global-optimum diffusion algorithm of Section 3.3.3.
//
// AntiEntropy speaks the two-phase exchange contract and is node-local in
// both phases: the initiating message carries a propose-time snapshot of
// the initiator's value (push/push-pull), and the contacted peer answers
// through a reply message carrying its own. Snapshots may be a cycle
// stale when several exchanges touch one node in the same cycle, but
// Offer adopts only strictly-better values, so a stale offer is rejected
// rather than clobbering fresher state — monotone convergence is
// unaffected, diffusion is at worst one round slower.
type AntiEntropy[T any] struct {
	// Slot is the protocol slot holding the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where AntiEntropy instances live.
	SelfSlot int
	// Mode selects push, pull or push-pull (the paper uses push-pull).
	Mode Mode
	// Better reports whether a is strictly better than b.
	Better func(a, b T) bool
	// DropProb, when positive, loses each initiated exchange with this
	// probability, modelling message loss (paper §3.3.4: lost messages
	// only slow diffusion down).
	DropProb float64

	local T
	has   bool

	// Sent counts attempted initiations — incremented as soon as a partner
	// is sampled, before drop or liveness checks, so the counter is
	// comparable across protocols. Lost counts initiations that died in
	// transit (DropProb, dead peer, or network partition). Updated counts
	// adoptions of a remote value (on either side).
	Sent, Lost, Updated int64

	// pools caches the shared free lists for this T instantiation, fetched
	// lazily from the process-global registry on first use (node-local
	// state: only the node's own worker touches it).
	pools *aePools[T]
}

// aePools bundles the payload free lists of one instantiation of the
// generic exchange payloads. A generic payload cannot draw from a plain
// package-level pool (there is no package variable per T), so every
// AntiEntropy[T] of the same T shares one aePools[T] through a
// process-global registry keyed by the instantiated type.
type aePools[T any] struct {
	req sim.FreeList[aeReq[T]]
	val sim.FreeList[aeVal[T]]
}

// aePoolRegistry maps each instantiated *aePools[T] type to its shared
// singleton.
var aePoolRegistry sync.Map

// aePoolsFor returns the shared pools for T, creating them on first use.
func aePoolsFor[T any]() *aePools[T] {
	key := reflect.TypeOf((*aePools[T])(nil))
	if v, ok := aePoolRegistry.Load(key); ok {
		return v.(*aePools[T])
	}
	v, _ := aePoolRegistry.LoadOrStore(key, &aePools[T]{})
	return v.(*aePools[T])
}

// aeReq is the exchange proposal: the initiator's mode plus — for push and
// push-pull — a snapshot of its value at propose time. home points back to
// the free list the payload was drawn from; Recycle keeps it across the
// reset (the documented back-pointer exemption to the reset-everything
// rule) so the payload returns to the right instantiation's pool.
type aeReq[T any] struct {
	Mode Mode
	V    T
	Has  bool
	home *sim.FreeList[aeReq[T]]
}

// Recycle implements sim.Recyclable.
func (r *aeReq[T]) Recycle() {
	home := r.home
	*r = aeReq[T]{home: home}
	home.Put(r)
}

// aeVal is the reply leg: the contacted peer's value, offered back to the
// initiator (the pull half of pull and push-pull). Pooled like aeReq.
type aeVal[T any] struct {
	V    T
	home *sim.FreeList[aeVal[T]]
}

// Recycle implements sim.Recyclable.
func (v *aeVal[T]) Recycle() {
	home := v.home
	*v = aeVal[T]{home: home}
	home.Put(v)
}

var (
	_ sim.Proposer      = (*AntiEntropy[int])(nil)
	_ sim.Receiver      = (*AntiEntropy[int])(nil)
	_ sim.Undeliverable = (*AntiEntropy[int])(nil)
)

// Local returns the node's current value and whether one is set.
func (a *AntiEntropy[T]) Local() (T, bool) { return a.local, a.has }

// SetLocal replaces the node's value unconditionally (initialization).
func (a *AntiEntropy[T]) SetLocal(v T) {
	a.local = v
	a.has = true
}

// Offer merges a candidate value: it is adopted only if the node has none
// or the candidate is strictly better. It reports whether adoption
// happened.
func (a *AntiEntropy[T]) Offer(v T) bool {
	if !a.has || a.Better(v, a.local) {
		a.local = v
		a.has = true
		a.Updated++
		return true
	}
	return false
}

// Propose implements sim.Proposer: sample a partner from the node's own
// view and propose one anti-entropy exchange.
func (a *AntiEntropy[T]) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Sent++
	if a.DropProb > 0 && n.RNG.Bool(a.DropProb) {
		a.Lost++
		return // lost in transit; diffusion merely slows down
	}
	if a.pools == nil {
		a.pools = aePoolsFor[T]()
	}
	req := a.pools.req.Get()
	req.Mode, req.home = a.Mode, &a.pools.req
	if a.Mode != Pull && a.has {
		req.V, req.Has = a.local, true
	}
	px.Send(peerID, a.SelfSlot, req)
}

// Receive implements sim.Receiver, node-locally. On the initiating leg the
// contacted peer q adopts the pushed value if it is better (push,
// push-pull) and, when the initiator wants the pull half and q holds
// something the push did not already cover, replies with its own value; on
// the reply leg the initiator offers the replied value to itself. Both
// sides end with the better value, exactly as in an inline exchange.
func (a *AntiEntropy[T]) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case *aeReq[T]:
		if req.Has {
			a.Offer(req.V)
		}
		if req.Mode == Push {
			return
		}
		// Pull / push-pull: reply only when the initiator can learn
		// something — q holds a value and the push leg did not already
		// carry one at least as good.
		if a.has && (!req.Has || a.Better(a.local, req.V)) {
			if a.pools == nil {
				a.pools = aePoolsFor[T]()
			}
			rep := a.pools.val.Get()
			rep.V, rep.home = a.local, &a.pools.val
			ax.Send(msg.From, a.SelfSlot, rep)
		}
	case *aeVal[T]:
		a.Offer(req.V)
	}
}

// Undelivered implements sim.Undeliverable: the sampled partner was dead
// or unreachable (partition), so the exchange is lost. A dead reply leg
// (one-way partition) loses only the pull half and is not a lost
// initiation, so it does not count.
func (a *AntiEntropy[T]) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*aeReq[T]); initiated {
		a.Lost++
	}
}
