// Package gossip implements the epidemic protocols from Demers et al. that
// the paper builds its coordination service on: anti-entropy exchanges
// (push, pull, push-pull), rumor mongering with a stop probability, and
// gossip-based averaging aggregation (Jelasity et al.). All protocols run on
// the cycle-driven simulator and obtain partners from a PeerSampler
// (Newscast or a static topology) in a configurable protocol slot.
package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Mode selects the anti-entropy exchange direction.
type Mode int

// Exchange directions, after Demers et al.: the originator pushes its state,
// pulls the peer's state, or both.
const (
	Push Mode = iota
	Pull
	PushPull
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	}
	return "unknown"
}

// AntiEntropy diffuses the "best" value of type T through periodic pairwise
// exchanges. Better defines a strict partial order; both parties converge to
// the better of their two values, so the global best is monotone and
// eventually reaches every live node.
//
// This is the paper's coordination service in its general form: with T
// bound to a (position, fitness) pair and Better comparing fitness it is
// exactly the global-optimum diffusion algorithm of Section 3.3.3.
type AntiEntropy[T any] struct {
	// SamplerSlot is the protocol slot holding the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where AntiEntropy instances live.
	SelfSlot int
	// Mode selects push, pull or push-pull (the paper uses push-pull).
	Mode Mode
	// Better reports whether a is strictly better than b.
	Better func(a, b T) bool
	// DropProb, when positive, loses each initiated exchange with this
	// probability, modelling message loss (paper §3.3.4: lost messages
	// only slow diffusion down).
	DropProb float64

	local T
	has   bool

	// Sent counts initiated exchanges; Updated counts adoptions of a
	// remote value (on either side).
	Sent, Updated int64
}

// Local returns the node's current value and whether one is set.
func (a *AntiEntropy[T]) Local() (T, bool) { return a.local, a.has }

// SetLocal replaces the node's value unconditionally (initialization).
func (a *AntiEntropy[T]) SetLocal(v T) {
	a.local = v
	a.has = true
}

// Offer merges a candidate value: it is adopted only if the node has none
// or the candidate is strictly better. It reports whether adoption
// happened.
func (a *AntiEntropy[T]) Offer(v T) bool {
	if !a.has || a.Better(v, a.local) {
		a.local = v
		a.has = true
		a.Updated++
		return true
	}
	return false
}

// NextCycle implements sim.Protocol: one anti-entropy exchange with a
// sampled peer.
func (a *AntiEntropy[T]) NextCycle(n *sim.Node, e *sim.Engine) {
	a.Exchange(n, e)
}

// Exchange performs one exchange immediately (exposed so that other
// protocols — e.g. the optimizer node — can trigger coordination at their
// own rate rather than once per cycle).
func (a *AntiEntropy[T]) Exchange(n *sim.Node, e *sim.Engine) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Sent++
	if a.DropProb > 0 && n.RNG.Bool(a.DropProb) {
		return // lost in transit; diffusion merely slows down
	}
	peer := e.Node(peerID)
	if peer == nil || !peer.Alive {
		return // crashed partner: exchange silently fails
	}
	remote, ok := peer.Protocol(a.SelfSlot).(*AntiEntropy[T])
	if !ok {
		return
	}
	switch a.Mode {
	case Push:
		if a.has {
			remote.Offer(a.local)
		}
	case Pull:
		if remote.has {
			a.Offer(remote.local)
		}
	case PushPull:
		// p sends its value; q adopts it if better, otherwise q replies
		// with its own and p adopts. Equivalent to both offering.
		if a.has {
			remote.Offer(a.local)
		}
		if remote.has {
			a.Offer(remote.local)
		}
	}
}
