// Package gossip implements the epidemic protocols from Demers et al. that
// the paper builds its coordination service on: anti-entropy exchanges
// (push, pull, push-pull), rumor mongering with a stop probability, and
// gossip-based averaging aggregation (Jelasity et al.). All protocols run on
// the cycle-driven simulator and obtain partners from a PeerSampler
// (Newscast or a static topology) in a configurable protocol slot.
//
// Every protocol in this package speaks the engine's two-phase exchange
// contract (sim.Proposer/Receiver/Undeliverable): partners are sampled
// during the parallel propose phase, exchanges resolve atomically during
// the deterministic apply phase, and every message flows through the
// engine's mailbox — so delivery filters (network partitions) and the
// Delivered/Dropped counters apply to all of them.
package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Mode selects the anti-entropy exchange direction.
type Mode int

// Exchange directions, after Demers et al.: the originator pushes its state,
// pulls the peer's state, or both.
const (
	Push Mode = iota
	Pull
	PushPull
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	}
	return "unknown"
}

// AntiEntropy diffuses the "best" value of type T through periodic pairwise
// exchanges. Better defines a strict partial order; both parties converge to
// the better of their two values, so the global best is monotone and
// eventually reaches every live node.
//
// This is the paper's coordination service in its general form: with T
// bound to a (position, fitness) pair and Better comparing fitness it is
// exactly the global-optimum diffusion algorithm of Section 3.3.3.
//
// AntiEntropy speaks the two-phase exchange contract. Propose only samples
// the partner; the exchange resolves atomically in Receive, which reads
// the *initiator's value at delivery time* (not a propose-time snapshot),
// so two exchanges touching the same node in one cycle compound instead of
// clobbering each other.
type AntiEntropy[T any] struct {
	// Slot is the protocol slot holding the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where AntiEntropy instances live.
	SelfSlot int
	// Mode selects push, pull or push-pull (the paper uses push-pull).
	Mode Mode
	// Better reports whether a is strictly better than b.
	Better func(a, b T) bool
	// DropProb, when positive, loses each initiated exchange with this
	// probability, modelling message loss (paper §3.3.4: lost messages
	// only slow diffusion down).
	DropProb float64

	local T
	has   bool

	// Sent counts attempted initiations — incremented as soon as a partner
	// is sampled, before drop or liveness checks, so the counter is
	// comparable across protocols. Lost counts initiations that died in
	// transit (DropProb, dead peer, or network partition). Updated counts
	// adoptions of a remote value (on either side).
	Sent, Lost, Updated int64
}

// aeReq is the (payload-free) exchange proposal: both sides' values are
// read from live node state during the apply phase.
type aeReq struct{}

var (
	_ sim.Proposer      = (*AntiEntropy[int])(nil)
	_ sim.Receiver      = (*AntiEntropy[int])(nil)
	_ sim.Undeliverable = (*AntiEntropy[int])(nil)
)

// Local returns the node's current value and whether one is set.
func (a *AntiEntropy[T]) Local() (T, bool) { return a.local, a.has }

// SetLocal replaces the node's value unconditionally (initialization).
func (a *AntiEntropy[T]) SetLocal(v T) {
	a.local = v
	a.has = true
}

// Offer merges a candidate value: it is adopted only if the node has none
// or the candidate is strictly better. It reports whether adoption
// happened.
func (a *AntiEntropy[T]) Offer(v T) bool {
	if !a.has || a.Better(v, a.local) {
		a.local = v
		a.has = true
		a.Updated++
		return true
	}
	return false
}

// Propose implements sim.Proposer: sample a partner from the node's own
// view and propose one anti-entropy exchange.
func (a *AntiEntropy[T]) Propose(n *sim.Node, px *sim.Proposals) {
	sampler, ok := n.Protocol(a.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	peerID, ok := sampler.SamplePeer(n.RNG)
	if !ok {
		return
	}
	a.Sent++
	if a.DropProb > 0 && n.RNG.Bool(a.DropProb) {
		a.Lost++
		return // lost in transit; diffusion merely slows down
	}
	px.Send(peerID, a.SelfSlot, aeReq{})
}

// Receive implements sim.Receiver, completing the exchange on the
// contacted peer q (the receiver): depending on the initiator p's mode, p
// pushes its value into q, pulls q's value, or both. Apply is sequential,
// so reading and writing the initiator's state here is race-free and the
// exchange is atomic.
func (a *AntiEntropy[T]) Receive(n *sim.Node, e *sim.Engine, msg sim.Message) {
	if _, ok := msg.Data.(aeReq); !ok {
		return
	}
	peer := e.Node(msg.From)
	if peer == nil || !peer.Alive {
		return // initiator crashed before apply: exchange evaporates
	}
	remote, ok := peer.Protocol(msg.Slot).(*AntiEntropy[T])
	if !ok {
		return
	}
	switch remote.Mode {
	case Push:
		if remote.has {
			a.Offer(remote.local)
		}
	case Pull:
		if a.has {
			remote.Offer(a.local)
		}
	case PushPull:
		// p sends its value; q adopts it if better, otherwise q replies
		// with its own and p adopts. Equivalent to both offering.
		if remote.has {
			a.Offer(remote.local)
		}
		if a.has {
			remote.Offer(a.local)
		}
	}
}

// Undelivered implements sim.Undeliverable: the sampled partner was dead
// or unreachable (partition), so the exchange is lost.
func (a *AntiEntropy[T]) Undelivered(n *sim.Node, e *sim.Engine, msg sim.Message) { a.Lost++ }
