package gossip

import (
	"fmt"
	"math"
	"testing"

	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// buildNet wires n nodes with Newscast in slot 0 and the protocol built by
// mk in slot 1.
func buildNet(seed uint64, n int, mk func(id sim.NodeID) sim.Protocol) *sim.Engine {
	e := sim.NewEngine(seed)
	nodes := e.AddNodes(n)
	overlay.InitNewscast(e, 0, 20)
	for _, nd := range nodes {
		nd.Protocols = append(nd.Protocols, mk(nd.ID))
	}
	return e
}

func intBetter(a, b int) bool { return a > b }

func newAE(mode Mode) *AntiEntropy[int] {
	return &AntiEntropy[int]{Slot: 0, SelfSlot: 1, Mode: mode, Better: intBetter}
}

func aeAt(e *sim.Engine, id sim.NodeID) *AntiEntropy[int] {
	return e.Node(id).Protocol(1).(*AntiEntropy[int])
}

func TestAntiEntropyConvergesPushPull(t *testing.T) {
	e := buildNet(1, 100, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.SetLocal(int(id)) // node 99 holds the best value
		return ae
	})
	e.Run(15) // push-pull spreads in O(log n) cycles
	e.ForEachLive(func(n *sim.Node) {
		if v, _ := aeAt(e, n.ID).Local(); v != 99 {
			t.Fatalf("node %d converged to %d, want 99", n.ID, v)
		}
	})
}

func TestAntiEntropyPushSlowerThanPushPull(t *testing.T) {
	countConverged := func(mode Mode, cycles int64) int {
		e := buildNet(2, 200, func(id sim.NodeID) sim.Protocol {
			ae := newAE(mode)
			ae.SetLocal(int(id))
			return ae
		})
		e.Run(cycles)
		n := 0
		e.ForEachLive(func(nd *sim.Node) {
			if v, _ := aeAt(e, nd.ID).Local(); v == 199 {
				n++
			}
		})
		return n
	}
	push := countConverged(Push, 6)
	pushpull := countConverged(PushPull, 6)
	if pushpull < push {
		t.Fatalf("push-pull (%d) slower than push (%d)", pushpull, push)
	}
}

// Property: a node's local value is monotone non-decreasing under Better.
func TestAntiEntropyMonotone(t *testing.T) {
	e := buildNet(3, 60, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.SetLocal(int(id))
		return ae
	})
	prev := make(map[sim.NodeID]int)
	e.ForEachLive(func(n *sim.Node) {
		v, _ := aeAt(e, n.ID).Local()
		prev[n.ID] = v
	})
	for c := 0; c < 20; c++ {
		e.RunCycle()
		e.ForEachLive(func(n *sim.Node) {
			v, _ := aeAt(e, n.ID).Local()
			if v < prev[n.ID] {
				t.Fatalf("node %d value regressed %d -> %d", n.ID, prev[n.ID], v)
			}
			prev[n.ID] = v
		})
	}
}

func TestAntiEntropySurvivesDrops(t *testing.T) {
	e := buildNet(4, 100, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.DropProb = 0.5
		ae.SetLocal(int(id))
		return ae
	})
	e.Run(40) // drops only slow diffusion down
	e.ForEachLive(func(n *sim.Node) {
		if v, _ := aeAt(e, n.ID).Local(); v != 99 {
			t.Fatalf("node %d stuck at %d despite 40 cycles", n.ID, v)
		}
	})
}

func TestAntiEntropySurvivesChurn(t *testing.T) {
	e := buildNet(5, 150, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.SetLocal(int(id))
		return ae
	})
	// Note: the best value (149) may crash; best surviving value must still
	// dominate. Crash 30 % after a few cycles.
	e.Run(3)
	e.SetChurn(&sim.CatastropheChurn{AtCycle: 3, Fraction: 0.3})
	e.Run(30)
	best := -1
	e.ForEachLive(func(n *sim.Node) {
		if v, _ := aeAt(e, n.ID).Local(); v > best {
			best = v
		}
	})
	e.ForEachLive(func(n *sim.Node) {
		if v, _ := aeAt(e, n.ID).Local(); v != best {
			t.Fatalf("node %d at %d, best is %d", n.ID, v, best)
		}
	})
}

func TestOfferSemantics(t *testing.T) {
	ae := newAE(PushPull)
	if _, has := ae.Local(); has {
		t.Fatal("fresh AE claims a value")
	}
	if !ae.Offer(5) {
		t.Fatal("first Offer rejected")
	}
	if ae.Offer(3) {
		t.Fatal("worse value adopted")
	}
	if !ae.Offer(9) {
		t.Fatal("better value rejected")
	}
	if v, _ := ae.Local(); v != 9 {
		t.Fatalf("Local = %d", v)
	}
}

func TestModeString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || PushPull.String() != "push-pull" {
		t.Fatal("Mode.String wrong")
	}
	if Mode(42).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
}

func TestRumorReachesAll(t *testing.T) {
	e := buildNet(6, 200, func(id sim.NodeID) sim.Protocol {
		return &Rumor{Slot: 0, SelfSlot: 1, Fanout: 2, StopProb: 0.2}
	})
	e.Node(0).Protocol(1).(*Rumor).Seed()
	e.Run(20)
	if got := CountInformed(e, 1); got < 190 {
		t.Fatalf("only %d of 200 informed", got)
	}
}

func TestRumorStopProbOneDiesOut(t *testing.T) {
	// With StopProb = 1 every redundant contact kills the spreader; the
	// rumor should reach far fewer nodes than with StopProb = 0.1.
	spread := func(p float64) int {
		e := buildNet(7, 300, func(id sim.NodeID) sim.Protocol {
			return &Rumor{Slot: 0, SelfSlot: 1, Fanout: 1, StopProb: p}
		})
		e.Node(0).Protocol(1).(*Rumor).Seed()
		e.Run(60)
		return CountInformed(e, 1)
	}
	high := spread(1.0)
	low := spread(0.05)
	if high >= low {
		t.Fatalf("stop-prob trade-off inverted: p=1 reached %d, p=0.05 reached %d", high, low)
	}
}

func TestRumorRedundantCounted(t *testing.T) {
	e := buildNet(8, 50, func(id sim.NodeID) sim.Protocol {
		return &Rumor{Slot: 0, SelfSlot: 1, Fanout: 3, StopProb: 0.1}
	})
	e.Node(0).Protocol(1).(*Rumor).Seed()
	e.Run(30)
	var redundant int64
	e.ForEachLive(func(n *sim.Node) {
		redundant += n.Protocol(1).(*Rumor).Redundant
	})
	if redundant == 0 {
		t.Fatal("no redundant deliveries in a saturated network")
	}
}

// TestRumorPartitionIsolation: with a SplitGroups(2) partition in force
// from the first cycle, the rumor must never cross — zero infections
// outside the seed's island — while cross-partition pushes are dropped by
// the engine and reported to the sender as lost.
func TestRumorPartitionIsolation(t *testing.T) {
	e := buildNet(21, 100, func(id sim.NodeID) sim.Protocol {
		return &Rumor{Slot: 0, SelfSlot: 1, Fanout: 2, StopProb: 0.1}
	})
	e.SetDeliveryFilter(sim.SplitGroups(2))
	e.Node(0).Protocol(1).(*Rumor).Seed()
	e.Run(40)
	var lost int64
	e.ForEachLive(func(n *sim.Node) {
		r := n.Protocol(1).(*Rumor)
		if n.ID%2 == 1 && r.Informed() {
			t.Fatalf("rumor crossed the partition: node %d informed", n.ID)
		}
		lost += r.Lost
	})
	if got := CountInformed(e, 1); got < 40 {
		t.Fatalf("rumor did not saturate its own island: %d informed", got)
	}
	if e.Dropped() == 0 || lost == 0 {
		t.Fatalf("cross-partition pushes not accounted: dropped=%d lost=%d", e.Dropped(), lost)
	}
}

// TestAntiEntropyPartitionIsolation: under a parity partition no value may
// cross the cut — every even node's value stays even, every odd node's
// stays odd — and the filtered exchanges land in Lost.
func TestAntiEntropyPartitionIsolation(t *testing.T) {
	e := buildNet(22, 100, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.SetLocal(int(id))
		return ae
	})
	e.SetDeliveryFilter(sim.SplitGroups(2))
	e.Run(30)
	var lost int64
	e.ForEachLive(func(n *sim.Node) {
		ae := aeAt(e, n.ID)
		v, _ := ae.Local()
		if sim.NodeID(v)%2 != n.ID%2 {
			t.Fatalf("value %d leaked across the partition to node %d", v, n.ID)
		}
		lost += ae.Lost
	})
	if e.Dropped() == 0 || lost == 0 {
		t.Fatalf("cross-partition exchanges not accounted: dropped=%d lost=%d", e.Dropped(), lost)
	}
	// Each island still converges to its own best value.
	e.ForEachLive(func(n *sim.Node) {
		want := 98 + int(n.ID%2) // best even value is 98, best odd 99
		if v, _ := aeAt(e, n.ID).Local(); v != want {
			t.Fatalf("node %d at %d, island best is %d", n.ID, v, want)
		}
	})
}

// TestRumorSentCountsAttempts: Sent uses attempted-send semantics — the
// counter moves even when the contact is dead, with the failure recorded
// in Lost (previously sends to dead peers were silently uncounted).
func TestRumorSentCountsAttempts(t *testing.T) {
	e := buildNet(23, 20, func(id sim.NodeID) sim.Protocol {
		return &Rumor{Slot: 0, SelfSlot: 1, Fanout: 2, StopProb: 0}
	})
	e.Run(3) // let views fill
	seed := e.Node(0).Protocol(1).(*Rumor)
	seed.Seed()
	for id := sim.NodeID(1); id < 20; id++ {
		e.Crash(id) // every potential contact is dead
	}
	e.Run(5)
	if seed.Sent == 0 {
		t.Fatal("attempted sends to dead peers not counted in Sent")
	}
	if seed.Lost != seed.Sent {
		t.Fatalf("all contacts were dead, yet Lost=%d != Sent=%d", seed.Lost, seed.Sent)
	}
}

// TestAntiEntropySentLostAccounting: Sent counts initiations before the
// drop draw; DropProb=1 loses every one of them into Lost.
func TestAntiEntropySentLostAccounting(t *testing.T) {
	e := buildNet(24, 30, func(id sim.NodeID) sim.Protocol {
		ae := newAE(PushPull)
		ae.DropProb = 1
		ae.SetLocal(int(id))
		return ae
	})
	e.Run(10)
	var sent, lost, updated int64
	e.ForEachLive(func(n *sim.Node) {
		ae := aeAt(e, n.ID)
		sent += ae.Sent
		lost += ae.Lost
		updated += ae.Updated
	})
	if sent == 0 || lost != sent {
		t.Fatalf("total loss not accounted: sent=%d lost=%d", sent, lost)
	}
	if updated != 0 {
		t.Fatalf("values diffused despite 100%% drop: %d adoptions", updated)
	}
}

// TestRumorWorkerInvariant: the ported protocol participates in the
// parallel propose phase, so its full trace must be bit-identical for 1, 2
// and 8 workers.
func TestRumorWorkerInvariant(t *testing.T) {
	state := func(workers, applyWorkers int) []string {
		e := sim.NewEngine(25)
		e.SetWorkers(workers)
		e.SetApplyWorkers(applyWorkers)
		nodes := e.AddNodes(80)
		overlay.InitNewscast(e, 0, 20)
		for _, nd := range nodes {
			nd.Protocols = append(nd.Protocols, &Rumor{Slot: 0, SelfSlot: 1, Fanout: 2, StopProb: 0.2})
		}
		e.Node(0).Protocol(1).(*Rumor).Seed()
		e.Run(15)
		out := make([]string, 0, 80)
		e.ForEachLive(func(n *sim.Node) {
			r := n.Protocol(1).(*Rumor)
			out = append(out, fmt.Sprintf("%d:%v/%v/%d/%d/%d", n.ID, r.Informed(), r.Hot(), r.Sent, r.Lost, r.Redundant))
		})
		return out
	}
	one := state(1, 1)
	for _, w := range [][2]int{{2, 1}, {1, 8}, {8, 2}, {8, 8}} {
		got := state(w[0], w[1])
		for i := range one {
			if one[i] != got[i] {
				t.Fatalf("trace diverged at workers=%dx%d: %s vs %s", w[0], w[1], one[i], got[i])
			}
		}
	}
}

// TestAntiEntropyWorkerInvariant: same guarantee for the anti-entropy port.
func TestAntiEntropyWorkerInvariant(t *testing.T) {
	state := func(workers, applyWorkers int) []int {
		e := sim.NewEngine(26)
		e.SetWorkers(workers)
		e.SetApplyWorkers(applyWorkers)
		nodes := e.AddNodes(80)
		overlay.InitNewscast(e, 0, 20)
		for _, nd := range nodes {
			ae := newAE(PushPull)
			ae.DropProb = 0.2
			ae.SetLocal(int(nd.ID))
			nd.Protocols = append(nd.Protocols, ae)
		}
		e.Run(12)
		out := make([]int, 0, 80)
		e.ForEachLive(func(n *sim.Node) {
			v, _ := aeAt(e, n.ID).Local()
			out = append(out, v)
		})
		return out
	}
	one := state(1, 1)
	for _, w := range [][2]int{{2, 1}, {1, 8}, {8, 2}, {8, 8}} {
		got := state(w[0], w[1])
		for i := range one {
			if one[i] != got[i] {
				t.Fatalf("node %d diverged at workers=%dx%d: %d vs %d", i, w[0], w[1], one[i], got[i])
			}
		}
	}
}

func TestAverageConservesSumAndConverges(t *testing.T) {
	e := buildNet(9, 128, func(id sim.NodeID) sim.Protocol {
		a := &Average{Slot: 0, SelfSlot: 1}
		a.SetValue(float64(id))
		return a
	})
	want := Sum(e, 1)
	for c := 0; c < 40; c++ {
		e.RunCycle()
		if got := Sum(e, 1); math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("sum drifted: %v -> %v at cycle %d", want, got, c)
		}
	}
	if s := Spread(e, 1); s > 1e-3 {
		t.Fatalf("spread %v after 40 cycles, want ~0", s)
	}
	// Every node's value must equal the true average.
	trueAvg := want / 128
	e.ForEachLive(func(n *sim.Node) {
		v := n.Protocol(1).(*Average).Value()
		if math.Abs(v-trueAvg) > 1e-3 {
			t.Fatalf("node %d at %v, want %v", n.ID, v, trueAvg)
		}
	})
}

func TestAverageSizeEstimation(t *testing.T) {
	// Classic trick: one node holds 1.0, the rest 0; the average is 1/n.
	const n = 64
	e := buildNet(10, n, func(id sim.NodeID) sim.Protocol {
		a := &Average{Slot: 0, SelfSlot: 1}
		if id == 0 {
			a.SetValue(1)
		}
		return a
	})
	e.Run(50)
	est := 1 / e.Node(3).Protocol(1).(*Average).Value()
	if est < n*0.9 || est > n*1.1 {
		t.Fatalf("size estimate %.1f, want ≈ %d", est, n)
	}
}

// TestAverageSpreadContracts: the delta exchange conserves the sum
// exactly, but when several exchanges touch one node in a cycle the pair
// may briefly land off the exact mean, so the spread is not monotone
// cycle-to-cycle anymore. It must still contract geometrically over any
// short window and converge to ~0.
func TestAverageSpreadContracts(t *testing.T) {
	e := buildNet(11, 100, func(id sim.NodeID) sim.Protocol {
		a := &Average{Slot: 0, SelfSlot: 1}
		a.SetValue(float64(id * id))
		return a
	})
	prev := Spread(e, 1)
	for c := 0; c < 60; c += 5 {
		e.Run(5)
		cur := Spread(e, 1)
		if cur > prev/2 {
			t.Fatalf("spread did not halve over cycles %d-%d: %v -> %v", c, c+5, prev, cur)
		}
		prev = cur
	}
	if prev > 1e-3 {
		t.Fatalf("spread %v after 60 cycles, want ~0", prev)
	}
}

// TestAverageWorkerInvariant: the ported protocol runs on both parallel
// phases, so its trace must be bit-identical for every propose × apply
// worker combination.
func TestAverageWorkerInvariant(t *testing.T) {
	values := func(workers, applyWorkers int) []float64 {
		e := sim.NewEngine(16)
		e.SetWorkers(workers)
		e.SetApplyWorkers(applyWorkers)
		nodes := e.AddNodes(64)
		overlay.InitNewscast(e, 0, 20)
		for _, nd := range nodes {
			a := &Average{Slot: 0, SelfSlot: 1}
			a.SetValue(float64(nd.ID))
			nd.Protocols = append(nd.Protocols, a)
		}
		e.Run(10)
		out := make([]float64, 0, 64)
		e.ForEachLive(func(n *sim.Node) {
			out = append(out, n.Protocol(1).(*Average).Value())
		})
		return out
	}
	one := values(1, 1)
	for _, w := range [][2]int{{8, 1}, {1, 8}, {8, 8}} {
		got := values(w[0], w[1])
		for i := range one {
			if one[i] != got[i] {
				t.Fatalf("node %d diverged at workers=%dx%d: %v vs %v", i, w[0], w[1], one[i], got[i])
			}
		}
	}
}

// TestAverageLostExchanges: exchanges proposed to nodes that die before
// apply are reported through the Undeliverable hook.
func TestAverageLostExchanges(t *testing.T) {
	e := buildNet(17, 50, func(id sim.NodeID) sim.Protocol {
		a := &Average{Slot: 0, SelfSlot: 1}
		a.SetValue(float64(id))
		return a
	})
	e.Run(5) // let views fill with peers...
	for id := sim.NodeID(25); id < 50; id++ {
		e.Crash(id) // ...then kill half the network
	}
	e.Run(10)
	var lost int64
	e.ForEachLive(func(n *sim.Node) {
		lost += n.Protocol(1).(*Average).Lost
	})
	if lost == 0 {
		t.Fatal("no lost exchanges despite half the network dead")
	}
}

func TestAggregateMinConverges(t *testing.T) {
	e := buildNet(12, 100, func(id sim.NodeID) sim.Protocol {
		a := &Aggregate{Slot: 0, SelfSlot: 1, Combine: MinCombine}
		a.SetValue(float64(id) + 5)
		return a
	})
	e.Run(15)
	e.ForEachLive(func(n *sim.Node) {
		if v := n.Protocol(1).(*Aggregate).Value(); v != 5 {
			t.Fatalf("node %d min = %v, want 5", n.ID, v)
		}
	})
}

func TestAggregateMaxConverges(t *testing.T) {
	e := buildNet(13, 80, func(id sim.NodeID) sim.Protocol {
		a := &Aggregate{Slot: 0, SelfSlot: 1, Combine: MaxCombine}
		a.SetValue(float64(id))
		return a
	})
	e.Run(15)
	e.ForEachLive(func(n *sim.Node) {
		if v := n.Protocol(1).(*Aggregate).Value(); v != 79 {
			t.Fatalf("node %d max = %v, want 79", n.ID, v)
		}
	})
}

func TestAggregateMinMonotone(t *testing.T) {
	e := buildNet(14, 40, func(id sim.NodeID) sim.Protocol {
		a := &Aggregate{Slot: 0, SelfSlot: 1, Combine: MinCombine}
		a.SetValue(float64(id * 3))
		return a
	})
	prev := map[sim.NodeID]float64{}
	e.ForEachLive(func(n *sim.Node) {
		prev[n.ID] = n.Protocol(1).(*Aggregate).Value()
	})
	for c := 0; c < 10; c++ {
		e.RunCycle()
		e.ForEachLive(func(n *sim.Node) {
			v := n.Protocol(1).(*Aggregate).Value()
			if v > prev[n.ID] {
				t.Fatalf("min aggregate increased at node %d", n.ID)
			}
			prev[n.ID] = v
		})
	}
}

func TestEstimateSize(t *testing.T) {
	const n = 100
	e := buildNet(15, n, func(id sim.NodeID) sim.Protocol {
		a := &Average{Slot: 0, SelfSlot: 1}
		if id == 7 {
			a.SetValue(1)
		}
		return a
	})
	e.Run(60)
	est := EstimateSize(e.Node(42).Protocol(1).(*Average))
	if est < n*0.9 || est > n*1.1 {
		t.Fatalf("size estimate %.1f, want ≈ %d", est, n)
	}
	fresh := &Average{}
	if EstimateSize(fresh) != 0 {
		t.Fatal("estimate from zero value should be 0")
	}
}
