package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Rumor implements rumor mongering (Demers et al.): when a node first
// receives an update it becomes a *hot* spreader; each cycle a hot node
// forwards the rumor to Fanout sampled peers; every time it contacts a peer
// that already knows the rumor it loses interest (stops spreading) with
// probability StopProb. Fanout and StopProb trade dissemination probability
// against redundant traffic, exactly the k/p trade-off the paper describes.
//
// Rumor speaks the two-phase exchange contract: a hot node proposes its
// Fanout contacts during the parallel propose phase; infection and the
// loss-of-interest feedback resolve during the deterministic apply phase
// (the "peer already knew it" signal a real spreader gets from its
// partner's reply). Messages to dead or partitioned peers are dropped by
// the engine and reported through Undelivered.
type Rumor struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Rumor instances live.
	SelfSlot int
	// Fanout is the number of peers contacted per cycle while hot.
	Fanout int
	// StopProb is the probability of losing interest after contacting an
	// already-informed peer.
	StopProb float64

	informed bool
	hot      bool

	// Sent counts attempted rumor sends — incremented as soon as a partner
	// is sampled, before liveness or reachability checks, so the counter
	// is comparable across protocols. Lost counts sends that died in
	// transit (dead peer or network partition). Redundant counts
	// deliveries to already-informed peers.
	Sent, Lost, Redundant int64
}

// rumorMsg is the (payload-free) rumor push.
type rumorMsg struct{}

// rumorSeen is the feedback leg: the contacted peer already knew the
// rumor, so the spreader may lose interest.
type rumorSeen struct{}

var (
	_ sim.Proposer      = (*Rumor)(nil)
	_ sim.Receiver      = (*Rumor)(nil)
	_ sim.Undeliverable = (*Rumor)(nil)
)

// Informed reports whether the node has received the rumor.
func (r *Rumor) Informed() bool { return r.informed }

// Hot reports whether the node is still actively spreading.
func (r *Rumor) Hot() bool { return r.hot }

// Seed marks this node as the rumor's origin.
func (r *Rumor) Seed() {
	r.informed = true
	r.hot = true
}

// receive handles an incoming rumor; it reports whether it was new.
func (r *Rumor) receive() bool {
	if r.informed {
		r.Redundant++
		return false
	}
	r.informed = true
	r.hot = true
	return true
}

// Propose implements sim.Proposer: while hot, propose the cycle's Fanout
// rumor pushes. Whether a contact hits an informed peer — and therefore
// whether this node loses interest — is only known at apply time, so the
// stop decision happens when the peer's already-seen feedback arrives.
func (r *Rumor) Propose(n *sim.Node, px *sim.Proposals) {
	if !r.hot {
		return
	}
	sampler, ok := n.Protocol(r.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	for i := 0; i < r.Fanout; i++ {
		peerID, ok := sampler.SamplePeer(n.RNG)
		if !ok {
			return
		}
		r.Sent++
		px.Send(peerID, r.SelfSlot, rumorMsg{})
	}
}

// Receive implements sim.Receiver, node-locally: an incoming rumor either
// infects this node or, if it already knew it, mails an already-seen
// feedback back to the spreader; a spreader receiving that feedback loses
// interest with probability StopProb. The stop draw comes from the
// spreader's own RNG stream on the worker that owns it, so the trace is
// invariant for any apply-worker count.
func (r *Rumor) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch msg.Data.(type) {
	case rumorMsg:
		if r.receive() {
			return
		}
		// Contacted an informed peer: feed back to the spreader (the reply
		// a real push would get).
		ax.Send(msg.From, r.SelfSlot, rumorSeen{})
	case rumorSeen:
		if r.hot && n.RNG.Bool(r.StopProb) {
			r.hot = false
		}
	}
}

// Undelivered implements sim.Undeliverable: the contact was dead or
// unreachable (partition), so the rumor push is lost. A lost feedback leg
// (one-way partition) is not a lost push and does not count.
func (r *Rumor) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, push := msg.Data.(rumorMsg); push {
		r.Lost++
	}
}

// CountInformed returns how many live nodes know the rumor.
func CountInformed(e *sim.Engine, selfSlot int) int {
	count := 0
	e.ForEachLive(func(n *sim.Node) {
		if r, ok := n.Protocol(selfSlot).(*Rumor); ok && r.Informed() {
			count++
		}
	})
	return count
}
