package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Rumor implements rumor mongering (Demers et al.): when a node first
// receives an update it becomes a *hot* spreader; each cycle a hot node
// forwards the rumor to Fanout sampled peers; every time it contacts a peer
// that already knows the rumor it loses interest (stops spreading) with
// probability StopProb. Fanout and StopProb trade dissemination probability
// against redundant traffic, exactly the k/p trade-off the paper describes.
type Rumor struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Rumor instances live.
	SelfSlot int
	// Fanout is the number of peers contacted per cycle while hot.
	Fanout int
	// StopProb is the probability of losing interest after contacting an
	// already-informed peer.
	StopProb float64

	informed bool
	hot      bool

	// Sent counts rumor messages sent; Redundant counts deliveries to
	// already-informed peers.
	Sent, Redundant int64
}

// Informed reports whether the node has received the rumor.
func (r *Rumor) Informed() bool { return r.informed }

// Hot reports whether the node is still actively spreading.
func (r *Rumor) Hot() bool { return r.hot }

// Seed marks this node as the rumor's origin.
func (r *Rumor) Seed() {
	r.informed = true
	r.hot = true
}

// receive handles an incoming rumor; it reports whether it was new.
func (r *Rumor) receive() bool {
	if r.informed {
		r.Redundant++
		return false
	}
	r.informed = true
	r.hot = true
	return true
}

// NextCycle implements sim.Protocol.
func (r *Rumor) NextCycle(n *sim.Node, e *sim.Engine) {
	if !r.hot {
		return
	}
	sampler, ok := n.Protocol(r.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	for i := 0; i < r.Fanout && r.hot; i++ {
		peerID, ok := sampler.SamplePeer(n.RNG)
		if !ok {
			return
		}
		peer := e.Node(peerID)
		if peer == nil || !peer.Alive {
			continue
		}
		remote, ok := peer.Protocol(r.SelfSlot).(*Rumor)
		if !ok {
			continue
		}
		r.Sent++
		if !remote.receive() {
			// Contacted an informed peer: lose interest with prob p.
			if n.RNG.Bool(r.StopProb) {
				r.hot = false
			}
		}
	}
}

// CountInformed returns how many live nodes know the rumor.
func CountInformed(e *sim.Engine, selfSlot int) int {
	count := 0
	e.ForEachLive(func(n *sim.Node) {
		if r, ok := n.Protocol(selfSlot).(*Rumor); ok && r.Informed() {
			count++
		}
	})
	return count
}
