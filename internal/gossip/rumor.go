package gossip

import (
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Rumor implements rumor mongering (Demers et al.): when a node first
// receives an update it becomes a *hot* spreader; each cycle a hot node
// forwards the rumor to Fanout sampled peers; every time it contacts a peer
// that already knows the rumor it loses interest (stops spreading) with
// probability StopProb. Fanout and StopProb trade dissemination probability
// against redundant traffic, exactly the k/p trade-off the paper describes.
//
// Rumor speaks the two-phase exchange contract: a hot node proposes its
// Fanout contacts during the parallel propose phase; infection and the
// loss-of-interest feedback resolve during the deterministic apply phase
// (the "peer already knew it" signal a real spreader gets from its
// partner's reply). Messages to dead or partitioned peers are dropped by
// the engine and reported through Undelivered.
type Rumor struct {
	// Slot is the protocol slot of the node's PeerSampler.
	Slot int
	// SelfSlot is the protocol slot where Rumor instances live.
	SelfSlot int
	// Fanout is the number of peers contacted per cycle while hot.
	Fanout int
	// StopProb is the probability of losing interest after contacting an
	// already-informed peer.
	StopProb float64

	informed bool
	hot      bool

	// Sent counts attempted rumor sends — incremented as soon as a partner
	// is sampled, before liveness or reachability checks, so the counter
	// is comparable across protocols. Lost counts sends that died in
	// transit (dead peer or network partition). Redundant counts
	// deliveries to already-informed peers.
	Sent, Lost, Redundant int64
}

// rumorMsg is the (payload-free) rumor push.
type rumorMsg struct{}

var (
	_ sim.Proposer      = (*Rumor)(nil)
	_ sim.Receiver      = (*Rumor)(nil)
	_ sim.Undeliverable = (*Rumor)(nil)
)

// Informed reports whether the node has received the rumor.
func (r *Rumor) Informed() bool { return r.informed }

// Hot reports whether the node is still actively spreading.
func (r *Rumor) Hot() bool { return r.hot }

// Seed marks this node as the rumor's origin.
func (r *Rumor) Seed() {
	r.informed = true
	r.hot = true
}

// receive handles an incoming rumor; it reports whether it was new.
func (r *Rumor) receive() bool {
	if r.informed {
		r.Redundant++
		return false
	}
	r.informed = true
	r.hot = true
	return true
}

// Propose implements sim.Proposer: while hot, propose the cycle's Fanout
// rumor pushes. Whether a contact hits an informed peer — and therefore
// whether this node loses interest — is only known at apply time, so the
// stop decision happens in Receive, on the contacted peer's side.
func (r *Rumor) Propose(n *sim.Node, px *sim.Proposals) {
	if !r.hot {
		return
	}
	sampler, ok := n.Protocol(r.Slot).(overlay.PeerSampler)
	if !ok {
		return
	}
	for i := 0; i < r.Fanout; i++ {
		peerID, ok := sampler.SamplePeer(n.RNG)
		if !ok {
			return
		}
		r.Sent++
		px.Send(peerID, r.SelfSlot, rumorMsg{})
	}
}

// Receive implements sim.Receiver: an incoming rumor either infects this
// node or, if it already knew it, feeds back to the spreader, which loses
// interest with probability StopProb. The draw comes from the *sender's*
// RNG stream on the sequential apply goroutine, so the trace stays
// worker-invariant.
func (r *Rumor) Receive(n *sim.Node, e *sim.Engine, msg sim.Message) {
	if _, ok := msg.Data.(rumorMsg); !ok {
		return
	}
	if r.receive() {
		return
	}
	// Contacted an informed peer: the spreader loses interest with prob p.
	peer := e.Node(msg.From)
	if peer == nil || !peer.Alive {
		return
	}
	remote, ok := peer.Protocol(msg.Slot).(*Rumor)
	if !ok {
		return
	}
	if remote.hot && peer.RNG.Bool(remote.StopProb) {
		remote.hot = false
	}
}

// Undelivered implements sim.Undeliverable: the contact was dead or
// unreachable (partition), so the rumor push is lost.
func (r *Rumor) Undelivered(n *sim.Node, e *sim.Engine, msg sim.Message) { r.Lost++ }

// CountInformed returns how many live nodes know the rumor.
func CountInformed(e *sim.Engine, selfSlot int) int {
	count := 0
	e.ForEachLive(func(n *sim.Node) {
		if r, ok := n.Protocol(selfSlot).(*Rumor); ok && r.Informed() {
			count++
		}
	})
	return count
}
