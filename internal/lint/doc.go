// Package lint holds the repository's self-checks: a godoc lint that
// requires package-level documentation and doc comments on every
// exported identifier (methods with exported names included), and a
// documentation link checker that resolves every relative markdown link
// in README.md and docs/. Both run as ordinary tests, so `go test
// ./...` — and the CI step that names this package — enforces them
// without any external tooling.
package lint
