package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot is this package's path back to the repository root.
const repoRoot = "../.."

// goPackageDirs returns every directory under the repo root containing
// non-test Go files, skipping .git and testdata.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	dirSet := map[string]bool{}
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".github":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirSet[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	return dirs
}

// TestGodoc is the repository's godoc lint: every package must carry a
// package-level doc comment, and every exported top-level identifier —
// functions, methods with exported names (interface implementations
// included), types, consts and vars — must have a doc comment. It runs
// over non-test files only and needs no tooling beyond go/parser, so CI
// enforces it with a plain `go test ./internal/lint`.
func TestGodoc(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					hasPkgDoc = true
					break
				}
			}
			if !hasPkgDoc {
				t.Errorf("package %s (%s) has no package-level doc comment", name, dir)
			}
			for _, f := range pkg.Files {
				checkFileDocs(t, fset, f)
			}
		}
	}
}

// checkFileDocs reports every exported declaration in f lacking a doc
// comment.
func checkFileDocs(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	missing := func(kind, name string, pos token.Pos) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Name.Name == "main" {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				missing(kind, d.Name.Name, d.Pos())
			}
		case *ast.GenDecl:
			// A doc comment on the grouped decl ("// Engine kinds.")
			// covers all its specs, matching godoc's rendering.
			groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && !groupDoc &&
						(sp.Doc == nil || strings.TrimSpace(sp.Doc.Text()) == "") {
						missing("type", sp.Name.Name, sp.Pos())
					}
				case *ast.ValueSpec:
					specDoc := sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != ""
					for _, n := range sp.Names {
						if n.IsExported() && !groupDoc && !specDoc {
							missing("value", n.Name, n.Pos())
						}
					}
				}
			}
		}
	}
}
