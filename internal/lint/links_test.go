package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and captures the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve checks every relative link in the repository's
// markdown documentation: the referenced file must exist, so a rename or
// move cannot silently orphan README.md or the docs/ tree.
func TestDocLinksResolve(t *testing.T) {
	files := []string{filepath.Join(repoRoot, "README.md")}
	docs, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("expected README.md and at least two docs files, found %v", files)
	}
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found; the docs should at least cross-link each other")
	}
}
