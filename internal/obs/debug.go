package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The debug endpoint: a plain HTTP server exposing the process-global
// expvar table at /debug/vars and the pprof profile handlers under
// /debug/pprof/, on a mux of its own (nothing is registered on
// http.DefaultServeMux). It exists so a long sweep can be inspected in
// flight — `curl host:port/debug/vars` for the published progress and
// engine stats, `go tool pprof host:port/debug/pprof/profile` for a CPU
// profile — without the run cooperating in any way.

// DebugServer is a running debug HTTP endpoint. Close shuts it down.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug starts the debug endpoint on addr (e.g. "127.0.0.1:6060";
// port 0 picks a free port — read the result from Addr). The server runs
// until Close.
func StartDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the endpoint's bound address ("127.0.0.1:49152"), useful
// when StartDebug was given port 0.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the endpoint down and releases its port.
func (d *DebugServer) Close() error { return d.srv.Close() }

// The expvar table is process-global and expvar.Publish panics on a
// duplicate name, so republishing (a test calling cmd/scenario's run
// twice, or two campaigns in one process) needs one level of
// indirection: each name is registered with expvar exactly once, bound
// to a holder whose callback can be swapped.
var (
	pubMu      sync.Mutex
	pubHolders = map[string]*pubHolder{}
)

// pubHolder is the swappable callback behind one published expvar name.
type pubHolder struct {
	mu sync.Mutex
	fn func() any
}

// value evaluates the current callback (expvar.Func).
func (h *pubHolder) value() any {
	h.mu.Lock()
	fn := h.fn
	h.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Publish exposes fn's result as the expvar variable name (rendered on
// every /debug/vars scrape). Unlike expvar.Publish it may be called again
// with the same name: the new callback replaces the old one.
func Publish(name string, fn func() any) {
	pubMu.Lock()
	defer pubMu.Unlock()
	h, ok := pubHolders[name]
	if !ok {
		h = &pubHolder{}
		pubHolders[name] = h
		expvar.Publish(name, expvar.Func(h.value))
	}
	h.mu.Lock()
	h.fn = fn
	h.mu.Unlock()
}
