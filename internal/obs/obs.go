// Package obs is the observability layer around the simulation engines
// and the scenario runner: live progress rendering for long campaigns,
// JSONL dumps of end-of-run engine statistics, and an on-demand debug
// HTTP endpoint (expvar + pprof) for inspecting a run in flight.
//
// The package is strictly a spectator. Nothing here touches an engine RNG
// stream or the metric byte stream: progress and stats render to stderr
// or to side files, the debug endpoint reads only the race-safe
// Engine.Stats snapshots, and the no-op path (no flags set) costs zero
// allocations in the hot loop. The invariance tests in cmd/scenario pin
// that contract by byte-comparing metric output with the layer on and
// off.
package obs
