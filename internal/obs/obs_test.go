package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gossipopt/internal/exp"
	"gossipopt/internal/sim"
)

func TestPrinterRendersTickedUpdates(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf, 100*time.Millisecond)
	p.Update(Progress{TotalReps: 8, DoneReps: 3, TotalCells: 4, DoneCells: 1, Rows: 42, Cell: "sweep/x=1"})
	time.Sleep(250 * time.Millisecond)
	p.Close()
	out := buf.String()
	if !strings.Contains(out, "progress: 3/8 reps") {
		t.Fatalf("no ticked progress line:\n%s", out)
	}
	if !strings.Contains(out, "1/4 cells") || !strings.Contains(out, "42 rows") {
		t.Fatalf("line misses cells/rows:\n%s", out)
	}
	if !strings.Contains(out, "elapsed") {
		t.Fatalf("Close printed no final line:\n%s", out)
	}
}

func TestPrinterFinalLineWithoutTick(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf, time.Hour) // no tick will ever fire
	p.Update(Progress{TotalReps: 2, DoneReps: 2, TotalCells: 1, DoneCells: 1, Rows: 7, Cell: "baseline"})
	p.Close()
	if out := buf.String(); !strings.Contains(out, "progress: 2/2 reps") {
		t.Fatalf("no final line on Close:\n%s", out)
	}
	// Close is idempotent and a never-updated printer prints nothing.
	p.Close()
	var empty bytes.Buffer
	q := NewPrinter(&empty, time.Hour)
	q.Close()
	if empty.Len() != 0 {
		t.Fatalf("idle printer produced output: %q", empty.String())
	}
}

func TestStatsWriterEmitsParsableJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewStatsWriter(&buf)
	if err := w.Write(RepStats{Scenario: "baseline", Rep: 1, Seed: 7, Cycles: 20, Quality: 1.5,
		Stats: sim.EngineStats{Cycles: 20, Delivered: 99, ApplyRounds: 40}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(CellStats{Sweep: "s", Cell: "s/x=1", Reps: 3,
		Stats: exp.AggregateEngineStats([]sim.EngineStats{{ApplyJobs: 10}, {ApplyJobs: 20}})}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line does not parse: %v\n%s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	repStats, ok := lines[0]["stats"].(map[string]any)
	if !ok || repStats["delivered"] != float64(99) || repStats["apply_rounds"] != float64(40) {
		t.Fatalf("rep line stats wrong: %v", lines[0])
	}
	cellStats, ok := lines[1]["stats"].(map[string]any)
	if !ok {
		t.Fatalf("cell line has no stats: %v", lines[1])
	}
	jobs, ok := cellStats["apply_jobs"].(map[string]any)
	if !ok || jobs["mean"] != float64(15) || jobs["n"] != float64(2) {
		t.Fatalf("cell line apply_jobs wrong: %v", cellStats)
	}
}

func TestDebugServerServesVarsAndPprof(t *testing.T) {
	calls := 0
	Publish("obs_test_probe", func() any { calls++; return map[string]any{"x": calls} })
	d, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	probe, ok := decoded["obs_test_probe"].(map[string]any)
	if !ok || probe["x"] == float64(0) {
		t.Fatalf("published var missing from scrape: %v", decoded["obs_test_probe"])
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("pprof index missing")
	}

	// Republishing the same name swaps the callback instead of panicking
	// (expvar.Publish would); the next scrape sees the new value.
	Publish("obs_test_probe", func() any { return map[string]any{"x": -1} })
	if !strings.Contains(get("/debug/vars"), `"obs_test_probe": {"x":-1}`) {
		t.Fatal("republished callback not visible")
	}
}
