package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is one point-in-time view of a running campaign or sweep,
// counted in finished repetitions (the runner's unit of work). The
// runner reports updates in canonical cell-then-repetition order, so the
// sequence of Progress values is deterministic even when the underlying
// jobs run on a worker pool.
type Progress struct {
	// TotalReps and DoneReps count repetition jobs over the whole run
	// (sweeps: cells × reps).
	TotalReps int
	DoneReps  int
	// TotalCells and DoneCells count sweep cells; a plain campaign is the
	// one-cell case.
	TotalCells int
	DoneCells  int
	// Rows is the number of metric rows flushed to the sink so far.
	Rows int64
	// Cell names the most recently finished repetition's cell (sweeps) or
	// scenario (campaigns).
	Cell string
}

// Printer renders Progress snapshots as single-line updates on a ticker.
// It decouples rendering cadence from update cadence: the runner calls
// Update as often as it likes (it only swaps the latest snapshot under a
// mutex), and a background goroutine prints at the configured interval —
// so progress output never backpressures the run. Close stops the
// goroutine and prints one final summary line.
type Printer struct {
	w        io.Writer
	interval time.Duration
	start    time.Time
	now      func() time.Time

	mu     sync.Mutex
	latest Progress
	dirty  bool
	ever   bool

	done     chan struct{}
	finished sync.WaitGroup
	once     sync.Once
}

// NewPrinter starts a progress printer writing to w every interval
// (intervals below 100ms are clamped to 100ms). The caller must Close it.
func NewPrinter(w io.Writer, interval time.Duration) *Printer {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	p := &Printer{
		w:        w,
		interval: interval,
		now:      time.Now,
		done:     make(chan struct{}),
	}
	p.start = p.now()
	p.finished.Add(1)
	go p.loop()
	return p
}

// Update records the latest progress snapshot; the ticker goroutine
// renders it at the next tick. Safe for concurrent use, O(1), never
// blocks on I/O.
func (p *Printer) Update(u Progress) {
	p.mu.Lock()
	p.latest = u
	p.dirty = true
	p.ever = true
	p.mu.Unlock()
}

// Close stops the ticker goroutine and prints a final line for the last
// snapshot (if any update ever arrived). Idempotent.
func (p *Printer) Close() {
	p.once.Do(func() {
		close(p.done)
		p.finished.Wait()
		p.mu.Lock()
		u, any := p.latest, p.ever
		p.mu.Unlock()
		if any {
			p.render(u, true)
		}
	})
}

// loop is the ticker goroutine: it renders the latest snapshot once per
// interval, but only when something changed since the last render.
func (p *Printer) loop() {
	defer p.finished.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.mu.Lock()
			u, dirty := p.latest, p.dirty
			p.dirty = false
			p.mu.Unlock()
			if dirty {
				p.render(u, false)
			}
		}
	}
}

// render writes one progress line: reps done, cells done (when the run
// has more than one cell), rows flushed, throughput and ETA. The final
// line reports total elapsed time instead of an ETA.
func (p *Printer) render(u Progress, final bool) {
	elapsed := p.now().Sub(p.start).Seconds()
	var b []byte
	b = fmt.Appendf(b, "progress: %d/%d reps", u.DoneReps, u.TotalReps)
	if u.TotalCells > 1 {
		b = fmt.Appendf(b, ", %d/%d cells", u.DoneCells, u.TotalCells)
	}
	b = fmt.Appendf(b, ", %d rows", u.Rows)
	if elapsed > 0 && u.DoneReps > 0 {
		rate := float64(u.DoneReps) / elapsed
		b = fmt.Appendf(b, ", %.2f reps/s", rate)
		if final {
			b = fmt.Appendf(b, ", %.1fs elapsed", elapsed)
		} else if left := u.TotalReps - u.DoneReps; left > 0 {
			b = fmt.Appendf(b, ", ETA %.0fs", float64(left)/rate)
		}
	}
	if u.Cell != "" && !final {
		b = fmt.Appendf(b, " (%s)", u.Cell)
	}
	b = append(b, '\n')
	p.w.Write(b)
}
