package obs

import (
	"encoding/json"
	"io"
	"sync"

	"gossipopt/internal/exp"
	"gossipopt/internal/sim"
)

// RepStats is one repetition's end-of-run engine statistics, emitted as
// one JSON line by cmd/scenario -statsjson. Rep lines stream out as
// repetitions finish, in canonical cell-then-repetition order.
type RepStats struct {
	// Scenario is the spec (or sweep cell) name the repetition ran.
	Scenario string `json:"scenario"`
	// Rep and Seed identify the repetition within its campaign/cell.
	Rep  int    `json:"rep"`
	Seed uint64 `json:"seed"`
	// Cycles and Quality are the repetition's end-of-run outcome (cycles
	// completed / samples taken, and the final solution quality).
	Cycles  int64   `json:"cycles"`
	Quality float64 `json:"quality"`
	// Stats is the engine's instrumentation snapshot at the end of the
	// repetition. Event-engine repetitions fill only the delivery counters.
	Stats sim.EngineStats `json:"stats"`
}

// CellStats is one sweep cell's aggregated engine statistics, emitted as
// one JSON line after the cell's rep lines.
type CellStats struct {
	// Sweep and Cell identify the grid point; Reps is its repetition count.
	Sweep string `json:"sweep"`
	Cell  string `json:"cell"`
	Reps  int    `json:"reps"`
	// Stats summarizes the cell's per-repetition engine snapshots.
	Stats exp.EngineStatsSummary `json:"stats"`
}

// StatsWriter emits JSON lines (one value per Write call) to an
// underlying writer. Writes are serialized by a mutex, so progress
// callbacks and end-of-run summaries can share one writer.
type StatsWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewStatsWriter returns a StatsWriter emitting to w.
func NewStatsWriter(w io.Writer) *StatsWriter {
	return &StatsWriter{enc: json.NewEncoder(w)}
}

// Write encodes v as one JSON line.
func (s *StatsWriter) Write(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(v)
}
