package overlay

import "testing"

// TestNewscastSteadyStateAllocs pins the allocation-free hot path: once
// views, payload free lists and engine scratch buffers are warm, a
// Newscast cycle should allocate (amortized) close to nothing per node.
// The budget is deliberately loose — view merges occasionally regrow —
// but it fails loudly if per-exchange allocations creep back in (the
// pre-arena engine spent ~10 allocations per node per cycle on snapshots
// alone). The free lists hold strong references, so a GC mid-measurement
// no longer empties them (the sync.Pool era skipped this test under the
// race detector for exactly that reason; the budget now holds there too).
func TestNewscastSteadyStateAllocs(t *testing.T) {
	const n, c = 512, 20
	e := buildNewscastNet(9, n, c)
	defer e.Close()
	e.Run(30) // warm views, free lists, and engine scratch

	avg := testing.AllocsPerRun(20, func() { e.RunCycle() })
	perNode := avg / n
	if perNode > 0.5 {
		t.Fatalf("steady-state Newscast cycle allocates %.1f allocs (%.3f/node), budget 0.5/node", avg, perNode)
	}
}
