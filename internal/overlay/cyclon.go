package overlay

import (
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// Cyclon is the other canonical peer-sampling protocol (Voulgaris, Gavidia
// & van Steen 2005), included as an alternative topology service. Unlike
// Newscast's full-view push-pull, Cyclon *swaps* a small shuffle subset:
// the initiator selects its oldest neighbor, sends L random descriptors
// (including a fresh self-descriptor), and receives L of the peer's in
// exchange; each side replaces exactly the entries it sent away. Swapping
// preserves in-degree much more tightly than Newscast's merge, at the cost
// of slower dissemination of fresh descriptors.
type Cyclon struct {
	// C is the view size; L is the shuffle length (L <= C, default C/2).
	C, L int
	// Slot is the protocol slot where Cyclon instances live on all nodes.
	Slot int

	self sim.NodeID
	view *View

	// Exchanges counts initiated shuffles; FailedExchanges counts
	// shuffles aimed at crashed peers.
	Exchanges, FailedExchanges int64
}

// Compile-time guards for the two-phase contracts (see Newscast's note).
var (
	_ sim.Proposer      = (*Cyclon)(nil)
	_ sim.Receiver      = (*Cyclon)(nil)
	_ sim.Undeliverable = (*Cyclon)(nil)
)

// NewCyclon creates the Cyclon instance for the given node.
func NewCyclon(self sim.NodeID, c, l, slot int) *Cyclon {
	if l <= 0 || l > c {
		l = c / 2
		if l == 0 {
			l = 1
		}
	}
	return &Cyclon{C: c, L: l, Slot: slot, self: self, view: NewView(c)}
}

// View exposes the current view.
func (cy *Cyclon) View() *View { return cy.view }

// SamplePeer implements PeerSampler.
func (cy *Cyclon) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	ids := cy.view.IDs()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[r.Intn(len(ids))], true
}

// Neighbors implements PeerSampler.
func (cy *Cyclon) Neighbors() []sim.NodeID { return cy.view.IDs() }

// Bootstrap seeds the view.
func (cy *Cyclon) Bootstrap(peers []sim.NodeID) {
	batch := make([]Descriptor, 0, len(peers))
	for _, id := range peers {
		batch = append(batch, Descriptor{ID: id, Stamp: 0})
	}
	cy.view.Merge(cy.self, batch)
}

// oldest returns the stalest descriptor in the view (Cyclon always
// shuffles with its oldest neighbor, which is what ages out dead nodes).
func (cy *Cyclon) oldest() (Descriptor, bool) {
	ds := cy.view.Descriptors()
	if len(ds) == 0 {
		return Descriptor{}, false
	}
	old := ds[0]
	for _, d := range ds[1:] {
		if d.Stamp < old.Stamp {
			old = d
		}
	}
	return old, true
}

// subset picks up to l random descriptors from ds, excluding the one with
// peer's ID (it is replaced by the fresh self-descriptor).
func subset(r *rng.RNG, ds []Descriptor, l int, exclude sim.NodeID) []Descriptor {
	var pool []Descriptor
	for _, d := range ds {
		if d.ID != exclude {
			pool = append(pool, d)
		}
	}
	if len(pool) <= l {
		return pool
	}
	out := make([]Descriptor, 0, l)
	for _, i := range r.Sample(len(pool), l) {
		out = append(out, pool[i])
	}
	return out
}

// shuffleReq is Cyclon's proposed exchange: the initiator's shuffle subset
// (L-1 random descriptors plus a fresh self-descriptor).
type shuffleReq struct {
	Sent []Descriptor
}

// shuffleRep is the answer leg: the partner's reply subset plus an echo of
// what the initiator sent, so the initiator can do its own swap
// bookkeeping node-locally (discard what it sent, merge what it got).
type shuffleRep struct {
	Reply []Descriptor
	Echo  []Descriptor
}

// Propose implements sim.Proposer: select the oldest neighbor and propose
// a shuffle, sending L-1 random descriptors plus a fresh self-descriptor.
// The initiator's view is not yet modified — swap bookkeeping happens when
// the reply is computed in Receive (or in Undelivered on failure).
func (cy *Cyclon) Propose(n *sim.Node, px *sim.Proposals) {
	target, ok := cy.oldest()
	if !ok {
		return
	}
	cy.Exchanges++
	sent := subset(n.RNG, cy.view.Descriptors(), cy.L-1, target.ID)
	sent = append(sent, Descriptor{ID: cy.self, Stamp: px.Cycle()})
	px.Send(target.ID, cy.Slot, shuffleReq{Sent: sent})
}

// Receive implements sim.Receiver, node-locally. On the request leg the
// contacted peer answers with L of its own descriptors (never including
// the initiator), settles its side of the swap — discard what it sent,
// merge what it received — and mails the reply (plus an echo of the
// request) back. On the reply leg the initiator settles its side: replace
// the target's entry and the echoed descriptors it sent away with the
// reply subset.
func (cy *Cyclon) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case shuffleReq:
		reply := subset(n.RNG, cy.view.Descriptors(), cy.L, msg.From)
		for _, d := range reply {
			cy.view.Remove(d.ID)
		}
		cy.view.Merge(cy.self, req.Sent)
		ax.Send(msg.From, cy.Slot, shuffleRep{Reply: reply, Echo: req.Sent})
	case shuffleRep:
		cy.view.Remove(msg.From)
		for _, d := range req.Echo {
			if d.ID != cy.self {
				cy.view.Remove(d.ID)
			}
		}
		cy.view.Merge(cy.self, req.Reply)
	}
}

// Undelivered implements sim.Undeliverable: the oldest neighbor was dead —
// exactly the case Cyclon's oldest-first policy is designed to flush. A
// dead reply leg (one-way partition) also flushes the unreachable peer,
// but only a failed initiation counts as a FailedExchange.
func (cy *Cyclon) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(shuffleReq); initiated {
		cy.FailedExchanges++
	}
	cy.view.Remove(msg.To)
}

// InitCyclon wires Cyclon into protocol slot `slot` of every live node,
// bootstrapping with up to c random peers.
func InitCyclon(e *sim.Engine, slot, c, l int) {
	nodes := e.LiveNodes()
	ids := make([]sim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	for _, n := range nodes {
		cy := NewCyclon(n.ID, c, l, slot)
		k := c
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		peers := make([]sim.NodeID, 0, k)
		for _, idx := range e.RNG().Sample(len(ids), k+1) {
			if ids[idx] != n.ID && len(peers) < k {
				peers = append(peers, ids[idx])
			}
		}
		cy.Bootstrap(peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = cy
	}
}
