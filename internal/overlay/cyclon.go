package overlay

import (
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// Cyclon is the other canonical peer-sampling protocol (Voulgaris, Gavidia
// & van Steen 2005), included as an alternative topology service. Unlike
// Newscast's full-view push-pull, Cyclon *swaps* a small shuffle subset:
// the initiator selects its oldest neighbor, sends L random descriptors
// (including a fresh self-descriptor), and receives L of the peer's in
// exchange; each side replaces exactly the entries it sent away. Swapping
// preserves in-degree much more tightly than Newscast's merge, at the cost
// of slower dissemination of fresh descriptors.
type Cyclon struct {
	// C is the view size; L is the shuffle length (L <= C, default C/2).
	C, L int
	// Slot is the protocol slot where Cyclon instances live on all nodes.
	Slot int

	self sim.NodeID
	view *View

	// Exchanges counts initiated shuffles; FailedExchanges counts
	// shuffles aimed at crashed peers.
	Exchanges, FailedExchanges int64

	// poolScratch holds the filtered candidate pool during appendSubset.
	// Node-local (Propose and Receive run on the worker owning this node),
	// so reusing it across calls is race-free.
	poolScratch []Descriptor
}

// Compile-time guards for the two-phase contracts (see Newscast's note).
var (
	_ sim.Proposer      = (*Cyclon)(nil)
	_ sim.Receiver      = (*Cyclon)(nil)
	_ sim.Undeliverable = (*Cyclon)(nil)
)

// NewCyclon creates the Cyclon instance for the given node.
func NewCyclon(self sim.NodeID, c, l, slot int) *Cyclon {
	if l <= 0 || l > c {
		l = c / 2
		if l == 0 {
			l = 1
		}
	}
	return &Cyclon{C: c, L: l, Slot: slot, self: self, view: NewView(c)}
}

// View exposes the current view.
func (cy *Cyclon) View() *View { return cy.view }

// SamplePeer implements PeerSampler.
func (cy *Cyclon) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	return cy.view.SampleID(r)
}

// Neighbors implements PeerSampler.
func (cy *Cyclon) Neighbors() []sim.NodeID { return cy.view.IDs() }

// Bootstrap seeds the view.
func (cy *Cyclon) Bootstrap(peers []sim.NodeID) {
	batch := make([]Descriptor, 0, len(peers))
	for _, id := range peers {
		batch = append(batch, Descriptor{ID: id, Stamp: 0})
	}
	cy.view.Merge(cy.self, batch)
}

// oldest returns the stalest descriptor in the view (Cyclon always
// shuffles with its oldest neighbor, which is what ages out dead nodes).
func (cy *Cyclon) oldest() (Descriptor, bool) {
	ds := cy.view.items
	if len(ds) == 0 {
		return Descriptor{}, false
	}
	old := ds[0]
	for _, d := range ds[1:] {
		if d.Stamp < old.Stamp {
			old = d
		}
	}
	return old, true
}

// appendSubset appends up to l random view descriptors (excluding the one
// with the peer's ID — it is replaced by the fresh self-descriptor) onto
// dst and returns the extended slice. The RNG draw pattern matches the
// historical subset helper exactly: no draw when the filtered pool fits
// in l, one Sample(len(pool), l) otherwise.
func (cy *Cyclon) appendSubset(dst []Descriptor, r *rng.RNG, l int, exclude sim.NodeID) []Descriptor {
	pool := cy.poolScratch[:0]
	for _, d := range cy.view.items {
		if d.ID != exclude {
			pool = append(pool, d)
		}
	}
	cy.poolScratch = pool
	if len(pool) <= l {
		return append(dst, pool...)
	}
	for _, i := range r.Sample(len(pool), l) {
		dst = append(dst, pool[i])
	}
	return dst
}

// shuffleReq is Cyclon's proposed exchange: the initiator's shuffle subset
// (L-1 random descriptors plus a fresh self-descriptor). Pooled via
// sim.Recyclable, like Newscast's payloads.
type shuffleReq struct {
	Sent []Descriptor
}

// shuffleRep is the answer leg: the partner's reply subset plus an echo of
// what the initiator sent, so the initiator can do its own swap
// bookkeeping node-locally (discard what it sent, merge what it got).
// Echo aliases the request's Sent buffer — legal within the cycle, and
// Recycle drops the alias instead of recycling it (the request's own
// Recycle returns that buffer).
type shuffleRep struct {
	Reply []Descriptor
	Echo  []Descriptor
}

var (
	shuffleReqPool sim.FreeList[shuffleReq]
	shuffleRepPool sim.FreeList[shuffleRep]
)

// Recycle implements sim.Recyclable.
func (s *shuffleReq) Recycle() {
	s.Sent = s.Sent[:0]
	shuffleReqPool.Put(s)
}

// Recycle implements sim.Recyclable.
func (s *shuffleRep) Recycle() {
	s.Reply = s.Reply[:0]
	s.Echo = nil // aliases the request's buffer; its Recycle owns it
	shuffleRepPool.Put(s)
}

// Propose implements sim.Proposer: select the oldest neighbor and propose
// a shuffle, sending L-1 random descriptors plus a fresh self-descriptor.
// The initiator's view is not yet modified — swap bookkeeping happens when
// the reply is computed in Receive (or in Undelivered on failure).
func (cy *Cyclon) Propose(n *sim.Node, px *sim.Proposals) {
	target, ok := cy.oldest()
	if !ok {
		return
	}
	cy.Exchanges++
	req := shuffleReqPool.Get()
	req.Sent = cy.appendSubset(req.Sent[:0], n.RNG, cy.L-1, target.ID)
	req.Sent = append(req.Sent, Descriptor{ID: cy.self, Stamp: px.Cycle()})
	px.Send(target.ID, cy.Slot, req)
}

// Receive implements sim.Receiver, node-locally. On the request leg the
// contacted peer answers with L of its own descriptors (never including
// the initiator), settles its side of the swap — discard what it sent,
// merge what it received — and mails the reply (plus an echo of the
// request) back. On the reply leg the initiator settles its side: replace
// the target's entry and the echoed descriptors it sent away with the
// reply subset.
func (cy *Cyclon) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch req := msg.Data.(type) {
	case *shuffleReq:
		rep := shuffleRepPool.Get()
		rep.Reply = cy.appendSubset(rep.Reply[:0], n.RNG, cy.L, msg.From)
		for _, d := range rep.Reply {
			cy.view.Remove(d.ID)
		}
		cy.view.Merge(cy.self, req.Sent)
		rep.Echo = req.Sent
		ax.Send(msg.From, cy.Slot, rep)
	case *shuffleRep:
		cy.view.Remove(msg.From)
		for _, d := range req.Echo {
			if d.ID != cy.self {
				cy.view.Remove(d.ID)
			}
		}
		cy.view.Merge(cy.self, req.Reply)
	}
}

// Undelivered implements sim.Undeliverable: the oldest neighbor was dead —
// exactly the case Cyclon's oldest-first policy is designed to flush. A
// dead reply leg (one-way partition) also flushes the unreachable peer,
// but only a failed initiation counts as a FailedExchange.
func (cy *Cyclon) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*shuffleReq); initiated {
		cy.FailedExchanges++
	}
	cy.view.Remove(msg.To)
}

// InitCyclon wires Cyclon into protocol slot `slot` of every live node,
// bootstrapping with up to c random peers.
func InitCyclon(e *sim.Engine, slot, c, l int) {
	nodes := e.LiveNodes()
	ids := make([]sim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	for _, n := range nodes {
		cy := NewCyclon(n.ID, c, l, slot)
		k := c
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		peers := make([]sim.NodeID, 0, k)
		for _, idx := range e.RNG().Sample(len(ids), k+1) {
			if ids[idx] != n.ID && len(peers) < k {
				peers = append(peers, ids[idx])
			}
		}
		cy.Bootstrap(peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = cy
	}
}
