package overlay

import (
	"testing"

	"gossipopt/internal/sim"
)

func buildCyclonNet(seed uint64, n, c, l int) *sim.Engine {
	e := sim.NewEngine(seed)
	e.AddNodes(n)
	InitCyclon(e, 0, c, l)
	return e
}

func TestCyclonConnectivity(t *testing.T) {
	e := buildCyclonNet(1, 200, 20, 10)
	e.Run(30)
	g := Snapshot(e, 0)
	if !IsConnected(g) {
		t.Fatalf("cyclon overlay disconnected: %v", ConnectedComponents(g))
	}
}

func TestCyclonViewInvariants(t *testing.T) {
	e := buildCyclonNet(2, 100, 10, 5)
	e.Run(30)
	e.ForEachLive(func(n *sim.Node) {
		cy := n.Protocol(0).(*Cyclon)
		if cy.View().Len() > 10 {
			t.Fatalf("view overflow: %d", cy.View().Len())
		}
		if cy.View().Contains(n.ID) {
			t.Fatalf("node %d contains itself", n.ID)
		}
	})
}

func TestCyclonInDegreeTighterThanNewscast(t *testing.T) {
	// Cyclon's swap-based shuffle preserves in-degree distribution more
	// tightly than Newscast's merge. Compare max in-degree.
	ec := buildCyclonNet(3, 300, 20, 10)
	ec.Run(40)
	inC, _ := DegreeStats(Snapshot(ec, 0))

	en := sim.NewEngine(3)
	en.AddNodes(300)
	InitNewscast(en, 0, 20)
	en.Run(40)
	inN, _ := DegreeStats(Snapshot(en, 0))

	if inC.Max > inN.Max*1.5 {
		t.Fatalf("cyclon max in-degree %v much worse than newscast %v", inC.Max, inN.Max)
	}
	// Both average near the view size.
	if inC.Avg < 10 || inC.Avg > 25 {
		t.Fatalf("cyclon avg in-degree %v, want near 20", inC.Avg)
	}
}

func TestCyclonSelfHeals(t *testing.T) {
	e := buildCyclonNet(4, 200, 20, 10)
	e.Run(20)
	for id := sim.NodeID(0); id < 100; id++ {
		e.Crash(id)
	}
	e.Run(60) // shuffling with oldest entries flushes the dead
	dead, total := 0, 0
	e.ForEachLive(func(n *sim.Node) {
		cy := n.Protocol(0).(*Cyclon)
		for _, d := range cy.View().Descriptors() {
			total++
			if tgt := e.Node(d.ID); tgt == nil || !tgt.Alive {
				dead++
			}
		}
	})
	if total == 0 {
		t.Fatal("views emptied out")
	}
	if frac := float64(dead) / float64(total); frac > 0.10 {
		t.Fatalf("%.1f%% dead entries after healing", frac*100)
	}
	if !IsConnected(Snapshot(e, 0)) {
		t.Fatal("overlay disconnected after 50% crash")
	}
}

func TestCyclonShuffleLengthDefault(t *testing.T) {
	cy := NewCyclon(1, 20, 0, 0)
	if cy.L != 10 {
		t.Fatalf("default L = %d, want C/2", cy.L)
	}
	cy = NewCyclon(1, 1, 0, 0)
	if cy.L != 1 {
		t.Fatalf("L floor = %d", cy.L)
	}
	cy = NewCyclon(1, 10, 99, 0)
	if cy.L != 5 {
		t.Fatalf("oversized L not clamped: %d", cy.L)
	}
}

func TestCyclonAsPeerSampler(t *testing.T) {
	e := buildCyclonNet(5, 50, 10, 5)
	e.Run(10)
	n := e.LiveNodes()[0]
	cy := n.Protocol(0).(*Cyclon)
	seen := map[sim.NodeID]bool{}
	for i := 0; i < 200; i++ {
		id, ok := cy.SamplePeer(n.RNG)
		if !ok {
			t.Fatal("sample failed")
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("sampling not diverse: %d distinct", len(seen))
	}
}

func TestCyclonEmptyView(t *testing.T) {
	cy := NewCyclon(1, 10, 5, 0)
	if _, ok := cy.SamplePeer(nil); ok {
		t.Fatal("empty view sampled")
	}
	if _, ok := cy.oldest(); ok {
		t.Fatal("oldest on empty view")
	}
}
