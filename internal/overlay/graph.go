package overlay

import (
	"sort"

	"gossipopt/internal/sim"
	"gossipopt/internal/stats"
)

// Graph analysis over the live overlay, used to validate the topology
// service: Newscast must keep the overlay connected with random-graph-like
// statistics (short paths, low clustering) even under churn.

// Snapshot captures the directed overlay induced by the PeerSampler in the
// given protocol slot across all live nodes.
func Snapshot(e *sim.Engine, slot int) map[sim.NodeID][]sim.NodeID {
	g := make(map[sim.NodeID][]sim.NodeID)
	e.ForEachLive(func(n *sim.Node) {
		ps, ok := n.Protocol(slot).(PeerSampler)
		if !ok {
			return
		}
		// Keep only live targets: dead descriptors are overlay pollution
		// and are exactly what connectivity analysis must see through.
		var live []sim.NodeID
		for _, id := range ps.Neighbors() {
			if t := e.Node(id); t != nil && t.Alive {
				live = append(live, id)
			}
		}
		g[n.ID] = live
	})
	return g
}

// sortedIDs returns g's keys in ascending order. Map iteration order is
// randomized per run, so every metric below walks the graph through this
// helper to stay reproducible.
func sortedIDs(g map[sim.NodeID][]sim.NodeID) []sim.NodeID {
	ids := make([]sim.NodeID, 0, len(g))
	for id := range g {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Undirect returns the undirected version of g (union of both directions).
// Adjacency lists come out in a deterministic order: nodes are visited by
// ascending ID, so downstream traversals are reproducible.
func Undirect(g map[sim.NodeID][]sim.NodeID) map[sim.NodeID][]sim.NodeID {
	ids := sortedIDs(g)
	u := make(map[sim.NodeID][]sim.NodeID, len(g))
	seen := make(map[[2]sim.NodeID]bool)
	addEdge := func(a, b sim.NodeID) {
		if a == b {
			return
		}
		key := [2]sim.NodeID{a, b}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			return
		}
		seen[key] = true
		u[a] = append(u[a], b)
		u[b] = append(u[b], a)
	}
	for _, a := range ids {
		if _, ok := u[a]; !ok {
			u[a] = nil
		}
	}
	for _, a := range ids {
		for _, b := range g[a] {
			if _, ok := g[b]; !ok {
				continue // edge to a node outside the snapshot
			}
			addEdge(a, b)
		}
	}
	return u
}

// ConnectedComponents returns the sizes of the connected components of the
// undirected version of g, largest first.
func ConnectedComponents(g map[sim.NodeID][]sim.NodeID) []int {
	u := Undirect(g)
	visited := make(map[sim.NodeID]bool, len(u))
	var sizes []int
	for _, start := range sortedIDs(u) {
		if visited[start] {
			continue
		}
		size := 0
		queue := []sim.NodeID{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			size++
			for _, nb := range u[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sizes = append(sizes, size)
	}
	// Largest first (insertion sort; component counts are tiny).
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}

// IsConnected reports whether the undirected overlay is a single component.
func IsConnected(g map[sim.NodeID][]sim.NodeID) bool {
	cc := ConnectedComponents(g)
	return len(cc) == 1 || (len(cc) == 0)
}

// DegreeStats summarizes the in-degree distribution of g. Under Newscast the
// out-degree is fixed at C while the in-degree concentrates around C; a
// heavy in-degree tail would indicate view-shuffling bias.
func DegreeStats(g map[sim.NodeID][]sim.NodeID) (in, out stats.Summary) {
	ids := sortedIDs(g)
	inDeg := make(map[sim.NodeID]int, len(g))
	var outs, ins []float64
	for _, id := range ids {
		outs = append(outs, float64(len(g[id])))
		for _, b := range g[id] {
			inDeg[b]++
		}
	}
	for _, id := range ids {
		ins = append(ins, float64(inDeg[id]))
	}
	return stats.Summarize(ins), stats.Summarize(outs)
}

// ClusteringCoefficient returns the average local clustering coefficient of
// the undirected overlay — near C/n for a random graph, near 3/4 for a
// ring lattice.
func ClusteringCoefficient(g map[sim.NodeID][]sim.NodeID) float64 {
	u := Undirect(g)
	adj := make(map[sim.NodeID]map[sim.NodeID]bool, len(u))
	for a, nbrs := range u {
		m := make(map[sim.NodeID]bool, len(nbrs))
		for _, b := range nbrs {
			m[b] = true
		}
		adj[a] = m
	}
	var total float64
	var counted int
	// Ascending-ID order keeps the float accumulation reproducible (the
	// per-node coefficients are not integers, so addition order matters in
	// the last ulp).
	for _, a := range sortedIDs(u) {
		nbrs := u[a]
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if adj[nbrs[i]][nbrs[j]] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// AvgPathLength estimates the mean shortest-path length of the undirected
// overlay by BFS from up to samples sources (all sources if samples <= 0).
// Unreachable pairs are skipped; ok is false if no finite path was found.
func AvgPathLength(g map[sim.NodeID][]sim.NodeID, samples int) (avg float64, ok bool) {
	u := Undirect(g)
	sources := sortedIDs(u)
	if samples > 0 && samples < len(sources) {
		sources = sources[:samples]
	}
	var sum float64
	var count int64
	for _, src := range sources {
		dist := map[sim.NodeID]int{src: 0}
		queue := []sim.NodeID{src}
		// Distances accumulate at discovery time: with Undirect's adjacency
		// order deterministic, BFS order — and therefore the sum — is too.
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range u[cur] {
				if _, seen := dist[nb]; !seen {
					d := dist[cur] + 1
					dist[nb] = d
					queue = append(queue, nb)
					sum += float64(d)
					count++
				}
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}
