package overlay

import (
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// PeerSampler is the interface the coordination layer uses to obtain gossip
// partners: the peer-sampling service of Jelasity et al. Implementations
// include Newscast (dynamic, self-repairing) and the static topologies in
// static.go.
type PeerSampler interface {
	// SamplePeer returns a (hopefully live) peer drawn from the node's
	// current view. ok is false when the view is empty.
	SamplePeer(r *rng.RNG) (id sim.NodeID, ok bool)
	// Neighbors returns the node's current out-links (for graph analysis).
	Neighbors() []sim.NodeID
}

// Newscast is the paper's topology service. Each node maintains a view of C
// descriptors; once per cycle it (i) picks a random peer from its view,
// (ii) refreshes its own descriptor with the current logical time, and
// (iii) performs a symmetric view exchange: both sides merge the union of
// the two views plus both fresh self-descriptors, keeping the C freshest.
//
// The periodic exchange continuously shuffles views (≈ random graph with
// out-degree C), keeps the overlay strongly connected (C = 20 is already
// very robust per the Newscast literature) and self-heals: crashed nodes
// stop injecting fresh descriptors, so their stale entries age out.
type Newscast struct {
	// C is the view size (paper/literature default 20).
	C int
	// Slot is the protocol slot index where Newscast instances live on
	// every node, so a node can address its partner's instance.
	Slot int

	self sim.NodeID
	view *View

	// Exchanges counts initiated view exchanges (metrics).
	Exchanges int64
	// FailedExchanges counts exchanges aimed at crashed peers.
	FailedExchanges int64
}

// Compile-time guards: sim.Protocol is untyped, so assert the two-phase
// contracts explicitly — a signature drift must fail the build, not turn
// the protocol into a silent no-op.
var (
	_ sim.Proposer      = (*Newscast)(nil)
	_ sim.Receiver      = (*Newscast)(nil)
	_ sim.Undeliverable = (*Newscast)(nil)
)

// NewNewscast creates the Newscast instance for the given node.
func NewNewscast(self sim.NodeID, c, slot int) *Newscast {
	return &Newscast{C: c, Slot: slot, self: self, view: NewView(c)}
}

// View exposes the node's current view (read-mostly; used by tests and
// graph analysis).
func (nc *Newscast) View() *View { return nc.view }

// SamplePeer implements PeerSampler by uniform choice over the view. On
// the propose hot path, so it draws straight from the view instead of
// materializing an ID slice per call.
func (nc *Newscast) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	return nc.view.SampleID(r)
}

// Neighbors implements PeerSampler.
func (nc *Newscast) Neighbors() []sim.NodeID { return nc.view.IDs() }

// Bootstrap seeds the view with the given peers at logical time 0.
func (nc *Newscast) Bootstrap(peers []sim.NodeID) {
	batch := make([]Descriptor, 0, len(peers))
	for _, id := range peers {
		batch = append(batch, Descriptor{ID: id, Stamp: 0})
	}
	nc.view.Merge(nc.self, batch)
}

// viewSwap is Newscast's proposed exchange: the initiator's view snapshot
// plus the logical time of the cycle, delivered to the chosen partner.
// Payloads are pooled (sim.Recyclable): a cycle at large n creates one
// snapshot per live node, so recycling the descriptor buffers removes the
// dominant per-cycle allocation.
type viewSwap struct {
	Descs []Descriptor
	Stamp int64
}

// viewSwapReply is the pull half of the exchange: the partner's pre-merge
// view (plus both fresh self-descriptors), mailed back to the initiator in
// the next apply round.
type viewSwapReply struct {
	Descs []Descriptor
}

var (
	viewSwapPool      sim.FreeList[viewSwap]
	viewSwapReplyPool sim.FreeList[viewSwapReply]
)

// Recycle implements sim.Recyclable.
func (s *viewSwap) Recycle() {
	s.Descs = s.Descs[:0]
	viewSwapPool.Put(s)
}

// Recycle implements sim.Recyclable.
func (s *viewSwapReply) Recycle() {
	s.Descs = s.Descs[:0]
	viewSwapReplyPool.Put(s)
}

// Propose implements sim.Proposer: pick a partner from the node's own view
// and propose a symmetric view exchange. Only the node's own state is
// touched — the swap itself happens in Receive during the apply phase.
func (nc *Newscast) Propose(n *sim.Node, px *sim.Proposals) {
	peerID, ok := nc.SamplePeer(n.RNG)
	if !ok {
		return
	}
	nc.Exchanges++
	sw := viewSwapPool.Get()
	sw.Descs = nc.view.AppendDescriptors(sw.Descs[:0])
	sw.Stamp = px.Cycle()
	px.Send(peerID, nc.Slot, sw)
}

// Receive implements sim.Receiver, node-locally. On the initiating leg the
// receiver merges the initiator's snapshot plus both fresh self-descriptors
// and mails its own pre-merge view back; on the reply leg the initiator
// merges that snapshot — the same symmetric outcome as an inline exchange,
// with each leg crossing the network (and the delivery filter) on its own.
func (nc *Newscast) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch sw := msg.Data.(type) {
	case *viewSwap:
		myDesc := Descriptor{ID: nc.self, Stamp: sw.Stamp}
		peerDesc := Descriptor{ID: msg.From, Stamp: sw.Stamp}
		// Snapshot the pre-merge view into the pooled reply, then extend
		// the received (owned, pooled) snapshot in place for the merge —
		// the same merge input and reply contents as the historical
		// fresh-slice construction, with both buffers recycled at cycle
		// end.
		rep := viewSwapReplyPool.Get()
		rep.Descs = nc.view.AppendDescriptors(rep.Descs[:0])
		rep.Descs = append(rep.Descs, myDesc, peerDesc)
		sw.Descs = append(sw.Descs, peerDesc, myDesc)
		nc.view.Merge(nc.self, sw.Descs)
		ax.Send(msg.From, nc.Slot, rep)
	case *viewSwapReply:
		nc.view.Merge(nc.self, sw.Descs)
	}
}

// Undelivered implements sim.Undeliverable: the partner is dead or
// unreachable, so the exchange (or its reply leg) is simply lost. Drop the
// unreachable descriptor locally so repeated failures do not pin the view;
// only a failed initiation counts as a FailedExchange.
func (nc *Newscast) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*viewSwap); initiated {
		nc.FailedExchanges++
	}
	nc.view.Remove(msg.To)
}

// InitNewscast wires a Newscast instance into protocol slot `slot` of every
// node of e, bootstrapping each view with up to c random peers chosen by the
// engine RNG. Call after all initial nodes are added; newly joining nodes
// (churn) get their instance from the node factory and bootstrap lazily via
// exchanges initiated by others... but since a joiner with an empty view can
// never initiate, factories should call BootstrapFrom with at least one
// known node, mirroring a real deployment's bootstrap server.
func InitNewscast(e *sim.Engine, slot, c int) {
	nodes := e.LiveNodes()
	ids := make([]sim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	for _, n := range nodes {
		nc := NewNewscast(n.ID, c, slot)
		// Bootstrap with up to c random other nodes.
		k := c
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		peers := make([]sim.NodeID, 0, k)
		for _, idx := range e.RNG().Sample(len(ids), k+1) {
			if ids[idx] != n.ID && len(peers) < k {
				peers = append(peers, ids[idx])
			}
		}
		nc.Bootstrap(peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = nc
	}
}
