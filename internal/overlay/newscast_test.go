package overlay

import (
	"testing"

	"gossipopt/internal/sim"
)

// buildNewscastNet creates an engine with n nodes running Newscast in slot 0.
func buildNewscastNet(seed uint64, n, c int) *sim.Engine {
	e := sim.NewEngine(seed)
	e.AddNodes(n)
	InitNewscast(e, 0, c)
	// Churn-joined nodes also need an instance: bootstrap from a random
	// live node, as a real deployment's bootstrap service would.
	e.SetNodeFactory(func(nd *sim.Node) {
		nc := NewNewscast(nd.ID, c, 0)
		if b := e.RandomLiveNode(nd.ID); b != nil {
			nc.Bootstrap([]sim.NodeID{b.ID})
		}
		nd.Protocols = []sim.Protocol{nc}
	})
	return e
}

func TestNewscastConnectivity(t *testing.T) {
	e := buildNewscastNet(1, 200, 20)
	e.Run(30)
	g := Snapshot(e, 0)
	if !IsConnected(g) {
		t.Fatalf("overlay disconnected: components %v", ConnectedComponents(g))
	}
}

func TestNewscastViewsFillUp(t *testing.T) {
	e := buildNewscastNet(2, 100, 20)
	e.Run(20)
	e.ForEachLive(func(n *sim.Node) {
		nc := n.Protocol(0).(*Newscast)
		if nc.View().Len() < 15 {
			t.Fatalf("node %d view has only %d entries after 20 cycles", n.ID, nc.View().Len())
		}
	})
}

func TestNewscastNoSelfNoDead(t *testing.T) {
	e := buildNewscastNet(3, 100, 10)
	e.Run(10)
	// Crash a third of the network, let the overlay heal.
	for id := sim.NodeID(0); id < 33; id++ {
		e.Crash(id)
	}
	e.Run(40)
	deadRefs := 0
	totalRefs := 0
	e.ForEachLive(func(n *sim.Node) {
		nc := n.Protocol(0).(*Newscast)
		for _, d := range nc.View().Descriptors() {
			if d.ID == n.ID {
				t.Fatalf("node %d has itself in view", n.ID)
			}
			totalRefs++
			if tgt := e.Node(d.ID); tgt == nil || !tgt.Alive {
				deadRefs++
			}
		}
	})
	// Self-healing: stale descriptors must have (almost) disappeared.
	if frac := float64(deadRefs) / float64(totalRefs); frac > 0.05 {
		t.Fatalf("%.1f%% of view entries still point at dead nodes after healing", frac*100)
	}
}

func TestNewscastHealsAfterMassCrash(t *testing.T) {
	e := buildNewscastNet(4, 300, 20)
	e.Run(20)
	// Kill 50 % of the network.
	live := e.LiveNodes()
	for i, n := range live {
		if i%2 == 0 {
			e.Crash(n.ID)
		}
	}
	e.Run(30)
	g := Snapshot(e, 0)
	if !IsConnected(g) {
		t.Fatalf("overlay failed to heal after 50%% crash: components %v", ConnectedComponents(g))
	}
}

func TestNewscastJoinersIntegrate(t *testing.T) {
	e := buildNewscastNet(5, 50, 10)
	e.Run(10)
	joiner := e.AddNode() // node factory bootstraps from node 0
	e.Run(15)
	nc := joiner.Protocol(0).(*Newscast)
	if nc.View().Len() < 5 {
		t.Fatalf("joiner's view has %d entries after 15 cycles", nc.View().Len())
	}
	// The joiner must also be known by others (in-degree > 0).
	g := Snapshot(e, 0)
	in := 0
	for _, nbrs := range g {
		for _, id := range nbrs {
			if id == joiner.ID {
				in++
			}
		}
	}
	if in == 0 {
		t.Fatal("joiner never entered anyone's view")
	}
}

func TestNewscastRandomGraphShape(t *testing.T) {
	e := buildNewscastNet(6, 400, 20)
	e.Run(40)
	g := Snapshot(e, 0)
	inStats, outStats := DegreeStats(g)
	// Out-degree is bounded by C; after warmup it should be close to C.
	if outStats.Avg < 17 || outStats.Avg > 20 {
		t.Fatalf("avg out-degree %.2f, want ≈ 20", outStats.Avg)
	}
	// In-degree should concentrate near C (no superhubs).
	if inStats.Max > 5*20 {
		t.Fatalf("max in-degree %v indicates hub formation", inStats.Max)
	}
	// Path length should be short (log n / log c ≈ 2).
	if apl, ok := AvgPathLength(g, 50); !ok || apl > 4 {
		t.Fatalf("avg path length %.2f (ok=%v), want < 4", apl, ok)
	}
	// Newscast's full view exchange leaves both partners with nearly
	// identical views, so clustering is elevated above a pure random
	// graph (2c/n = 0.1 here) — Jelasity et al. report the same effect.
	// It must still stay far below lattice-like values (~0.6+).
	if cc := ClusteringCoefficient(g); cc > 0.45 {
		t.Fatalf("clustering coefficient %.3f, want < 0.45", cc)
	}
}

func TestNewscastSamplePeerEmpty(t *testing.T) {
	nc := NewNewscast(1, 5, 0)
	if _, ok := nc.SamplePeer(nil); ok {
		t.Fatal("SamplePeer on empty view returned ok")
	}
}

func TestNewscastUnderContinuousChurn(t *testing.T) {
	e := buildNewscastNet(7, 200, 20)
	e.Run(10)
	e.SetChurn(&sim.RateChurn{CrashProb: 0.01, JoinPerCycle: 2, MinLive: 50})
	e.Run(50)
	g := Snapshot(e, 0)
	cc := ConnectedComponents(g)
	if len(cc) == 0 {
		t.Fatal("empty overlay")
	}
	// The giant component must cover nearly all live nodes.
	if frac := float64(cc[0]) / float64(e.LiveCount()); frac < 0.95 {
		t.Fatalf("giant component covers only %.1f%% under churn", frac*100)
	}
}
