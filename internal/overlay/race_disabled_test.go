//go:build !race

package overlay

// raceEnabled reports whether the race detector is active (build-tag
// selected); see race_enabled_test.go.
const raceEnabled = false
