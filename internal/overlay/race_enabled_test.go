//go:build race

package overlay

// raceEnabled reports whether the race detector is active (build-tag
// selected). Allocation-budget tests skip under it: the race runtime makes
// sync.Pool deliberately drop cached items to expose reuse races, so pooled
// payloads reallocate and the budgets do not hold.
const raceEnabled = true
