package overlay

import (
	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// Static is a fixed-neighbor PeerSampler: the topology service reduced to a
// static graph. The paper names several alternatives to peer sampling — a
// mesh, a star for master-slave — which are all instances of Static with
// different neighbor sets. Static implements the protocol contract as a
// no-op so it can occupy a protocol slot interchangeably with Newscast.
type Static struct {
	self  sim.NodeID
	peers []sim.NodeID
}

// Compile-time guard for the two-phase contract (see Newscast's note).
var _ sim.Proposer = (*Static)(nil)

// NewStatic creates a static sampler for self with the given out-links.
func NewStatic(self sim.NodeID, peers []sim.NodeID) *Static {
	return &Static{self: self, peers: append([]sim.NodeID(nil), peers...)}
}

// SamplePeer implements PeerSampler.
func (s *Static) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	if len(s.peers) == 0 {
		return 0, false
	}
	return s.peers[r.Intn(len(s.peers))], true
}

// Neighbors implements PeerSampler.
func (s *Static) Neighbors() []sim.NodeID {
	return append([]sim.NodeID(nil), s.peers...)
}

// Propose implements sim.Proposer as a no-op: static topologies need no
// maintenance, and by speaking the two-phase contract they keep a node's
// whole stack on the parallel propose path.
func (s *Static) Propose(*sim.Node, *sim.Proposals) {}

// Topology builds the out-link lists for n nodes (indexed 0..n-1).
type Topology func(r *rng.RNG, n int) [][]int

// FullMesh connects every node to every other node (the "full information"
// extreme of the paper's spectrum).
func FullMesh(_ *rng.RNG, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		for j := 0; j < n; j++ {
			if j != i {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// Ring connects each node to its two lattice neighbors.
func Ring(_ *rng.RNG, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		if n <= 1 {
			continue
		}
		prev := (i - 1 + n) % n
		next := (i + 1) % n
		if prev == next { // n == 2
			out[i] = []int{next}
		} else {
			out[i] = []int{prev, next}
		}
	}
	return out
}

// Star connects node 0 (the master) to all others and every other node only
// to node 0 — the centralized master-slave shape the paper contrasts with.
func Star(_ *rng.RNG, n int) [][]int {
	out := make([][]int, n)
	for i := 1; i < n; i++ {
		out[0] = append(out[0], i)
		out[i] = []int{0}
	}
	return out
}

// Grid arranges nodes in a near-square 2-D mesh with 4-neighborhoods
// (the "mesh topology connecting nodes responsible for different partitions"
// alternative mentioned in the paper).
func Grid(_ *rng.RNG, n int) [][]int {
	cols := 1
	for cols*cols < n {
		cols++
	}
	out := make([][]int, n)
	at := func(r, c int) int { return r*cols + c }
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		if r > 0 {
			out[i] = append(out[i], at(r-1, c))
		}
		if c > 0 {
			out[i] = append(out[i], at(r, c-1))
		}
		if c+1 < cols && at(r, c+1) < n {
			out[i] = append(out[i], at(r, c+1))
		}
		if at(r+1, c) < n {
			out[i] = append(out[i], at(r+1, c))
		}
	}
	return out
}

// KRegularRandom gives every node k distinct random out-links (k is capped
// at n-1). This approximates the stationary Newscast overlay.
func KRegularRandom(k int) Topology {
	return func(r *rng.RNG, n int) [][]int {
		if k > n-1 {
			k = n - 1
		}
		out := make([][]int, n)
		for i := 0; i < n; i++ {
			for _, idx := range r.Sample(n-1, k) {
				// Map [0, n-2] onto [0, n-1] \ {i}.
				j := idx
				if j >= i {
					j++
				}
				out[i] = append(out[i], j)
			}
		}
		return out
	}
}

// SmallWorld is the Watts–Strogatz construction: a ring lattice where each
// node links to its k nearest neighbors (k even), with each link rewired to
// a uniform random target with probability beta. Kennedy's PSO topology
// studies [8] motivate including it.
func SmallWorld(k int, beta float64) Topology {
	return func(r *rng.RNG, n int) [][]int {
		if k >= n {
			k = n - 1
		}
		out := make([][]int, n)
		for i := 0; i < n; i++ {
			for d := 1; d <= k/2; d++ {
				j := (i + d) % n
				if r.Bool(beta) {
					for {
						j = r.Intn(n)
						if j != i {
							break
						}
					}
				}
				out[i] = append(out[i], j)
				out[j] = append(out[j], i)
			}
		}
		// Deduplicate.
		for i := range out {
			seen := map[int]bool{}
			uniq := out[i][:0]
			for _, j := range out[i] {
				if !seen[j] && j != i {
					seen[j] = true
					uniq = append(uniq, j)
				}
			}
			out[i] = uniq
		}
		return out
	}
}

// InitStatic wires Static samplers built from topo into protocol slot
// `slot` of every live node of e. Node index order follows e.LiveNodes().
func InitStatic(e *sim.Engine, slot int, topo Topology) {
	nodes := e.LiveNodes()
	links := topo(e.RNG(), len(nodes))
	for i, n := range nodes {
		peers := make([]sim.NodeID, 0, len(links[i]))
		for _, j := range links[i] {
			peers = append(peers, nodes[j].ID)
		}
		st := NewStatic(n.ID, peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = st
	}
}
