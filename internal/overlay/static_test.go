package overlay

import (
	"testing"

	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

func degreeOK(t *testing.T, links [][]int, n int) {
	t.Helper()
	for i, nbrs := range links {
		seen := map[int]bool{}
		for _, j := range nbrs {
			if j < 0 || j >= n {
				t.Fatalf("node %d links to out-of-range %d", i, j)
			}
			if j == i {
				t.Fatalf("node %d links to itself", i)
			}
			if seen[j] {
				t.Fatalf("node %d links to %d twice", i, j)
			}
			seen[j] = true
		}
	}
}

func asGraph(links [][]int) map[sim.NodeID][]sim.NodeID {
	g := make(map[sim.NodeID][]sim.NodeID, len(links))
	for i, nbrs := range links {
		ids := make([]sim.NodeID, len(nbrs))
		for k, j := range nbrs {
			ids[k] = sim.NodeID(j)
		}
		g[sim.NodeID(i)] = ids
	}
	return g
}

func TestFullMesh(t *testing.T) {
	links := FullMesh(nil, 5)
	degreeOK(t, links, 5)
	for i, nbrs := range links {
		if len(nbrs) != 4 {
			t.Fatalf("node %d has degree %d", i, len(nbrs))
		}
	}
	if !IsConnected(asGraph(links)) {
		t.Fatal("full mesh disconnected")
	}
}

func TestRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 100} {
		links := Ring(nil, n)
		degreeOK(t, links, n)
		if n >= 3 {
			for i, nbrs := range links {
				if len(nbrs) != 2 {
					t.Fatalf("ring(%d) node %d degree %d", n, i, len(nbrs))
				}
			}
		}
		if n > 1 && !IsConnected(asGraph(links)) {
			t.Fatalf("ring(%d) disconnected", n)
		}
	}
	// Ring clustering is 0 (no triangles) and path length ~ n/4.
	g := asGraph(Ring(nil, 64))
	if cc := ClusteringCoefficient(g); cc != 0 {
		t.Fatalf("ring clustering = %v", cc)
	}
	if apl, ok := AvgPathLength(g, 0); !ok || apl < 10 {
		t.Fatalf("ring(64) path length %.2f, want ~16", apl)
	}
}

func TestStar(t *testing.T) {
	links := Star(nil, 10)
	degreeOK(t, links, 10)
	if len(links[0]) != 9 {
		t.Fatalf("hub degree %d", len(links[0]))
	}
	for i := 1; i < 10; i++ {
		if len(links[i]) != 1 || links[i][0] != 0 {
			t.Fatalf("spoke %d links %v", i, links[i])
		}
	}
	if !IsConnected(asGraph(links)) {
		t.Fatal("star disconnected")
	}
}

func TestGrid(t *testing.T) {
	for _, n := range []int{1, 4, 9, 12, 100} {
		links := Grid(nil, n)
		degreeOK(t, links, n)
		if n > 1 && !IsConnected(asGraph(links)) {
			t.Fatalf("grid(%d) disconnected", n)
		}
	}
	// Interior nodes of a 3x3 grid have degree 4.
	links := Grid(nil, 9)
	if len(links[4]) != 4 {
		t.Fatalf("grid center degree %d", len(links[4]))
	}
}

func TestKRegularRandom(t *testing.T) {
	r := rng.New(1)
	links := KRegularRandom(5)(r, 50)
	degreeOK(t, links, 50)
	for i, nbrs := range links {
		if len(nbrs) != 5 {
			t.Fatalf("node %d out-degree %d, want 5", i, len(nbrs))
		}
	}
	// k is capped at n-1.
	links = KRegularRandom(10)(r, 4)
	for _, nbrs := range links {
		if len(nbrs) != 3 {
			t.Fatalf("capped degree %d, want 3", len(nbrs))
		}
	}
}

func TestSmallWorld(t *testing.T) {
	r := rng.New(2)
	links := SmallWorld(4, 0.1)(r, 100)
	degreeOK(t, links, 100)
	g := asGraph(links)
	if !IsConnected(g) {
		t.Fatal("small world disconnected")
	}
	// With beta = 0 we get a pure lattice: high clustering.
	lattice := asGraph(SmallWorld(6, 0)(r, 100))
	ccLattice := ClusteringCoefficient(lattice)
	if ccLattice < 0.4 {
		t.Fatalf("lattice clustering %.3f, want > 0.4", ccLattice)
	}
	// Rewiring shortens paths.
	aplLattice, _ := AvgPathLength(lattice, 0)
	rewired := asGraph(SmallWorld(6, 0.2)(r, 100))
	aplRewired, _ := AvgPathLength(rewired, 0)
	if aplRewired >= aplLattice {
		t.Fatalf("rewiring did not shorten paths: %.2f vs %.2f", aplRewired, aplLattice)
	}
}

func TestStaticSampler(t *testing.T) {
	s := NewStatic(0, []sim.NodeID{1, 2, 3})
	r := rng.New(3)
	seen := map[sim.NodeID]bool{}
	for i := 0; i < 100; i++ {
		id, ok := s.SamplePeer(r)
		if !ok {
			t.Fatal("SamplePeer failed")
		}
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("sampled %d distinct peers, want 3", len(seen))
	}
	empty := NewStatic(0, nil)
	if _, ok := empty.SamplePeer(r); ok {
		t.Fatal("empty static sampler returned ok")
	}
}

func TestInitStatic(t *testing.T) {
	e := sim.NewEngine(4)
	e.AddNodes(16)
	InitStatic(e, 0, Ring)
	g := Snapshot(e, 0)
	if !IsConnected(g) {
		t.Fatal("InitStatic ring disconnected")
	}
	for _, nbrs := range g {
		if len(nbrs) != 2 {
			t.Fatalf("ring degree %d", len(nbrs))
		}
	}
}

func TestSnapshotSkipsDeadTargets(t *testing.T) {
	e := sim.NewEngine(5)
	e.AddNodes(3)
	InitStatic(e, 0, FullMesh)
	e.Crash(2)
	g := Snapshot(e, 0)
	if len(g) != 2 {
		t.Fatalf("snapshot has %d nodes, want 2", len(g))
	}
	for id, nbrs := range g {
		for _, nb := range nbrs {
			if nb == 2 {
				t.Fatalf("node %d still links to dead node", id)
			}
		}
	}
}
