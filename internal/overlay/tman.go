package overlay

import (
	"cmp"
	"slices"

	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// TMan is the gossip-based topology construction protocol of Jelasity &
// Babaoglu (ESOA 2005), cited by the paper as the canonical way a
// topology service can build *structured* overlays (e.g. a mesh
// partitioning the search space) out of the random Newscast substrate.
//
// Each node keeps a T-Man view of the c peers closest to it under a
// problem-specific ranking (distance function). Periodically it picks the
// closest known peer, exchanges views, and keeps the c closest of the
// union. Starting from a random overlay, the target topology emerges in
// O(log n) cycles.
//
// TMan speaks the engine's two-phase exchange contract: Propose samples
// the random injection and mails the node's view to its closest neighbor;
// the symmetric merge completes through a reply message in Receive. A
// failed contact reports back through Undelivered, which distinguishes a *confirmed
// crash* (destination dead: tombstone it so third-party merges cannot
// resurrect it) from an *unreachable* peer (network partition: drop it
// from the view without a tombstone, so it is re-adopted once the
// partition heals).
type TMan struct {
	// C is the view size. Slot is TMan's protocol slot on all nodes.
	// RandSlot, when >= 0, points at a peer-sampling protocol used to
	// keep injecting random descriptors (prevents partitioning into
	// local clusters).
	C        int
	Slot     int
	RandSlot int
	// Distance ranks candidate neighbors: smaller is closer. It must be
	// symmetric and zero only for a == b.
	Distance func(a, b sim.NodeID) float64

	self  sim.NodeID
	peers []sim.NodeID
	// dead tombstones peers whose crash was confirmed (the engine bounced
	// a message off a dead node), so third-party merges do not resurrect
	// them. Peers that are merely unreachable (partitions) are never
	// tombstoned, and a direct message from a tombstoned peer — proof it
	// restarted (scripted revive) — clears its tombstone in Receive; a
	// real deployment would additionally expire tombstones by age.
	dead map[sim.NodeID]bool

	// Exchanges counts initiated view exchanges; Lost counts initiations
	// that died in transit (dead peer or network partition).
	Exchanges int64
	Lost      int64

	// merge scratch, reused across calls: merge runs at least twice per
	// node per cycle (random injection + exchange), so per-call map and
	// slice allocations would dominate the protocol's cost.
	mergeScratch []tmanRanked
	mergeSeen    map[sim.NodeID]bool
}

// tmanRanked is a candidate neighbor with its precomputed distance
// (merge scratch element).
type tmanRanked struct {
	id sim.NodeID
	d  float64
}

// tmanSwap is the proposed exchange: the initiator's view snapshot plus
// its own descriptor, delivered to the closest known neighbor. Pooled via
// sim.Recyclable, like the peer-sampling payloads.
type tmanSwap struct {
	Peers []sim.NodeID
}

// tmanReply is the pull half: the contacted peer's pre-merge view plus its
// own descriptor, mailed back to the initiator in the next apply round.
type tmanReply struct {
	Peers []sim.NodeID
}

var (
	tmanSwapPool  sim.FreeList[tmanSwap]
	tmanReplyPool sim.FreeList[tmanReply]
)

// Recycle implements sim.Recyclable.
func (s *tmanSwap) Recycle() {
	s.Peers = s.Peers[:0]
	tmanSwapPool.Put(s)
}

// Recycle implements sim.Recyclable.
func (s *tmanReply) Recycle() {
	s.Peers = s.Peers[:0]
	tmanReplyPool.Put(s)
}

// Compile-time guards: sim.Protocol is untyped, so assert the two-phase
// contracts explicitly — a signature drift must fail the build, not turn
// the protocol into a silent no-op.
var (
	_ sim.Proposer      = (*TMan)(nil)
	_ sim.Receiver      = (*TMan)(nil)
	_ sim.Undeliverable = (*TMan)(nil)
)

// NewTMan creates a T-Man instance for node self.
func NewTMan(self sim.NodeID, c, slot, randSlot int, dist func(a, b sim.NodeID) float64) *TMan {
	return &TMan{C: c, Slot: slot, RandSlot: randSlot, Distance: dist, self: self}
}

// Neighbors implements PeerSampler: the current closest-known peers.
func (t *TMan) Neighbors() []sim.NodeID {
	return append([]sim.NodeID(nil), t.peers...)
}

// SamplePeer implements PeerSampler.
func (t *TMan) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	if len(t.peers) == 0 {
		return 0, false
	}
	return t.peers[r.Intn(len(t.peers))], true
}

// Bootstrap seeds the view.
func (t *TMan) Bootstrap(peers []sim.NodeID) { t.merge(peers) }

// Tombstoned reports whether the peer's crash has been confirmed and it is
// barred from re-entering the view.
func (t *TMan) Tombstoned(id sim.NodeID) bool { return t.dead[id] }

// merge folds candidates into the view, keeping the C closest distinct
// non-self peers. Distances are computed once per candidate (not inside
// the sort comparator, which would re-evaluate Distance O(k log k) times
// per merge on the protocol's hot path — see BenchmarkTManMerge).
func (t *TMan) merge(candidates []sim.NodeID) {
	if t.mergeSeen == nil {
		t.mergeSeen = make(map[sim.NodeID]bool, 2*t.C)
	}
	clear(t.mergeSeen)
	seen := t.mergeSeen
	seen[t.self] = true
	all := t.mergeScratch[:0]
	rank := func(ids []sim.NodeID) {
		for _, id := range ids {
			if !seen[id] && !t.dead[id] {
				seen[id] = true
				all = append(all, tmanRanked{id: id, d: t.Distance(t.self, id)})
			}
		}
	}
	rank(t.peers)
	rank(candidates)
	t.mergeScratch = all
	// seen guarantees distinct ids, so the (distance, id) comparator is a
	// total order and the non-allocating sort is algorithm-independent.
	slices.SortFunc(all, func(a, b tmanRanked) int {
		if a.d != b.d {
			return cmp.Compare(a.d, b.d)
		}
		return cmp.Compare(a.id, b.id)
	})
	if len(all) > t.C {
		all = all[:t.C]
	}
	t.peers = t.peers[:0]
	for _, c := range all {
		t.peers = append(t.peers, c.id)
	}
}

// remove deletes one peer from the view, preserving the distance order.
func (t *TMan) remove(id sim.NodeID) {
	for i, p := range t.peers {
		if p == id {
			t.peers = append(t.peers[:i], t.peers[i+1:]...)
			return
		}
	}
}

// closest returns the nearest current neighbor.
func (t *TMan) closest() (sim.NodeID, bool) {
	if len(t.peers) == 0 {
		return 0, false
	}
	return t.peers[0], true // merge keeps peers sorted by distance
}

// Propose implements sim.Proposer: merge one random descriptor from the
// underlying peer-sampling layer (maintains global connectivity), then
// propose one view exchange with the closest neighbor. Only the node's
// own state is touched; the symmetric merge happens in Receive.
func (t *TMan) Propose(n *sim.Node, px *sim.Proposals) {
	if t.RandSlot >= 0 && t.RandSlot < len(n.Protocols) {
		if ps, ok := n.Protocol(t.RandSlot).(PeerSampler); ok {
			if id, ok := ps.SamplePeer(n.RNG); ok {
				t.merge([]sim.NodeID{id})
			}
		}
	}
	target, ok := t.closest()
	if !ok {
		return
	}
	t.Exchanges++
	sw := tmanSwapPool.Get()
	sw.Peers = append(append(sw.Peers[:0], t.peers...), t.self)
	px.Send(target, t.Slot, sw)
}

// Receive implements sim.Receiver, node-locally. On the initiating leg the
// contacted peer merges the initiator's snapshot and mails its own
// pre-merge view (plus its descriptor) back; on the reply leg the
// initiator merges that snapshot — the same symmetric outcome as the
// historical inline exchange, with each leg crossing the delivery filter
// on its own.
func (t *TMan) Receive(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	switch sw := msg.Data.(type) {
	case *tmanSwap:
		// A message from a tombstoned peer is proof of life: the crash was
		// confirmed once, but the node has since restarted (scripted
		// revive). Direct contact — and only direct contact, never a
		// third-party merge — clears the tombstone.
		delete(t.dead, msg.From)
		// Snapshot the pre-merge view into the pooled reply before merge
		// mutates t.peers.
		rep := tmanReplyPool.Get()
		rep.Peers = append(append(rep.Peers[:0], t.peers...), t.self)
		t.merge(sw.Peers)
		ax.Send(msg.From, t.Slot, rep)
	case *tmanReply:
		delete(t.dead, msg.From)
		t.merge(sw.Peers)
	}
}

// Undelivered implements sim.Undeliverable: the exchange (or its reply
// leg) died in transit. A dead destination is a confirmed crash — drop it
// and tombstone it, or third-party merges would keep pinning it back into
// the view. A live but unreachable destination (delivery filter, i.e. a
// partition) is only dropped: no tombstone, so the peer is re-adopted
// through merges or random injection once the partition heals. Only a
// failed initiation counts toward Lost.
func (t *TMan) Undelivered(n *sim.Node, ax *sim.ApplyContext, msg sim.Message) {
	if _, initiated := msg.Data.(*tmanSwap); initiated {
		t.Lost++
	}
	t.remove(msg.To)
	if !ax.Alive(msg.To) {
		if t.dead == nil {
			t.dead = make(map[sim.NodeID]bool)
		}
		t.dead[msg.To] = true
	}
}

// RingDistance returns a distance function for building a ring over node
// IDs modulo n (the classic T-Man demonstration target).
func RingDistance(n int) func(a, b sim.NodeID) float64 {
	return func(a, b sim.NodeID) float64 {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		d %= int64(n)
		if wrap := int64(n) - d; wrap < d {
			d = wrap
		}
		return float64(d)
	}
}

// InitTMan wires T-Man into slot `slot` of every live node, each
// bootstrapped with k random peers; randSlot may point at an existing
// peer-sampling protocol (pass -1 to disable random injection).
func InitTMan(e *sim.Engine, slot, randSlot, c int, dist func(a, b sim.NodeID) float64) {
	nodes := e.LiveNodes()
	ids := make([]sim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	for _, n := range nodes {
		tm := NewTMan(n.ID, c, slot, randSlot, dist)
		k := c
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		peers := make([]sim.NodeID, 0, k)
		for _, idx := range e.RNG().Sample(len(ids), k+1) {
			if ids[idx] != n.ID && len(peers) < k {
				peers = append(peers, ids[idx])
			}
		}
		tm.Bootstrap(peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = tm
	}
}
