package overlay

import (
	"sort"

	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// TMan is the gossip-based topology construction protocol of Jelasity &
// Babaoglu (ESOA 2005), cited by the paper as the canonical way a
// topology service can build *structured* overlays (e.g. a mesh
// partitioning the search space) out of the random Newscast substrate.
//
// Each node keeps a T-Man view of the c peers closest to it under a
// problem-specific ranking (distance function). Periodically it picks the
// closest known peer, exchanges views, and keeps the c closest of the
// union. Starting from a random overlay, the target topology emerges in
// O(log n) cycles.
type TMan struct {
	// C is the view size. Slot is TMan's protocol slot on all nodes.
	// RandSlot, when >= 0, points at a peer-sampling protocol used to
	// keep injecting random descriptors (prevents partitioning into
	// local clusters).
	C        int
	Slot     int
	RandSlot int
	// Distance ranks candidate neighbors: smaller is closer. It must be
	// symmetric and zero only for a == b.
	Distance func(a, b sim.NodeID) float64

	self  sim.NodeID
	peers []sim.NodeID
	// dead tombstones peers observed crashed, so third-party merges do
	// not resurrect them. Sound because the simulator never reuses node
	// IDs (see sim.NodeID); a real deployment would expire tombstones.
	dead map[sim.NodeID]bool

	// Exchanges counts initiated view exchanges.
	Exchanges int64
}

// NewTMan creates a T-Man instance for node self.
func NewTMan(self sim.NodeID, c, slot, randSlot int, dist func(a, b sim.NodeID) float64) *TMan {
	return &TMan{C: c, Slot: slot, RandSlot: randSlot, Distance: dist, self: self}
}

// Neighbors implements PeerSampler: the current closest-known peers.
func (t *TMan) Neighbors() []sim.NodeID {
	return append([]sim.NodeID(nil), t.peers...)
}

// SamplePeer implements PeerSampler.
func (t *TMan) SamplePeer(r *rng.RNG) (sim.NodeID, bool) {
	if len(t.peers) == 0 {
		return 0, false
	}
	return t.peers[r.Intn(len(t.peers))], true
}

// Bootstrap seeds the view.
func (t *TMan) Bootstrap(peers []sim.NodeID) { t.merge(peers) }

// merge folds candidates into the view, keeping the C closest distinct
// non-self peers.
func (t *TMan) merge(candidates []sim.NodeID) {
	seen := map[sim.NodeID]bool{t.self: true}
	var all []sim.NodeID
	for _, id := range append(append([]sim.NodeID{}, t.peers...), candidates...) {
		if !seen[id] && !t.dead[id] {
			seen[id] = true
			all = append(all, id)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		di, dj := t.Distance(t.self, all[i]), t.Distance(t.self, all[j])
		if di != dj {
			return di < dj
		}
		return all[i] < all[j]
	})
	if len(all) > t.C {
		all = all[:t.C]
	}
	t.peers = all
}

// closest returns the nearest current neighbor.
func (t *TMan) closest() (sim.NodeID, bool) {
	if len(t.peers) == 0 {
		return 0, false
	}
	return t.peers[0], true // merge keeps peers sorted by distance
}

// Compile-time guard: T-Man still speaks the sequential contract.
var _ sim.CycleStepper = (*TMan)(nil)

// NextCycle implements sim.CycleStepper: one T-Man exchange with the
// closest neighbor, plus an optional random-descriptor injection from the
// underlying peer-sampling layer.
func (t *TMan) NextCycle(n *sim.Node, e *sim.Engine) {
	// Inject a random peer to maintain global connectivity.
	if t.RandSlot >= 0 && t.RandSlot < len(n.Protocols) {
		if ps, ok := n.Protocol(t.RandSlot).(PeerSampler); ok {
			if id, ok := ps.SamplePeer(n.RNG); ok {
				t.merge([]sim.NodeID{id})
			}
		}
	}
	target, ok := t.closest()
	if !ok {
		return
	}
	t.Exchanges++
	peer := e.Node(target)
	if peer == nil || !peer.Alive {
		// Drop and tombstone the dead closest neighbor, or third-party
		// merges would keep pinning it back into the view.
		t.peers = t.peers[1:]
		if t.dead == nil {
			t.dead = make(map[sim.NodeID]bool)
		}
		t.dead[target] = true
		return
	}
	remote, ok := peer.Protocol(t.Slot).(*TMan)
	if !ok {
		return
	}
	mine := append(t.Neighbors(), t.self)
	theirs := append(remote.Neighbors(), remote.self)
	t.merge(theirs)
	remote.merge(mine)
}

// RingDistance returns a distance function for building a ring over node
// IDs modulo n (the classic T-Man demonstration target).
func RingDistance(n int) func(a, b sim.NodeID) float64 {
	return func(a, b sim.NodeID) float64 {
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		wrap := int64(n) - d
		if wrap < d {
			d = wrap
		}
		return float64(d)
	}
}

// InitTMan wires T-Man into slot `slot` of every live node, each
// bootstrapped with k random peers; randSlot may point at an existing
// peer-sampling protocol (pass -1 to disable random injection).
func InitTMan(e *sim.Engine, slot, randSlot, c int, dist func(a, b sim.NodeID) float64) {
	nodes := e.LiveNodes()
	ids := make([]sim.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	for _, n := range nodes {
		tm := NewTMan(n.ID, c, slot, randSlot, dist)
		k := c
		if k > len(ids)-1 {
			k = len(ids) - 1
		}
		peers := make([]sim.NodeID, 0, k)
		for _, idx := range e.RNG().Sample(len(ids), k+1) {
			if ids[idx] != n.ID && len(peers) < k {
				peers = append(peers, ids[idx])
			}
		}
		tm.Bootstrap(peers)
		for len(n.Protocols) <= slot {
			n.Protocols = append(n.Protocols, nil)
		}
		n.Protocols[slot] = tm
	}
}
