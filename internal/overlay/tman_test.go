package overlay

import (
	"testing"

	"gossipopt/internal/sim"
)

// buildTManNet wires Newscast (slot 0) + TMan (slot 1) on n nodes.
func buildTManNet(seed uint64, n, c int) *sim.Engine {
	e := sim.NewEngine(seed)
	e.AddNodes(n)
	InitNewscast(e, 0, 20)
	InitTMan(e, 1, 0, c, RingDistance(n))
	return e
}

func TestRingDistance(t *testing.T) {
	d := RingDistance(10)
	if d(0, 1) != 1 || d(0, 9) != 1 || d(0, 5) != 5 || d(3, 3) != 0 {
		t.Fatal("ring distance wrong")
	}
}

func TestTManConvergesToRing(t *testing.T) {
	const n = 64
	e := buildTManNet(1, n, 4)
	// Two-phase exchanges land at end of cycle (one hop per cycle), so the
	// ring needs roughly twice the cycles of the old inline engine.
	e.Run(60)
	// After convergence every node's two closest T-Man neighbors must be
	// its actual ring successors/predecessors (distance 1).
	perfect := 0
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		nbrs := tm.Neighbors()
		if len(nbrs) < 2 {
			return
		}
		d := RingDistance(n)
		if d(nd.ID, nbrs[0]) == 1 && d(nd.ID, nbrs[1]) == 1 {
			perfect++
		}
	})
	if perfect < n*95/100 {
		t.Fatalf("only %d/%d nodes found both ring neighbors", perfect, n)
	}
}

func TestTManFasterThanRandomWalkWouldBe(t *testing.T) {
	// Convergence should be fast (O(log n)): by cycle 15 most of the ring
	// must be in place for n = 128.
	const n = 128
	e := buildTManNet(2, n, 4)
	e.Run(15)
	good := 0
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		d := RingDistance(n)
		for _, nb := range tm.Neighbors() {
			if d(nd.ID, nb) == 1 {
				good++
				break
			}
		}
	})
	if good < n*80/100 {
		t.Fatalf("only %d/%d nodes adjacent to a ring neighbor by cycle 15", good, n)
	}
}

func TestTManViewInvariants(t *testing.T) {
	e := buildTManNet(3, 50, 6)
	e.Run(20)
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		nbrs := tm.Neighbors()
		if len(nbrs) > 6 {
			t.Fatalf("view overflow: %d", len(nbrs))
		}
		seen := map[sim.NodeID]bool{}
		d := RingDistance(50)
		prev := -1.0
		for _, nb := range nbrs {
			if nb == nd.ID {
				t.Fatalf("node %d contains itself", nd.ID)
			}
			if seen[nb] {
				t.Fatalf("duplicate neighbor %d", nb)
			}
			seen[nb] = true
			if dist := d(nd.ID, nb); dist < prev {
				t.Fatal("neighbors not sorted by distance")
			} else {
				prev = dist
			}
		}
	})
}

func TestTManSurvivesCrashes(t *testing.T) {
	const n = 64
	e := buildTManNet(4, n, 4)
	e.Run(20)
	// Crash every fourth node; survivors must drop dead neighbors.
	for id := sim.NodeID(0); int(id) < n; id += 4 {
		e.Crash(id)
	}
	e.Run(20)
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		// The closest neighbor must be live (dead ones are pruned on
		// contact).
		if id, ok := tm.closest(); ok {
			if tgt := e.Node(id); tgt == nil || !tgt.Alive {
				t.Fatalf("node %d still has dead closest neighbor %d", nd.ID, id)
			}
		}
	})
}

func TestTManEmptyView(t *testing.T) {
	tm := NewTMan(1, 4, 0, -1, RingDistance(8))
	if _, ok := tm.SamplePeer(nil); ok {
		t.Fatal("empty view sampled")
	}
	if _, ok := tm.closest(); ok {
		t.Fatal("closest on empty view")
	}
}

// TestTManPartitionNoLeak: two islands bootstrapped with zero knowledge of
// each other, separated by a delivery filter from the first cycle. Since
// every message now flows through the engine's mailbox, no view — T-Man's
// or the Newscast substrate's — may ever gain a cross-partition entry.
func TestTManPartitionNoLeak(t *testing.T) {
	const n = 40
	e := sim.NewEngine(7)
	e.AddNodes(n)
	e.SetDeliveryFilter(sim.SplitGroups(2))
	// Hand-wire both layers with same-parity-only bootstrap views.
	side := func(parity sim.NodeID) []sim.NodeID {
		var ids []sim.NodeID
		for id := parity; int(id) < n; id += 2 {
			ids = append(ids, id)
		}
		return ids
	}
	for _, nd := range e.AllNodes() {
		peers := make([]sim.NodeID, 0, n/2)
		for _, id := range side(nd.ID % 2) {
			if id != nd.ID {
				peers = append(peers, id)
			}
		}
		nc := NewNewscast(nd.ID, 8, 0)
		nc.Bootstrap(peers[:4])
		tm := NewTMan(nd.ID, 4, 1, 0, RingDistance(n))
		tm.Bootstrap(peers)
		nd.Protocols = []sim.Protocol{nc, tm}
	}
	for c := 0; c < 30; c++ {
		e.RunCycle()
		e.ForEachLive(func(nd *sim.Node) {
			for _, nb := range nd.Protocol(1).(*TMan).Neighbors() {
				if nb%2 != nd.ID%2 {
					t.Fatalf("cycle %d: T-Man view of node %d leaked cross-partition entry %d", c, nd.ID, nb)
				}
			}
			for _, nb := range nd.Protocol(0).(*Newscast).Neighbors() {
				if nb%2 != nd.ID%2 {
					t.Fatalf("cycle %d: Newscast view of node %d leaked cross-partition entry %d", c, nd.ID, nb)
				}
			}
		})
	}
}

// TestTManPartitionHealReadoption is the tombstone-semantics regression
// test: an *unreachable* (partitioned) closest neighbor must be dropped
// without a tombstone and re-adopted after the heal. Under the old
// behavior any failed contact tombstoned the live peer forever, so the
// ring could never re-form across a healed cut.
func TestTManPartitionHealReadoption(t *testing.T) {
	const n = 32
	e := buildTManNet(8, n, 4)
	e.Run(10) // let the ring start forming with cross-parity neighbors
	e.SetDeliveryFilter(sim.SplitGroups(2))
	e.Run(15) // every ring neighbor (distance 1 = opposite parity) is cut off
	d := RingDistance(n)
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		for _, other := range e.AllNodes() {
			if other.ID != nd.ID && other.Alive && tm.Tombstoned(other.ID) {
				t.Fatalf("node %d tombstoned live-but-unreachable peer %d", nd.ID, other.ID)
			}
		}
	})
	e.SetDeliveryFilter(nil) // heal
	e.Run(25)
	readopted := 0
	e.ForEachLive(func(nd *sim.Node) {
		for _, nb := range nd.Protocol(1).(*TMan).Neighbors() {
			if d(nd.ID, nb) == 1 { // ring neighbors are opposite parity
				readopted++
				break
			}
		}
	})
	if readopted < n*80/100 {
		t.Fatalf("only %d/%d nodes re-adopted a cross-partition ring neighbor after heal", readopted, n)
	}
}

// TestTManCrashTombstones: a *confirmed* crash (dead destination) must
// still tombstone, so third-party merges cannot resurrect dead peers.
func TestTManCrashTombstones(t *testing.T) {
	e := buildTManNet(9, 16, 4)
	e.Run(10)
	e.Crash(3)
	e.Run(10)
	tombstoned := 0
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		if tm.Tombstoned(3) {
			tombstoned++
			for _, nb := range tm.Neighbors() {
				if nb == 3 {
					t.Fatalf("node %d tombstoned node 3 but kept it in view", nd.ID)
				}
			}
		}
	})
	// Only a node that actually contacts the dead peer (it was the
	// closest view entry) confirms the crash; at least its ring successor
	// must have (the predecessor's equal-distance tie breaks to the lower
	// ID, so it may never initiate toward 3).
	if tombstoned < 1 {
		t.Fatal("no node tombstoned the confirmed-crashed peer")
	}
}

// TestTManReviveClearsTombstone: a tombstone records a *confirmed* crash,
// but a direct message from the tombstoned peer proves it restarted
// (scripted revive reuses the ID), so the tombstone must clear and the
// peer must be re-adopted.
func TestTManReviveClearsTombstone(t *testing.T) {
	const n = 16
	e := buildTManNet(11, n, 4)
	e.Run(10)
	e.Crash(3)
	e.Run(10) // node 4 contacts its closest neighbor 3 and tombstones it
	if !e.Node(4).Protocol(1).(*TMan).Tombstoned(3) {
		t.Fatal("precondition: node 4 did not tombstone crashed node 3")
	}
	e.Revive(3)
	// Model the restart the way a real deployment would: the rebooted host
	// comes back with a fresh T-Man state knowing only its bootstrap
	// contact — node 4 — so its first exchange is a direct message to 4
	// (whether the surviving pre-crash view would re-contact 4 first is
	// trace luck; the bootstrap makes the direct-contact path
	// deterministic).
	restarted := NewTMan(3, 4, 1, 0, RingDistance(n))
	restarted.Bootstrap([]sim.NodeID{4})
	e.Node(3).Protocols[1] = restarted
	e.Run(20)
	tm := e.Node(4).Protocol(1).(*TMan)
	if tm.Tombstoned(3) {
		t.Fatal("tombstone survived direct contact from the revived peer")
	}
	found := false
	for _, nb := range tm.Neighbors() {
		if nb == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("revived ring neighbor 3 not re-adopted by node 4: view %v", tm.Neighbors())
	}
}

// TestTManWorkerInvariant: the ported protocol runs on both parallel
// phases; its views must be bit-identical for every propose × apply
// worker combination.
func TestTManWorkerInvariant(t *testing.T) {
	views := func(workers, applyWorkers int) [][]sim.NodeID {
		e := sim.NewEngine(10)
		e.SetWorkers(workers)
		e.SetApplyWorkers(applyWorkers)
		e.AddNodes(64)
		InitNewscast(e, 0, 20)
		InitTMan(e, 1, 0, 4, RingDistance(64))
		e.Run(20)
		out := make([][]sim.NodeID, 0, 64)
		e.ForEachLive(func(nd *sim.Node) {
			out = append(out, nd.Protocol(1).(*TMan).Neighbors())
		})
		return out
	}
	one := views(1, 1)
	for _, w := range [][2]int{{2, 1}, {1, 8}, {8, 2}, {8, 8}} {
		got := views(w[0], w[1])
		for i := range one {
			if len(one[i]) != len(got[i]) {
				t.Fatalf("node %d view size diverged at workers=%dx%d", i, w[0], w[1])
			}
			for j := range one[i] {
				if one[i][j] != got[i][j] {
					t.Fatalf("node %d view diverged at workers=%dx%d: %v vs %v", i, w[0], w[1], one[i], got[i])
				}
			}
		}
	}
}

// TestTManMergeDistanceCallsLinear pins the merge optimization: Distance
// is evaluated exactly once per distinct candidate, not O(k log k) times
// inside the sort comparator.
func TestTManMergeDistanceCallsLinear(t *testing.T) {
	calls := 0
	tm := NewTMan(0, 8, 0, -1, func(a, b sim.NodeID) float64 {
		calls++
		return RingDistance(64)(a, b)
	})
	first := make([]sim.NodeID, 0, 16)
	for id := sim.NodeID(1); id <= 16; id++ {
		first = append(first, id)
	}
	tm.merge(first)
	if calls != 16 {
		t.Fatalf("merge of 16 fresh candidates evaluated Distance %d times, want 16", calls)
	}
	calls = 0
	tm.merge([]sim.NodeID{20, 21, 22, 23})
	// 8 kept view entries + 4 new candidates, each ranked exactly once.
	if calls != 12 {
		t.Fatalf("merge re-ranking 8+4 ids evaluated Distance %d times, want 12", calls)
	}
}

// BenchmarkTManMerge exercises the protocol's hot path: folding a view-
// sized candidate batch into a full view, as every exchange does.
func BenchmarkTManMerge(b *testing.B) {
	const c = 20
	tm := NewTMan(0, c, 0, -1, RingDistance(4096))
	seed := make([]sim.NodeID, 0, c)
	for id := sim.NodeID(1); int(id) <= c; id++ {
		seed = append(seed, id*3)
	}
	tm.Bootstrap(seed)
	batch := make([]sim.NodeID, c)
	for i := range batch {
		batch[i] = sim.NodeID(2000 + i*5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.merge(batch)
	}
}
