package overlay

import (
	"testing"

	"gossipopt/internal/sim"
)

// buildTManNet wires Newscast (slot 0) + TMan (slot 1) on n nodes.
func buildTManNet(seed uint64, n, c int) *sim.Engine {
	e := sim.NewEngine(seed)
	e.AddNodes(n)
	InitNewscast(e, 0, 20)
	InitTMan(e, 1, 0, c, RingDistance(n))
	return e
}

func TestRingDistance(t *testing.T) {
	d := RingDistance(10)
	if d(0, 1) != 1 || d(0, 9) != 1 || d(0, 5) != 5 || d(3, 3) != 0 {
		t.Fatal("ring distance wrong")
	}
}

func TestTManConvergesToRing(t *testing.T) {
	const n = 64
	e := buildTManNet(1, n, 4)
	// Two-phase exchanges land at end of cycle (one hop per cycle), so the
	// ring needs roughly twice the cycles of the old inline engine.
	e.Run(60)
	// After convergence every node's two closest T-Man neighbors must be
	// its actual ring successors/predecessors (distance 1).
	perfect := 0
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		nbrs := tm.Neighbors()
		if len(nbrs) < 2 {
			return
		}
		d := RingDistance(n)
		if d(nd.ID, nbrs[0]) == 1 && d(nd.ID, nbrs[1]) == 1 {
			perfect++
		}
	})
	if perfect < n*95/100 {
		t.Fatalf("only %d/%d nodes found both ring neighbors", perfect, n)
	}
}

func TestTManFasterThanRandomWalkWouldBe(t *testing.T) {
	// Convergence should be fast (O(log n)): by cycle 15 most of the ring
	// must be in place for n = 128.
	const n = 128
	e := buildTManNet(2, n, 4)
	e.Run(15)
	good := 0
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		d := RingDistance(n)
		for _, nb := range tm.Neighbors() {
			if d(nd.ID, nb) == 1 {
				good++
				break
			}
		}
	})
	if good < n*80/100 {
		t.Fatalf("only %d/%d nodes adjacent to a ring neighbor by cycle 15", good, n)
	}
}

func TestTManViewInvariants(t *testing.T) {
	e := buildTManNet(3, 50, 6)
	e.Run(20)
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		nbrs := tm.Neighbors()
		if len(nbrs) > 6 {
			t.Fatalf("view overflow: %d", len(nbrs))
		}
		seen := map[sim.NodeID]bool{}
		d := RingDistance(50)
		prev := -1.0
		for _, nb := range nbrs {
			if nb == nd.ID {
				t.Fatalf("node %d contains itself", nd.ID)
			}
			if seen[nb] {
				t.Fatalf("duplicate neighbor %d", nb)
			}
			seen[nb] = true
			if dist := d(nd.ID, nb); dist < prev {
				t.Fatal("neighbors not sorted by distance")
			} else {
				prev = dist
			}
		}
	})
}

func TestTManSurvivesCrashes(t *testing.T) {
	const n = 64
	e := buildTManNet(4, n, 4)
	e.Run(20)
	// Crash every fourth node; survivors must drop dead neighbors.
	for id := sim.NodeID(0); int(id) < n; id += 4 {
		e.Crash(id)
	}
	e.Run(20)
	e.ForEachLive(func(nd *sim.Node) {
		tm := nd.Protocol(1).(*TMan)
		// The closest neighbor must be live (dead ones are pruned on
		// contact).
		if id, ok := tm.closest(); ok {
			if tgt := e.Node(id); tgt == nil || !tgt.Alive {
				t.Fatalf("node %d still has dead closest neighbor %d", nd.ID, id)
			}
		}
	})
}

func TestTManEmptyView(t *testing.T) {
	tm := NewTMan(1, 4, 0, -1, RingDistance(8))
	if _, ok := tm.SamplePeer(nil); ok {
		t.Fatal("empty view sampled")
	}
	if _, ok := tm.closest(); ok {
		t.Fatal("closest on empty view")
	}
}
