// Package overlay implements the paper's topology service: the NEWSCAST
// gossip-based peer-sampling protocol (Jelasity et al.), a set of static
// reference topologies (full mesh, ring, star/master-slave, grid,
// k-regular random, Watts–Strogatz small-world) and graph-analysis helpers
// used to verify that Newscast indeed maintains a strongly connected,
// random-graph-like overlay under churn.
package overlay

import (
	"cmp"
	"slices"

	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

// Descriptor is a Newscast node descriptor: a remote node identifier plus a
// logical timestamp recording when the descriptor was created. Fresher
// descriptors win during view merges, which is what flushes crashed nodes
// out of the overlay.
type Descriptor struct {
	ID    sim.NodeID
	Stamp int64
}

// View is a bounded set of descriptors, at most one per node ID, ordered by
// freshness (freshest first). The zero value is an empty view.
type View struct {
	c     int
	items []Descriptor

	// Merge scratch space, reused across calls: view exchanges run once
	// per node per cycle, so per-call allocations dominate Newscast's cost
	// otherwise.
	scratch []Descriptor
	seen    map[sim.NodeID]struct{}
}

// NewView creates an empty view with capacity c.
func NewView(c int) *View { return &View{c: c} }

// Cap returns the view capacity.
func (v *View) Cap() int { return v.c }

// Len returns the number of descriptors currently held.
func (v *View) Len() int { return len(v.items) }

// IDs returns the node IDs in the view, freshest first.
func (v *View) IDs() []sim.NodeID {
	out := make([]sim.NodeID, len(v.items))
	for i, d := range v.items {
		out[i] = d.ID
	}
	return out
}

// Descriptors returns a copy of the view contents, freshest first.
func (v *View) Descriptors() []Descriptor {
	return append([]Descriptor(nil), v.items...)
}

// AppendDescriptors appends the view contents, freshest first, onto buf
// and returns the extended slice — the allocation-free variant of
// Descriptors for per-cycle snapshots into recycled payload buffers.
func (v *View) AppendDescriptors(buf []Descriptor) []Descriptor {
	return append(buf, v.items...)
}

// SampleID returns a uniformly random ID from the view without
// materializing the ID slice (ok is false when the view is empty). The
// draw is identical to indexing IDs(): one Intn over the view length.
func (v *View) SampleID(r *rng.RNG) (sim.NodeID, bool) {
	if len(v.items) == 0 {
		return 0, false
	}
	return v.items[r.Intn(len(v.items))].ID, true
}

// Contains reports whether the view holds a descriptor for id.
func (v *View) Contains(id sim.NodeID) bool {
	for _, d := range v.items {
		if d.ID == id {
			return true
		}
	}
	return false
}

// Insert merges a single descriptor into the view, keeping at most one
// descriptor per ID (the freshest) and at most Cap descriptors overall
// (the freshest). self is excluded: a view never contains its owner.
func (v *View) Insert(self sim.NodeID, d Descriptor) {
	v.Merge(self, []Descriptor{d})
}

// mix hashes a descriptor to break freshness ties. Breaking ties by plain
// ID order would systematically favor low-ID nodes and grow hubs; a
// deterministic hash keeps merging reproducible without the bias.
func mix(d Descriptor) uint64 {
	x := uint64(d.ID)*0x9e3779b97f4a7c15 ^ uint64(d.Stamp)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	return x ^ x>>29
}

// Merge folds a batch of descriptors into the view under the Newscast rule:
// drop self-descriptors, deduplicate by ID keeping the freshest stamp, then
// keep the Cap freshest overall. Ties in freshness break by a deterministic
// hash of the descriptor so merging is reproducible yet unbiased.
func (v *View) Merge(self sim.NodeID, batch []Descriptor) {
	v.scratch = v.scratch[:0]
	v.scratch = append(v.scratch, v.items...)
	for _, d := range batch {
		if d.ID != self {
			v.scratch = append(v.scratch, d)
		}
	}
	// Sort freshest first; after sorting, the first occurrence of each ID
	// is its freshest descriptor, so a single keep-first pass both
	// deduplicates and selects the Cap freshest. The comparator is total
	// on distinct descriptors (equal keys mean identical values), so the
	// sorted output — and with it the merge result — is independent of the
	// sort algorithm. slices.SortFunc, unlike sort.Slice, does not allocate
	// (Merge runs twice per node per cycle; the reflection-based closure
	// was the last steady-state allocation on the Newscast hot path).
	slices.SortFunc(v.scratch, func(a, b Descriptor) int {
		if a.Stamp != b.Stamp {
			return cmp.Compare(b.Stamp, a.Stamp)
		}
		if ha, hb := mix(a), mix(b); ha != hb {
			return cmp.Compare(ha, hb)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if v.seen == nil {
		v.seen = make(map[sim.NodeID]struct{}, 2*v.c)
	}
	clear(v.seen)
	out := v.items[:0]
	for _, d := range v.scratch {
		if _, dup := v.seen[d.ID]; dup {
			continue
		}
		v.seen[d.ID] = struct{}{}
		out = append(out, d)
		if len(out) == v.c {
			break
		}
	}
	v.items = out
}

// Remove deletes the descriptor for id, if present.
func (v *View) Remove(id sim.NodeID) {
	for i, d := range v.items {
		if d.ID == id {
			v.items = append(v.items[:i], v.items[i+1:]...)
			return
		}
	}
}

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	return &View{c: v.c, items: append([]Descriptor(nil), v.items...)}
}
