package overlay

import (
	"testing"
	"testing/quick"

	"gossipopt/internal/rng"
	"gossipopt/internal/sim"
)

func TestViewInsertBasic(t *testing.T) {
	v := NewView(3)
	v.Insert(9, Descriptor{ID: 1, Stamp: 5})
	v.Insert(9, Descriptor{ID: 2, Stamp: 3})
	if v.Len() != 2 {
		t.Fatalf("Len=%d", v.Len())
	}
	if !v.Contains(1) || !v.Contains(2) || v.Contains(3) {
		t.Fatal("Contains wrong")
	}
}

func TestViewExcludesSelf(t *testing.T) {
	v := NewView(3)
	v.Insert(7, Descriptor{ID: 7, Stamp: 100})
	if v.Len() != 0 {
		t.Fatal("view accepted a self-descriptor")
	}
}

func TestViewKeepsFreshestPerID(t *testing.T) {
	v := NewView(3)
	v.Insert(0, Descriptor{ID: 1, Stamp: 5})
	v.Insert(0, Descriptor{ID: 1, Stamp: 9})
	v.Insert(0, Descriptor{ID: 1, Stamp: 2})
	if v.Len() != 1 {
		t.Fatalf("Len=%d, want 1", v.Len())
	}
	if d := v.Descriptors()[0]; d.Stamp != 9 {
		t.Fatalf("kept stamp %d, want 9", d.Stamp)
	}
}

func TestViewCapacityKeepsFreshest(t *testing.T) {
	v := NewView(2)
	v.Merge(0, []Descriptor{
		{ID: 1, Stamp: 1}, {ID: 2, Stamp: 5}, {ID: 3, Stamp: 3},
	})
	if v.Len() != 2 {
		t.Fatalf("Len=%d, want 2", v.Len())
	}
	ids := v.IDs()
	if ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("kept %v, want [2 3] (freshest first)", ids)
	}
}

func TestViewRemove(t *testing.T) {
	v := NewView(3)
	v.Merge(0, []Descriptor{{ID: 1, Stamp: 1}, {ID: 2, Stamp: 2}})
	v.Remove(1)
	if v.Contains(1) || !v.Contains(2) {
		t.Fatal("Remove wrong")
	}
	v.Remove(99) // no-op
	if v.Len() != 1 {
		t.Fatal("Remove of absent ID changed view")
	}
}

func TestViewCloneIndependent(t *testing.T) {
	v := NewView(3)
	v.Insert(0, Descriptor{ID: 1, Stamp: 1})
	c := v.Clone()
	c.Insert(0, Descriptor{ID: 2, Stamp: 2})
	if v.Len() != 1 {
		t.Fatal("Clone aliases original")
	}
}

// Property: after any Merge, the view invariants hold — size <= cap, no
// self, no duplicate IDs, sorted freshest-first.
func TestViewInvariants(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint32, nRaw, capRaw uint8) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		c := int(capRaw%10) + 1
		self := sim.NodeID(rr.Intn(20))
		v := NewView(c)
		for round := 0; round < 5; round++ {
			batch := make([]Descriptor, int(nRaw%30))
			for i := range batch {
				batch[i] = Descriptor{
					ID:    sim.NodeID(rr.Intn(20)),
					Stamp: int64(rr.Intn(100)),
				}
			}
			v.Merge(self, batch)
			if v.Len() > c {
				return false
			}
			seen := map[sim.NodeID]bool{}
			ds := v.Descriptors()
			for i, d := range ds {
				if d.ID == self || seen[d.ID] {
					return false
				}
				seen[d.ID] = true
				if i > 0 && ds[i-1].Stamp < d.Stamp {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging is idempotent — merging a view's own contents changes
// nothing.
func TestViewMergeIdempotent(t *testing.T) {
	r := rng.New(2)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		v := NewView(5)
		for i := 0; i < 8; i++ {
			v.Insert(0, Descriptor{ID: sim.NodeID(rr.Intn(10) + 1), Stamp: int64(rr.Intn(50))})
		}
		before := v.Descriptors()
		v.Merge(0, before)
		after := v.Descriptors()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
