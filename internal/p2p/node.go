package p2p

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gossipopt/internal/funcs"
	"gossipopt/internal/pso"
	"gossipopt/internal/rng"
	"gossipopt/internal/solver"
	"gossipopt/internal/vec"
)

// NodeConfig configures one live node.
type NodeConfig struct {
	// Listen is the TCP listen address ("127.0.0.1:0" picks a free port).
	Listen string
	// Bootstrap seeds the view with known peer addresses (empty for the
	// first node of a cluster).
	Bootstrap []string
	// Function and Dim select the objective (default Sphere / paper dim).
	Function funcs.Function
	Dim      int
	// Particles is the per-node swarm size (default 16); SolverFactory
	// overrides the default PSO when set.
	Particles     int
	PSO           pso.Config
	SolverFactory solver.Factory
	// GossipEvery is r: one best-point exchange per r local evaluations
	// (default = Particles).
	GossipEvery int
	// ViewSize is Newscast's c (default 20).
	ViewSize int
	// NewscastInterval is the wall-clock Newscast cycle length (the paper
	// suggests 10–60 s in production; tests use milliseconds; default
	// 500 ms).
	NewscastInterval time.Duration
	// EvalThrottle, when positive, sleeps this long between evaluations
	// (simulating an expensive objective; default 0 = full speed).
	EvalThrottle time.Duration
	// DialTimeout bounds each exchange round-trip (default 2 s).
	DialTimeout time.Duration
	// Seed drives the node's RNG (default: derived from the address).
	Seed uint64
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Function.Eval == nil {
		c.Function = funcs.Sphere
	}
	if c.Particles == 0 {
		c.Particles = 16
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = c.Particles
	}
	if c.ViewSize == 0 {
		c.ViewSize = 20
	}
	if c.NewscastInterval == 0 {
		c.NewscastInterval = 500 * time.Millisecond
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	return c
}

// Node is a live framework node: listener plus Newscast and optimizer
// loops. Create with Start, stop with Stop.
type Node struct {
	cfg  NodeConfig
	ln   net.Listener
	addr string

	mu     sync.Mutex // guards view and solver
	view   *view
	solver solver.Solver

	evals     atomic.Int64
	exchanges atomic.Int64
	adoptions atomic.Int64
	failed    atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches a node: it binds the listener, seeds the view from
// Bootstrap, and starts the accept, Newscast and optimizer loops.
func Start(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	n := &Node{
		cfg:  cfg,
		ln:   ln,
		addr: ln.Addr().String(),
		view: newWireView(cfg.ViewSize),
		stop: make(chan struct{}),
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, b := range []byte(n.addr) {
			seed = seed*131 + uint64(b)
		}
	}
	r := rng.New(seed)
	mk := cfg.SolverFactory
	if mk == nil {
		mk = func(f funcs.Function, dim int, _ int64, r *rng.RNG) solver.Solver {
			return pso.New(f, dim, cfg.Particles, cfg.PSO, r)
		}
	}
	// A TCP node's identity is its address; the seed derived from it
	// doubles as the factory's node id.
	n.solver = mk(cfg.Function, cfg.Dim, int64(seed), r)

	now := time.Now().UnixNano()
	boot := make([]Descriptor, 0, len(cfg.Bootstrap))
	for _, a := range cfg.Bootstrap {
		boot = append(boot, Descriptor{Addr: a, Stamp: now})
	}
	n.view.merge(n.addr, boot)

	n.wg.Add(3)
	go n.acceptLoop()
	go n.newscastLoop(r.Split())
	go n.optimizeLoop(r.Split())
	return n, nil
}

// Addr returns the node's bound address (dialable by peers).
func (n *Node) Addr() string { return n.addr }

// Best returns the node's best point (copy) and whether one exists.
func (n *Node) Best() ([]float64, float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	x, f := n.solver.Best()
	if x == nil {
		return nil, math.Inf(1), false
	}
	return vec.Clone(x), f, true
}

// Evals returns the number of local objective evaluations so far.
func (n *Node) Evals() int64 { return n.evals.Load() }

// Peers returns the current view's addresses, freshest first.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.addrs()
}

// Stats reports the coordination counters: initiated exchanges, adoptions
// of remote bests, and failed (unreachable/timed-out) exchanges.
func (n *Node) Stats() (exchanges, adoptions, failed int64) {
	return n.exchanges.Load(), n.adoptions.Load(), n.failed.Load()
}

// Stop terminates the node's loops and closes the listener. It blocks
// until all goroutines exit and is safe to call multiple times.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.ln.Close()
	})
	n.wg.Wait()
}

func (n *Node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// acceptLoop serves incoming exchanges.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if n.stopped() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// serve handles one request/response exchange.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.cfg.DialTimeout))
	var req Envelope
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	var resp Envelope
	switch req.Kind {
	case kindViewExchange:
		resp = n.handleViewExchange(&req)
	case kindBestExchange:
		resp = n.handleBestExchange(&req)
	default:
		return
	}
	_ = gob.NewEncoder(conn).Encode(&resp)
}

// handleViewExchange performs the receiver side of a Newscast shuffle:
// reply with our view + fresh self-descriptor, then merge theirs.
func (n *Node) handleViewExchange(req *Envelope) Envelope {
	now := time.Now().UnixNano()
	n.mu.Lock()
	defer n.mu.Unlock()
	mine := n.view.snapshot()
	mine = append(mine, Descriptor{Addr: n.addr, Stamp: now})
	incoming := append(req.View, Descriptor{Addr: req.From, Stamp: now})
	n.view.merge(n.addr, incoming)
	return Envelope{Kind: kindViewExchange, From: n.addr, View: mine}
}

// handleBestExchange is the receiver side of the paper's §3.3.3 exchange:
// adopt the sender's point if better, reply with ours so the sender can
// adopt too.
func (n *Node) handleBestExchange(req *Envelope) Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Has {
		if n.solver.Inject(req.X, req.F) {
			n.adoptions.Add(1)
		}
	}
	x, f := n.solver.Best()
	resp := Envelope{Kind: kindBestExchange, From: n.addr}
	if x != nil {
		resp.X = vec.Clone(x)
		resp.F = f
		resp.Has = true
	}
	return resp
}

// samplePeer picks a uniform random view entry (empty string if none).
func (n *Node) samplePeer(r *rng.RNG) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.view.len() == 0 {
		return ""
	}
	addrs := n.view.addrs()
	return addrs[r.Intn(len(addrs))]
}

// newscastLoop shuffles views with a random peer every NewscastInterval.
func (n *Node) newscastLoop(r *rng.RNG) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.NewscastInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		peer := n.samplePeer(r)
		if peer == "" {
			continue
		}
		now := time.Now().UnixNano()
		n.mu.Lock()
		mine := n.view.snapshot()
		n.mu.Unlock()
		req := Envelope{
			Kind: kindViewExchange,
			From: n.addr,
			View: append(mine, Descriptor{Addr: n.addr, Stamp: now}),
		}
		resp, err := roundTrip(peer, &req, n.cfg.DialTimeout)
		n.mu.Lock()
		if err != nil {
			n.failed.Add(1)
			n.view.remove(peer) // unreachable peers age out
		} else {
			n.view.merge(n.addr, resp.View)
		}
		n.mu.Unlock()
	}
}

// optimizeLoop spends evaluations and gossips the best point every
// GossipEvery evaluations, exactly like the simulated OptNode.
func (n *Node) optimizeLoop(r *rng.RNG) {
	defer n.wg.Done()
	since := 0
	for {
		if n.stopped() {
			return
		}
		n.mu.Lock()
		n.solver.EvalOne()
		n.mu.Unlock()
		n.evals.Add(1)
		since++
		if n.cfg.EvalThrottle > 0 {
			select {
			case <-n.stop:
				return
			case <-time.After(n.cfg.EvalThrottle):
			}
		}
		if since < n.cfg.GossipEvery {
			continue
		}
		since = 0
		n.gossipBest(r)
	}
}

// gossipBest initiates one anti-entropy best-point exchange.
func (n *Node) gossipBest(r *rng.RNG) {
	peer := n.samplePeer(r)
	if peer == "" {
		return
	}
	n.exchanges.Add(1)
	n.mu.Lock()
	x, f := n.solver.Best()
	req := Envelope{Kind: kindBestExchange, From: n.addr}
	if x != nil {
		req.X = vec.Clone(x)
		req.F = f
		req.Has = true
	}
	n.mu.Unlock()
	resp, err := roundTrip(peer, &req, n.cfg.DialTimeout)
	if err != nil {
		n.failed.Add(1)
		n.mu.Lock()
		n.view.remove(peer)
		n.mu.Unlock()
		return
	}
	if resp.Has {
		n.mu.Lock()
		if n.solver.Inject(resp.X, resp.F) {
			n.adoptions.Add(1)
		}
		n.mu.Unlock()
	}
}
