package p2p

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"gossipopt/internal/funcs"
)

// startCluster launches n nodes; node 0 is the bootstrap target of all
// others. Caller must stop every returned node.
func startCluster(t *testing.T, n int, cfg NodeConfig) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = uint64(i + 1)
		if i > 0 {
			c.Bootstrap = []string{nodes[0].Addr()}
		}
		nd, err := Start(c)
		if err != nil {
			for _, p := range nodes {
				p.Stop()
			}
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return nodes
}

func fastCfg() NodeConfig {
	return NodeConfig{
		Function:         funcs.Sphere,
		Particles:        8,
		GossipEvery:      8,
		NewscastInterval: 20 * time.Millisecond,
		EvalThrottle:     100 * time.Microsecond,
		DialTimeout:      time.Second,
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestSingleNodeOptimizes(t *testing.T) {
	nodes := startCluster(t, 1, fastCfg())
	waitUntil(t, 5*time.Second, func() bool {
		return nodes[0].Evals() > 1000
	}, "node performed no evaluations")
	_, f, ok := nodes[0].Best()
	if !ok {
		t.Fatal("no best after 1000 evals")
	}
	if f < 0 {
		t.Fatalf("negative fitness %g", f)
	}
}

func TestViewsPropagate(t *testing.T) {
	nodes := startCluster(t, 5, fastCfg())
	// Every node must eventually know more than just the bootstrap node.
	waitUntil(t, 10*time.Second, func() bool {
		for _, nd := range nodes[1:] {
			if len(nd.Peers()) < 2 {
				return false
			}
		}
		return len(nodes[0].Peers()) >= 2
	}, "views never propagated beyond bootstrap")
}

func TestBestDiffusesAcrossCluster(t *testing.T) {
	nodes := startCluster(t, 4, fastCfg())
	waitUntil(t, 15*time.Second, func() bool {
		// All nodes converge to (nearly) the same best via gossip.
		var lo, hi float64
		first := true
		for _, nd := range nodes {
			_, f, ok := nd.Best()
			if !ok {
				return false
			}
			if first {
				lo, hi = f, f
				first = false
				continue
			}
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		// Some adoption must have happened and all nodes must be close
		// to the cluster-wide best.
		var adoptions int64
		for _, nd := range nodes {
			_, a, _ := nd.Stats()
			adoptions += a
		}
		return adoptions > 0 && hi <= lo*1e6+1e-6
	}, "best never diffused across the cluster")
}

func TestClusterConvergesOnSphere(t *testing.T) {
	cfg := fastCfg()
	cfg.EvalThrottle = 0 // full speed
	nodes := startCluster(t, 3, cfg)
	waitUntil(t, 15*time.Second, func() bool {
		_, f, ok := nodes[1].Best()
		return ok && f < 1e-6
	}, "cluster never converged on Sphere")
}

func TestNodeCrashTolerated(t *testing.T) {
	nodes := startCluster(t, 4, fastCfg())
	waitUntil(t, 10*time.Second, func() bool {
		return len(nodes[3].Peers()) >= 2
	}, "cluster never formed")
	// Kill the bootstrap node; the rest must keep optimizing.
	nodes[0].Stop()
	before := nodes[1].Evals()
	waitUntil(t, 10*time.Second, func() bool {
		return nodes[1].Evals() > before+1000
	}, "survivors stopped optimizing after bootstrap crash")
	// The dead peer must age out of views (failed exchanges remove it).
	dead := nodes[0].Addr()
	waitUntil(t, 15*time.Second, func() bool {
		for _, nd := range nodes[1:] {
			for _, p := range nd.Peers() {
				if p == dead {
					return false
				}
			}
		}
		return true
	}, "dead bootstrap still present in views")
}

func TestStopIsClean(t *testing.T) {
	nd, err := Start(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		nd.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := NodeConfig{}.withDefaults()
	if c.Particles != 16 || c.GossipEvery != 16 || c.ViewSize != 20 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Function.Name != "Sphere" {
		t.Fatalf("default function = %s", c.Function.Name)
	}
}

func TestBootstrapUnreachableStillRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.Bootstrap = []string{"127.0.0.1:1"} // nothing listens there
	nd, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	waitUntil(t, 5*time.Second, func() bool {
		return nd.Evals() > 100
	}, "node with dead bootstrap froze")
}

func TestServerSurvivesGarbageAndPartialConnections(t *testing.T) {
	nd, err := Start(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()

	// Garbage bytes instead of a gob envelope.
	conn, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("NOT A GOB STREAM \x00\xff\x17")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A connection that opens and immediately closes.
	conn2, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// An unknown message kind.
	conn3, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = gob.NewEncoder(conn3).Encode(&Envelope{Kind: 99, From: "nobody"})
	conn3.Close()

	// The node must keep optimizing through all of it.
	before := nd.Evals()
	waitUntil(t, 5*time.Second, func() bool {
		return nd.Evals() > before+500
	}, "node stalled after malformed connections")
}

func TestViewExchangeOverWire(t *testing.T) {
	// Drive one view exchange by hand to pin the wire protocol.
	nd, err := Start(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()

	req := &Envelope{
		Kind: kindViewExchange,
		From: "10.0.0.9:999",
		View: []Descriptor{{Addr: "10.0.0.9:999", Stamp: time.Now().UnixNano()}},
	}
	resp, err := roundTrip(nd.Addr(), req, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != kindViewExchange {
		t.Fatalf("reply kind %d", resp.Kind)
	}
	// The reply must contain the node's own fresh descriptor.
	foundSelf := false
	for _, d := range resp.View {
		if d.Addr == nd.Addr() {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatalf("reply view %v lacks the node's self-descriptor", resp.View)
	}
	// And our address must now be in the node's view.
	waitUntil(t, 2*time.Second, func() bool {
		for _, p := range nd.Peers() {
			if p == "10.0.0.9:999" {
				return true
			}
		}
		return false
	}, "sender not merged into the view")
}

func TestBestExchangeOverWire(t *testing.T) {
	nd, err := Start(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	waitUntil(t, 5*time.Second, func() bool { return nd.Evals() > 50 }, "no evals")

	// Push a perfect point; the node must adopt it and report it back.
	req := &Envelope{Kind: kindBestExchange, From: "x", X: make([]float64, 10), F: 0, Has: true}
	resp, err := roundTrip(nd.Addr(), req, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Has || resp.F != 0 {
		t.Fatalf("reply = %+v, want adopted best 0", resp)
	}
	_, f, ok := nd.Best()
	if !ok || f != 0 {
		t.Fatalf("node best %v after perfect injection", f)
	}
}
