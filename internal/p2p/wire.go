// Package p2p runs the paper's protocol stack — Newscast peer sampling,
// per-node solver, anti-entropy best-point diffusion — over real TCP
// sockets, one goroutine-per-node, using only the standard library. It
// demonstrates that the framework is not simulator-bound: the identical
// three-service architecture drives both the sim-backed core package and
// live processes (cmd/p2pnode, examples/livecluster).
//
// Transport model: every exchange is one short-lived TCP connection
// carrying a gob-encoded request Envelope and one reply Envelope. Failed
// dials are treated exactly like the paper treats lost messages — the
// exchange is skipped and diffusion merely slows down; repeatedly
// unreachable peers age out of the view.
package p2p

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"
)

// Message kinds.
const (
	kindViewExchange = iota + 1
	kindBestExchange
)

// Descriptor is a Newscast node descriptor on the wire: peer address plus
// logical timestamp (wall-clock nanoseconds; nodes need only be loosely
// synchronized for freshness comparison, as in the original Newscast).
type Descriptor struct {
	Addr  string
	Stamp int64
}

// Envelope is the single wire message; Kind selects which fields matter.
type Envelope struct {
	Kind int
	From string
	// View exchange payload.
	View []Descriptor
	// Best exchange payload.
	X   []float64
	F   float64
	Has bool
}

// roundTrip dials addr, sends req and decodes one reply.
func roundTrip(addr string, req *Envelope, timeout time.Duration) (*Envelope, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("p2p: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("p2p: send to %s: %w", addr, err)
	}
	var resp Envelope
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("p2p: recv from %s: %w", addr, err)
	}
	return &resp, nil
}

// view is a bounded freshest-first descriptor set keyed by address, the
// TCP-flavored twin of overlay.View.
type view struct {
	c     int
	items []Descriptor
}

func newWireView(c int) *view { return &view{c: c} }

func (v *view) len() int { return len(v.items) }

func (v *view) addrs() []string {
	out := make([]string, len(v.items))
	for i, d := range v.items {
		out[i] = d.Addr
	}
	return out
}

func (v *view) snapshot() []Descriptor {
	return append([]Descriptor(nil), v.items...)
}

func (v *view) remove(addr string) {
	for i, d := range v.items {
		if d.Addr == addr {
			v.items = append(v.items[:i], v.items[i+1:]...)
			return
		}
	}
}

// merge folds batch into the view: drop self, keep freshest per address,
// cap at c freshest overall (hash tie-break as in overlay.View).
func (v *view) merge(self string, batch []Descriptor) {
	best := make(map[string]Descriptor, len(v.items)+len(batch))
	for _, d := range v.items {
		best[d.Addr] = d
	}
	for _, d := range batch {
		if d.Addr == self || d.Addr == "" {
			continue
		}
		if cur, ok := best[d.Addr]; !ok || d.Stamp > cur.Stamp {
			best[d.Addr] = d
		}
	}
	merged := make([]Descriptor, 0, len(best))
	for _, d := range best {
		merged = append(merged, d)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Stamp != merged[j].Stamp {
			return merged[i].Stamp > merged[j].Stamp
		}
		return merged[i].Addr < merged[j].Addr
	})
	if len(merged) > v.c {
		merged = merged[:v.c]
	}
	v.items = merged
}
