// Package plot renders experiment results as TSV series files (for
// external plotting, gnuplot-compatible) and as ASCII charts for terminal
// inspection. The paper's figures are log-scale scatter/line plots of
// solution quality or time against a swept parameter; Chart reproduces
// their shape directly in the terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labelled line: X[i] maps to Y[i].
type Series struct {
	Label string
	X, Y  []float64
}

// Chart is a collection of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX / LogY render the corresponding axis in log10 space (the
	// paper's figures use log-scale Y, and log-scale X for network size).
	LogX, LogY bool
	Series     []Series
}

// Add appends a series built from parallel slices.
func (c *Chart) Add(label string, x, y []float64) {
	c.Series = append(c.Series, Series{Label: label, X: x, Y: y})
}

// TSV renders the chart as a gnuplot-friendly table: one x column plus one
// column per series (empty cells where a series lacks that x).
func (c *Chart) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Title)
	fmt.Fprintf(&b, "# x=%s y=%s\n", c.XLabel, c.YLabel)
	b.WriteString("x")
	for _, s := range c.Series {
		b.WriteString("\t")
		b.WriteString(s.Label)
	}
	b.WriteString("\n")

	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			b.WriteString("\t")
			found := false
			for i, sx := range s.X {
				if sx == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					found = true
					break
				}
			}
			if !found {
				b.WriteString("-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

const markers = "ox+*#@%&"

// ASCII renders the chart as a width×height character grid with axes,
// legend and per-series markers.
func (c *Chart) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	tx := func(x float64) float64 {
		if c.LogX {
			if x <= 0 {
				return math.Inf(-1)
			}
			return math.Log10(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if c.LogY {
			if y <= 0 {
				// Zero quality means "solved exactly"; pin to a floor so
				// the point still renders at the bottom of the chart.
				return math.Inf(-1)
			}
			return math.Log10(y)
		}
		return y
	}

	// Data ranges over finite transformed values.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	hasNegInfY := false
	for _, s := range c.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			if math.IsInf(y, -1) {
				hasNegInfY = true
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				continue
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if minX > maxX {
		return c.Title + "\n(no data)\n"
	}
	if minY > maxY {
		minY, maxY = 0, 1
	}
	if hasNegInfY {
		// Give "exact zero" points a floor one decade below the minimum.
		minY--
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plotPoint := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - cy
		if cx >= 0 && cx < width && row >= 0 && row < height {
			grid[row][cx] = m
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			if math.IsInf(y, -1) {
				y = minY
			}
			plotPoint(x, y, m)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	yl, yh := minY, maxY
	unit := ""
	if c.LogY {
		unit = " (log10)"
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", yh)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", yl)
		case height / 2:
			label = fmt.Sprintf("%9.3g ", (yl+yh)/2)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	xunit := ""
	if c.LogX {
		xunit = " (log10)"
	}
	fmt.Fprintf(&b, "%10s %-.3g%s%*s%.3g\n", "", minX, xunit, width-12, "", maxX)
	fmt.Fprintf(&b, "  y: %s%s, x: %s%s\n", c.YLabel, unit, c.XLabel, xunit)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}
