package plot

import (
	"strings"
	"testing"
)

func sampleChart() *Chart {
	c := &Chart{Title: "t", XLabel: "n", YLabel: "q", LogY: true}
	c.Add("a", []float64{1, 2, 4}, []float64{1e-1, 1e-3, 1e-5})
	c.Add("b", []float64{1, 2, 4}, []float64{1e-2, 1e-4, 1e-6})
	return c
}

func TestTSVStructure(t *testing.T) {
	out := sampleChart().TSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2 comment lines + header + 3 x rows.
	if len(lines) != 6 {
		t.Fatalf("TSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "x\ta\tb") {
		t.Fatalf("header = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "1\t0.1\t0.01") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestTSVMissingCells(t *testing.T) {
	c := &Chart{Title: "m"}
	c.Add("a", []float64{1}, []float64{10})
	c.Add("b", []float64{2}, []float64{20})
	out := c.TSV()
	if !strings.Contains(out, "1\t10\t-") || !strings.Contains(out, "2\t-\t20") {
		t.Fatalf("missing-cell rendering wrong:\n%s", out)
	}
}

func TestASCIIContainsMarkersAndLegend(t *testing.T) {
	out := sampleChart().ASCII(60, 12)
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "o = a") || !strings.Contains(out, "x = b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "t\n") {
		t.Fatal("title missing")
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.ASCII(40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart rendering: %q", out)
	}
}

func TestASCIIHandlesZerosOnLogScale(t *testing.T) {
	c := &Chart{Title: "z", LogY: true}
	c.Add("a", []float64{1, 2, 3}, []float64{0, 1e-3, 1e-1})
	out := c.ASCII(40, 10)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("log-scale zero leaked NaN/Inf:\n%s", out)
	}
}

func TestASCIIMinimumSize(t *testing.T) {
	out := sampleChart().ASCII(1, 1) // clamped to minimums
	if len(strings.Split(out, "\n")) < 8 {
		t.Fatalf("chart too small:\n%s", out)
	}
}

func TestASCIISinglePoint(t *testing.T) {
	c := &Chart{Title: "p"}
	c.Add("only", []float64{5}, []float64{7})
	out := c.ASCII(30, 8)
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}

func TestLogXRange(t *testing.T) {
	c := &Chart{Title: "lx", LogX: true}
	c.Add("a", []float64{1, 1024}, []float64{1, 2})
	out := c.ASCII(40, 8)
	if !strings.Contains(out, "(log10)") {
		t.Fatalf("log x annotation missing:\n%s", out)
	}
}
