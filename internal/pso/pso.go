// Package pso implements particle swarm optimization (Kennedy & Eberhart
// 1995): the classic full-information ("gbest") algorithm the paper builds
// on, plus the incomplete-topology variants its related-work section
// discusses — lbest ring, von Neumann lattice, and the fully-informed
// particle swarm (FIPS, Mendes et al. 2004) — and the usual inertia-weight
// and constriction-coefficient parameterizations.
//
// The update rule is the paper's equations (1)–(2):
//
//	v_i = w·v_i + c1·rand()·(p_i − x_i) + c2·rand()·(g − x_i)
//	x_i = x_i + v_i
//
// with per-dimension velocity clamping to vmax. Evaluation is exposed at
// single-evaluation granularity (EvalOne) because the paper's simulations
// use "one local function evaluation" as the unit of time, with a gossip
// exchange every r evaluations.
package pso

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

// Variant selects the neighborhood structure used for the social term.
type Variant int

// Neighborhood variants.
const (
	// GBest is the classic full-information swarm: every particle is
	// attracted to the single swarm-wide best. This is the paper's PSO.
	GBest Variant = iota
	// LBestRing restricts information to a ring: particle i sees i−1 and
	// i+1 (Kennedy 1999, "small worlds and mega-minds").
	LBestRing
	// VonNeumann arranges particles on a 2-D torus with 4-neighborhoods
	// (Kennedy & Mendes 2002).
	VonNeumann
	// FIPS is the fully-informed particle swarm: the velocity update
	// averages attraction to all neighbors' bests (Mendes et al. 2004).
	FIPS
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case GBest:
		return "gbest"
	case LBestRing:
		return "lbest-ring"
	case VonNeumann:
		return "von-neumann"
	case FIPS:
		return "fips"
	}
	return "unknown"
}

// Config collects the PSO hyperparameters. The zero value selects the
// canonical convergent parameters w = 0.72984, c1 = c2 = 1.49445 (the
// constriction-equivalent setting of Clerc & Kennedy), with vmax = half the
// domain width. The paper's background section quotes the original
// w = 1, c1 = c2 = 2 rule, but that setting sits on the divergence boundary
// and cannot reach the solution qualities its tables report (e.g. Sphere
// ≈ 1e−51); every practical PSO of that era used inertia decay or
// constriction. Set Inertia and C1/C2 explicitly to reproduce the literal
// textbook variant.
type Config struct {
	// C1 and C2 are the cognitive and social learning factors.
	C1, C2 float64
	// Inertia is the velocity persistence weight w.
	Inertia float64
	// Constriction, when true, applies Clerc & Kennedy's constriction
	// coefficient χ ≈ 0.7298 with c1 = c2 = 2.05 (overriding C1, C2 and
	// Inertia). A common, better-converging baseline.
	Constriction bool
	// VMaxFrac sets vmax = VMaxFrac · (Hi − Lo) per dimension.
	VMaxFrac float64
	// Variant selects the neighborhood topology (default GBest).
	Variant Variant
	// InertiaFinal, when positive, decays the inertia weight linearly
	// from Inertia down to InertiaFinal over InertiaDecayEvals
	// evaluations (the classic w: 0.9 → 0.4 schedule). Zero disables
	// decay.
	InertiaFinal      float64
	InertiaDecayEvals int64
	// ClampPosition, when true, clamps particle positions to the domain
	// box after each move (by default particles may fly outside, as in
	// the original PSO; the objective is still defined there).
	ClampPosition bool
}

// Canonical convergent PSO parameters (constriction-equivalent).
const (
	DefaultC1      = 1.49445
	DefaultC2      = 1.49445
	DefaultInertia = 0.72984
)

func (c Config) withDefaults() Config {
	if c.C1 == 0 {
		c.C1 = DefaultC1
	}
	if c.C2 == 0 {
		c.C2 = DefaultC2
	}
	if c.Inertia == 0 {
		c.Inertia = DefaultInertia
	}
	if c.VMaxFrac == 0 {
		c.VMaxFrac = 0.5
	}
	return c
}

// particle holds one particle's state: current position and velocity, and
// the best position it has visited with its fitness.
type particle struct {
	x, v, p []float64
	fp      float64
	seeded  bool // initial position evaluated
}

// Swarm is a particle swarm minimizing one objective. It satisfies the
// framework's Solver contract (EvalOne / Best / Inject / Evals).
type Swarm struct {
	f    funcs.Function
	dim  int
	cfg  Config
	rng  *rng.RNG
	vmax float64

	parts []particle
	nbors [][]int // neighbor indices per particle (nil for GBest)

	g  []float64 // swarm optimum position (paper's g_p)
	fg float64

	next  int
	evals int64
}

// New creates a swarm of k particles over f in dimension dim (0 uses the
// function's paper dimension), drawing randomness from r. Positions are
// uniform in the domain; velocities are uniform in [−vmax, vmax].
func New(f funcs.Function, dim, k int, cfg Config, r *rng.RNG) *Swarm {
	cfg = cfg.withDefaults()
	d := f.Dim(dim)
	s := &Swarm{
		f:    f,
		dim:  d,
		cfg:  cfg,
		rng:  r,
		vmax: cfg.VMaxFrac * (f.Hi - f.Lo),
		fg:   math.Inf(1),
	}
	s.parts = make([]particle, k)
	for i := range s.parts {
		p := &s.parts[i]
		p.x = make([]float64, d)
		p.v = make([]float64, d)
		p.p = make([]float64, d)
		for j := 0; j < d; j++ {
			p.x[j] = r.UniformIn(f.Lo, f.Hi)
			p.v[j] = r.UniformIn(-s.vmax, s.vmax)
		}
		copy(p.p, p.x)
		p.fp = math.Inf(1)
	}
	s.nbors = neighborhoods(cfg.Variant, k)
	return s
}

// neighborhoods builds the per-particle neighbor lists (including self) for
// the social term. GBest returns nil: the swarm best is used directly.
func neighborhoods(v Variant, k int) [][]int {
	switch v {
	case LBestRing:
		nb := make([][]int, k)
		for i := range nb {
			nb[i] = []int{(i - 1 + k) % k, i, (i + 1) % k}
		}
		return nb
	case VonNeumann, FIPS:
		// Near-square torus; FIPS conventionally uses the von Neumann
		// lattice as well.
		cols := 1
		for cols*cols < k {
			cols++
		}
		rows := (k + cols - 1) / cols
		nb := make([][]int, k)
		for i := range nb {
			r, c := i/cols, i%cols
			add := func(rr, cc int) {
				rr = (rr + rows) % rows
				cc = (cc + cols) % cols
				j := rr*cols + cc
				if j < k && j != i {
					nb[i] = append(nb[i], j)
				}
			}
			nb[i] = append(nb[i], i)
			add(r-1, c)
			add(r+1, c)
			add(r, c-1)
			add(r, c+1)
		}
		return nb
	default:
		return nil
	}
}

// K returns the number of particles.
func (s *Swarm) K() int { return len(s.parts) }

// Dim returns the search-space dimension.
func (s *Swarm) Dim() int { return s.dim }

// Evals returns the number of function evaluations performed.
func (s *Swarm) Evals() int64 { return s.evals }

// Best returns the swarm optimum and its fitness. The slice is owned by the
// swarm; callers must not modify it.
func (s *Swarm) Best() ([]float64, float64) { return s.g, s.fg }

// Inject offers a remote best (the coordination service's gossip payload).
// It is adopted as the swarm optimum when strictly better; it reports
// whether adoption happened. The position is copied into the swarm-owned
// buffer in place — gossip hands a node many adoptions per run, and a
// fresh clone per adoption was a measurable share of steady-state
// allocations at large populations.
func (s *Swarm) Inject(x []float64, fx float64) bool {
	if s.g != nil && fx >= s.fg {
		return false
	}
	if len(x) != s.dim {
		return false
	}
	if s.g == nil {
		s.g = vec.Clone(x)
	} else {
		copy(s.g, x)
	}
	s.fg = fx
	return true
}

// localBest returns the attractor position for particle i's social term.
func (s *Swarm) localBest(i int) ([]float64, bool) {
	if s.nbors == nil {
		if s.g == nil {
			return nil, false
		}
		return s.g, true
	}
	bi := -1
	bf := math.Inf(1)
	for _, j := range s.nbors[i] {
		if s.parts[j].seeded && s.parts[j].fp < bf {
			bf = s.parts[j].fp
			bi = j
		}
	}
	if bi < 0 {
		return nil, false
	}
	return s.parts[bi].p, true
}

// EvalOne performs exactly one function evaluation: the next particle in
// round-robin order is moved (after its first, seeding evaluation) and
// evaluated, and the personal and swarm bests are updated. It returns the
// fitness just computed.
func (s *Swarm) EvalOne() float64 {
	i := s.next
	s.next = (s.next + 1) % len(s.parts)
	p := &s.parts[i]

	if p.seeded {
		s.move(i, p)
	} else {
		p.seeded = true
	}

	fx := s.f.Eval(p.x)
	s.evals++
	if fx < p.fp {
		p.fp = fx
		copy(p.p, p.x)
	}
	if fx < s.fg {
		if s.g == nil {
			s.g = vec.Clone(p.x)
		} else {
			copy(s.g, p.x)
		}
		s.fg = fx
	}
	return fx
}

// inertia returns the current inertia weight under the optional linear
// decay schedule.
func (s *Swarm) inertia() float64 {
	w := s.cfg.Inertia
	if s.cfg.InertiaFinal <= 0 || s.cfg.InertiaDecayEvals <= 0 {
		return w
	}
	t := float64(s.evals) / float64(s.cfg.InertiaDecayEvals)
	if t > 1 {
		t = 1
	}
	return w + t*(s.cfg.InertiaFinal-w)
}

// move applies the velocity and position update to particle i.
func (s *Swarm) move(i int, p *particle) {
	w, c1, c2 := s.inertia(), s.cfg.C1, s.cfg.C2
	chi := 1.0
	if s.cfg.Constriction {
		// Clerc & Kennedy: φ = c1+c2 = 4.1, χ = 2/|2−φ−sqrt(φ²−4φ)|.
		c1, c2 = 2.05, 2.05
		w = 1
		chi = 0.7298437881283576
	}
	if s.cfg.Variant == FIPS {
		// Fully informed: average constricted attraction to every
		// neighbor's personal best; no separate cognitive term.
		phi := c1 + c2
		nb := s.nbors[i]
		for j := 0; j < s.dim; j++ {
			var acc float64
			cnt := 0
			for _, q := range nb {
				if !s.parts[q].seeded {
					continue
				}
				acc += phi / float64(len(nb)) * s.rng.Float64() * (s.parts[q].p[j] - p.x[j])
				cnt++
			}
			if cnt == 0 {
				continue
			}
			p.v[j] = chi * (w*p.v[j] + acc)
		}
	} else {
		g, ok := s.localBest(i)
		for j := 0; j < s.dim; j++ {
			nv := w*p.v[j] + c1*s.rng.Float64()*(p.p[j]-p.x[j])
			if ok {
				nv += c2 * s.rng.Float64() * (g[j] - p.x[j])
			}
			p.v[j] = chi * nv
		}
	}
	vec.ClampAbs(p.v, s.vmax)
	vec.Add(p.x, p.x, p.v)
	if s.cfg.ClampPosition {
		vec.Clamp(p.x, s.f.Lo, s.f.Hi)
	}
}

// Step performs one full swarm iteration (K evaluations).
func (s *Swarm) Step() {
	for range s.parts {
		s.EvalOne()
	}
}

// Run performs evaluations until the budget is exhausted or the swarm best
// reaches the threshold (use a negative threshold to disable). It returns
// the number of evaluations spent.
func (s *Swarm) Run(budget int64, threshold float64) int64 {
	start := s.evals
	for s.evals-start < budget {
		s.EvalOne()
		if s.fg <= threshold {
			break
		}
	}
	return s.evals - start
}
