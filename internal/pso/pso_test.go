package pso

import (
	"math"
	"testing"
	"testing/quick"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

func TestEvalOneCountsEvaluations(t *testing.T) {
	s := New(funcs.Sphere, 10, 8, Config{}, rng.New(1))
	for i := 0; i < 25; i++ {
		s.EvalOne()
	}
	if s.Evals() != 25 {
		t.Fatalf("Evals = %d, want 25", s.Evals())
	}
}

func TestStepEqualsKEvals(t *testing.T) {
	s := New(funcs.Sphere, 10, 16, Config{}, rng.New(2))
	s.Step()
	if s.Evals() != 16 {
		t.Fatalf("Step performed %d evals, want 16", s.Evals())
	}
}

func TestBestImprovesMonotonically(t *testing.T) {
	s := New(funcs.Rastrigin, 10, 16, Config{}, rng.New(3))
	prev := math.Inf(1)
	for i := 0; i < 2000; i++ {
		s.EvalOne()
		_, fg := s.Best()
		if fg > prev {
			t.Fatalf("swarm best regressed at eval %d: %v -> %v", i, prev, fg)
		}
		prev = fg
	}
}

func TestConvergesOnSphere(t *testing.T) {
	s := New(funcs.Sphere, 10, 20, Config{}, rng.New(4))
	s.Run(40000, -1)
	if _, fg := s.Best(); fg > 1e-10 {
		t.Fatalf("Sphere best %g after 40k evals, want < 1e-10", fg)
	}
}

func TestConvergesOnF2(t *testing.T) {
	s := New(funcs.F2, 0, 20, Config{}, rng.New(5))
	s.Run(30000, -1)
	if _, fg := s.Best(); fg > 1e-8 {
		t.Fatalf("F2 best %g after 30k evals", fg)
	}
}

func TestRunStopsAtThreshold(t *testing.T) {
	s := New(funcs.Sphere, 10, 20, Config{}, rng.New(6))
	spent := s.Run(1_000_000, 1e-3)
	if _, fg := s.Best(); fg > 1e-3 {
		t.Fatalf("threshold not reached: %g", fg)
	}
	if spent >= 1_000_000 {
		t.Fatal("Run consumed full budget despite threshold")
	}
}

func TestInjectAdoptsOnlyBetter(t *testing.T) {
	s := New(funcs.Sphere, 10, 4, Config{}, rng.New(7))
	s.Run(100, -1)
	_, cur := s.Best()
	if s.Inject(make([]float64, 10), cur+1) {
		t.Fatal("worse injection adopted")
	}
	star := make([]float64, 10)
	if !s.Inject(star, 0) {
		t.Fatal("perfect injection rejected")
	}
	g, fg := s.Best()
	if fg != 0 || !vec.Equal(g, star) {
		t.Fatalf("Best after injection = %v, %v", g, fg)
	}
	// The injected best must be copied, not aliased.
	star[0] = 123
	g, _ = s.Best()
	if g[0] == 123 {
		t.Fatal("Inject aliased caller slice")
	}
}

func TestInjectRejectsDimensionMismatch(t *testing.T) {
	s := New(funcs.Sphere, 10, 4, Config{}, rng.New(8))
	if s.Inject(make([]float64, 3), -1) {
		t.Fatal("dimension-mismatched injection adopted")
	}
}

func TestInjectionGuidesSwarm(t *testing.T) {
	// A swarm given the location of the optimum early should converge much
	// faster than an identical swarm without it.
	run := func(inject bool) float64 {
		s := New(funcs.Rosenbrock, 10, 16, Config{}, rng.New(9))
		if inject {
			near := make([]float64, 10)
			for i := range near {
				near[i] = 1.01
			}
			s.Inject(near, funcs.Rosenbrock.Eval(near))
		}
		s.Run(5000, -1)
		_, fg := s.Best()
		return fg
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("injection did not help: with=%g without=%g", with, without)
	}
}

func TestVelocityClamped(t *testing.T) {
	s := New(funcs.Sphere, 10, 8, Config{VMaxFrac: 0.1}, rng.New(10))
	vmax := 0.1 * (funcs.Sphere.Hi - funcs.Sphere.Lo)
	for i := 0; i < 500; i++ {
		s.EvalOne()
	}
	for i := range s.parts {
		for _, vj := range s.parts[i].v {
			if math.Abs(vj) > vmax+1e-12 {
				t.Fatalf("velocity %v exceeds vmax %v", vj, vmax)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.C1 != DefaultC1 || cfg.C2 != DefaultC2 || cfg.Inertia != DefaultInertia || cfg.VMaxFrac != 0.5 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestVariantsAllConverge(t *testing.T) {
	for _, v := range []Variant{GBest, LBestRing, VonNeumann, FIPS} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			s := New(funcs.Sphere, 10, 20, Config{Variant: v, Constriction: true}, rng.New(11))
			s.Run(30000, -1)
			if _, fg := s.Best(); fg > 1e-3 {
				t.Fatalf("%s best %g after 30k evals", v, fg)
			}
		})
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		GBest: "gbest", LBestRing: "lbest-ring",
		VonNeumann: "von-neumann", FIPS: "fips", Variant(99): "unknown",
	}
	for v, want := range names {
		if v.String() != want {
			t.Fatalf("%d.String() = %s", v, v.String())
		}
	}
}

func TestNeighborhoodsRing(t *testing.T) {
	nb := neighborhoods(LBestRing, 5)
	if len(nb) != 5 {
		t.Fatalf("len = %d", len(nb))
	}
	want := []int{4, 0, 1}
	for i, j := range want {
		if nb[0][i] != j {
			t.Fatalf("nb[0] = %v, want %v", nb[0], want)
		}
	}
}

func TestNeighborhoodsVonNeumannValid(t *testing.T) {
	for _, k := range []int{1, 2, 4, 9, 16, 17} {
		nb := neighborhoods(VonNeumann, k)
		for i, ns := range nb {
			if len(ns) == 0 || ns[0] != i {
				t.Fatalf("k=%d: particle %d neighborhood %v must start with self", k, i, ns)
			}
			for _, j := range ns {
				if j < 0 || j >= k {
					t.Fatalf("k=%d: neighbor %d out of range", k, j)
				}
			}
		}
	}
}

func TestInertiaDecaySchedule(t *testing.T) {
	s := New(funcs.Sphere, 10, 4, Config{
		Inertia: 0.9, InertiaFinal: 0.4, InertiaDecayEvals: 1000,
	}, rng.New(20))
	if w := s.inertia(); w != 0.9 {
		t.Fatalf("initial inertia %v", w)
	}
	s.Run(500, -1)
	if w := s.inertia(); w < 0.6 || w > 0.7 {
		t.Fatalf("midpoint inertia %v, want ≈ 0.65", w)
	}
	s.Run(2000, -1)
	if w := s.inertia(); w != 0.4 {
		t.Fatalf("final inertia %v, want clamped at 0.4", w)
	}
}

func TestInertiaDecayVariantConverges(t *testing.T) {
	s := New(funcs.Sphere, 10, 20, Config{
		Inertia: 0.9, C1: 2, C2: 2, InertiaFinal: 0.4, InertiaDecayEvals: 20000,
	}, rng.New(21))
	s.Run(30000, -1)
	if _, fg := s.Best(); fg > 1e-3 {
		t.Fatalf("w-decay PSO best %g", fg)
	}
}

func TestClampPositionKeepsParticlesInBox(t *testing.T) {
	s := New(funcs.Rastrigin, 10, 8, Config{ClampPosition: true}, rng.New(22))
	for i := 0; i < 1000; i++ {
		s.EvalOne()
	}
	for i := range s.parts {
		for _, xj := range s.parts[i].x {
			if xj < funcs.Rastrigin.Lo || xj > funcs.Rastrigin.Hi {
				t.Fatalf("particle escaped box: %v", xj)
			}
		}
	}
}

func TestNoClampAllowsFlight(t *testing.T) {
	// With a huge vmax and no clamping, at least one particle should leave
	// the box at some point on a wide domain.
	s := New(funcs.Sphere, 10, 8, Config{VMaxFrac: 1}, rng.New(23))
	escaped := false
	for i := 0; i < 2000 && !escaped; i++ {
		s.EvalOne()
		for j := range s.parts {
			for _, xj := range s.parts[j].x {
				if xj < funcs.Sphere.Lo || xj > funcs.Sphere.Hi {
					escaped = true
				}
			}
		}
	}
	if !escaped {
		t.Skip("no particle left the box on this seed (acceptable)")
	}
}

func TestConstrictionConvergesFasterOnSphere(t *testing.T) {
	run := func(constrict bool) float64 {
		s := New(funcs.Sphere, 10, 20, Config{Constriction: constrict}, rng.New(12))
		s.Run(10000, -1)
		_, fg := s.Best()
		return fg
	}
	if c, p := run(true), run(false); c > p {
		t.Skipf("constriction slower on this seed: %g vs %g", c, p)
	}
}

// Property: swarm best always corresponds to a real evaluation — it is
// finite and nonnegative for our shifted-to-zero benchmarks, and never
// below the function's true optimum.
func TestBestIsSound(t *testing.T) {
	if err := quick.Check(func(seed uint16, kRaw uint8) bool {
		k := int(kRaw%30) + 1
		s := New(funcs.Griewank, 10, k, Config{}, rng.New(uint64(seed)))
		s.Run(500, -1)
		_, fg := s.Best()
		return fg >= 0 && !math.IsInf(fg, 0) && !math.IsNaN(fg)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleParticleSwarmWorks(t *testing.T) {
	// k = 1 is a degenerate but legal configuration in the paper's tables.
	s := New(funcs.Sphere, 10, 1, Config{}, rng.New(13))
	s.Run(1000, -1)
	if _, fg := s.Best(); math.IsInf(fg, 0) {
		t.Fatal("single-particle swarm never evaluated")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() float64 {
		s := New(funcs.Rastrigin, 10, 16, Config{}, rng.New(99))
		s.Run(2000, -1)
		_, fg := s.Best()
		return fg
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %g vs %g", a, b)
	}
}

func BenchmarkEvalOne(b *testing.B) {
	s := New(funcs.Sphere, 10, 16, Config{}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalOne()
	}
}

func BenchmarkStepGBest(b *testing.B) {
	s := New(funcs.Griewank, 10, 16, Config{}, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
