// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible simulations.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through a
// SplitMix64 expander so that low-entropy seeds (0, 1, 2, ...) still yield
// well-distributed initial states. Every node, particle and protocol in a
// simulation receives its own stream via Split, which guarantees that adding
// or removing one consumer does not perturb the random sequence observed by
// the others — a property plain shared generators lack and which is essential
// for controlled experiments.
package rng

import "math"

// RNG is a xoshiro256++ pseudo-random generator. The zero value is invalid;
// use New or Split to obtain an initialized stream.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next SplitMix64 output. It is used
// both for seeding and for deriving split streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the one fixed point of xoshiro; the SplitMix64
	// expansion cannot produce it for any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new, statistically independent stream from r. The parent
// stream advances by one output; the child is seeded from that output mixed
// with a distinguishing constant so parent and child sequences do not overlap
// in practice.
func (r *RNG) Split() *RNG {
	seed := r.Uint64() ^ 0xd1b54a32d192ed03
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// UniformIn returns a uniform float64 in [lo, hi).
func (r *RNG) UniformIn(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Sample returns k distinct uniform indices from [0, n) in random order.
// If k >= n it returns a full permutation. It panics if k < 0 or n < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || n < 0 {
		panic("rng: Sample with negative argument")
	}
	if k >= n {
		return r.Perm(n)
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
