package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeats: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's future outputs.
	parentOut := make([]uint64, 50)
	for i := range parentOut {
		parentOut[i] = parent.Uint64()
	}
	for i := 0; i < 50; i++ {
		c := child.Uint64()
		for _, p := range parentOut {
			if c == p {
				t.Fatalf("child output %d collides with parent stream", i)
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams differ at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	if err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		s := r.Sample(n, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCoverage(t *testing.T) {
	// Over many draws of Sample(10, 3), every index must appear.
	r := New(31)
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		for _, v := range r.Sample(10, 3) {
			seen[v]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] == 0 {
			t.Fatalf("index %d never sampled", i)
		}
	}
}

func TestUniformIn(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		x := r.UniformIn(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("UniformIn(-3,5) = %v out of range", x)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(41)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(47)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
