package scenario

import (
	"encoding/json"
	"sort"
)

// The built-in scenarios: one runnable exemplar per scripted condition the
// subsystem supports, sized to finish in well under a second each so they
// double as CI smoke tests. Each is a plain Spec — `cmd/scenario -show
// <name>` prints the JSON, the natural starting point for custom files.

func builtins() map[string]Spec {
	return map[string]Spec{
		"baseline": {
			Name:         "baseline",
			Description:  "64-node Newscast/PSO network on Sphere, no disturbances — the reference run.",
			Nodes:        64,
			Seed:         1,
			MetricsEvery: 20,
			Stop:         Stop{Cycles: 200},
		},
		"flash-churn": {
			Name:        "flash-churn",
			Description: "A churn burst: 25% of nodes crash at cycle 60, fresh nodes join at 80, crashed ones restart at 120.",
			Nodes:       64,
			Seed:        2,
			Stack:       Stack{Function: "Rastrigin"},
			Timeline: []Event{
				{At: 60, Action: "crash", Fraction: 0.25},
				{At: 80, Action: "join", Count: 8},
				{At: 120, Action: "revive", Count: 8},
			},
			MetricsEvery: 20,
			Stop:         Stop{Cycles: 240},
		},
		"netsplit-heal": {
			Name:        "netsplit-heal",
			Description: "The network splits into two islands at cycle 60 and heals at 160; the islands' optima re-merge.",
			Nodes:       64,
			Seed:        3,
			Stack:       Stack{Function: "Griewank"},
			Timeline: []Event{
				{At: 60, Action: "partition", Groups: 2},
				{At: 160, Action: "heal"},
			},
			MetricsEvery: 20,
			Stop:         Stop{Cycles: 240},
		},
		"lossy-wan": {
			Name:        "lossy-wan",
			Description: "Event-driven WAN with 5% baseline loss and a loss storm (50%) between t=100 and t=200.",
			Engine:      EngineEvent,
			Nodes:       32,
			Seed:        4,
			Stack: Stack{
				Function: "Rastrigin",
				Link:     &Link{MinDelay: 0.5, MaxDelay: 2, LossProb: 0.05},
			},
			Timeline: []Event{
				{At: 100, Action: "set-link", Link: &Link{MinDelay: 0.5, MaxDelay: 2, LossProb: 0.5}},
				{At: 200, Action: "set-link", Link: &Link{MinDelay: 0.5, MaxDelay: 2, LossProb: 0.05}},
			},
			MetricsEvery: 30,
			Stop:         Stop{Time: 300},
		},
		"latency-spike": {
			Name:        "latency-spike",
			Description: "Event-driven run where link latency jumps 10x between t=100 and t=200 (a congested backbone).",
			Engine:      EngineEvent,
			Nodes:       32,
			Seed:        5,
			Stack: Stack{
				Function: "Sphere",
				Link:     &Link{MinDelay: 0.5, MaxDelay: 1.5},
			},
			Timeline: []Event{
				{At: 100, Action: "set-link", Link: &Link{MinDelay: 5, MaxDelay: 15}},
				{At: 200, Action: "set-link", Link: &Link{MinDelay: 0.5, MaxDelay: 1.5}},
			},
			MetricsEvery: 30,
			Stop:         Stop{Time: 300},
		},
		"mixed-solvers": {
			Name:        "mixed-solvers",
			Description: "Module diversification: six solver types round-robin across 60 nodes, coordinated by best-point gossip.",
			Nodes:       60,
			Seed:        6,
			Stack: Stack{
				Function: "Rastrigin",
				Solvers:  []string{"pso", "de", "ga", "sa", "es", "random"},
			},
			MetricsEvery: 20,
			Stop:         Stop{Cycles: 240},
		},
		"rumor-netsplit": {
			Name:        "rumor-netsplit",
			Description: "Rumor mongering behind a netsplit: the rumor saturates the seed's island while the cut holds, then crosses after the heal.",
			Nodes:       64,
			Seed:        7,
			// Static substrate: a Newscast overlay would segregate into the
			// two islands during the cut (cross descriptors age out and
			// nothing re-bridges the views after the heal), whereas a fixed
			// random graph keeps its cross-links, so the rumor can jump once
			// delivery resumes. The low stop probability keeps spreaders hot
			// through the window — a cold rumor cannot cross any heal.
			Stack: Stack{Topology: "random", ViewSize: 8, Protocol: ProtocolRumor, Fanout: 2, StopProb: fptr(0.05)},
			Timeline: []Event{
				{At: 0, Action: "partition", Groups: 2},
				{At: 20, Action: "heal"},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 80},
		},
		"antientropy-oneway": {
			Name: "antientropy-oneway",
			Description: "Push-pull anti-entropy under a one-way cut: even nodes can push into the odd island " +
				"but nothing returns, so the odd-held maximum is stuck until the heal.",
			Nodes: 64,
			Seed:  10,
			// Static substrate for the same reason as rumor-netsplit: a
			// gossiped overlay would segregate during the cut. Initial
			// values are the node IDs, so the global best (63) starts on
			// the odd island — exactly the side the cut silences.
			Stack: Stack{Topology: "random", ViewSize: 8, Protocol: ProtocolAntiEntropy},
			Timeline: []Event{
				{At: 0, Action: "partition", Groups: 2, OneWay: true},
				{At: 30, Action: "heal"},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 80},
		},
		"antientropy-lossy": {
			Name:         "antientropy-lossy",
			Description:  "Push-pull anti-entropy with 30% message loss: diffusion slows down but still converges (paper §3.3.4).",
			Nodes:        64,
			Seed:         8,
			Stack:        Stack{Protocol: ProtocolAntiEntropy, DropProb: 0.3},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 80},
		},
		"lossy-links": {
			Name: "lossy-links",
			Description: "Anti-entropy over lossy, laggy links (15% loss, up to 2 cycles delay) with a storm " +
				"(50% loss, 1-4 cycles delay) between cycles 30 and 50; diffusion slows but converges.",
			Nodes: 64,
			Seed:  11,
			Stack: Stack{
				Protocol: ProtocolAntiEntropy,
				Net:      &NetSpec{Loss: 0.15, DelayMax: 2},
			},
			Timeline: []Event{
				{At: 30, Action: "link-model", Model: &NetSpec{Loss: 0.5, DelayMin: 1, DelayMax: 4}},
				{At: 50, Action: "link-model"}, // back to the baseline net
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 100},
		},
		"regional-outage": {
			Name: "regional-outage",
			Description: "Rumor mongering under correlated failures: four regions flap as Markov chains " +
				"(10% fail, 30% recover per cycle), cutting every leg that touches a down region.",
			Nodes: 64,
			Seed:  12,
			Stack: Stack{
				Topology: "random", ViewSize: 8,
				Protocol: ProtocolRumor, Fanout: 2, StopProb: fptr(0.05),
				Net: &NetSpec{Regions: 4, RegionFail: 0.1, RegionRecover: 0.3},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 100},
		},
		"byzantine-corrupt": {
			Name: "byzantine-corrupt",
			Description: "Anti-entropy with a quarter of the nodes corrupting every message they send " +
				"(their payloads arrive as unparseable garbage); the honest majority still diffuses the maximum.",
			Nodes: 64,
			Seed:  13,
			Stack: Stack{Protocol: ProtocolAntiEntropy},
			Timeline: []Event{
				{At: 0, Action: "byzantine", Behavior: "corrupt", Fraction: 0.25},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 80},
		},
		"byzantine-delay": {
			Name: "byzantine-delay",
			Description: "T-Man builds a ring while a quarter of the nodes lag every message they send by " +
				"1-3 cycles, serving stale descriptors; construction slows but completes.",
			Nodes: 64,
			Seed:  14,
			Stack: Stack{Protocol: ProtocolTMan, TManC: 4},
			Timeline: []Event{
				{At: 0, Action: "byzantine", Behavior: "delay", Fraction: 0.25},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 100},
		},
		"tman-ring-churn": {
			Name:        "tman-ring-churn",
			Description: "T-Man builds a ring while a quarter of the nodes crash mid-construction and later restart.",
			Nodes:       64,
			Seed:        9,
			Stack:       Stack{Protocol: ProtocolTMan, TManC: 4},
			Timeline: []Event{
				{At: 30, Action: "crash", Fraction: 0.25},
				{At: 60, Action: "revive", Count: 16},
			},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 120},
		},
	}
}

// fptr builds the pointer-valued probability knobs of a Spec literal.
func fptr(v float64) *float64 { return &v }

// raw builds the json.RawMessage values of a SweepSpec literal.
func raw(s string) json.RawMessage { return json.RawMessage(s) }

// The built-in sweeps: one exemplar per override mechanism (a dotted-path
// axis and a deep-merge axis), sized so `-sweep <name> -reps 2` finishes
// in seconds and doubles as the CI byte-compare smoke. `cmd/scenario
// -show <name>` prints the JSON, the starting point for custom sweeps.
func builtinSweeps() map[string]SweepSpec {
	return map[string]SweepSpec{
		"overlay-vs-churn": {
			Name:        "overlay-vs-churn",
			Description: "Does the overlay choice matter under churn? Newscast vs Cyclon, calm vs a 25% crash burst, on Sphere.",
			Base: Spec{
				Nodes:        32,
				Seed:         17,
				Stack:        Stack{Particles: 8},
				MetricsEvery: 20,
				Stop:         Stop{Cycles: 80},
			},
			Axes: []Axis{
				{Name: "overlay", Path: "stack.topology", Values: []AxisValue{
					{Value: raw(`"newscast"`)},
					{Value: raw(`"cyclon"`)},
				}},
				{Name: "churn", Values: []AxisValue{
					{Label: "calm", Value: raw(`{}`)},
					{Label: "burst", Value: raw(`{"timeline":[
						{"at":20,"action":"crash","fraction":0.25},
						{"at":50,"action":"revive","count":8}]}`)},
				}},
			},
			Reps:      4,
			Threshold: fptr(1500),
		},
		"protocol-vs-loss": {
			Name:        "protocol-vs-loss",
			Description: "How does message loss slow convergence? Best-point gossip vs push-pull anti-entropy at 0% and 30% drop probability.",
			Base: Spec{
				Nodes:        48,
				Seed:         23,
				MetricsEvery: 2,
				Stop:         Stop{Cycles: 60},
			},
			Axes: []Axis{
				{Name: "protocol", Values: []AxisValue{
					{Label: "opt", Value: raw(`{"stack":{"particles":8}}`)},
					{Label: "antientropy", Value: raw(`{"stack":{"protocol":"antientropy"}}`)},
				}},
				{Name: "loss", Path: "stack.drop_prob", Values: []AxisValue{
					{Value: raw(`0`)},
					{Value: raw(`0.3`)},
				}},
			},
			Reps:      3,
			Threshold: fptr(0.1),
		},
		"protocol-vs-linkloss": {
			Name: "protocol-vs-linkloss",
			Description: "How does per-link loss degrade epidemic spread? Rumor mongering vs push-pull " +
				"anti-entropy at 0%, 15% and 35% per-leg loss; time-to-90%-coverage grows with loss.",
			Base: Spec{
				Nodes:        48,
				Seed:         31,
				Stack:        Stack{Topology: "random", ViewSize: 8},
				MetricsEvery: 2,
				Stop:         Stop{Cycles: 120},
			},
			Axes: []Axis{
				{Name: "protocol", Values: []AxisValue{
					{Label: "rumor", Value: raw(`{"stack":{"protocol":"rumor","fanout":2,"stop_prob":0.05}}`)},
					{Label: "antientropy", Value: raw(`{"stack":{"protocol":"antientropy"}}`)},
				}},
				{Name: "loss", Path: "stack.net.loss", Values: []AxisValue{
					{Value: raw(`0`)},
					{Value: raw(`0.15`)},
					{Value: raw(`0.35`)},
				}},
			},
			Reps:      3,
			Threshold: fptr(0.1),
		},
	}
}

// BuiltinSweep returns the named built-in sweep.
func BuiltinSweep(name string) (SweepSpec, bool) {
	s, ok := builtinSweeps()[name]
	return s, ok
}

// BuiltinSweepNames returns the sorted built-in sweep names.
func BuiltinSweepNames() []string {
	m := builtinSweeps()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns the named built-in scenario.
func Builtin(name string) (Spec, bool) {
	s, ok := builtins()[name]
	return s, ok
}

// BuiltinNames returns the sorted built-in scenario names.
func BuiltinNames() []string {
	m := builtins()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
