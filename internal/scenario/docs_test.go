package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// specDocPath locates docs/SCENARIOS.md relative to this package.
const specDocPath = "../../docs/SCENARIOS.md"

// TestDocsCoverEverySpecField keeps docs/SCENARIOS.md honest: every JSON
// tag reachable from Spec or SweepSpec must appear in the reference
// (backticked, the way the doc's tables name fields). Adding a field to
// the structs without documenting it fails here — the docs and the spec
// grammar cannot drift apart silently.
func TestDocsCoverEverySpecField(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(specDocPath))
	if err != nil {
		t.Fatalf("reading spec reference: %v", err)
	}
	doc := string(data)

	tags := map[string][]string{} // tag -> types that declare it
	var collect func(typ reflect.Type, seen map[reflect.Type]bool)
	collect = func(typ reflect.Type, seen map[reflect.Type]bool) {
		for typ.Kind() == reflect.Pointer || typ.Kind() == reflect.Slice || typ.Kind() == reflect.Map {
			typ = typ.Elem()
		}
		if typ.Kind() != reflect.Struct || seen[typ] {
			return
		}
		seen[typ] = true
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				t.Errorf("%s.%s has no json tag; spec fields must be taggable and documented", typ.Name(), f.Name)
				continue
			}
			tags[tag] = append(tags[tag], typ.Name())
			collect(f.Type, seen)
		}
	}
	seen := map[reflect.Type]bool{}
	collect(reflect.TypeOf(Spec{}), seen)
	collect(reflect.TypeOf(SweepSpec{}), seen)

	if len(tags) < 30 {
		t.Fatalf("suspiciously few spec fields collected (%d); reflection walk broken?", len(tags))
	}
	for tag, types := range tags {
		if !strings.Contains(doc, "`"+tag+"`") {
			t.Errorf("docs/SCENARIOS.md does not document field `%s` (declared by %s)",
				tag, strings.Join(types, ", "))
		}
	}
}

// TestDocsExampleSpecsParse extracts every ```json block from the
// reference and feeds it to the strict parsers — the doc's examples must
// actually run, not just look plausible.
func TestDocsExampleSpecsParse(t *testing.T) {
	data, err := os.ReadFile(specDocPath)
	if err != nil {
		t.Fatalf("reading spec reference: %v", err)
	}
	blocks := strings.Split(string(data), "```json")
	if len(blocks) < 2 {
		t.Fatal("no ```json examples found in docs/SCENARIOS.md")
	}
	for i, rest := range blocks[1:] {
		end := strings.Index(rest, "```")
		if end < 0 {
			t.Fatalf("unterminated json block %d", i)
		}
		raw := strings.TrimSpace(rest[:end])
		// Sweep specs are the ones with axes; everything else is a Spec.
		var perr error
		if strings.Contains(raw, `"axes"`) {
			_, perr = ParseSweep([]byte(raw))
		} else {
			_, perr = Parse([]byte(raw))
		}
		if perr != nil {
			t.Errorf("docs/SCENARIOS.md json example %d does not parse: %v\n%s", i, perr, raw)
		}
	}
}
