package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseSpec throws arbitrary bytes at the strict spec parser. The
// invariants under fuzz: Parse never panics, and any spec it accepts is
// fully normalized — re-normalizing is an error-free no-op, so Run (which
// re-normalizes what Parse returned) can never diverge from what the
// parser validated. The committed corpus under testdata/fuzz seeds every
// built-in scenario plus the documented examples; the runtime seeds below
// keep the built-ins covered even if the corpus goes stale.
func FuzzParseSpec(f *testing.F) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			f.Fatalf("builtin %q missing", name)
		}
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		again, err := s.normalized()
		if err != nil {
			t.Fatalf("spec accepted by Parse fails re-validation: %v\ninput: %s", err, data)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("normalization is not idempotent for accepted input %s:\n first %+v\nsecond %+v", data, s, again)
		}
	})
}
