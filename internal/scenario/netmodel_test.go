package scenario

import (
	"bytes"
	"testing"

	"gossipopt/internal/exp"
)

// Scenario-level tests for the per-link network models: zero-leak under
// total loss, the corrupted-is-never-delivered accounting, the pinned
// loss-degradation sweep, and repetition-worker invariance of the new
// built-ins (the propose x apply grid is covered for every built-in by
// TestApplyWorkerGridInvariance).

// TestFullLinkLossLeaksNothing: under a 100% per-link loss model no
// protocol state may cross between nodes. Zero legs are delivered, and the
// quality metric never improves on its first sample — rumor and
// anti-entropy stay frozen; T-Man may only get worse (Undelivered prunes
// unreachable peers from its views).
func TestFullLinkLossLeaksNothing(t *testing.T) {
	cases := []struct {
		name  string
		stack Stack
	}{
		{ProtocolRumor, Stack{Topology: "random", ViewSize: 8, Protocol: ProtocolRumor, Fanout: 2, StopProb: fptr(0.05), Net: &NetSpec{Loss: 1}}},
		{ProtocolAntiEntropy, Stack{Protocol: ProtocolAntiEntropy, Net: &NetSpec{Loss: 1}}},
		{ProtocolTMan, Stack{Protocol: ProtocolTMan, TManC: 4, Net: &NetSpec{Loss: 1}}},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := Spec{
				Name:  "zero-leak-" + c.name,
				Nodes: 32, Seed: uint64(41 + i),
				Stack:        c.stack,
				MetricsEvery: 5,
				Stop:         Stop{Cycles: 30},
			}
			var sink captureSink
			sums, err := Run(spec, Options{}, &sink)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range sink.recs {
				if r.Delivered != 0 {
					t.Fatalf("cycle %d: %d legs delivered under 100%% loss", r.Cycle, r.Delivered)
				}
			}
			first, last := sink.recs[0], sink.recs[len(sink.recs)-1]
			if last.Quality < first.Quality {
				t.Fatalf("quality improved %v -> %v with every leg lost", first.Quality, last.Quality)
			}
			if c.name == ProtocolRumor && last.Adoptions != 1 {
				t.Fatalf("%d nodes informed, want only the seed", last.Adoptions)
			}
			if c.name == ProtocolAntiEntropy && last.Adoptions != 0 {
				t.Fatalf("%d anti-entropy adoptions crossed a dead network", last.Adoptions)
			}
			if sums[0].Stats.Dropped == 0 {
				t.Fatal("no traffic was attempted; the run proves nothing")
			}
		})
	}
}

// TestAllCorruptCountsDroppedNeverDelivered: when every node corrupts
// every leg it sends, receivers see only unparseable markers — so the
// Delivered counter must stay at zero, every corrupted leg must also count
// as Dropped, and no protocol state crosses.
func TestAllCorruptCountsDroppedNeverDelivered(t *testing.T) {
	spec := Spec{
		Name:  "all-corrupt",
		Nodes: 32, Seed: 44,
		Stack:        Stack{Protocol: ProtocolAntiEntropy},
		Timeline:     []Event{{At: 0, Action: "byzantine", Behavior: "corrupt", Fraction: 1}},
		MetricsEvery: 5,
		Stop:         Stop{Cycles: 30},
	}
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	st := sums[0].Stats
	if st.Corrupted == 0 {
		t.Fatal("no legs corrupted; the adversaries never acted")
	}
	if st.Delivered != 0 {
		t.Fatalf("%d corrupted legs counted as Delivered", st.Delivered)
	}
	if st.Dropped != st.Corrupted {
		t.Fatalf("dropped=%d corrupted=%d: every drop here must be a corruption", st.Dropped, st.Corrupted)
	}
	for _, r := range sink.recs {
		if r.Adoptions != 0 {
			t.Fatalf("cycle %d: %d adoptions from unparseable payloads", r.Cycle, r.Adoptions)
		}
	}
	first, last := sink.recs[0], sink.recs[len(sink.recs)-1]
	if last.Quality != first.Quality {
		t.Fatalf("quality moved %v -> %v on corrupted-only traffic", first.Quality, last.Quality)
	}
}

// TestLinkLossDegradationPinned pins the headline degradation claim as a
// regression: in the protocol-vs-linkloss sweep, every cell still
// converges (zero censored repetitions), each protocol's mean
// time-to-threshold is non-decreasing in the loss rate, and the highest
// loss rate is strictly slower than the lossless baseline.
func TestLinkLossDegradationPinned(t *testing.T) {
	sw, ok := BuiltinSweep("protocol-vs-linkloss")
	if !ok {
		t.Fatal("protocol-vs-linkloss sweep missing")
	}
	res, err := RunSweep(sw, Options{RepWorkers: 4}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	nloss := len(sw.Axes[1].Values)
	if len(res) != len(sw.Axes[0].Values)*nloss {
		t.Fatalf("%d cells, want the full grid", len(res))
	}
	// Expansion is row-major with the last (loss) axis fastest, so each
	// protocol's cells are consecutive in increasing-loss order.
	for p := 0; p < len(sw.Axes[0].Values); p++ {
		cells := res[p*nloss : (p+1)*nloss]
		prev := 0.0
		for _, r := range cells {
			if r.Summary.Censored != 0 {
				t.Fatalf("%s: %d of %d reps never reached the threshold", r.Cell.Name, r.Summary.Censored, r.Summary.Reps)
			}
			m := r.Summary.ToThreshold.Mean
			if m < prev {
				t.Fatalf("degradation not monotone: %s mean to-threshold %.2f, previous loss level took %.2f", r.Cell.Name, m, prev)
			}
			prev = m
		}
		lo := cells[0].Summary.ToThreshold.Mean
		hi := cells[nloss-1].Summary.ToThreshold.Mean
		if hi <= lo {
			t.Fatalf("%s: max loss (%.2f cycles) not slower than lossless (%.2f cycles)", cells[0].Cell.Name, hi, lo)
		}
	}
}

// TestNetModelRepWorkerInvariance extends the worker-invariance contract's
// third axis to the net-model built-ins: a multi-repetition campaign emits
// byte-identical CSV for every repetition-worker count.
func TestNetModelRepWorkerInvariance(t *testing.T) {
	for _, name := range []string{"lossy-links", "regional-outage", "byzantine-corrupt", "byzantine-delay"} {
		spec, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		render := func(rw int) string {
			var buf bytes.Buffer
			if _, err := Run(spec, Options{Reps: 3, RepWorkers: rw}, exp.NewCSVSink(&buf)); err != nil {
				t.Fatalf("%s repworkers=%d: %v", name, rw, err)
			}
			return buf.String()
		}
		want := render(1)
		for _, rw := range []int{2, 8} {
			if got := render(rw); got != want {
				t.Fatalf("%s: output differs between 1 and %d rep workers", name, rw)
			}
		}
	}
}
