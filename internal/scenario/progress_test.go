package scenario

import (
	"bytes"
	"testing"

	"gossipopt/internal/exp"
	"gossipopt/internal/sim"
)

// stripWorkerVariantStats zeroes the instrumentation fields that
// legitimately depend on wall-clock time or the worker configuration
// (phase timings, shard-load spread, pool submissions, the process-global
// free-list counters), leaving the deterministic core — cycle, delivery,
// eval, round, job and rebuild counts — for exact comparison across
// worker grids.
func stripWorkerVariantStats(s *sim.EngineStats) {
	s.ProposeNanos, s.ApplyNanos = 0, 0
	s.ShardedRounds, s.ShardMinLoad, s.ShardMaxLoad, s.ShardMeanLoad = 0, 0, 0, 0
	// ApplyBatches is worker-variant by design: the single-worker fused
	// apply path never materializes batches, so the counter moves only on
	// sharded rounds.
	s.ApplyBatches = 0
	s.PoolTasks = 0
	s.FreeListHits, s.FreeListMisses = 0, 0
}

// stripWorkerVariantUpdate normalizes one progress update for cross-grid
// comparison: the worker-variant stats fields, like above.
func stripWorkerVariantUpdate(u *ProgressUpdate) {
	stripWorkerVariantStats(&u.Summary.Stats)
}

// TestProgressStreamCampaign pins the campaign progress contract: one
// update per repetition, in repetition order, rows monotone and ending at
// the total row count, the cell completing exactly on the last update.
func TestProgressStreamCampaign(t *testing.T) {
	spec, _ := Builtin("baseline")
	spec.Stop.Cycles = 20
	const reps = 4
	var ups []ProgressUpdate
	var buf bytes.Buffer
	_, err := Run(spec, Options{
		Reps:     reps,
		Progress: func(u ProgressUpdate) { ups = append(ups, u) },
	}, exp.NewCSVSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != reps {
		t.Fatalf("got %d updates, want %d", len(ups), reps)
	}
	rows := int64(bytes.Count(buf.Bytes(), []byte("\n")) - 1) // minus header
	for i, u := range ups {
		if u.DoneReps != i+1 || u.Rep != i || u.TotalReps != reps || u.TotalCells != 1 {
			t.Fatalf("update %d out of order: %+v", i, u)
		}
		if u.Cell != spec.Name {
			t.Fatalf("update %d cell = %q, want %q", i, u.Cell, spec.Name)
		}
		if u.Summary.Stats.Cycles != 20 {
			t.Fatalf("update %d carries no engine stats: %+v", i, u.Summary.Stats)
		}
		wantDone := 0
		if i == reps-1 {
			wantDone = 1
		}
		if u.DoneCells != wantDone {
			t.Fatalf("update %d DoneCells = %d, want %d", i, u.DoneCells, wantDone)
		}
	}
	if got := ups[reps-1].Rows; got != rows {
		t.Fatalf("final update reports %d rows, sink received %d", got, rows)
	}
}

// TestProgressStreamWorkerInvariance runs the same sweep across the
// (RepWorkers × Workers) grid and requires the exact same update stream —
// order, counts, rows, summaries — once the worker-variant stats fields
// are stripped. The progress callback rides the ordered flush frontier,
// so this holds by construction; the test keeps it that way.
func TestProgressStreamWorkerInvariance(t *testing.T) {
	sw, _ := BuiltinSweep("overlay-vs-churn")
	stream := func(repWorkers, workers int) []ProgressUpdate {
		var ups []ProgressUpdate
		_, err := RunSweep(sw, Options{
			Reps: 2, RepWorkers: repWorkers, Workers: workers,
			Progress: func(u ProgressUpdate) { ups = append(ups, u) },
		}, exp.DiscardSink{})
		if err != nil {
			t.Fatalf("repworkers=%d workers=%d: %v", repWorkers, workers, err)
		}
		for i := range ups {
			stripWorkerVariantUpdate(&ups[i])
		}
		return ups
	}
	want := stream(1, 1)
	if len(want) == 0 {
		t.Fatal("no progress updates")
	}
	last := want[len(want)-1]
	if last.DoneReps != last.TotalReps || last.DoneCells != last.TotalCells {
		t.Fatalf("final update incomplete: %+v", last)
	}
	for _, grid := range [][2]int{{4, 1}, {2, 2}, {8, 4}} {
		got := stream(grid[0], grid[1])
		if len(got) != len(want) {
			t.Fatalf("repworkers=%d workers=%d: %d updates, want %d", grid[0], grid[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("repworkers=%d workers=%d: update %d differs:\n%+v\n%+v",
					grid[0], grid[1], i, got[i], want[i])
			}
		}
	}
}

// TestSweepFillsEngineSummary checks that every sweep cell summary
// carries the aggregated engine instrumentation and that its job counts
// agree with the per-repetition snapshots.
func TestSweepFillsEngineSummary(t *testing.T) {
	sw, _ := BuiltinSweep("overlay-vs-churn")
	res, err := RunSweep(sw, Options{Reps: 2, Workers: 2}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no cells")
	}
	for _, r := range res {
		eng := r.Summary.Engine
		if eng == nil {
			t.Fatalf("cell %s: no engine summary", r.Cell.Name)
		}
		if eng.ApplyJobs.N != int64(len(r.Sums)) {
			t.Fatalf("cell %s: engine summary over %d reps, want %d", r.Cell.Name, eng.ApplyJobs.N, len(r.Sums))
		}
		var mean float64
		for _, s := range r.Sums {
			mean += float64(s.Stats.ApplyJobs)
		}
		mean /= float64(len(r.Sums))
		if eng.ApplyJobs.Mean != mean {
			t.Fatalf("cell %s: ApplyJobs mean %v, want %v", r.Cell.Name, eng.ApplyJobs.Mean, mean)
		}
	}
}
