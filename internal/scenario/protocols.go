package scenario

import (
	"math"
	"sort"

	"gossipopt/internal/core"
	"gossipopt/internal/gossip"
	"gossipopt/internal/overlay"
	"gossipopt/internal/sim"
)

// Payload-protocol selection. A spec's stack.protocol names what runs in
// the payload slot on top of the peer-sampling substrate: the optimizer
// stack (the default), or one of the ported epidemic / topology protocols.
// All of them speak the engine's propose/apply contract, so scripted
// partitions, churn and the Delivered/Dropped counters apply uniformly.
const (
	// ProtocolOpt is the paper's three-service optimizer node (default).
	ProtocolOpt = "opt"
	// ProtocolRumor spreads one rumor seeded at node 0 (Demers et al.
	// rumor mongering); quality is the uninformed fraction of live nodes.
	ProtocolRumor = "rumor"
	// ProtocolAntiEntropy diffuses the best (largest) per-node value via
	// push-pull anti-entropy; quality is the fraction of live nodes not
	// yet holding the best live value.
	ProtocolAntiEntropy = "antientropy"
	// ProtocolTMan builds a ring over the initial population with T-Man;
	// quality is the fraction of live nodes without a live ring neighbor
	// (ring distance 1) in their view.
	ProtocolTMan = "tman"
)

// protoSlot is the payload protocol's slot; the substrate sampler lives in
// core.SlotTopology (0), exactly like the optimizer stack.
const protoSlot = 1

// cycleNet is what the cycle-engine campaign loop needs from a compiled
// network: the optimizer Network and the epidemic-protocol networks all
// satisfy it.
type cycleNet interface {
	Engine() *sim.Engine
	TotalEvals() int64
	Quality() float64
	// Counters returns the protocol's summed exchange/lost/adoption
	// counters for the metric record.
	Counters() (exchanges, lost, adoptions int64)
}

// optNet adapts core.Network to cycleNet.
type optNet struct{ *core.Network }

// Counters implements cycleNet from the optimizer network's metrics.
func (o optNet) Counters() (int64, int64, int64) {
	m := o.Network.Metrics()
	return m.Exchanges, m.LostExchanges, m.Adoptions
}

// epidemicNet runs one of the ported protocols in the payload slot.
type epidemicNet struct {
	eng      *sim.Engine
	quality  func(e *sim.Engine) float64
	counters func(e *sim.Engine) (int64, int64, int64)
}

// Engine implements cycleNet.
func (p *epidemicNet) Engine() *sim.Engine { return p.eng }

// TotalEvals implements cycleNet; epidemic protocols evaluate nothing.
func (p *epidemicNet) TotalEvals() int64 { return 0 }

// Quality implements cycleNet via the protocol's quality function.
func (p *epidemicNet) Quality() float64 { return p.quality(p.eng) }

// Counters implements cycleNet via the protocol's counter extractor.
func (p *epidemicNet) Counters() (int64, int64, int64) {
	return p.counters(p.eng)
}

// protocolBuilders maps a non-default stack.protocol to its network
// builder. Spec names are pre-validated, so builders cannot fail.
var protocolBuilders = map[string]func(s Spec, seed uint64, opts Options) cycleNet{
	ProtocolRumor:       buildRumorNet,
	ProtocolAntiEntropy: buildAntiEntropyNet,
	ProtocolTMan:        buildTManNet,
}

// ProtocolNames returns the sorted stack.protocol vocabulary.
func ProtocolNames() []string {
	out := []string{ProtocolOpt}
	for name := range protocolBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// newSubstrate builds the engine with the spec's topology service in slot
// 0 and, when mk is non-nil, a payload instance built by mk in slot 1 on
// every initial node (a nil mk leaves slot 1 to the caller, e.g. T-Man's
// InitTMan). Nodes joining later (scripted join events) are wired by the
// node factory: a Newscast view bootstrapped from a random live node —
// the "bootstrap service" of a real deployment — plus a fresh payload
// instance, mirroring core.NewNetwork.
func newSubstrate(s Spec, seed uint64, opts Options, mk func(n *sim.Node) sim.Protocol) *sim.Engine {
	topo, _ := core.TopologyByName(s.Stack.Topology)
	eng := sim.NewEngine(seed)
	eng.SetWorkers(opts.Workers)
	if opts.ApplyWorkers > 0 {
		eng.SetApplyWorkers(opts.ApplyWorkers)
	}
	nodes := eng.AddNodes(s.Nodes)
	core.InitTopology(eng, core.SlotTopology, topo, s.Stack.ViewSize)
	for _, n := range nodes {
		for len(n.Protocols) <= protoSlot {
			n.Protocols = append(n.Protocols, nil)
		}
		if mk != nil {
			n.Protocols[protoSlot] = mk(n)
		}
	}
	// The factory serves scripted joins only, so it is installed after the
	// initial population is wired — building throwaway stacks for the
	// initial nodes would also burn an engine-RNG draw per node
	// (RandomLiveNode) and silently bake that into every trace.
	eng.SetNodeFactory(func(n *sim.Node) {
		nc := overlay.NewNewscast(n.ID, s.Stack.ViewSize, core.SlotTopology)
		if b := eng.RandomLiveNode(n.ID); b != nil {
			nc.Bootstrap([]sim.NodeID{b.ID})
		}
		n.Protocols = []sim.Protocol{nc, nil}
		if mk != nil {
			n.Protocols[protoSlot] = mk(n)
		}
	})
	return eng
}

func buildRumorNet(s Spec, seed uint64, opts Options) cycleNet {
	eng := newSubstrate(s, seed, opts, func(n *sim.Node) sim.Protocol {
		return &gossip.Rumor{
			Slot:     core.SlotTopology,
			SelfSlot: protoSlot,
			Fanout:   s.Stack.Fanout,
			StopProb: *s.Stack.StopProb, // normalized: never nil for rumor
		}
	})
	eng.Node(0).Protocol(protoSlot).(*gossip.Rumor).Seed()
	return &epidemicNet{
		eng: eng,
		quality: func(e *sim.Engine) float64 {
			live := e.LiveCount()
			if live == 0 {
				return math.Inf(1)
			}
			return 1 - float64(gossip.CountInformed(e, protoSlot))/float64(live)
		},
		counters: func(e *sim.Engine) (ex, lost, adopt int64) {
			e.ForEachLive(func(n *sim.Node) {
				if r, ok := n.Protocol(protoSlot).(*gossip.Rumor); ok {
					ex += r.Sent
					lost += r.Lost
					if r.Informed() {
						adopt++
					}
				}
			})
			return ex, lost, adopt
		},
	}
}

func buildAntiEntropyNet(s Spec, seed uint64, opts Options) cycleNet {
	eng := newSubstrate(s, seed, opts, func(n *sim.Node) sim.Protocol {
		return &gossip.AntiEntropy[float64]{
			Slot:     core.SlotTopology,
			SelfSlot: protoSlot,
			Mode:     gossip.PushPull,
			Better:   func(a, b float64) bool { return a > b },
			DropProb: s.Stack.DropProb,
		}
	})
	// Every initial node starts with a distinct value (its ID); the
	// epidemic diffuses the maximum. Joiners start empty and adopt on
	// their first completed exchange.
	eng.ForEachLive(func(n *sim.Node) {
		n.Protocol(protoSlot).(*gossip.AntiEntropy[float64]).SetLocal(float64(n.ID))
	})
	return &epidemicNet{
		eng: eng,
		quality: func(e *sim.Engine) float64 {
			best, holders, live := math.Inf(-1), 0, 0
			e.ForEachLive(func(n *sim.Node) {
				live++
				ae, ok := n.Protocol(protoSlot).(*gossip.AntiEntropy[float64])
				if !ok {
					return
				}
				v, has := ae.Local()
				if !has {
					return
				}
				switch {
				case v > best:
					best, holders = v, 1
				case v == best:
					holders++
				}
			})
			if live == 0 || math.IsInf(best, -1) {
				return math.Inf(1)
			}
			return 1 - float64(holders)/float64(live)
		},
		counters: func(e *sim.Engine) (ex, lost, adopt int64) {
			e.ForEachLive(func(n *sim.Node) {
				if ae, ok := n.Protocol(protoSlot).(*gossip.AntiEntropy[float64]); ok {
					ex += ae.Sent
					lost += ae.Lost
					adopt += ae.Updated
				}
			})
			return ex, lost, adopt
		},
	}
}

func buildTManNet(s Spec, seed uint64, opts Options) cycleNet {
	dist := overlay.RingDistance(s.Nodes)
	// nil payload builder: InitTMan wires (and bootstraps) the initial
	// nodes itself, and spec validation rejects join events for tman, so
	// the factory's payload path can never run.
	eng := newSubstrate(s, seed, opts, nil)
	overlay.InitTMan(eng, protoSlot, core.SlotTopology, s.Stack.TManC, dist)
	return &epidemicNet{
		eng: eng,
		quality: func(e *sim.Engine) float64 {
			linked, live := 0, 0
			e.ForEachLive(func(n *sim.Node) {
				live++
				tm, ok := n.Protocol(protoSlot).(*overlay.TMan)
				if !ok {
					return
				}
				for _, nb := range tm.Neighbors() {
					if dist(n.ID, nb) == 1 {
						if p := e.Node(nb); p != nil && p.Alive {
							linked++
							break
						}
					}
				}
			})
			if live == 0 {
				return math.Inf(1)
			}
			return 1 - float64(linked)/float64(live)
		},
		counters: func(e *sim.Engine) (ex, lost, adopt int64) {
			e.ForEachLive(func(n *sim.Node) {
				if tm, ok := n.Protocol(protoSlot).(*overlay.TMan); ok {
					ex += tm.Exchanges
					lost += tm.Lost
				}
			})
			return ex, lost, 0
		},
	}
}
