package scenario

import (
	"fmt"
	"math"
	"sync"

	"gossipopt/internal/core"
	"gossipopt/internal/exp"
	"gossipopt/internal/funcs"
	"gossipopt/internal/sim"
)

// Options tune a campaign without touching the spec.
type Options struct {
	// Reps is the number of repetitions (default 1); each gets a seed
	// derived from the base seed and its index.
	Reps int
	// BaseSeed overrides the spec's seed when non-zero.
	BaseSeed uint64
	// Workers is the cycle engine's pool parallelism for both phases;
	// ApplyWorkers, when positive, overrides the apply-phase parallelism
	// independently. Output is bit-identical for every combination (the
	// event engine is single-threaded and ignores both).
	Workers      int
	ApplyWorkers int
	// RepWorkers runs repetitions on a bounded worker pool (<= 1:
	// sequential). Each repetition's rows are buffered and flushed into
	// the sink in repetition order, so the emitted bytes are identical to
	// the sequential runner's for every value — RepWorkers, like Workers,
	// only changes wall-clock speed.
	RepWorkers int
	// Progress, when set, is called once per finished repetition — after
	// its rows entered the sink, on the flush goroutine, in canonical
	// cell-then-repetition order. Because it rides the ordered flush, the
	// update stream (timing fields aside) is identical for every worker
	// count. The callback must not write to the campaign's sink.
	Progress func(ProgressUpdate)
}

// ProgressUpdate reports one finished repetition to Options.Progress.
type ProgressUpdate struct {
	// TotalReps and DoneReps count repetition jobs over the whole run
	// (sweeps: cells × reps).
	TotalReps int
	DoneReps  int
	// TotalCells and DoneCells count sweep cells whose repetitions have
	// all been flushed; a campaign is the one-cell case.
	TotalCells int
	DoneCells  int
	// Rows is the number of metric rows flushed into the sink so far.
	Rows int64
	// Cell names the finished repetition's cell (sweeps) or scenario
	// (campaigns); Rep is its index within the cell.
	Cell string
	Rep  int
	// Summary is the finished repetition's end-of-run state, engine
	// instrumentation snapshot included.
	Summary RepSummary
}

// RepSummary is the end-of-run state of one repetition.
type RepSummary struct {
	Rep     int
	Seed    uint64
	Cycles  int64
	Time    float64
	Evals   int64
	Quality float64
	// Reached reports whether the Stop.Quality threshold stopped the run.
	Reached bool
	// Stats is the engine's instrumentation snapshot at the end of the
	// repetition (sim.Engine.Stats). Event-engine repetitions fill only
	// the delivery and eval counters.
	Stats sim.EngineStats
}

// Run executes a campaign: Reps repetitions of the spec, each emitting its
// metric schedule into sink. The emitted rows always appear in repetition
// order — the canonical order the golden tests pin: with RepWorkers <= 1
// the repetitions literally run sequentially; with a worker pool each
// repetition buffers its rows and they are flushed in repetition order, so
// the output bytes are identical either way.
func Run(spec Spec, opts Options, sink exp.Sink) ([]RepSummary, error) {
	spec, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 1
	}
	base := opts.BaseSeed
	if base == 0 {
		base = spec.Seed
	}
	if opts.RepWorkers > 1 && reps > 1 {
		return runParallel(spec, base, reps, opts, sink)
	}
	var rows *int64
	if opts.Progress != nil {
		cs := &countSink{sink: sink}
		sink, rows = cs, &cs.rows
	}
	summaries := make([]RepSummary, 0, reps)
	for rep := 0; rep < reps; rep++ {
		sum, err := runRep(spec, base, 0, rep, opts, sink)
		if err != nil {
			return summaries, fmt.Errorf("scenario %q rep %d: %w", spec.Name, rep, err)
		}
		summaries = append(summaries, sum)
		if opts.Progress != nil {
			opts.Progress(campaignUpdate(spec.Name, reps, rep, *rows, sum))
		}
	}
	return summaries, sink.Flush()
}

// campaignUpdate builds the ProgressUpdate of one finished campaign
// repetition (the one-cell case: the cell completes with the last rep).
func campaignUpdate(name string, reps, rep int, rows int64, sum RepSummary) ProgressUpdate {
	u := ProgressUpdate{
		TotalReps: reps, DoneReps: rep + 1,
		TotalCells: 1,
		Rows:       rows,
		Cell:       name, Rep: rep,
		Summary: sum,
	}
	if rep+1 == reps {
		u.DoneCells = 1
	}
	return u
}

// countSink wraps a sink, counting emitted rows for progress reporting.
type countSink struct {
	sink exp.Sink
	rows int64
}

// Emit implements exp.Sink, counting the row through to the wrapped sink.
func (c *countSink) Emit(r exp.Record) error { c.rows++; return c.sink.Emit(r) }

// Flush implements exp.Sink by delegating.
func (c *countSink) Flush() error { return c.sink.Flush() }

// runRep executes one repetition with its derived seed. Single-spec
// campaigns pass cellIdx 0; sweeps pass the cell's grid index, so a
// sweep's cell 0 reproduces the plain campaign of the same spec exactly.
// Only the engine-parallelism knobs of opts are consulted here.
func runRep(spec Spec, base uint64, cellIdx, rep int, opts Options, sink exp.Sink) (RepSummary, error) {
	seed := exp.SeedFor(base, cellIdx, rep)
	var sum RepSummary
	var err error
	if spec.Engine == EngineEvent {
		sum, err = runEventRep(spec, seed, rep, sink)
	} else {
		sum, err = runCycleRep(spec, seed, rep, opts, sink)
	}
	sum.Rep, sum.Seed = rep, seed
	return sum, err
}

// bufferSink collects a repetition's rows in memory so a parallel campaign
// can replay them into the real sink in repetition order.
type bufferSink struct{ recs []exp.Record }

// Emit implements exp.Sink by appending to the in-memory buffer.
func (b *bufferSink) Emit(r exp.Record) error { b.recs = append(b.recs, r); return nil }

// Flush implements exp.Sink; the buffer is drained by its owner.
func (b *bufferSink) Flush() error { return nil }

// repOut carries one finished repetition from a pool worker to the
// ordered flush.
type repOut struct {
	cell, rep int
	sum       RepSummary
	recs      []exp.Record
	err       error
}

// runRepPool executes every (cell, rep) pair — campaigns are the
// one-cell case — on a bounded worker pool and calls handle exactly once
// per job in canonical cell-then-repetition order. Handling streams: a
// job is handed over as soon as every earlier job has been, so completed
// leading cells flush (and free their buffered rows) while later cells
// are still running. A window caps the jobs in flight beyond the handled
// frontier, so even a pathologically slow frontier job (one huge cell
// first in the grid) bounds buffered-but-unhandled rows to the window
// instead of the whole sweep. This is the single implementation of the
// buffer-and-replay pattern behind the worker-invariance guarantee:
// output depends only on job order, never on scheduling. Each job's seed
// derives from (base, cell, rep) via exp.SeedFor. A handle error stops
// further handling (remaining jobs drain without effect) and is
// returned.
func runRepPool(specs []Spec, reps int, opts Options, base uint64, handle func(repOut) error) error {
	njobs := len(specs) * reps
	if njobs == 0 {
		return nil
	}
	poolSize := opts.RepWorkers
	if poolSize > njobs {
		poolSize = njobs
	}
	if poolSize < 1 {
		poolSize = 1
	}
	// The feeder acquires window before enqueueing a job; the frontier
	// loop releases it once the job is handled. 4x the pool keeps workers
	// fed through ordinary scheduling skew without letting results pile
	// up unboundedly behind a slow frontier job.
	window := make(chan struct{}, 4*poolSize)
	type job struct{ cell, rep int }
	jobs := make(chan job)
	results := make(chan repOut, poolSize)
	var wg sync.WaitGroup
	wg.Add(poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				var buf bufferSink
				sum, err := runRep(specs[j.cell], base, j.cell, j.rep, opts, &buf)
				results <- repOut{cell: j.cell, rep: j.rep, sum: sum, recs: buf.recs, err: err}
			}
		}()
	}
	go func() {
		for ci := range specs {
			for rep := 0; rep < reps; rep++ {
				window <- struct{}{}
				jobs <- job{ci, rep}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]repOut, poolSize)
	next := 0
	var handleErr error
	for out := range results {
		pending[out.cell*reps+out.rep] = out
		for {
			o, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-window
			if handleErr == nil {
				handleErr = handle(o)
			}
		}
	}
	return handleErr
}

// runParallel fans the repetitions out over the bounded worker pool.
// Each repetition is seeded from (base, rep) exactly as in the
// sequential path and writes into a private buffer replayed into sink in
// repetition order, so the byte stream — including a CSV sink's
// header-before-first-row behavior — matches the sequential runner's.
// On the first failed repetition the flush stops there: the rows and
// summaries already produced are exactly the sequential runner's.
func runParallel(spec Spec, base uint64, reps int, opts Options, sink exp.Sink) ([]RepSummary, error) {
	summaries := make([]RepSummary, 0, reps)
	var rows int64
	err := runRepPool([]Spec{spec}, reps, opts, base, func(o repOut) error {
		if o.err != nil {
			return fmt.Errorf("scenario %q rep %d: %w", spec.Name, o.rep, o.err)
		}
		for _, r := range o.recs {
			if err := sink.Emit(r); err != nil {
				return fmt.Errorf("scenario %q rep %d: %w", spec.Name, o.rep, err)
			}
		}
		rows += int64(len(o.recs))
		summaries = append(summaries, o.sum)
		if opts.Progress != nil {
			opts.Progress(campaignUpdate(spec.Name, reps, o.rep, rows, o.sum))
		}
		return nil
	})
	if err != nil {
		return summaries, err
	}
	return summaries, sink.Flush()
}

// runCycleRep compiles the spec onto the cycle engine — the optimizer
// network, or one of the epidemic-protocol networks when stack.protocol
// says so — and runs one repetition. Spec names are pre-validated, so
// registry lookups cannot fail here.
func runCycleRep(s Spec, seed uint64, rep int, opts Options, sink exp.Sink) (RepSummary, error) {
	var net cycleNet
	if mkNet, ok := protocolBuilders[s.Stack.Protocol]; ok {
		net = mkNet(s, seed, opts)
	} else {
		fn, _ := funcs.ByName(s.Stack.Function)
		topo, _ := core.TopologyByName(s.Stack.Topology)
		factory, _ := core.SolversByName(s.Stack.Solvers, s.Stack.Particles)
		net = optNet{core.NewNetwork(core.Config{
			Nodes:         s.Nodes,
			Particles:     s.Stack.Particles,
			GossipEvery:   gossipEvery(s.Stack.GossipEvery),
			ViewSize:      s.Stack.ViewSize,
			Function:      fn,
			Dim:           s.Stack.Dim,
			Seed:          seed,
			Topology:      topo,
			SolverFactory: factory,
			DropProb:      s.Stack.DropProb,
			Workers:       opts.Workers,
			ApplyWorkers:  opts.ApplyWorkers,
		})}
	}
	eng := net.Engine()
	// Campaigns build one engine per repetition; release its worker pool
	// deterministically instead of waiting for the finalizer backstop.
	defer eng.Close()

	ns := netState{baseline: s.Stack.Net, link: netModelOf(s.Stack.Net)}
	if ns.link != nil {
		ns.install(eng)
	}

	emit := func(cycle int64) error {
		exchanges, lost, adoptions := net.Counters()
		return sink.Emit(exp.Record{
			Scenario:  s.Name,
			Rep:       rep,
			Seed:      seed,
			Cycle:     cycle,
			Time:      float64(cycle),
			Live:      eng.LiveCount(),
			Evals:     net.TotalEvals(),
			Quality:   net.Quality(),
			Exchanges: exchanges,
			Lost:      lost,
			Adoptions: adoptions,
			Delivered: eng.Delivered(),
			Dropped:   eng.Dropped(),
		})
	}

	every := int64(s.MetricsEvery)
	if every < 1 {
		every = 1
	}
	ei := 0
	var lastEmit int64 = -1
	var sum RepSummary
	var c int64
	var evScratch []*sim.Node // reused across scripted events (crash/revive scans)
	for c = 0; c < s.Stop.Cycles; c++ {
		for ei < len(s.Timeline) && int64(s.Timeline[ei].At) <= c {
			applyCycleEvent(eng, &ns, s.Timeline[ei], &evScratch)
			ei++
		}
		eng.RunCycle()
		done := c + 1
		if done%every == 0 {
			if err := emit(done); err != nil {
				return sum, err
			}
			lastEmit = done
		}
		if s.Stop.Quality != nil && net.Quality() <= *s.Stop.Quality {
			sum.Reached = true
			c = done
			break
		}
		if s.Stop.MaxEvals > 0 && net.TotalEvals() >= s.Stop.MaxEvals {
			c = done
			break
		}
		// A dead network only ends the run if the script holds no
		// revival: a total wipeout followed by a scripted join/revive is
		// a legitimate outage-and-recovery experiment, and validation
		// promised every timeline entry fires.
		if eng.LiveCount() == 0 && !recoveryAhead(s.Timeline[ei:]) {
			c = done
			break
		}
	}
	if lastEmit != c {
		if err := emit(c); err != nil {
			return sum, err
		}
	}
	sum.Cycles = c
	sum.Time = float64(c)
	sum.Evals = net.TotalEvals()
	sum.Quality = net.Quality()
	sum.Stats = eng.Stats()
	return sum, nil
}

// recoveryAhead reports whether any remaining scripted event can bring
// nodes back to life.
func recoveryAhead(events []Event) bool {
	for _, ev := range events {
		if ev.Action == "join" || ev.Action == "revive" {
			return true
		}
	}
	return false
}

// gossipEvery maps the spec convention (negative disables coordination) to
// the core one (zero disables).
func gossipEvery(r int) int {
	if r < 0 {
		return 0
	}
	return r
}

// netState tracks the cycle engine's per-link network-model stack across
// scripted events: the spec's baseline model, the currently installed link
// model, and the Byzantine adversary roster. The roster survives link-model
// swaps — a storm passing does not heal the adversaries — and only a
// byzantine "none" event clears it.
type netState struct {
	baseline *NetSpec
	link     sim.NetModel
	byz      *sim.Byzantine
}

// install composes the Byzantine roster with the current link model —
// adversaries judge first, so a blackholed leg spends no loss-model draws —
// and installs the result on the engine (nil when both parts are empty).
func (ns *netState) install(eng *sim.Engine) {
	var byz sim.NetModel
	if ns.byz != nil && ns.byz.Len() > 0 {
		byz = ns.byz
	}
	eng.SetNetModel(sim.Compose(byz, ns.link))
}

// netModelOf compiles a NetSpec into the engine model it describes:
// correlated regional outages first, then i.i.d. per-leg loss and delay.
// A nil or all-zero spec compiles to nil (no model).
func netModelOf(n *NetSpec) sim.NetModel {
	if n == nil {
		return nil
	}
	var models []sim.NetModel
	if n.Regions >= 2 {
		models = append(models, sim.NewRegionalOutage(n.Regions, n.RegionFail, n.RegionRecover))
	}
	if n.Loss > 0 || n.DelayMax > 0 {
		models = append(models, sim.LossyLinks{Loss: n.Loss, DelayMin: n.DelayMin, DelayMax: n.DelayMax})
	}
	return sim.Compose(models...)
}

// byzBehavior maps a validated byzantine-event behavior name to the sim
// constant.
func byzBehavior(name string) sim.ByzBehavior {
	switch name {
	case "drop":
		return sim.ByzDrop
	case "delay":
		return sim.ByzDelay
	case "corrupt":
		return sim.ByzCorrupt
	}
	return 0
}

// applyCycleEvent fires one scripted event on the cycle engine, before the
// cycle it names runs. All random choices draw from the engine RNG on the
// coordinator goroutine, so scripted runs stay worker-invariant. scratch is
// the caller's reusable node buffer: event scans snapshot into it instead
// of allocating a fresh slice per scripted event.
func applyCycleEvent(eng *sim.Engine, ns *netState, ev Event, scratch *[]*sim.Node) {
	switch ev.Action {
	case "crash":
		live := eng.AppendLiveNodes((*scratch)[:0])
		*scratch = live
		kill := eventCount(ev, len(live))
		perm := eng.RNG().Perm(len(live))
		for i := 0; i < kill && i < len(perm); i++ {
			eng.Crash(live[perm[i]].ID)
		}
	case "join":
		for i := 0; i < ev.Count; i++ {
			eng.AddNode()
		}
	case "revive":
		left := ev.Count
		all := eng.AppendAllNodes((*scratch)[:0])
		*scratch = all
		for _, n := range all {
			if left == 0 {
				break
			}
			if !n.Alive {
				eng.Revive(n.ID)
				left--
			}
		}
	case "partition":
		eng.SetDeliveryFilter(partitionFilter(ev))
	case "heal":
		eng.SetDeliveryFilter(nil)
	case "link-model":
		spec := ev.Model
		if spec == nil {
			spec = ns.baseline
		}
		ns.link = netModelOf(spec)
		ns.install(eng)
	case "byzantine":
		if ev.Behavior == "none" {
			if ns.byz != nil {
				ns.byz.Clear()
			}
			ns.install(eng)
			break
		}
		if ns.byz == nil {
			ns.byz = sim.NewByzantine()
		}
		live := eng.AppendLiveNodes((*scratch)[:0])
		*scratch = live
		k := eventCount(ev, len(live))
		perm := eng.RNG().Perm(len(live))
		beh := byzBehavior(ev.Behavior)
		for i := 0; i < k && i < len(perm); i++ {
			ns.byz.Set(live[perm[i]].ID, beh)
		}
		ns.install(eng)
	}
}

// partitionFilter builds the delivery filter of a partition event: a
// symmetric split, or a directional one when oneway is set.
func partitionFilter(ev Event) sim.DeliveryFilter {
	if ev.OneWay {
		return sim.SplitGroupsOneWay(ev.Groups)
	}
	return sim.SplitGroups(ev.Groups)
}

// eventCount resolves an event's victim count: Count wins, otherwise the
// fraction of the current population, both capped at n.
func eventCount(ev Event, n int) int {
	k := ev.Count
	if k <= 0 {
		k = int(ev.Fraction * float64(n))
	}
	if k > n {
		k = n
	}
	return k
}

// runEventRep compiles the spec onto the event engine and runs one
// repetition. Breakpoints — scripted events, metric samples, the horizon —
// partition simulated time; the engine runs to each in turn.
func runEventRep(s Spec, seed uint64, rep int, sink exp.Sink) (RepSummary, error) {
	fn, _ := funcs.ByName(s.Stack.Function)
	factory, _ := core.SolversByName(s.Stack.Solvers, s.Stack.Particles)

	var link sim.LinkModel
	if s.Stack.Link != nil {
		link = toUniformLink(s.Stack.Link)
	}
	net := core.NewAsyncNetwork(core.AsyncConfig{
		Nodes:          s.Nodes,
		Particles:      s.Stack.Particles,
		GossipEvery:    gossipEvery(s.Stack.GossipEvery),
		ViewSize:       s.Stack.ViewSize,
		Function:       fn,
		Dim:            s.Stack.Dim,
		Seed:           seed,
		SolverFactory:  factory,
		EvalTime:       s.Stack.EvalTime,
		NewscastPeriod: s.Stack.NewscastPeriod,
		Link:           link,
	})
	eng := net.Engine()

	var sampleIdx int64
	emit := func(at float64) error {
		sampleIdx++
		m := net.Metrics()
		return sink.Emit(exp.Record{
			Scenario:  s.Name,
			Rep:       rep,
			Seed:      seed,
			Cycle:     sampleIdx,
			Time:      at,
			Live:      net.LiveCount(),
			Evals:     net.TotalEvals(),
			Quality:   net.Quality(),
			Exchanges: m.Exchanges,
			Adoptions: m.Adoptions,
			Delivered: eng.Delivered(),
			Dropped:   eng.Dropped(),
		})
	}

	horizon := s.Stop.Time
	ei := 0
	nextSample := s.MetricsEvery
	var sum RepSummary
	now := 0.0
	var evScratch []*sim.Node // reused across scripted events (crash scans)
	for {
		// The next breakpoint: scripted event, metric sample, or horizon.
		next := horizon
		isSample := false
		if nextSample < next {
			next, isSample = nextSample, true
		}
		hasEvent := ei < len(s.Timeline) && s.Timeline[ei].At <= next
		if hasEvent {
			next = s.Timeline[ei].At
			isSample = isSample && next == nextSample
		}
		eng.RunUntil(next, math.MaxInt64)
		// RunUntil leaves the clock at the last delivered event; advance
		// it to the breakpoint so events below act at their scripted time
		// (a revive must re-arm its timers from At, not from whenever the
		// queue went quiet).
		eng.AdvanceTo(next)
		now = next
		if hasEvent {
			applyEventEvent(net, eng, s.Timeline[ei], s.Stack.Link, &evScratch)
			ei++
		}
		if isSample {
			if err := emit(now); err != nil {
				return sum, err
			}
			nextSample += s.MetricsEvery
		}
		if s.Stop.Quality != nil && net.Quality() <= *s.Stop.Quality {
			sum.Reached = true
			break
		}
		if s.Stop.MaxEvals > 0 && net.TotalEvals() >= s.Stop.MaxEvals {
			break
		}
		if now >= horizon {
			break
		}
	}
	// Final sample, unless the run stopped exactly on a scheduled one.
	if nextSample-s.MetricsEvery != now || sampleIdx == 0 {
		if err := emit(now); err != nil {
			return sum, err
		}
	}
	sum.Cycles = sampleIdx
	sum.Time = now
	sum.Evals = net.TotalEvals()
	sum.Quality = net.Quality()
	// The event engine has no instrumentation snapshot; carry the counters
	// it does expose so statsjson lines stay meaningful across engines.
	sum.Stats = sim.EngineStats{
		Delivered: eng.Delivered(),
		Dropped:   eng.Dropped(),
		Evals:     net.TotalEvals(),
	}
	return sum, nil
}

// toUniformLink converts a spec Link to the engine's model.
func toUniformLink(l *Link) sim.UniformLink {
	return sim.UniformLink{MinDelay: l.MinDelay, MaxDelay: l.MaxDelay, LossProb: l.LossProb}
}

// applyEventEvent fires one scripted event on the event engine. baseline
// is the spec's initial link model: a set-link without an explicit link
// restores it (ending a storm means back to normal, not back to a perfect
// network).
func applyEventEvent(net *core.AsyncNetwork, eng *sim.EventEngine, ev Event, baseline *Link, scratch *[]*sim.Node) {
	switch ev.Action {
	case "crash":
		live := eng.AppendLiveNodes((*scratch)[:0])
		*scratch = live
		kill := eventCount(ev, len(live))
		perm := eng.RNG().Perm(len(live))
		for i := 0; i < kill && i < len(perm); i++ {
			eng.Crash(live[perm[i]].ID)
		}
	case "revive":
		left := ev.Count
		for i := 0; i < net.Size() && left > 0; i++ {
			if n := eng.Node(sim.NodeID(i)); n != nil && !n.Alive {
				net.Revive(i)
				left--
			}
		}
	case "partition":
		eng.SetDeliveryFilter(partitionFilter(ev))
	case "heal":
		eng.SetDeliveryFilter(nil)
	case "set-link":
		link := ev.Link
		if link == nil {
			link = baseline
		}
		if link != nil {
			eng.SetLink(toUniformLink(link))
		} else {
			eng.SetLink(nil)
		}
	}
}
