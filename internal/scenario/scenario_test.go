package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gossipopt/internal/exp"
)

// captureSink records every emitted Record for inspection.
type captureSink struct{ recs []exp.Record }

func (s *captureSink) Emit(r exp.Record) error { s.recs = append(s.recs, r); return nil }
func (s *captureSink) Flush() error            { return nil }

func TestBuiltinsNormalize(t *testing.T) {
	names := BuiltinNames()
	if len(names) != 14 {
		t.Fatalf("expected 14 built-ins, got %v", names)
	}
	for _, name := range names {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing", name)
		}
		if _, err := s.normalized(); err != nil {
			t.Fatalf("built-in %q does not validate: %v", name, err)
		}
	}
	if _, ok := Builtin("no-such"); ok {
		t.Fatal("unknown builtin found")
	}
}

func TestAllBuiltinsRun(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, _ := Builtin(name)
		var sink captureSink
		sums, err := Run(spec, Options{Workers: 2}, &sink)
		if err != nil {
			t.Fatalf("built-in %q failed: %v", name, err)
		}
		if len(sums) != 1 {
			t.Fatalf("built-in %q: %d summaries, want 1", name, len(sums))
		}
		s := sums[0]
		if spec.Stack.Protocol == "" || spec.Stack.Protocol == ProtocolOpt {
			if s.Evals == 0 || math.IsInf(s.Quality, 0) {
				t.Fatalf("built-in %q produced no work: %+v", name, s)
			}
			continue
		}
		// Epidemic protocols perform no objective evaluations; work shows
		// up as exchanges flowing through the mailbox pipeline instead.
		last := sink.recs[len(sink.recs)-1]
		if last.Exchanges == 0 || last.Delivered == 0 {
			t.Fatalf("built-in %q produced no exchanges: %+v", name, last)
		}
		if math.IsInf(s.Quality, 0) || math.IsNaN(s.Quality) {
			t.Fatalf("built-in %q has no quality metric: %+v", name, s)
		}
	}
}

// TestWorkerInvariance is the subsystem's core guarantee: the same spec +
// seed yields byte-identical metric output at any worker count.
func TestWorkerInvariance(t *testing.T) {
	render := func(workers int) string {
		spec, _ := Builtin("netsplit-heal")
		var buf bytes.Buffer
		if _, err := Run(spec, Options{Reps: 2, Workers: workers}, exp.NewCSVSink(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := render(1)
	eight := render(8)
	if one != eight {
		t.Fatalf("metric output differs between workers=1 and workers=8:\n--- 1 ---\n%s--- 8 ---\n%s", one, eight)
	}
	if strings.Count(one, "\n") < 3 {
		t.Fatalf("suspiciously little output:\n%s", one)
	}
}

// TestApplyWorkerGridInvariance is the sharded-apply acceptance
// criterion: for every cycle-engine built-in — each bundled protocol
// stack has one — the campaign bytes are identical across the full
// (propose workers × apply workers) ∈ {1,2,8}² grid. Run under -race in
// CI, which also keeps the destination-sharded apply phase honest at the
// high worker counts.
func TestApplyWorkerGridInvariance(t *testing.T) {
	grid := []int{1, 2, 8}
	for _, name := range BuiltinNames() {
		spec, _ := Builtin(name)
		if spec.Engine == EngineEvent {
			continue // single-threaded engine; nothing to vary
		}
		render := func(workers, applyWorkers int) string {
			var buf bytes.Buffer
			if _, err := Run(spec, Options{Workers: workers, ApplyWorkers: applyWorkers}, exp.NewCSVSink(&buf)); err != nil {
				t.Fatalf("%s workers=%d applyworkers=%d: %v", name, workers, applyWorkers, err)
			}
			return buf.String()
		}
		want := render(1, 1)
		for _, pw := range grid {
			for _, aw := range grid {
				if pw == 1 && aw == 1 {
					continue
				}
				if got := render(pw, aw); got != want {
					t.Fatalf("%s: output differs between 1x1 and %dx%d workers", name, pw, aw)
				}
			}
		}
	}
}

func TestRepSeedsDiffer(t *testing.T) {
	spec, _ := Builtin("baseline")
	sums, err := Run(spec, Options{Reps: 3}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Seed == sums[1].Seed || sums[1].Seed == sums[2].Seed {
		t.Fatalf("repetition seeds collide: %+v", sums)
	}
	if sums[0].Quality == sums[1].Quality {
		t.Fatalf("distinct seeds, identical outcomes: %+v", sums)
	}
}

func TestCycleEventsApplied(t *testing.T) {
	spec := Spec{
		Name:  "events",
		Nodes: 10,
		Seed:  9,
		Timeline: []Event{
			{At: 2, Action: "crash", Count: 4},
			{At: 4, Action: "join", Count: 3},
			{At: 6, Action: "revive", Count: 2},
		},
		MetricsEvery: 1,
		Stop:         Stop{Cycles: 8},
	}
	var sink captureSink
	if _, err := Run(spec, Options{}, &sink); err != nil {
		t.Fatal(err)
	}
	liveAt := map[int64]int{}
	for _, r := range sink.recs {
		liveAt[r.Cycle] = r.Live
	}
	// Events fire before the cycle they name: the crash at cycle index 2
	// shows in the sample after that cycle completes (Cycle == 3).
	if liveAt[2] != 10 || liveAt[3] != 6 || liveAt[5] != 9 || liveAt[7] != 11 {
		t.Fatalf("live counts don't trace the script: %v", liveAt)
	}
}

func TestCyclePartitionDropsMessages(t *testing.T) {
	spec := Spec{
		Name:  "split",
		Nodes: 32,
		Seed:  11,
		Timeline: []Event{
			{At: 10, Action: "partition", Groups: 2},
			{At: 30, Action: "heal"},
		},
		MetricsEvery: 10,
		Stop:         Stop{Cycles: 40},
	}
	var sink captureSink
	if _, err := Run(spec, Options{}, &sink); err != nil {
		t.Fatal(err)
	}
	// Newscast crosses the cut constantly, so drops must accumulate
	// during the partition window and delivery must resume after it.
	var at10, at30, at40 exp.Record
	for _, r := range sink.recs {
		switch r.Cycle {
		case 10:
			at10 = r
		case 30:
			at30 = r
		case 40:
			at40 = r
		}
	}
	if at10.Dropped != 0 {
		t.Fatalf("drops before the partition: %+v", at10)
	}
	if at30.Dropped <= at10.Dropped {
		t.Fatalf("no drops during the partition: %+v", at30)
	}
	if at40.Delivered <= at30.Delivered {
		t.Fatalf("delivery did not resume after heal: %+v", at40)
	}
}

func TestEventEngineScenarioRuns(t *testing.T) {
	spec, _ := Builtin("lossy-wan")
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) == 0 {
		t.Fatal("no metric records emitted")
	}
	last := sink.recs[len(sink.recs)-1]
	if last.Dropped == 0 {
		t.Fatalf("lossy link dropped nothing: %+v", last)
	}
	if sums[0].Time != 300 {
		t.Fatalf("run did not reach the horizon: %+v", sums[0])
	}
}

func TestEventEngineDeterministic(t *testing.T) {
	render := func() string {
		spec, _ := Builtin("latency-spike")
		var buf bytes.Buffer
		if _, err := Run(spec, Options{}, exp.NewJSONLSink(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("event-engine scenario not byte-deterministic")
	}
}

func TestQualityStop(t *testing.T) {
	loose := 1e12 // any evaluated point on Sphere beats this
	spec := Spec{
		Name:         "stop",
		Nodes:        8,
		Seed:         5,
		MetricsEvery: 1,
		Stop:         Stop{Cycles: 100, Quality: &loose},
	}
	sums, err := Run(spec, Options{}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if !sums[0].Reached || sums[0].Cycles != 1 {
		t.Fatalf("loose quality threshold did not stop the run: %+v", sums[0])
	}
}

func TestMaxEvalsStop(t *testing.T) {
	spec := Spec{
		Name:  "budget",
		Nodes: 10,
		Seed:  5,
		Stop:  Stop{Cycles: 100, MaxEvals: 30},
	}
	sums, err := Run(spec, Options{}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Cycles != 3 || sums[0].Evals != 30 {
		t.Fatalf("eval budget ignored: %+v", sums[0])
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"unknown field":        `{"name":"x","nodez":3}`,
		"unknown engine":       `{"name":"x","engine":"quantum"}`,
		"unknown action":       `{"name":"x","timeline":[{"at":1,"action":"meteor"}]}`,
		"unknown function":     `{"name":"x","stack":{"function":"Nope"}}`,
		"unknown topology":     `{"name":"x","stack":{"topology":"hypercube"}}`,
		"unknown solver":       `{"name":"x","stack":{"solvers":["sgd"]}}`,
		"fractional cycle":     `{"name":"x","timeline":[{"at":1.5,"action":"heal"}]}`,
		"join on event":        `{"name":"x","engine":"event","timeline":[{"at":1,"action":"join","count":1}]}`,
		"set-link on cycle":    `{"name":"x","timeline":[{"at":1,"action":"set-link"}]}`,
		"tiny partition":       `{"name":"x","timeline":[{"at":1,"action":"partition","groups":1}]}`,
		"missing name":         `{"nodes":3}`,
		"crash without size":   `{"name":"x","timeline":[{"at":1,"action":"crash"}]}`,
		"stop.time on cycle":   `{"name":"x","stop":{"time":50}}`,
		"stop.cycles on event": `{"name":"x","engine":"event","stop":{"cycles":50}}`,
		"fractional metrics":   `{"name":"x","metrics_every":2.5}`,
		"event past stop":      `{"name":"x","stop":{"cycles":100},"timeline":[{"at":150,"action":"heal"}]}`,
		"event past horizon":   `{"name":"x","engine":"event","stop":{"time":100},"timeline":[{"at":150,"action":"heal"}]}`,
		"drop_prob on event":   `{"name":"x","engine":"event","stack":{"drop_prob":0.3}}`,
		"eval_time on cycle":   `{"name":"x","stack":{"eval_time":2}}`,
		"link on cycle":        `{"name":"x","stack":{"link":{"loss_prob":0.1}}}`,
		"negative delay":       `{"name":"x","engine":"event","stack":{"link":{"min_delay":-5}}}`,
		"loss_prob over 1":     `{"name":"x","engine":"event","timeline":[{"at":1,"action":"set-link","link":{"loss_prob":1.5}}]}`,
		"oneway on heal":       `{"name":"x","timeline":[{"at":1,"action":"heal","oneway":true}]}`,
		"oneway on crash":      `{"name":"x","timeline":[{"at":1,"action":"crash","count":1,"oneway":true}]}`,
	}
	for label, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
	good := `{"name":"ok","nodes":12,"timeline":[{"at":3,"action":"partition","groups":2},{"at":1,"action":"crash","fraction":0.5}]}`
	s, err := Parse([]byte(good))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Timeline[0].Action != "crash" {
		t.Fatalf("timeline not sorted by At: %+v", s.Timeline)
	}
	if s.Stack.Topology != "newscast" || s.Stop.Cycles != 200 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

// TestTotalWipeoutThenRecovery: a scripted 100% crash must not end the run
// while a later revive/join is still scheduled — outage-and-recovery is a
// legitimate experiment shape.
func TestTotalWipeoutThenRecovery(t *testing.T) {
	spec := Spec{
		Name:  "blackout",
		Nodes: 12,
		Seed:  13,
		Timeline: []Event{
			{At: 5, Action: "crash", Fraction: 1},
			{At: 15, Action: "revive", Count: 12},
		},
		MetricsEvery: 5,
		Stop:         Stop{Cycles: 30},
	}
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Cycles != 30 {
		t.Fatalf("run ended at cycle %d during the scripted outage, want 30", sums[0].Cycles)
	}
	liveAt := map[int64]int{}
	for _, r := range sink.recs {
		liveAt[r.Cycle] = r.Live
	}
	if liveAt[10] != 0 || liveAt[20] != 12 {
		t.Fatalf("outage/recovery not visible in metrics: %v", liveAt)
	}
	// Without a scheduled recovery, the same wipeout ends the run early.
	spec.Timeline = spec.Timeline[:1]
	sums, err = Run(spec, Options{}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Cycles >= 30 {
		t.Fatalf("dead network without recovery ran to the horizon: %+v", sums[0])
	}
}

// TestEventReviveActsAtScriptedTime: with every node down, engine time
// idles at the crash; the revive must still re-arm timers at its own
// scripted time, not back-date the restart to when the queue went quiet.
func TestEventReviveActsAtScriptedTime(t *testing.T) {
	spec := Spec{
		Name:   "outage",
		Engine: EngineEvent,
		Nodes:  1,
		Seed:   21,
		Stack:  Stack{Particles: 4, GossipEvery: -1},
		Timeline: []Event{
			{At: 50, Action: "crash", Fraction: 1},
			{At: 150, Action: "revive", Count: 1},
		},
		MetricsEvery: 50,
		Stop:         Stop{Time: 200},
	}
	sums, err := Run(spec, Options{}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	// One node, EvalTime 1 (jitter 0.8–1.2): ~50 evals before the crash
	// plus ~50 after the revive. A back-dated restart (t≈50 instead of
	// 150) would evaluate through the outage and land near 200.
	if got := sums[0].Evals; got < 70 || got > 140 {
		t.Fatalf("%d evals: revive did not act at its scripted time", got)
	}
}

// TestSetLinkWithoutLinkRestoresBaseline: ending a storm with a link-less
// set-link must return to the stack's baseline link, not to a perfect
// zero-latency lossless network.
func TestSetLinkWithoutLinkRestoresBaseline(t *testing.T) {
	spec := Spec{
		Name:   "storm-end",
		Engine: EngineEvent,
		Nodes:  8,
		Seed:   33,
		Stack:  Stack{Particles: 4, Link: &Link{LossProb: 1}}, // baseline: total loss
		Timeline: []Event{
			{At: 50, Action: "set-link", Link: &Link{}}, // calm window
			{At: 100, Action: "set-link"},               // back to baseline
		},
		MetricsEvery: 50,
		Stop:         Stop{Time: 150},
	}
	var sink captureSink
	if _, err := Run(spec, Options{}, &sink); err != nil {
		t.Fatal(err)
	}
	d := map[int64]int64{}
	for _, r := range sink.recs {
		d[r.Cycle] = r.Dropped
	}
	if d[1] == 0 {
		t.Fatalf("baseline total loss dropped nothing: %v", d)
	}
	if d[2] != d[1] {
		t.Fatalf("drops during the lossless window: %v", d)
	}
	if d[3] <= d[2] {
		t.Fatalf("link-less set-link left the network perfect instead of restoring the lossy baseline: %v", d)
	}
}

// TestRepParallelByteIdentical is the campaign-parallelism acceptance
// criterion: Reps=8 on a 4-worker pool must emit bytes identical to the
// sequential runner, for the optimizer stack and for a ported protocol.
func TestRepParallelByteIdentical(t *testing.T) {
	for _, name := range []string{"baseline", "rumor-netsplit"} {
		spec, _ := Builtin(name)
		spec.Stop.Cycles = 60
		render := func(repWorkers int) (string, []RepSummary) {
			var buf bytes.Buffer
			sums, err := Run(spec, Options{Reps: 8, RepWorkers: repWorkers, Workers: 2}, exp.NewCSVSink(&buf))
			if err != nil {
				t.Fatalf("%s repworkers=%d: %v", name, repWorkers, err)
			}
			return buf.String(), sums
		}
		seq, seqSums := render(1)
		par, parSums := render(4)
		if seq != par {
			t.Fatalf("%s: parallel campaign bytes differ from sequential:\n--- seq ---\n%s--- par ---\n%s", name, seq, par)
		}
		if len(seqSums) != len(parSums) {
			t.Fatalf("%s: summary counts differ: %d vs %d", name, len(seqSums), len(parSums))
		}
		for i := range seqSums {
			stripWorkerVariantStats(&seqSums[i].Stats)
			stripWorkerVariantStats(&parSums[i].Stats)
			if seqSums[i] != parSums[i] {
				t.Fatalf("%s rep %d: summaries differ: %+v vs %+v", name, i, seqSums[i], parSums[i])
			}
		}
	}
}

// TestRepParallelOversizedPool: more workers than reps must behave.
func TestRepParallelOversizedPool(t *testing.T) {
	spec, _ := Builtin("baseline")
	spec.Stop.Cycles = 20
	sums, err := Run(spec, Options{Reps: 2, RepWorkers: 16}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Rep != 0 || sums[1].Rep != 1 {
		t.Fatalf("oversized pool mangled summaries: %+v", sums)
	}
}

// TestProtocolScenarioWorkerInvariance extends the worker-invariance
// guarantee to the ported protocols: byte-identical metric output for 1, 2
// and 8 propose workers (run under -race in CI, which also keeps the
// parallel propose phase honest for the new Propose implementations).
func TestProtocolScenarioWorkerInvariance(t *testing.T) {
	for _, name := range []string{"rumor-netsplit", "antientropy-lossy", "tman-ring-churn"} {
		render := func(workers int) string {
			spec, _ := Builtin(name)
			var buf bytes.Buffer
			if _, err := Run(spec, Options{Workers: workers}, exp.NewCSVSink(&buf)); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			return buf.String()
		}
		one := render(1)
		if two := render(2); two != one {
			t.Fatalf("%s: output differs between workers=1 and workers=2", name)
		}
		if eight := render(8); eight != one {
			t.Fatalf("%s: output differs between workers=1 and workers=8", name)
		}
	}
}

// TestRumorNetsplitScenario: while the cut holds the rumor must saturate
// only the seed's island (quality ~0.5), with cross-partition pushes
// counted as drops; after the heal it crosses.
func TestRumorNetsplitScenario(t *testing.T) {
	spec, _ := Builtin("rumor-netsplit")
	var sink captureSink
	if _, err := Run(spec, Options{}, &sink); err != nil {
		t.Fatal(err)
	}
	byCycle := map[int64]exp.Record{}
	for _, r := range sink.recs {
		byCycle[r.Cycle] = r
	}
	// The heal fires before the cycle it names, so the last sample fully
	// inside the partition window is the previous one.
	during := byCycle[int64(spec.Timeline[1].At-spec.MetricsEvery)]
	if during.Quality < 0.5 {
		t.Fatalf("rumor crossed the partition: quality %v before heal", during.Quality)
	}
	if during.Dropped == 0 {
		t.Fatalf("no drops while partitioned: %+v", during)
	}
	final := sink.recs[len(sink.recs)-1]
	if final.Quality > 0.2 {
		t.Fatalf("rumor did not cross after heal: final quality %v", final.Quality)
	}
}

// TestAntiEntropyLossyScenario: 30% loss slows diffusion but every live
// node still converges to the best value.
func TestAntiEntropyLossyScenario(t *testing.T) {
	spec, _ := Builtin("antientropy-lossy")
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Quality != 0 {
		t.Fatalf("anti-entropy did not converge: quality %v", sums[0].Quality)
	}
	final := sink.recs[len(sink.recs)-1]
	if final.Lost == 0 {
		t.Fatalf("30%% drop probability lost nothing: %+v", final)
	}
}

// TestAntiEntropyOnewayScenario: under the one-way cut the odd island's
// maximum (node 63) cannot reach the even island — only low→high pushes
// cross — so quality plateaus at ~0.5 while the cut holds; after the heal
// the epidemic floods and quality reaches 0.
func TestAntiEntropyOnewayScenario(t *testing.T) {
	spec, _ := Builtin("antientropy-oneway")
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	// The heal event (At: 30) fires before cycle 30 runs, so the cycle-20
	// sample is the last one taken wholly inside the cut.
	during := sink.recs[1]
	if during.Cycle != 20 {
		t.Fatalf("expected the cycle-20 sample, got %+v", during)
	}
	if during.Quality < 0.45 {
		t.Fatalf("one-way cut leaked the odd island's maximum into the even island: quality %v at cycle 20", during.Quality)
	}
	if during.Dropped == 0 {
		t.Fatalf("one-way cut dropped nothing: %+v", during)
	}
	if sums[0].Quality != 0 {
		t.Fatalf("epidemic did not converge after the heal: final quality %v", sums[0].Quality)
	}
}

// TestTManRingChurnScenario: the ring survives a 25% crash wave; after the
// revival nearly every node regains a live ring neighbor.
func TestTManRingChurnScenario(t *testing.T) {
	spec, _ := Builtin("tman-ring-churn")
	var sink captureSink
	sums, err := Run(spec, Options{}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].Quality != 0 {
		t.Fatalf("ring did not fully recover after churn (revived peers must clear tombstones on contact): final quality %v", sums[0].Quality)
	}
	final := sink.recs[len(sink.recs)-1]
	if final.Dropped == 0 || final.Lost == 0 {
		t.Fatalf("crash wave produced no failed contacts: %+v", final)
	}
}

// TestNetsplitAcrossProtocols is the acceptance-criteria check that a
// netsplit scenario over each ported protocol reports Dropped > 0 — the
// traffic that used to bypass the delivery filter under the legacy
// NextCycle contract is now visibly blocked at the cut. (Zero state
// leakage is asserted where protocol state is inspectable: the partition-
// isolation tests in internal/gossip and internal/overlay.)
func TestNetsplitAcrossProtocols(t *testing.T) {
	for _, proto := range []string{ProtocolRumor, ProtocolAntiEntropy, ProtocolTMan} {
		spec := Spec{
			Name:         "split-" + proto,
			Nodes:        32,
			Seed:         41,
			Stack:        Stack{Protocol: proto},
			Timeline:     []Event{{At: 0, Action: "partition", Groups: 2}},
			MetricsEvery: 10,
			Stop:         Stop{Cycles: 30},
		}
		var sink captureSink
		if _, err := Run(spec, Options{}, &sink); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		final := sink.recs[len(sink.recs)-1]
		if final.Dropped == 0 {
			t.Fatalf("%s: partition dropped nothing: %+v", proto, final)
		}
		if final.Delivered == 0 {
			t.Fatalf("%s: same-island traffic did not flow: %+v", proto, final)
		}
	}
}

func TestProtocolSpecValidation(t *testing.T) {
	cases := map[string]string{
		"unknown protocol":     `{"name":"x","stack":{"protocol":"plague"}}`,
		"protocol on event":    `{"name":"x","engine":"event","stack":{"protocol":"rumor"}}`,
		"solvers with rumor":   `{"name":"x","stack":{"protocol":"rumor","solvers":["pso"]}}`,
		"function with tman":   `{"name":"x","stack":{"protocol":"tman","function":"Sphere"}}`,
		"particles with ae":    `{"name":"x","stack":{"protocol":"antientropy","particles":8}}`,
		"fanout with opt":      `{"name":"x","stack":{"fanout":3}}`,
		"stop_prob with tman":  `{"name":"x","stack":{"protocol":"tman","stop_prob":0.5}}`,
		"tman_c with rumor":    `{"name":"x","stack":{"protocol":"rumor","tman_c":4}}`,
		"drop_prob with rumor": `{"name":"x","stack":{"protocol":"rumor","drop_prob":0.1}}`,
		"stop_prob over 1":     `{"name":"x","stack":{"protocol":"rumor","stop_prob":1.5}}`,
		"drop_prob over 1":     `{"name":"x","stack":{"protocol":"antientropy","drop_prob":3}}`,
		"drop_prob negative":   `{"name":"x","stack":{"drop_prob":-0.1}}`,
		"max_evals with tman":  `{"name":"x","stack":{"protocol":"tman"},"stop":{"max_evals":10}}`,
		"join with tman":       `{"name":"x","stack":{"protocol":"tman"},"timeline":[{"at":1,"action":"join","count":2}]}`,
	}
	for label, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
	s, err := Parse([]byte(`{"name":"ok","stack":{"protocol":"rumor"}}`))
	if err != nil {
		t.Fatalf("valid protocol spec rejected: %v", err)
	}
	if s.Stack.Fanout != 2 || s.Stack.StopProb == nil || *s.Stack.StopProb != 0.2 {
		t.Fatalf("rumor defaults not applied: %+v", s.Stack)
	}
	// An explicit stop_prob of 0 (spreaders never lose interest) is a
	// meaningful extreme and must survive normalization, not be replaced
	// by the default.
	z, err := Parse([]byte(`{"name":"flood","stack":{"protocol":"rumor","stop_prob":0}}`))
	if err != nil {
		t.Fatalf("stop_prob=0 rejected: %v", err)
	}
	if z.Stack.StopProb == nil || *z.Stack.StopProb != 0 {
		t.Fatalf("explicit stop_prob=0 overwritten: %+v", z.Stack)
	}
	// Re-normalizing a normalized protocol spec must be a no-op (Run
	// normalizes what Parse already returned).
	if _, err := s.normalized(); err != nil {
		t.Fatalf("re-normalization rejected a normalized spec: %v", err)
	}
}

// Run re-normalizes internally; the caller's Spec value — including the
// Timeline backing array — must come back untouched.
func TestRunDoesNotMutateCallerSpec(t *testing.T) {
	spec := Spec{
		Name:  "no-mutate",
		Nodes: 8,
		Timeline: []Event{
			{At: 3, Action: "heal"},
			{At: 1, Action: "partition", Groups: 2},
		},
		Stop: Stop{Cycles: 5},
	}
	if _, err := Run(spec, Options{}, exp.DiscardSink{}); err != nil {
		t.Fatal(err)
	}
	if spec.Timeline[0].Action != "heal" || spec.Timeline[1].Action != "partition" {
		t.Fatalf("Run reordered the caller's timeline: %+v", spec.Timeline)
	}
}
