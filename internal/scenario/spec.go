// Package scenario is the declarative experiment layer: a Spec describes
// an experiment as data — population size, the overlay + solver stack, a
// timeline of scripted events (churn bursts, network partitions and heals,
// link-model swaps, crash/restart waves), a metric schedule and stop
// conditions — and the runner compiles one spec onto either the
// cycle-driven sim.Engine or the event-driven sim.EventEngine and runs a
// seeded campaign of repetitions.
//
// Determinism is the contract: the same spec + seed produces bit-identical
// metric output at any worker count, extending the engine's worker-
// invariance guarantee up through this layer. Every name a spec uses
// (functions, topologies, solvers) resolves through the registries in
// internal/funcs and internal/core.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"gossipopt/internal/core"
	"gossipopt/internal/funcs"
)

// Spec is one declarative experiment.
type Spec struct {
	// Name labels the scenario in metric output.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Engine selects the execution model: "cycle" (default, the paper's
	// lock-step model) or "event" (asynchronous, with link latency/loss).
	Engine string `json:"engine,omitempty"`
	// Nodes is the initial population (default 64).
	Nodes int `json:"nodes,omitempty"`
	// Seed drives the whole campaign; repetition seeds derive from it.
	Seed uint64 `json:"seed,omitempty"`
	// Stack describes the per-node protocol stack by name.
	Stack Stack `json:"stack,omitempty"`
	// Timeline is the scripted event sequence, applied in At order.
	Timeline []Event `json:"timeline,omitempty"`
	// MetricsEvery is the sampling interval — cycles on the cycle engine,
	// simulated time units on the event engine (default 10). A final
	// sample is always emitted when the run stops.
	MetricsEvery float64 `json:"metrics_every,omitempty"`
	// Stop bounds the run.
	Stop Stop `json:"stop,omitempty"`
}

// Stack names the protocol stack: which overlay maintains the view, which
// payload protocol runs on top of it, and how it is tuned.
type Stack struct {
	// Topology is the overlay service name (core.TopologyNames; default
	// "newscast"). ViewSize is the overlay's view size c (default 20).
	Topology string `json:"topology,omitempty"`
	ViewSize int    `json:"view_size,omitempty"`
	// Protocol selects the payload protocol (ProtocolNames): "opt" (the
	// optimizer stack, default), or one of the epidemic/topology
	// protocols — "rumor", "antientropy", "tman" — which run on the cycle
	// engine only. The solver knobs below apply to "opt" exclusively.
	Protocol string `json:"protocol,omitempty"`
	// Fanout and StopProb tune the "rumor" protocol: peers contacted per
	// cycle while hot (default 2) and the probability of losing interest
	// after contacting an informed peer (default 0.2; a pointer so an
	// explicit 0 — spreaders never lose interest — stays expressible).
	Fanout   int      `json:"fanout,omitempty"`
	StopProb *float64 `json:"stop_prob,omitempty"`
	// TManC is the "tman" protocol's view size (default 4).
	TManC int `json:"tman_c,omitempty"`
	// Solvers are solver service names (core.SolverNames; default
	// ["pso"]); more than one assigns solver types to nodes round-robin
	// by ID — the paper's module diversification.
	Solvers []string `json:"solvers,omitempty"`
	// Particles is the population size k per node (default 16).
	Particles int `json:"particles,omitempty"`
	// GossipEvery is the coordination cycle length r in local evaluations
	// (default k; negative disables coordination).
	GossipEvery int `json:"gossip_every,omitempty"`
	// Function is the objective by name (funcs registry, default
	// "Sphere"); Dim overrides its default dimension when positive.
	Function string `json:"function,omitempty"`
	Dim      int    `json:"dim,omitempty"`
	// DropProb loses each coordination exchange with this probability
	// (cycle engine only; the event engine models loss in the link).
	DropProb float64 `json:"drop_prob,omitempty"`
	// EvalTime and NewscastPeriod are event-engine timings: the mean
	// duration of one evaluation and the view-exchange period (defaults
	// 1 and 10 time units).
	EvalTime       float64 `json:"eval_time,omitempty"`
	NewscastPeriod float64 `json:"newscast_period,omitempty"`
	// Link is the event engine's initial link model (default: latency
	// uniform in [0.1, 1], no loss).
	Link *Link `json:"link,omitempty"`
	// Net is the cycle engine's baseline per-link network model (loss,
	// cycle-granular delay, correlated regional outages); link-model
	// events swap it mid-run and restore it when their model is omitted.
	Net *NetSpec `json:"net,omitempty"`
}

// Link describes a sim.UniformLink.
type Link struct {
	MinDelay float64 `json:"min_delay,omitempty"`
	MaxDelay float64 `json:"max_delay,omitempty"`
	LossProb float64 `json:"loss_prob,omitempty"`
}

// validate rejects delays that would move the simulation clock backwards
// and probabilities outside [0, 1]. A nil link is valid (engine default).
func (l *Link) validate() error {
	if l == nil {
		return nil
	}
	if l.MinDelay < 0 || l.MaxDelay < 0 || math.IsNaN(l.MinDelay) || math.IsNaN(l.MaxDelay) {
		return fmt.Errorf("delays must be >= 0 (min_delay=%v, max_delay=%v)", l.MinDelay, l.MaxDelay)
	}
	if l.LossProb < 0 || l.LossProb > 1 || math.IsNaN(l.LossProb) {
		return fmt.Errorf("loss_prob=%v outside [0, 1]", l.LossProb)
	}
	return nil
}

// NetSpec describes a cycle-engine per-link network model: independent
// per-leg loss and delay (sim.LossyLinks) plus correlated regional
// outages (sim.RegionalOutage), composed when both are configured. The
// zero value is a no-op (no model installed). Every random decision draws
// from the engine's dedicated net-model stream, so scripted runs stay
// byte-identical across the worker grid.
type NetSpec struct {
	// Loss is the per-leg i.i.d. loss probability in [0, 1]; lost legs
	// give the sender failure feedback, like a timed-out connection.
	Loss float64 `json:"loss,omitempty"`
	// DelayMin and DelayMax bound the per-leg uniform delay draw in whole
	// cycles (a draw of 0 delivers in the current cycle); DelayMax 0
	// disables delay.
	DelayMin int64 `json:"delay_min,omitempty"`
	DelayMax int64 `json:"delay_max,omitempty"`
	// Regions >= 2 adds correlated failures: nodes belong to regions by
	// ID mod Regions, and each cycle an up region goes down with
	// probability RegionFail while a down one recovers with
	// RegionRecover. Legs touching a down region are dropped.
	Regions       int     `json:"regions,omitempty"`
	RegionFail    float64 `json:"region_fail,omitempty"`
	RegionRecover float64 `json:"region_recover,omitempty"`
}

// validate rejects probabilities outside [0, 1], negative or inverted
// delay bounds, and outage knobs without a region count. A nil or
// all-zero NetSpec is valid (no model).
func (n *NetSpec) validate() error {
	if n == nil {
		return nil
	}
	if n.Loss < 0 || n.Loss > 1 || math.IsNaN(n.Loss) {
		return fmt.Errorf("loss=%v outside [0, 1]", n.Loss)
	}
	if n.DelayMin < 0 || n.DelayMax < 0 {
		return fmt.Errorf("delays must be >= 0 cycles (delay_min=%d, delay_max=%d)", n.DelayMin, n.DelayMax)
	}
	if n.DelayMin > n.DelayMax {
		return fmt.Errorf("delay_min=%d exceeds delay_max=%d", n.DelayMin, n.DelayMax)
	}
	if n.Regions == 1 || n.Regions < 0 {
		return fmt.Errorf("regions=%d must be >= 2 (or 0 for no regional outages)", n.Regions)
	}
	if n.RegionFail < 0 || n.RegionFail > 1 || math.IsNaN(n.RegionFail) {
		return fmt.Errorf("region_fail=%v outside [0, 1]", n.RegionFail)
	}
	if n.RegionRecover < 0 || n.RegionRecover > 1 || math.IsNaN(n.RegionRecover) {
		return fmt.Errorf("region_recover=%v outside [0, 1]", n.RegionRecover)
	}
	if n.Regions == 0 && (n.RegionFail != 0 || n.RegionRecover != 0) {
		return fmt.Errorf("region_fail/region_recover need regions >= 2")
	}
	return nil
}

// Event is one scripted timeline entry. At is a cycle index on the cycle
// engine (must be integral) and a simulated time on the event engine;
// events fire before the cycle / at the time they name.
type Event struct {
	At float64 `json:"at"`
	// Action is one of (the full vocabulary lives in actionRules):
	//
	//	crash       kill Count nodes, or Fraction of the live population
	//	join        add Count fresh nodes (cycle engine only)
	//	revive      restart up to Count crashed nodes (ID order)
	//	partition   split the network into Groups islands (ID mod Groups);
	//	            with OneWay set, cross-island traffic still flows from
	//	            lower-numbered islands to higher ones (a one-way cut)
	//	heal        remove the partition
	//	set-link    swap the link model to Link (event engine only; omit
	//	            link to restore the stack's baseline link)
	//	link-model  swap the per-link network model to Model (cycle engine
	//	            only; omit model to restore the stack's baseline net)
	//	byzantine   turn Count nodes — or Fraction of the live population —
	//	            into adversaries with the given Behavior: "drop"
	//	            (blackhole everything sent to them, no sender
	//	            feedback), "delay" (hold every leg they send back 1–3
	//	            cycles), or "corrupt" (their messages arrive as
	//	            unparseable garbage); "none" heals every adversary
	//	            (cycle engine only)
	Action   string  `json:"action"`
	Fraction float64 `json:"fraction,omitempty"`
	Count    int     `json:"count,omitempty"`
	Groups   int     `json:"groups,omitempty"`
	OneWay   bool    `json:"oneway,omitempty"`
	Link     *Link   `json:"link,omitempty"`
	// Model is the link-model event's replacement network model.
	Model *NetSpec `json:"model,omitempty"`
	// Behavior selects the byzantine event's adversarial repertoire.
	Behavior string `json:"behavior,omitempty"`
}

// Stop bounds a run. The first condition reached stops the repetition.
type Stop struct {
	// Cycles caps the cycle engine (default 200).
	Cycles int64 `json:"cycles,omitempty"`
	// Time is the event engine's horizon (default 200).
	Time float64 `json:"time,omitempty"`
	// MaxEvals caps network-wide objective evaluations (0: unlimited).
	MaxEvals int64 `json:"max_evals,omitempty"`
	// Quality, when set, stops as soon as f(best) − f(x*) reaches it.
	Quality *float64 `json:"quality,omitempty"`
}

// Engine kinds.
const (
	EngineCycle = "cycle"
	EngineEvent = "event"
)

// Parse decodes a JSON spec strictly (unknown fields are errors, catching
// typos in hand-written scenario files) and normalizes it.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("parsing scenario spec: %w", err)
	}
	return s.normalized()
}

// normalized fills defaults, sorts the timeline, and validates every name
// and event against the selected engine.
func (s Spec) normalized() (Spec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("scenario spec needs a name")
	}
	if s.Engine == "" {
		s.Engine = EngineCycle
	}
	if s.Engine != EngineCycle && s.Engine != EngineEvent {
		return s, fmt.Errorf("scenario %q: unknown engine %q (want %q or %q)",
			s.Name, s.Engine, EngineCycle, EngineEvent)
	}
	// Engine-mismatched knobs are rejected, not ignored — the spec layer
	// is strict everywhere else (unknown fields, per-engine actions), and
	// a silently inert stop bound is exactly the typo it would hide. Only
	// the engine's own bound is ever defaulted, so normalizing an already-
	// normalized spec (Run re-normalizes what Parse returned) is a no-op.
	if s.Engine == EngineCycle {
		if s.Stop.Time != 0 {
			return s, fmt.Errorf("scenario %q: stop.time is an event-engine bound; use stop.cycles on the cycle engine", s.Name)
		}
		if s.Stack.EvalTime != 0 || s.Stack.NewscastPeriod != 0 || s.Stack.Link != nil {
			return s, fmt.Errorf("scenario %q: stack.eval_time/newscast_period/link are event-engine knobs; the cycle engine has no clock or link model", s.Name)
		}
		if err := s.Stack.Net.validate(); err != nil {
			return s, fmt.Errorf("scenario %q: stack.net: %w", s.Name, err)
		}
		if s.MetricsEvery != math.Trunc(s.MetricsEvery) {
			return s, fmt.Errorf("scenario %q: metrics_every=%v must be a whole number of cycles on the cycle engine", s.Name, s.MetricsEvery)
		}
		if s.Stop.Cycles <= 0 {
			s.Stop.Cycles = 200
		}
	} else {
		if s.Stop.Cycles != 0 {
			return s, fmt.Errorf("scenario %q: stop.cycles is a cycle-engine bound; use stop.time on the event engine", s.Name)
		}
		if s.Stack.DropProb != 0 {
			return s, fmt.Errorf("scenario %q: stack.drop_prob is a cycle-engine knob; model loss with stack.link.loss_prob on the event engine", s.Name)
		}
		if s.Stack.Net != nil {
			return s, fmt.Errorf("scenario %q: stack.net is a cycle-engine model; use stack.link on the event engine", s.Name)
		}
		if err := s.Stack.Link.validate(); err != nil {
			return s, fmt.Errorf("scenario %q: stack.link: %w", s.Name, err)
		}
		if s.Stack.EvalTime <= 0 {
			s.Stack.EvalTime = 1
		}
		if s.Stack.NewscastPeriod <= 0 {
			s.Stack.NewscastPeriod = 10
		}
		if s.Stop.Time <= 0 {
			s.Stop.Time = 200
		}
	}
	if s.Nodes <= 0 {
		s.Nodes = 64
	}
	if s.Stack.Topology == "" {
		s.Stack.Topology = "newscast"
	}
	if s.Stack.ViewSize <= 0 {
		s.Stack.ViewSize = 20
	}

	// Payload protocol. The optimizer knobs stay empty for the epidemic
	// protocols (and are rejected when set), so re-normalizing an already-
	// normalized spec remains a no-op.
	if s.Stack.Protocol == "" {
		s.Stack.Protocol = ProtocolOpt
	}
	s.Stack.Protocol = strings.ToLower(s.Stack.Protocol)
	epidemic := s.Stack.Protocol != ProtocolOpt
	if epidemic {
		if _, ok := protocolBuilders[s.Stack.Protocol]; !ok {
			return s, fmt.Errorf("scenario %q: unknown protocol %q (available: %s)",
				s.Name, s.Stack.Protocol, strings.Join(ProtocolNames(), ", "))
		}
		if s.Engine == EngineEvent {
			return s, fmt.Errorf("scenario %q: stack.protocol %q runs on the cycle engine only", s.Name, s.Stack.Protocol)
		}
		if len(s.Stack.Solvers) != 0 || s.Stack.Particles != 0 || s.Stack.GossipEvery != 0 ||
			s.Stack.Function != "" || s.Stack.Dim != 0 {
			return s, fmt.Errorf("scenario %q: stack.solvers/particles/gossip_every/function/dim are optimizer knobs; protocol %q takes none of them", s.Name, s.Stack.Protocol)
		}
		if s.Stop.MaxEvals > 0 {
			return s, fmt.Errorf("scenario %q: stop.max_evals bounds objective evaluations; protocol %q performs none", s.Name, s.Stack.Protocol)
		}
	}
	if s.Stack.Protocol != ProtocolRumor && (s.Stack.Fanout != 0 || s.Stack.StopProb != nil) {
		return s, fmt.Errorf("scenario %q: stack.fanout/stop_prob tune the rumor protocol; protocol is %q", s.Name, s.Stack.Protocol)
	}
	if s.Stack.Protocol != ProtocolTMan && s.Stack.TManC != 0 {
		return s, fmt.Errorf("scenario %q: stack.tman_c tunes the tman protocol; protocol is %q", s.Name, s.Stack.Protocol)
	}
	if s.Stack.Protocol == ProtocolRumor || s.Stack.Protocol == ProtocolTMan {
		if s.Stack.DropProb != 0 {
			return s, fmt.Errorf("scenario %q: stack.drop_prob applies to the opt and antientropy protocols; model loss for %q with a partition instead", s.Name, s.Stack.Protocol)
		}
	}
	if s.Stack.DropProb < 0 || s.Stack.DropProb > 1 || math.IsNaN(s.Stack.DropProb) {
		return s, fmt.Errorf("scenario %q: stack.drop_prob=%v outside [0, 1]", s.Name, s.Stack.DropProb)
	}
	switch s.Stack.Protocol {
	case ProtocolRumor:
		if p := s.Stack.StopProb; p != nil && (*p < 0 || *p > 1 || math.IsNaN(*p)) {
			return s, fmt.Errorf("scenario %q: stack.stop_prob=%v outside [0, 1]", s.Name, *p)
		}
		if s.Stack.Fanout <= 0 {
			s.Stack.Fanout = 2
		}
		if s.Stack.StopProb == nil {
			p := 0.2
			s.Stack.StopProb = &p
		}
	case ProtocolTMan:
		if s.Stack.TManC <= 0 {
			s.Stack.TManC = 4
		}
	}

	if !epidemic {
		if len(s.Stack.Solvers) == 0 {
			s.Stack.Solvers = []string{"pso"}
		}
		if s.Stack.Particles <= 0 {
			s.Stack.Particles = 16
		}
		if s.Stack.GossipEvery == 0 {
			s.Stack.GossipEvery = s.Stack.Particles
		}
		if s.Stack.Function == "" {
			s.Stack.Function = "Sphere"
		}
	}
	if s.MetricsEvery <= 0 {
		s.MetricsEvery = 10
	}

	// Resolve every name now so a bad spec fails before any run starts.
	if !epidemic {
		if _, err := funcs.ByName(s.Stack.Function); err != nil {
			return s, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if _, err := core.SolversByName(s.Stack.Solvers, s.Stack.Particles); err != nil {
			return s, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if _, err := core.TopologyByName(s.Stack.Topology); err != nil {
		return s, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	// Sort a copy: normalized() must not reorder the caller's Timeline
	// backing array as a side effect (specs are plain values callers may
	// reuse, marshal, or share).
	s.Timeline = append([]Event(nil), s.Timeline...)
	sort.SliceStable(s.Timeline, func(i, j int) bool { return s.Timeline[i].At < s.Timeline[j].At })
	for i, ev := range s.Timeline {
		if err := s.validateEvent(ev); err != nil {
			return s, fmt.Errorf("scenario %q: timeline[%d]: %w", s.Name, i, err)
		}
	}
	return s, nil
}

// actionRules is the single timeline-action registry: every action's
// per-event validator, keyed by action name. validateEvent dispatches
// through it and the unknown-action error enumerates its keys, so adding
// an action here automatically extends both validation and the error's
// vocabulary — the two can never drift apart.
var actionRules = map[string]func(s *Spec, ev Event) error{
	"crash": func(s *Spec, ev Event) error {
		if ev.Count <= 0 && (ev.Fraction <= 0 || ev.Fraction > 1) {
			return fmt.Errorf("crash needs count > 0 or fraction in (0, 1]")
		}
		return nil
	},
	"revive": func(s *Spec, ev Event) error {
		if ev.Count <= 0 {
			return fmt.Errorf("revive needs count > 0")
		}
		return nil
	},
	"join": func(s *Spec, ev Event) error {
		if s.Engine == EngineEvent {
			return fmt.Errorf("join is not supported on the event engine")
		}
		if s.Stack.Protocol == ProtocolTMan {
			return fmt.Errorf("join is not supported with the tman protocol (the target ring is defined over the initial population)")
		}
		if ev.Count <= 0 {
			return fmt.Errorf("join needs count > 0")
		}
		return nil
	},
	"partition": func(s *Spec, ev Event) error {
		if ev.Groups < 2 {
			return fmt.Errorf("partition needs groups >= 2")
		}
		return nil
	},
	"heal": func(s *Spec, ev Event) error { return nil },
	"set-link": func(s *Spec, ev Event) error {
		if s.Engine != EngineEvent {
			return fmt.Errorf("set-link is only supported on the event engine")
		}
		if err := ev.Link.validate(); err != nil {
			return fmt.Errorf("set-link: %w", err)
		}
		return nil
	},
	"link-model": func(s *Spec, ev Event) error {
		if s.Engine != EngineCycle {
			return fmt.Errorf("link-model is only supported on the cycle engine")
		}
		if err := ev.Model.validate(); err != nil {
			return fmt.Errorf("link-model: %w", err)
		}
		return nil
	},
	"byzantine": func(s *Spec, ev Event) error {
		if s.Engine != EngineCycle {
			return fmt.Errorf("byzantine is only supported on the cycle engine")
		}
		switch ev.Behavior {
		case "drop", "delay", "corrupt":
			if ev.Count <= 0 && (ev.Fraction <= 0 || ev.Fraction > 1) {
				return fmt.Errorf("byzantine needs count > 0 or fraction in (0, 1]")
			}
		case "none":
			if ev.Count != 0 || ev.Fraction != 0 {
				return fmt.Errorf(`byzantine behavior "none" heals every adversary and takes no count/fraction`)
			}
		case "":
			return fmt.Errorf("byzantine needs a behavior (drop, delay, corrupt, or none)")
		default:
			return fmt.Errorf("unknown byzantine behavior %q (want drop, delay, corrupt, or none)", ev.Behavior)
		}
		return nil
	},
}

// ActionNames returns the sorted timeline-action vocabulary.
func ActionNames() []string {
	out := make([]string, 0, len(actionRules))
	for name := range actionRules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s Spec) validateEvent(ev Event) error {
	if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
		return fmt.Errorf("at=%v out of range", ev.At)
	}
	// An event past the stop bound can never fire; reject the likely typo
	// rather than silently running a different experiment. (A run may
	// still stop earlier via quality/max_evals — that's data-dependent,
	// unlike a bound the spec itself guarantees is never reached.)
	if s.Engine == EngineCycle {
		if ev.At != math.Trunc(ev.At) {
			return fmt.Errorf("at=%v must be a whole cycle on the cycle engine", ev.At)
		}
		if ev.At >= float64(s.Stop.Cycles) {
			return fmt.Errorf("at=%v never fires: the run stops after cycle %d", ev.At, s.Stop.Cycles)
		}
	} else if ev.At > s.Stop.Time {
		return fmt.Errorf("at=%v never fires: the run stops at time %v", ev.At, s.Stop.Time)
	}
	if ev.OneWay && ev.Action != "partition" {
		return fmt.Errorf("oneway applies to partition events only")
	}
	if ev.Model != nil && ev.Action != "link-model" {
		return fmt.Errorf("model applies to link-model events only")
	}
	if ev.Behavior != "" && ev.Action != "byzantine" {
		return fmt.Errorf("behavior applies to byzantine events only")
	}
	rule, ok := actionRules[ev.Action]
	if !ok {
		return fmt.Errorf("unknown action %q (available: %s)", ev.Action, strings.Join(ActionNames(), ", "))
	}
	return rule(&s, ev)
}
