package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"gossipopt/internal/exp"
	"gossipopt/internal/sim"
)

// Scenario sweeps: a SweepSpec is a base Spec plus a grid of named
// override axes; the grid expands into cells (one fully-overridden,
// validated Spec per grid point), every cell × repetition job runs on the
// campaign's bounded worker pool, and each cell's final-sample metrics
// are reduced to a per-cell summary (internal/exp.AggregateCell). Like
// everything else in this package, the emitted bytes are identical for
// any worker count: rows are buffered per repetition and flushed in
// cell-then-repetition order.

// maxSweepCells bounds a sweep's grid; a larger product is almost
// certainly a typo (e.g. a values array pasted twice) and would silently
// queue days of work.
const maxSweepCells = 4096

// SweepSpec describes a parameter sweep as data: a base scenario and the
// override axes whose cartesian product forms the grid.
type SweepSpec struct {
	// Name labels the sweep; every cell name is prefixed with it.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Base is the spec every cell starts from. Its name is ignored (cells
	// are named after their grid point) and its seed is the campaign's
	// base seed unless Options.BaseSeed overrides it.
	Base Spec `json:"base"`
	// Axes are the sweep dimensions, expanded row-major: the grid
	// iterates the last axis fastest, so cell order — and therefore
	// output order — is fully determined by the spec.
	Axes []Axis `json:"axes"`
	// Reps is the default repetitions per cell (default 1);
	// Options.Reps overrides it.
	Reps int `json:"reps,omitempty"`
	// Threshold, when set, measures convergence: each repetition reports
	// the first sample time at which quality reached it (repetitions that
	// never reach it are censored). It never stops a run — cells stay
	// comparable because every repetition runs the full spec.
	Threshold *float64 `json:"threshold,omitempty"`
}

// Axis is one sweep dimension: a name (used in cell names), an optional
// dotted field path, and the values the grid takes on it.
type Axis struct {
	// Name labels the axis in cell names ("overlay=cyclon").
	Name string `json:"name"`
	// Path, when set, is a dotted JSON field path into the spec
	// ("nodes", "stack.topology") and each value lands at that path.
	// Without a path, each value must be a JSON object that deep-merges
	// into the spec: objects merge recursively, everything else (arrays,
	// scalars) replaces, and null resets a field to its default.
	Path string `json:"path,omitempty"`
	// Values are the axis's grid points.
	Values []AxisValue `json:"values"`
}

// AxisValue is one point on an axis.
type AxisValue struct {
	// Label names the value in cell names; it defaults to the compact
	// JSON of Value (for strings, the unquoted string).
	Label string `json:"label,omitempty"`
	// Value is the raw JSON placed at the axis path or deep-merged.
	Value json.RawMessage `json:"value"`
}

// SweepCell is one expanded grid point.
type SweepCell struct {
	// Index is the cell's position in row-major grid order (last axis
	// fastest); repetition seeds derive from it via exp.SeedFor.
	Index int
	// Name is "<sweep>/<axis>=<label>,..." — the scenario column of the
	// cell's metric rows.
	Name string
	// Labels holds the "axis=label" pairs in axis order.
	Labels []string
	// Spec is the fully-overridden, normalized spec the cell runs.
	Spec Spec
}

// ParseSweep decodes a JSON sweep spec strictly (unknown fields are
// errors, exactly like Parse) and validates it by expanding the grid.
func ParseSweep(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sw SweepSpec
	if err := dec.Decode(&sw); err != nil {
		return SweepSpec{}, fmt.Errorf("parsing sweep spec: %w", err)
	}
	if _, err := sw.Cells(); err != nil {
		return SweepSpec{}, err
	}
	return sw, nil
}

// Cells expands the sweep into its grid, row-major with the last axis
// fastest, validating every resulting spec. Expansion is deterministic:
// the same SweepSpec always yields the same cells in the same order.
func (sw SweepSpec) Cells() ([]SweepCell, error) {
	if sw.Name == "" {
		return nil, fmt.Errorf("sweep spec needs a name")
	}
	if len(sw.Axes) == 0 {
		return nil, fmt.Errorf("sweep %q: needs at least one axis", sw.Name)
	}
	if sw.Threshold != nil && math.IsNaN(*sw.Threshold) {
		return nil, fmt.Errorf("sweep %q: threshold is NaN", sw.Name)
	}
	seen := map[string]bool{}
	total := 1
	for i, ax := range sw.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep %q: axes[%d] needs a name", sw.Name, i)
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("sweep %q: duplicate axis %q", sw.Name, ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep %q: axis %q has no values", sw.Name, ax.Name)
		}
		// Duplicate labels would expand into cells with identical names
		// but different seeds — indistinguishable in every output. Most
		// likely a pasted value; reject like any other typo.
		labels := map[string]bool{}
		for j, v := range ax.Values {
			if len(v.Value) == 0 {
				return nil, fmt.Errorf("sweep %q: axis %q values[%d] has no value", sw.Name, ax.Name, j)
			}
			l := valueLabel(v)
			if labels[l] {
				return nil, fmt.Errorf("sweep %q: axis %q has two values labeled %q (give one an explicit label)", sw.Name, ax.Name, l)
			}
			labels[l] = true
		}
		if total > maxSweepCells/len(ax.Values) {
			return nil, fmt.Errorf("sweep %q: grid exceeds %d cells", sw.Name, maxSweepCells)
		}
		total *= len(ax.Values)
	}

	// The base spec as a generic JSON object, the substrate overrides
	// apply to. Marshaling a Spec cannot fail (no channels/funcs/cycles).
	baseJSON, err := json.Marshal(sw.Base)
	if err != nil {
		return nil, fmt.Errorf("sweep %q: base: %w", sw.Name, err)
	}
	var baseMap map[string]any
	if err := json.Unmarshal(baseJSON, &baseMap); err != nil {
		return nil, fmt.Errorf("sweep %q: base: %w", sw.Name, err)
	}

	cells := make([]SweepCell, 0, total)
	idx := make([]int, len(sw.Axes))
	for ci := 0; ci < total; ci++ {
		m := copyJSON(baseMap).(map[string]any)
		labels := make([]string, len(sw.Axes))
		for ai, ax := range sw.Axes {
			v := ax.Values[idx[ai]]
			labels[ai] = ax.Name + "=" + valueLabel(v)
			if err := applyOverride(m, ax, v); err != nil {
				return nil, fmt.Errorf("sweep %q: axis %q value %q: %w", sw.Name, ax.Name, valueLabel(v), err)
			}
		}
		name := sw.Name + "/" + strings.Join(labels, ",")
		spec, err := decodeCellSpec(m, name)
		if err != nil {
			return nil, fmt.Errorf("sweep %q: cell %s: %w", sw.Name, name, err)
		}
		// Repetition seeds derive from the base seed and the cell index,
		// never from the cell spec — a seed axis would label cells with
		// seeds that are not actually used, so reject it.
		if spec.Seed != sw.Base.Seed {
			return nil, fmt.Errorf("sweep %q: cell %s overrides seed: seeds derive from the base seed and the cell index (set base.seed or -seed instead)", sw.Name, name)
		}
		cells = append(cells, SweepCell{Index: ci, Name: name, Labels: labels, Spec: spec})

		// Odometer step, last axis fastest.
		for ai := len(idx) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(sw.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
	}
	return cells, nil
}

// valueLabel renders an axis value's cell-name fragment: the explicit
// label, or the compact JSON of the value (strings unquoted).
func valueLabel(v AxisValue) string {
	if v.Label != "" {
		return v.Label
	}
	var s string
	if err := json.Unmarshal(v.Value, &s); err == nil {
		return s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v.Value); err != nil {
		return string(v.Value)
	}
	return buf.String()
}

// applyOverride places one axis value into the spec's JSON object: at the
// axis's dotted path, or (pathless) deep-merged at the top level.
func applyOverride(m map[string]any, ax Axis, v AxisValue) error {
	var decoded any
	if err := json.Unmarshal(v.Value, &decoded); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if ax.Path != "" {
		return setPath(m, ax.Path, decoded)
	}
	patch, ok := decoded.(map[string]any)
	if !ok {
		return fmt.Errorf("a pathless axis deep-merges, so its values must be JSON objects (got %s)", string(v.Value))
	}
	deepMerge(m, patch)
	return nil
}

// deepMerge merges src into dst: objects merge recursively, everything
// else — arrays, scalars, null — replaces the destination value. A null
// survives into the re-decoded spec as an untouched (default) field, so
// it effectively resets whatever the base had set.
func deepMerge(dst, src map[string]any) {
	for k, v := range src {
		if sv, ok := v.(map[string]any); ok {
			if dv, ok := dst[k].(map[string]any); ok {
				//simcheck:allow determinism per-key recursive merge into a map is order-independent
				deepMerge(dv, sv)
				continue
			}
		}
		dst[k] = v
	}
}

// setPath sets the dotted path in m to v, creating intermediate objects.
// Unknown leaf names are not detected here — the strict re-decode in
// decodeCellSpec turns them into "unknown field" errors.
func setPath(m map[string]any, path string, v any) error {
	parts := strings.Split(path, ".")
	for _, p := range parts {
		if p == "" {
			return fmt.Errorf("path %q has an empty segment", path)
		}
	}
	cur := m
	for i, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			child := map[string]any{}
			cur[p] = child
			cur = child
			continue
		}
		child, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("path %q: %q is not an object", path, strings.Join(parts[:i+1], "."))
		}
		cur = child
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// copyJSON deep-copies a decoded JSON value so per-cell overrides cannot
// bleed into the shared base object.
func copyJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = copyJSON(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = copyJSON(e)
		}
		return out
	default:
		return v
	}
}

// decodeCellSpec turns the overridden JSON object back into a strict,
// normalized Spec named after its grid point. The strict decode is what
// catches a typo'd axis path ("stack.topologyy") as an unknown field.
func decodeCellSpec(m map[string]any, name string) (Spec, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return Spec{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, err
	}
	spec.Name = name
	return spec.normalized()
}

// SweepCellResult is one cell's outcome: its per-repetition summaries and
// the aggregated cell summary.
type SweepCellResult struct {
	Cell SweepCell
	Sums []RepSummary
	// Summary aggregates the cell's final-sample metrics over its
	// repetitions (min/mean/max/stddev per metric, plus time-to-threshold
	// when the sweep declares a threshold).
	Summary exp.CellSummary
}

// RunSweep executes the sweep: every cell × repetition job runs on one
// bounded worker pool (Options.RepWorkers; jobs from different cells
// interleave freely, so the pool never drains at a cell boundary), each
// repetition buffers its rows, and the buffers are flushed into sink in
// cell-then-repetition order — streamed, so a completed leading cell's
// rows leave memory while later cells still run. The emitted bytes —
// rows and the returned summaries — are identical for every RepWorkers
// and Workers value. Repetition seeds derive from (base seed, cell
// index, rep) via exp.SeedFor; cell indices follow grid position, so
// appending values to the *first* axis extends a sweep while leaving
// existing cells' output unchanged (appending to a later axis renumbers
// the cells after the insertion point).
func RunSweep(sw SweepSpec, opts Options, sink exp.Sink) ([]SweepCellResult, error) {
	cells, err := sw.Cells()
	if err != nil {
		return nil, err
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = sw.Reps
	}
	if reps <= 0 {
		reps = 1
	}
	base := opts.BaseSeed
	if base == 0 {
		base = sw.Base.Seed
	}
	specs := make([]Spec, len(cells))
	for i := range cells {
		specs[i] = cells[i].Spec
	}

	// Flush and aggregate in canonical cell-then-repetition order,
	// stopping at the first failed repetition (the rows already flushed —
	// and the fully-aggregated cells returned — are exactly what a
	// sequential runner would have produced).
	results := make([]SweepCellResult, 0, len(cells))
	var (
		sums        []RepSummary
		finals      []exp.Record
		toThreshold []float64
		rows        int64
	)
	err = runRepPool(specs, reps, opts, base, func(o repOut) error {
		if o.rep == 0 {
			sums = make([]RepSummary, 0, reps)
			finals = make([]exp.Record, 0, reps)
			toThreshold = toThreshold[:0]
		}
		if o.err != nil {
			return fmt.Errorf("sweep %q cell %s rep %d: %w", sw.Name, cells[o.cell].Name, o.rep, o.err)
		}
		for _, r := range o.recs {
			if err := sink.Emit(r); err != nil {
				return fmt.Errorf("sweep %q cell %s rep %d: %w", sw.Name, cells[o.cell].Name, o.rep, err)
			}
		}
		rows += int64(len(o.recs))
		sums = append(sums, o.sum)
		if n := len(o.recs); n > 0 {
			finals = append(finals, o.recs[n-1])
		}
		if sw.Threshold != nil {
			toThreshold = append(toThreshold, exp.TimeToThreshold(o.recs, *sw.Threshold))
		}
		if o.rep == reps-1 {
			summary := exp.AggregateCell(sw.Name, cells[o.cell].Name, finals, toThreshold, sw.Threshold)
			snaps := make([]sim.EngineStats, len(sums))
			for i, s := range sums {
				snaps[i] = s.Stats
			}
			engine := exp.AggregateEngineStats(snaps)
			summary.Engine = &engine
			results = append(results, SweepCellResult{
				Cell:    cells[o.cell],
				Sums:    sums,
				Summary: summary,
			})
		}
		if opts.Progress != nil {
			opts.Progress(ProgressUpdate{
				TotalReps: len(cells) * reps, DoneReps: o.cell*reps + o.rep + 1,
				TotalCells: len(cells), DoneCells: len(results),
				Rows: rows,
				Cell: cells[o.cell].Name, Rep: o.rep,
				Summary: o.sum,
			})
		}
		return nil
	})
	if err != nil {
		return results, err
	}
	return results, sink.Flush()
}
