package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"gossipopt/internal/exp"
)

func TestBuiltinSweepsExpandAndRun(t *testing.T) {
	names := BuiltinSweepNames()
	if len(names) != 3 {
		t.Fatalf("expected 3 built-in sweeps, got %v", names)
	}
	for _, name := range names {
		sw, ok := BuiltinSweep(name)
		if !ok {
			t.Fatalf("BuiltinSweep(%q) missing", name)
		}
		cells, err := sw.Cells()
		if err != nil {
			t.Fatalf("built-in sweep %q does not expand: %v", name, err)
		}
		grid := 1
		for _, ax := range sw.Axes {
			grid *= len(ax.Values)
		}
		if len(cells) != grid {
			t.Fatalf("built-in sweep %q: %d cells, want the full %d-cell grid", name, len(cells), grid)
		}
		var sink captureSink
		res, err := RunSweep(sw, Options{Reps: 2, RepWorkers: 2}, &sink)
		if err != nil {
			t.Fatalf("built-in sweep %q failed: %v", name, err)
		}
		if len(res) != grid {
			t.Fatalf("built-in sweep %q: %d cell results, want %d", name, len(res), grid)
		}
		for _, r := range res {
			if len(r.Sums) != 2 {
				t.Fatalf("%s: %d rep summaries, want 2", r.Cell.Name, len(r.Sums))
			}
			if r.Summary.Reps != 2 || r.Summary.Cell != r.Cell.Name || r.Summary.Sweep != name {
				t.Fatalf("%s: summary mislabeled: %+v", r.Cell.Name, r.Summary)
			}
			if r.Summary.Quality.N != 2 || math.IsNaN(r.Summary.Quality.Mean) {
				t.Fatalf("%s: quality not aggregated: %+v", r.Cell.Name, r.Summary.Quality)
			}
			if r.Summary.Threshold == nil || r.Summary.Reached+r.Summary.Censored != 2 {
				t.Fatalf("%s: threshold accounting off: %+v", r.Cell.Name, r.Summary)
			}
		}
	}
	if _, ok := BuiltinSweep("no-such"); ok {
		t.Fatal("unknown builtin sweep found")
	}
}

// TestSweepCellOrderDeterministic pins the expansion order: row-major,
// last axis fastest — so output order is a function of the spec alone.
func TestSweepCellOrderDeterministic(t *testing.T) {
	sw := SweepSpec{
		Name: "grid",
		Base: Spec{Nodes: 8, Stop: Stop{Cycles: 5}},
		Axes: []Axis{
			{Name: "a", Path: "nodes", Values: []AxisValue{{Value: raw(`8`)}, {Value: raw(`16`)}}},
			{Name: "b", Path: "stack.view_size", Values: []AxisValue{{Value: raw(`1`)}, {Value: raw(`2`)}, {Value: raw(`3`)}}},
		},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"grid/a=8,b=1", "grid/a=8,b=2", "grid/a=8,b=3",
		"grid/a=16,b=1", "grid/a=16,b=2", "grid/a=16,b=3",
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Name != want[i] || c.Index != i {
			t.Fatalf("cell %d is %q (index %d), want %q", i, c.Name, c.Index, want[i])
		}
	}
	again, _ := sw.Cells()
	for i := range cells {
		if again[i].Name != cells[i].Name {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
}

// TestSweepOverrideDeepMerge pins the merge semantics: nested objects
// merge field-by-field, arrays and scalars replace, null resets to the
// default, and sibling fields of the base survive.
func TestSweepOverrideDeepMerge(t *testing.T) {
	sw := SweepSpec{
		Name: "merge",
		Base: Spec{
			Nodes: 16,
			Seed:  9,
			Stack: Stack{Function: "Rastrigin", Particles: 4},
			Timeline: []Event{
				{At: 1, Action: "partition", Groups: 2},
				{At: 2, Action: "heal"},
			},
			Stop: Stop{Cycles: 10},
		},
		Axes: []Axis{{Name: "v", Values: []AxisValue{{Label: "x", Value: raw(`{
			"stack": {"function": "Sphere"},
			"timeline": [{"at": 3, "action": "heal"}],
			"nodes": null
		}`)}}}},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	s := cells[0].Spec
	if s.Stack.Function != "Sphere" {
		t.Fatalf("merged field not applied: %+v", s.Stack)
	}
	if s.Stack.Particles != 4 || s.Seed != 9 {
		t.Fatalf("sibling fields did not survive the merge: %+v", s)
	}
	if len(s.Timeline) != 1 || s.Timeline[0].At != 3 {
		t.Fatalf("array should replace, not merge: %+v", s.Timeline)
	}
	if s.Nodes != 64 {
		t.Fatalf("null should reset nodes to the default (64): %d", s.Nodes)
	}
}

func TestSweepPathOverrides(t *testing.T) {
	sw := SweepSpec{
		Name: "paths",
		Base: Spec{Nodes: 8, Stop: Stop{Cycles: 5}},
		Axes: []Axis{
			{Name: "topo", Path: "stack.topology", Values: []AxisValue{{Value: raw(`"cyclon"`)}}},
			{Name: "tl", Path: "timeline", Values: []AxisValue{
				{Label: "split", Value: raw(`[{"at":1,"action":"partition","groups":2}]`)},
			}},
		},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	s := cells[0].Spec
	if s.Stack.Topology != "cyclon" {
		t.Fatalf("dotted path not applied: %+v", s.Stack)
	}
	if len(s.Timeline) != 1 || s.Timeline[0].Action != "partition" {
		t.Fatalf("top-level path not applied: %+v", s.Timeline)
	}
	if cells[0].Name != "paths/topo=cyclon,tl=split" {
		t.Fatalf("cell name wrong: %q", cells[0].Name)
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"missing name":      `{"base":{"nodes":4},"axes":[{"name":"a","path":"nodes","values":[{"value":8}]}]}`,
		"no axes":           `{"name":"x","base":{"nodes":4}}`,
		"axis without name": `{"name":"x","axes":[{"path":"nodes","values":[{"value":8}]}]}`,
		"duplicate axis":    `{"name":"x","axes":[{"name":"a","path":"nodes","values":[{"value":8}]},{"name":"a","path":"seed","values":[{"value":1}]}]}`,
		"axis no values":    `{"name":"x","axes":[{"name":"a","path":"nodes"}]}`,
		"empty value":       `{"name":"x","axes":[{"name":"a","path":"nodes","values":[{"label":"v"}]}]}`,
		"unknown field":     `{"name":"x","axez":[]}`,
		"unknown leaf":      `{"name":"x","axes":[{"name":"a","path":"stack.topologyy","values":[{"value":"cyclon"}]}]}`,
		"path through leaf": `{"name":"x","axes":[{"name":"a","path":"nodes.deep","values":[{"value":1}]}]}`,
		"empty path seg":    `{"name":"x","axes":[{"name":"a","path":"stack..topology","values":[{"value":"cyclon"}]}]}`,
		"merge non-object":  `{"name":"x","axes":[{"name":"a","values":[{"value":7}]}]}`,
		"invalid cell spec": `{"name":"x","axes":[{"name":"a","path":"stack.topology","values":[{"value":"hypercube"}]}]}`,
		"NaN-free":          `{"name":"x","threshold":"nan","axes":[{"name":"a","path":"nodes","values":[{"value":8}]}]}`,
		"seed axis":         `{"name":"x","axes":[{"name":"a","path":"seed","values":[{"value":1},{"value":2}]}]}`,
		"duplicate value":   `{"name":"x","axes":[{"name":"a","path":"nodes","values":[{"value":8},{"value":8}]}]}`,
		"duplicate label":   `{"name":"x","axes":[{"name":"a","values":[{"label":"v","value":{}},{"label":"v","value":{"nodes":8}}]}]}`,
		"seed via merge":    `{"name":"x","base":{"seed":7},"axes":[{"name":"a","values":[{"label":"reset","value":{"seed":null}}]}]}`,
	}
	for label, raw := range cases {
		if _, err := ParseSweep([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
	good := `{"name":"ok","base":{"nodes":8,"stop":{"cycles":5}},
		"axes":[{"name":"n","path":"nodes","values":[{"value":8},{"value":16}]}],"reps":2,"threshold":0.5}`
	sw, err := ParseSweep([]byte(good))
	if err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	if sw.Reps != 2 || sw.Threshold == nil || *sw.Threshold != 0.5 {
		t.Fatalf("sweep fields not decoded: %+v", sw)
	}
}

// TestSweepGridCap: a grid larger than maxSweepCells is rejected rather
// than silently queueing days of work.
func TestSweepGridCap(t *testing.T) {
	vals := make([]AxisValue, 70)
	for i := range vals {
		vals[i] = AxisValue{Value: raw(strconv.Itoa(i + 1))}
	}
	sw := SweepSpec{
		Name: "huge",
		Axes: []Axis{
			{Name: "a", Path: "nodes", Values: vals},
			{Name: "b", Path: "stack.view_size", Values: vals},
		},
	}
	if _, err := sw.Cells(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized grid accepted: %v", err)
	}
}

// TestSweepDoesNotMutateBase: expanding cells must not leak overrides
// into the shared base or across sibling cells.
func TestSweepDoesNotMutateBase(t *testing.T) {
	sw := SweepSpec{
		Name: "isolate",
		Base: Spec{Nodes: 8, Stack: Stack{Function: "Rastrigin"}, Stop: Stop{Cycles: 5}},
		Axes: []Axis{{Name: "f", Path: "stack.function", Values: []AxisValue{
			{Value: raw(`"Sphere"`)}, {Value: raw(`"Griewank"`)},
		}}},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Spec.Stack.Function != "Sphere" || cells[1].Spec.Stack.Function != "Griewank" {
		t.Fatalf("overrides bled across cells: %q vs %q", cells[0].Spec.Stack.Function, cells[1].Spec.Stack.Function)
	}
	if sw.Base.Stack.Function != "Rastrigin" {
		t.Fatalf("base mutated: %+v", sw.Base.Stack)
	}
}

// TestSweepWorkerInvariance is the tentpole guarantee: the full sweep
// byte stream is identical for any pool size and engine worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	sw, _ := BuiltinSweep("overlay-vs-churn")
	render := func(repWorkers, workers int) (string, []SweepCellResult) {
		var buf bytes.Buffer
		res, err := RunSweep(sw, Options{Reps: 3, RepWorkers: repWorkers, Workers: workers}, exp.NewCSVSink(&buf))
		if err != nil {
			t.Fatalf("repworkers=%d: %v", repWorkers, err)
		}
		return buf.String(), res
	}
	one, oneRes := render(1, 1)
	if strings.Count(one, "\n") < 4*3*2 {
		t.Fatalf("suspiciously little sweep output:\n%s", one)
	}
	for _, w := range []int{2, 8} {
		got, gotRes := render(w, 2)
		if got != one {
			t.Fatalf("sweep bytes differ between repworkers=1 and repworkers=%d", w)
		}
		for i := range oneRes {
			// The engine-stats aggregate is worker-variant (wall times,
			// shard spread); its deterministic counters must still agree.
			a, b := oneRes[i].Summary, gotRes[i].Summary
			if a.Engine == nil || b.Engine == nil {
				t.Fatalf("cell %d: missing engine summary at repworkers=%d", i, w)
			}
			if a.Engine.ApplyRounds != b.Engine.ApplyRounds || a.Engine.ApplyJobs != b.Engine.ApplyJobs ||
				a.Engine.LiveRebuilds != b.Engine.LiveRebuilds {
				t.Fatalf("cell %d engine counters differ at repworkers=%d:\n%+v\n%+v", i, w, a.Engine, b.Engine)
			}
			a.Engine, b.Engine = nil, nil
			if a != b {
				t.Fatalf("cell %d summary differs at repworkers=%d:\n%+v\n%+v", i, w, a, b)
			}
			for j := range oneRes[i].Sums {
				sa, sb := oneRes[i].Sums[j], gotRes[i].Sums[j]
				stripWorkerVariantStats(&sa.Stats)
				stripWorkerVariantStats(&sb.Stats)
				if sa != sb {
					t.Fatalf("cell %d rep %d summary differs at repworkers=%d:\n%+v\n%+v", i, j, w, sa, sb)
				}
			}
		}
	}
}

// TestSweepCellZeroMatchesCampaign: cell 0's repetition seeds equal a
// plain campaign's (one seed mixer, exp.SeedFor, for both paths).
func TestSweepCellZeroMatchesCampaign(t *testing.T) {
	sw := SweepSpec{
		Name: "seeds",
		Base: Spec{Nodes: 8, Seed: 77, MetricsEvery: 5, Stop: Stop{Cycles: 10}},
		Axes: []Axis{{Name: "n", Path: "nodes", Values: []AxisValue{{Value: raw(`8`)}, {Value: raw(`12`)}}}},
	}
	res, err := RunSweep(sw, Options{Reps: 3}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	spec := sw.Base
	spec.Name = "campaign"
	sums, err := Run(spec, Options{Reps: 3}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if res[0].Sums[i].Seed != sums[i].Seed {
			t.Fatalf("cell 0 rep %d seed %d differs from campaign seed %d", i, res[0].Sums[i].Seed, sums[i].Seed)
		}
		if res[0].Sums[i].Quality != sums[i].Quality {
			t.Fatalf("cell 0 rep %d diverged from the plain campaign", i)
		}
	}
	if res[1].Sums[0].Seed == res[0].Sums[0].Seed {
		t.Fatal("distinct cells share repetition seeds")
	}
}

// TestSweepThresholdAccounting: a loose threshold is reached at the
// first sample of every repetition; an unreachable one censors them all.
func TestSweepThresholdAccounting(t *testing.T) {
	mk := func(th float64) SweepSpec {
		return SweepSpec{
			Name:      "th",
			Base:      Spec{Nodes: 8, Seed: 3, MetricsEvery: 5, Stop: Stop{Cycles: 10}},
			Axes:      []Axis{{Name: "n", Path: "nodes", Values: []AxisValue{{Value: raw(`8`)}}}},
			Threshold: &th,
		}
	}
	res, err := RunSweep(mk(1e18), Options{Reps: 2}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	s := res[0].Summary
	if s.Reached != 2 || s.Censored != 0 {
		t.Fatalf("loose threshold not reached: %+v", s)
	}
	if s.ToThreshold.Mean != 5 {
		t.Fatalf("loose threshold should be reached at the first sample (time 5): %+v", s.ToThreshold)
	}
	res, err = RunSweep(mk(-1), Options{Reps: 2}, exp.DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	s = res[0].Summary
	if s.Reached != 0 || s.Censored != 2 || s.ToThreshold.N != 0 {
		t.Fatalf("impossible threshold not censored: %+v", s)
	}
}

// TestSweepRowsAreCellThenRepOrdered pins the emission contract: rows
// grouped by cell in grid order, repetitions in order within a cell.
func TestSweepRowsAreCellThenRepOrdered(t *testing.T) {
	sw := SweepSpec{
		Name: "order",
		Base: Spec{Nodes: 8, Seed: 5, MetricsEvery: 5, Stop: Stop{Cycles: 10}},
		Axes: []Axis{{Name: "n", Path: "nodes", Values: []AxisValue{{Value: raw(`8`)}, {Value: raw(`12`)}}}},
	}
	var sink captureSink
	if _, err := RunSweep(sw, Options{Reps: 2, RepWorkers: 4}, &sink); err != nil {
		t.Fatal(err)
	}
	type key struct {
		cell string
		rep  int
	}
	var order []key
	for _, r := range sink.recs {
		k := key{r.Scenario, r.Rep}
		if len(order) == 0 || order[len(order)-1] != k {
			order = append(order, k)
		}
	}
	want := []key{
		{"order/n=8", 0}, {"order/n=8", 1},
		{"order/n=12", 0}, {"order/n=12", 1},
	}
	if len(order) != len(want) {
		t.Fatalf("row grouping %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("row grouping %v, want %v", order, want)
		}
	}
}

// TestSweepShowRoundTrips: a built-in sweep marshals to JSON that
// ParseSweep accepts — the -show/-spec workflow.
func TestSweepShowRoundTrips(t *testing.T) {
	for _, name := range BuiltinSweepNames() {
		sw, _ := BuiltinSweep(name)
		data, err := json.Marshal(sw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSweep(data); err != nil {
			t.Fatalf("built-in sweep %q does not round-trip: %v", name, err)
		}
	}
}
