package sim

// The dense node arena. NodeIDs are monotonic and never reused, so nodes
// can live in a slice indexed by ID instead of a map: an ID lookup is two
// array indexings, and walking the population in ID order is a linear scan
// with no hashing and no separate order slice. The arena is chunked so
// that growing it never moves existing nodes — callers throughout the
// codebase hold *Node pointers across joins (protocol views, churn models,
// apply jobs), which a flat append-grown slice would invalidate.

const (
	arenaChunkShift = 12
	arenaChunkSize  = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunkSize - 1
)

// nodeArena stores every node ever created, dead or alive, densely indexed
// by NodeID. Chunks are allocated at full capacity and only ever appended
// to, so a *Node stays valid for the arena's lifetime.
type nodeArena struct {
	chunks [][]Node
	n      NodeID // next ID == number of nodes ever allocated
}

// len returns the number of nodes ever allocated.
func (a *nodeArena) len() int { return int(a.n) }

// alloc appends a fresh node with the next ID and returns its pointer.
// Everything but the ID is zero; the caller wires RNG, liveness and the
// protocol stack.
func (a *nodeArena) alloc() *Node {
	id := a.n
	a.n++
	ci := int(id >> arenaChunkShift)
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Node, 0, arenaChunkSize))
	}
	c := &a.chunks[ci]
	*c = append(*c, Node{ID: id})
	return &(*c)[len(*c)-1]
}

// at returns the node with the given ID, or nil when no such node exists.
func (a *nodeArena) at(id NodeID) *Node {
	if id < 0 || id >= a.n {
		return nil
	}
	return &a.chunks[id>>arenaChunkShift][id&arenaChunkMask]
}
