package sim

import "sort"

// ChurnModel mutates the node population at the start of each cycle. The
// paper's scenario is an organization's desktop pool where "nodes may join
// and leave the system at will"; these models reproduce that behaviour in
// controlled forms.
type ChurnModel interface {
	Apply(e *Engine)
}

// NoChurn is the identity churn model.
type NoChurn struct{}

// Apply does nothing.
func (NoChurn) Apply(*Engine) {}

// RateChurn crashes each live node with probability CrashProb per cycle and
// creates JoinPerCycle fresh nodes per cycle (fractional rates accumulate).
// MinLive, when positive, suppresses crashes that would drop the live
// population below it, so the computation never dies out entirely.
type RateChurn struct {
	CrashProb    float64
	JoinPerCycle float64
	MinLive      int

	joinAccum float64
	scratch   []*Node
}

// Apply implements ChurnModel.
func (c *RateChurn) Apply(e *Engine) {
	if c.CrashProb > 0 {
		// Snapshot into the model's scratch: Apply runs every cycle, so a
		// fresh LiveNodes slice here would be a per-cycle O(n) allocation
		// (and the snapshot must be stable while Crash dirties the index).
		c.scratch = e.AppendLiveNodes(c.scratch[:0])
		for _, n := range c.scratch {
			if c.MinLive > 0 && e.LiveCount() <= c.MinLive {
				break
			}
			if e.rng.Bool(c.CrashProb) {
				e.Crash(n.ID)
			}
		}
	}
	c.joinAccum += c.JoinPerCycle
	for c.joinAccum >= 1 {
		e.AddNode()
		c.joinAccum--
	}
}

// CatastropheChurn crashes a fixed fraction of the live population exactly
// once, at the given cycle. It models the paper's robustness claim "even if
// a large portion of the network fails, the computation will end
// successfully".
type CatastropheChurn struct {
	AtCycle  int64
	Fraction float64

	done bool
}

// Apply implements ChurnModel.
func (c *CatastropheChurn) Apply(e *Engine) {
	if c.done || e.Cycle() != c.AtCycle {
		return
	}
	c.done = true
	live := e.LiveNodes()
	kill := int(float64(len(live)) * c.Fraction)
	perm := e.rng.Perm(len(live))
	for i := 0; i < kill && i < len(perm); i++ {
		e.Crash(live[perm[i]].ID)
	}
}

// SessionChurn gives every node an exponentially distributed session length
// (mean MeanSession cycles); when a session expires the node crashes and,
// after an exponentially distributed downtime (mean MeanDowntime cycles), a
// fresh node joins in its place. This is the classic availability-trace
// approximation for desktop grids.
type SessionChurn struct {
	MeanSession  float64
	MeanDowntime float64

	deaths  map[NodeID]int64 // cycle at which the node crashes
	joins   []int64          // cycles at which replacement nodes join
	scratch []*Node
}

// Apply implements ChurnModel.
func (c *SessionChurn) Apply(e *Engine) {
	if c.deaths == nil {
		c.deaths = make(map[NodeID]int64)
	}
	now := e.Cycle()
	// Schedule sessions for nodes we have not seen yet (scratch snapshot:
	// this scan runs every cycle).
	c.scratch = e.AppendLiveNodes(c.scratch[:0])
	for _, n := range c.scratch {
		if _, ok := c.deaths[n.ID]; !ok {
			life := int64(e.rng.ExpFloat64()*c.MeanSession) + 1
			c.deaths[n.ID] = now + life
		}
	}
	// Crash expired sessions and schedule replacements. Expired IDs are
	// collected and sorted first: ranging the map directly would assign
	// the downtime draws to nodes in a different order every run.
	var expired []NodeID
	for id, at := range c.deaths {
		if at <= now {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		if n := e.Node(id); n != nil && n.Alive {
			e.Crash(id)
			down := int64(e.rng.ExpFloat64() * c.MeanDowntime)
			c.joins = append(c.joins, now+down)
		}
		delete(c.deaths, id)
	}
	// Execute due joins.
	rest := c.joins[:0]
	for _, at := range c.joins {
		if at <= now {
			e.AddNode()
		} else {
			rest = append(rest, at)
		}
	}
	c.joins = rest
}
