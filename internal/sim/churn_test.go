package sim

import "testing"

// Edge cases of the churn models, complementing the happy-path coverage in
// sim_test.go.

func TestRateChurnMinLiveAboveInitialPopulation(t *testing.T) {
	// MinLive higher than the whole population: no crash may ever fire.
	e, _ := newCountingEngine(20, 5)
	e.SetChurn(&RateChurn{CrashProb: 1.0, MinLive: 10})
	e.Run(10)
	if e.LiveCount() != 5 {
		t.Fatalf("live=%d, want all 5 protected by MinLive=10", e.LiveCount())
	}
}

func TestRateChurnNoFloorDiesOut(t *testing.T) {
	// MinLive=0 means no floor: CrashProb=1 kills everyone, and the engine
	// must keep running empty cycles without panicking.
	e, _ := newCountingEngine(21, 8)
	e.SetChurn(&RateChurn{CrashProb: 1.0})
	e.Run(5)
	if e.LiveCount() != 0 {
		t.Fatalf("live=%d, want 0 with no MinLive floor", e.LiveCount())
	}
}

func TestRateChurnMinLiveExactBoundary(t *testing.T) {
	// MinLive equal to the population: still no crashes (the guard is
	// "would drop below", checked before each kill).
	e, _ := newCountingEngine(22, 6)
	e.SetChurn(&RateChurn{CrashProb: 1.0, MinLive: 6})
	e.Run(10)
	if e.LiveCount() != 6 {
		t.Fatalf("live=%d, want 6", e.LiveCount())
	}
}

func TestRateChurnJoinersCountTowardMinLive(t *testing.T) {
	// With joins replenishing the population, crashes may keep firing but
	// the live count can never end a cycle below MinLive.
	e, _ := newCountingEngine(23, 10)
	e.SetChurn(&RateChurn{CrashProb: 0.9, JoinPerCycle: 1, MinLive: 4})
	for i := 0; i < 30; i++ {
		e.RunCycle()
		if e.LiveCount() < 4 {
			t.Fatalf("cycle %d: live=%d dropped below MinLive", i, e.LiveCount())
		}
	}
}

func TestCatastropheChurnFractionZero(t *testing.T) {
	e, _ := newCountingEngine(24, 20)
	e.SetChurn(&CatastropheChurn{AtCycle: 2, Fraction: 0})
	e.Run(10)
	if e.LiveCount() != 20 {
		t.Fatalf("live=%d after zero-fraction catastrophe", e.LiveCount())
	}
}

func TestCatastropheChurnFractionOne(t *testing.T) {
	// Total catastrophe: everyone dies, engine keeps running empty cycles.
	e, _ := newCountingEngine(25, 20)
	e.SetChurn(&CatastropheChurn{AtCycle: 2, Fraction: 1})
	e.Run(10)
	if e.LiveCount() != 0 {
		t.Fatalf("live=%d after total catastrophe", e.LiveCount())
	}
}

func TestCatastropheChurnAtCycleZero(t *testing.T) {
	// AtCycle 0 fires on the very first cycle.
	e, _ := newCountingEngine(26, 10)
	e.SetChurn(&CatastropheChurn{AtCycle: 0, Fraction: 0.5})
	e.RunCycle()
	if e.LiveCount() != 5 {
		t.Fatalf("live=%d after cycle-0 catastrophe, want 5", e.LiveCount())
	}
}

func TestCatastropheChurnFiresExactlyOnce(t *testing.T) {
	// After the one-shot crash, revived nodes must not be re-killed on
	// later cycles (the done flag) — even though Cycle() keeps growing.
	e, _ := newCountingEngine(27, 10)
	e.SetChurn(&CatastropheChurn{AtCycle: 1, Fraction: 1})
	e.Run(3)
	if e.LiveCount() != 0 {
		t.Fatalf("live=%d, want 0", e.LiveCount())
	}
	for id := NodeID(0); id < 10; id++ {
		e.Revive(id)
	}
	e.Run(5)
	if e.LiveCount() != 10 {
		t.Fatalf("live=%d: catastrophe fired more than once", e.LiveCount())
	}
}

func TestCatastropheChurnMissedCycleNeverFires(t *testing.T) {
	// The model matches on equality, so a start past AtCycle never fires.
	e, _ := newCountingEngine(28, 10)
	e.Run(5) // advance past AtCycle before installing the model
	e.SetChurn(&CatastropheChurn{AtCycle: 3, Fraction: 1})
	e.Run(5)
	if e.LiveCount() != 10 {
		t.Fatalf("live=%d: catastrophe fired after its cycle passed", e.LiveCount())
	}
}

func TestSessionChurnDeterministic(t *testing.T) {
	// Session expiry bookkeeping is map-based; the iteration fix must keep
	// the whole trajectory seed-reproducible.
	trace := func() []int {
		e, _ := newCountingEngine(29, 30)
		e.SetChurn(&SessionChurn{MeanSession: 4, MeanDowntime: 3})
		out := make([]int, 0, 50)
		for i := 0; i < 50; i++ {
			e.RunCycle()
			out = append(out, e.LiveCount(), e.Size())
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SessionChurn trace diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
