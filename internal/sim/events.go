package sim

import (
	"container/heap"

	"gossipopt/internal/rng"
)

// The event-driven engine complements the cycle-driven one for experiments
// where message latency and loss matter. Protocols for this engine implement
// Handler and exchange messages via Send; periodic behaviour is expressed
// with timers (SendAfter to self).

// Handler processes messages delivered to a node in the event-driven model.
type Handler interface {
	// Deliver handles msg arriving at node n at the engine's current time.
	Deliver(n *Node, msg any, e *EventEngine)
}

// event is a message in flight (or a timer).
type event struct {
	at   float64
	seq  uint64 // tie-breaker for deterministic ordering
	from NodeID
	to   NodeID
	msg  any
}

// eventHeap is the engine's priority queue, ordered by delivery time
// with the insertion sequence number as the deterministic tie-breaker.
type eventHeap []event

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface: earlier delivery first, insertion
// order breaking ties.
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Peek returns the next event without removing it.
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// LinkModel decides per-message latency and loss.
type LinkModel interface {
	// Latency returns the transit delay for a message from src to dst.
	Latency(r *rng.RNG, src, dst NodeID) float64
	// Drop reports whether the message is lost in transit.
	Drop(r *rng.RNG, src, dst NodeID) bool
}

// UniformLink has latency uniform in [MinDelay, MaxDelay] and i.i.d. drop
// probability LossProb.
type UniformLink struct {
	MinDelay, MaxDelay float64
	LossProb           float64
}

// Latency implements LinkModel.
func (l UniformLink) Latency(r *rng.RNG, _, _ NodeID) float64 {
	if l.MaxDelay <= l.MinDelay {
		return l.MinDelay
	}
	return r.UniformIn(l.MinDelay, l.MaxDelay)
}

// Drop implements LinkModel.
func (l UniformLink) Drop(r *rng.RNG, _, _ NodeID) bool { return r.Bool(l.LossProb) }

// EventEngine is the event-driven simulation engine.
type EventEngine struct {
	rng *rng.RNG
	// arena stores the nodes densely by ID (same layout as the cycle
	// engine); handlers is the parallel dense slice of per-node handlers.
	arena    nodeArena
	handlers []Handler
	now      float64
	seq      uint64
	queue    eventHeap
	link     LinkModel
	filter   DeliveryFilter

	delivered, dropped int64
}

// NewEventEngine creates an event-driven engine with the given link model
// (nil means zero-latency, lossless links).
func NewEventEngine(seed uint64, link LinkModel) *EventEngine {
	if link == nil {
		link = UniformLink{}
	}
	return &EventEngine{
		rng:  rng.New(seed),
		link: link,
	}
}

// Now returns the current simulated time.
func (e *EventEngine) Now() float64 { return e.now }

// AdvanceTo moves the clock forward to t even when no event is due — time
// never moves backwards. RunUntil leaves the clock at the last delivered
// event, so external schedulers (the scenario runner's scripted events)
// advance it explicitly to make their actions happen at the scripted time:
// a timer armed after a revive must count from the revive's time, not from
// whenever the queue last had traffic.
func (e *EventEngine) AdvanceTo(t float64) {
	if t > e.now {
		e.now = t
	}
}

// RNG exposes the engine's random stream.
func (e *EventEngine) RNG() *rng.RNG { return e.rng }

// Delivered returns the count of delivered messages.
func (e *EventEngine) Delivered() int64 { return e.delivered }

// Dropped returns the count of messages lost in transit.
func (e *EventEngine) Dropped() int64 { return e.dropped }

// AddNode creates a live node whose messages are processed by h.
func (e *EventEngine) AddNode(h Handler) *Node {
	n := e.arena.alloc()
	n.Alive = true
	n.RNG = e.rng.Split()
	e.handlers = append(e.handlers, h)
	return n
}

// Node returns the node with the given ID, or nil.
func (e *EventEngine) Node(id NodeID) *Node { return e.arena.at(id) }

// Crash marks a node dead; queued messages to it will be dropped on
// delivery, exactly like a real crashed host. That includes its own
// pending timers, so a later Revive must re-arm any periodic behaviour.
func (e *EventEngine) Crash(id NodeID) {
	if n := e.arena.at(id); n != nil {
		n.Alive = false
	}
}

// Revive marks a crashed node live again (a host restart). The node's
// timers died with it — callers model the restart by scheduling fresh
// ones with SendAfter.
func (e *EventEngine) Revive(id NodeID) {
	if n := e.arena.at(id); n != nil {
		n.Alive = true
	}
}

// SetLink swaps the link model in force for subsequent Sends — the hook
// behind scripted latency spikes and loss storms. Messages already in
// flight keep the latency they were assigned; nil restores the default
// zero-latency lossless link.
func (e *EventEngine) SetLink(l LinkModel) {
	if l == nil {
		l = UniformLink{}
	}
	e.link = l
}

// SetDeliveryFilter installs (or, with nil, removes) the partition filter.
// It is consulted at delivery time, so messages in flight across a fresh
// partition are lost and delivery resumes for messages arriving after the
// heal. Self-messages (timers) are never filtered.
func (e *EventEngine) SetDeliveryFilter(f DeliveryFilter) { e.filter = f }

// LiveNodes returns all live nodes in ID order.
func (e *EventEngine) LiveNodes() []*Node {
	return e.AppendLiveNodes(make([]*Node, 0, e.arena.len()))
}

// AppendLiveNodes appends all live nodes in ID order onto buf and returns
// the extended slice — the scratch-reusing variant for repeated scans.
func (e *EventEngine) AppendLiveNodes(buf []*Node) []*Node {
	for ci := range e.arena.chunks {
		c := e.arena.chunks[ci]
		for i := range c {
			if c[i].Alive {
				buf = append(buf, &c[i])
			}
		}
	}
	return buf
}

// Send queues msg from src to dst, subject to the link model.
func (e *EventEngine) Send(src, dst NodeID, msg any) {
	if e.link.Drop(e.rng, src, dst) {
		e.dropped++
		return
	}
	at := e.now + e.link.Latency(e.rng, src, dst)
	e.push(at, src, dst, msg)
}

// SendAfter queues msg to dst after the given delay with no loss — used for
// timers (dst == src) and for reliable local self-messages. Timer events
// are never blocked by the delivery filter.
func (e *EventEngine) SendAfter(delay float64, dst NodeID, msg any) {
	e.push(e.now+delay, dst, dst, msg)
}

func (e *EventEngine) push(at float64, src, dst NodeID, msg any) {
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, from: src, to: dst, msg: msg})
}

// Step delivers the next event. It reports false when the queue is empty.
func (e *EventEngine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	n := e.arena.at(ev.to)
	if n == nil || !n.Alive || e.filter.blocked(ev.from, ev.to) {
		e.dropped++
		return true
	}
	if h := e.handlers[ev.to]; h != nil {
		e.delivered++
		h.Deliver(n, ev.msg, e)
	}
	return true
}

// RunUntil processes events until the queue drains, the time horizon is
// reached, or maxEvents deliveries occur. It returns the number of events
// processed.
func (e *EventEngine) RunUntil(horizon float64, maxEvents int64) int64 {
	var count int64
	for count < maxEvents {
		ev, ok := e.queue.Peek()
		if !ok || ev.at > horizon {
			return count
		}
		if !e.Step() {
			return count
		}
		count++
	}
	return count
}
