package sim

import (
	"testing"
)

// echoHandler counts deliveries and optionally forwards each message once.
type echoHandler struct {
	got     []any
	forward NodeID
	hops    int
}

func (h *echoHandler) Deliver(n *Node, msg any, e *EventEngine) {
	h.got = append(h.got, msg)
	if h.hops > 0 {
		h.hops--
		e.Send(n.ID, h.forward, msg)
	}
}

func TestEventDelivery(t *testing.T) {
	e := NewEventEngine(1, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	e.Send(n.ID, n.ID, "hello")
	for e.Step() {
	}
	if len(h.got) != 1 || h.got[0] != "hello" {
		t.Fatalf("got %v", h.got)
	}
}

func TestEventOrderingByTime(t *testing.T) {
	e := NewEventEngine(2, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	e.SendAfter(5, n.ID, "late")
	e.SendAfter(1, n.ID, "early")
	e.SendAfter(3, n.ID, "mid")
	for e.Step() {
	}
	want := []any{"early", "mid", "late"}
	for i, w := range want {
		if h.got[i] != w {
			t.Fatalf("delivery order %v, want %v", h.got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now=%v, want 5", e.Now())
	}
}

func TestEventTieBreakDeterministic(t *testing.T) {
	run := func() []any {
		e := NewEventEngine(3, nil)
		h := &echoHandler{}
		n := e.AddNode(h)
		for i := 0; i < 10; i++ {
			e.SendAfter(1, n.ID, i)
		}
		for e.Step() {
		}
		return h.got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-broken order not deterministic")
		}
	}
}

func TestCrashedNodeDropsMessages(t *testing.T) {
	e := NewEventEngine(4, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	e.Send(n.ID, n.ID, "x")
	e.Crash(n.ID)
	for e.Step() {
	}
	if len(h.got) != 0 {
		t.Fatalf("crashed node received %v", h.got)
	}
	if e.Dropped() != 1 {
		t.Fatalf("Dropped=%d, want 1", e.Dropped())
	}
}

func TestLossyLink(t *testing.T) {
	e := NewEventEngine(5, UniformLink{LossProb: 1})
	h := &echoHandler{}
	n := e.AddNode(h)
	for i := 0; i < 10; i++ {
		e.Send(n.ID, n.ID, i)
	}
	for e.Step() {
	}
	if len(h.got) != 0 {
		t.Fatalf("lossy link delivered %v", h.got)
	}
	if e.Dropped() != 10 {
		t.Fatalf("Dropped=%d", e.Dropped())
	}
	// SendAfter must bypass loss (it is a timer).
	e.SendAfter(1, n.ID, "timer")
	for e.Step() {
	}
	if len(h.got) != 1 {
		t.Fatal("timer was dropped")
	}
}

func TestLatencyBounds(t *testing.T) {
	e := NewEventEngine(6, UniformLink{MinDelay: 2, MaxDelay: 4})
	h := &echoHandler{}
	n := e.AddNode(h)
	e.Send(n.ID, n.ID, "x")
	e.Step()
	if now := e.Now(); now < 2 || now > 4 {
		t.Fatalf("delivery time %v outside [2,4]", now)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEventEngine(7, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	e.SendAfter(1, n.ID, "a")
	e.SendAfter(10, n.ID, "b")
	count := e.RunUntil(5, 1000)
	if count != 1 {
		t.Fatalf("processed %d events before horizon, want 1", count)
	}
	if len(h.got) != 1 || h.got[0] != "a" {
		t.Fatalf("got %v", h.got)
	}
}

func TestRunUntilMaxEvents(t *testing.T) {
	e := NewEventEngine(8, nil)
	// Two nodes ping-ponging forever.
	ha := &echoHandler{hops: 1 << 30}
	hb := &echoHandler{hops: 1 << 30}
	a := e.AddNode(ha)
	b := e.AddNode(hb)
	ha.forward = b.ID
	hb.forward = a.ID
	e.SendAfter(1, a.ID, "ping")
	count := e.RunUntil(1e18, 50)
	if count != 50 {
		t.Fatalf("processed %d events, want 50", count)
	}
}

func TestDeliveredCounter(t *testing.T) {
	e := NewEventEngine(9, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	for i := 0; i < 5; i++ {
		e.Send(n.ID, n.ID, i)
	}
	for e.Step() {
	}
	if e.Delivered() != 5 {
		t.Fatalf("Delivered=%d", e.Delivered())
	}
}

func TestEventLiveNodes(t *testing.T) {
	e := NewEventEngine(10, nil)
	a := e.AddNode(&echoHandler{})
	b := e.AddNode(&echoHandler{})
	c := e.AddNode(&echoHandler{})
	e.Crash(b.ID)
	live := e.LiveNodes()
	if len(live) != 2 || live[0].ID != a.ID || live[1].ID != c.ID {
		t.Fatalf("LiveNodes = %v", live)
	}
	if e.Node(b.ID) == nil || e.Node(b.ID).Alive {
		t.Fatal("crashed node state wrong")
	}
	if e.Node(99) != nil {
		t.Fatal("unknown node not nil")
	}
}
