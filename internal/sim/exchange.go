package sim

// The two-phase exchange model.
//
// Engine.RunCycle executes each cycle in two phases:
//
//   - Phase 1 (parallel propose): live nodes are partitioned into
//     contiguous shards, one per worker. Each worker steps its nodes'
//     protocols; a protocol implementing Proposer performs its node-local
//     work (solver evaluation, timer bookkeeping, sampling a partner from
//     its own view) and *proposes* exchanges by posting Messages through
//     Proposals. During this phase a protocol may only read and write the
//     state of its own node — never a peer's — which is what makes the
//     phase safe to run on concurrent workers.
//
//   - Phase 2 (deterministic apply): the per-worker outboxes are
//     concatenated in shard order (= sender-ID order, independent of the
//     worker count), shuffled into a seed-derived canonical order with the
//     engine RNG, and delivered one at a time on the coordinator
//     goroutine. A receiving protocol (Receiver) may mutate any node's
//     state, including replying into the initiator's — apply is
//     sequential, so there are no races and the outcome depends only on
//     the canonical order.
//
// Because every phase-1 draw comes from the stepped node's private RNG and
// every phase-2 draw happens in canonical order on the coordinator, a run's
// trace is bit-identical for any worker count, workers=1 included.
//
// Protocols that predate the exchange model keep working: anything
// implementing only CycleStepper is stepped sequentially between the two
// phases, in a freshly shuffled order, exactly like the historical
// sequential engine.

// Message is one proposed exchange: a payload traveling from the proposing
// node to a peer's protocol slot, delivered during the apply phase.
type Message struct {
	// From is the proposing node; To is the destination node.
	From, To NodeID
	// Slot is the protocol slot addressed on the destination node. All
	// bundled protocols are symmetric (Newscast talks to Newscast, OptNode
	// to OptNode), so Slot also locates the sender's own instance when a
	// failure must be reported back.
	Slot int
	// Data is the protocol-specific payload. Ownership transfers to the
	// receiver: proposers must not retain or mutate it after Send.
	Data any
}

// Proposer is the phase-1 contract of the two-phase exchange model.
// Propose performs the node's local work for the cycle and posts exchange
// proposals. It runs concurrently with other nodes' Propose calls and must
// only touch n's own state (its protocols, its RNG) and px.
type Proposer interface {
	Propose(n *Node, px *Proposals)
}

// Receiver is the phase-2 contract: Receive handles one delivered message.
// It runs sequentially on the coordinator and may mutate any node,
// typically its own state plus a symmetric reply into the sender's. The
// delivery filter is consulted for the initiating message only; a
// delivered exchange completes atomically, reply leg included — so a
// filter models a link being down (no exchange at all), not a one-way
// cut. Per-link asymmetric filters would need the reply routed as its
// own message.
type Receiver interface {
	Receive(n *Node, e *Engine, msg Message)
}

// Undeliverable is implemented by protocols that want failure feedback:
// Undelivered is invoked on the *sender's* protocol instance when the
// destination node is dead or gone at delivery time (n is the sender).
type Undeliverable interface {
	Undelivered(n *Node, e *Engine, msg Message)
}

// Proposals is a worker-local outbox handed to Propose. It also aggregates
// per-worker bookkeeping (function-evaluation counts) so phase 1 needs no
// shared atomics.
type Proposals struct {
	cycle int64
	from  NodeID
	msgs  []Message
	evals int64
}

// Cycle returns the number of completed cycles, i.e. the logical timestamp
// of the cycle being proposed.
func (px *Proposals) Cycle() int64 { return px.cycle }

// Send proposes an exchange: data will be delivered to the given protocol
// slot of node `to` during the apply phase. Ownership of data (and any
// slices inside it) transfers to the receiver. A node's own messages keep
// their proposal order within the outbox; across nodes the engine imposes
// the canonical order.
func (px *Proposals) Send(to NodeID, slot int, data any) {
	px.msgs = append(px.msgs, Message{From: px.from, To: to, Slot: slot, Data: data})
}

// CountEvals adds k objective evaluations to the engine's global counter
// (aggregated race-free at the phase barrier; see Engine.Evals).
func (px *Proposals) CountEvals(k int64) { px.evals += k }

// begin readies the outbox for the next node of the worker's shard.
func (px *Proposals) begin(id NodeID) { px.from = id }
