package sim

// The two-phase exchange model.
//
// Engine.RunCycle executes each cycle in two phases, both running on the
// engine's persistent worker pool:
//
//   - Phase 1 (parallel propose): live nodes are partitioned into
//     contiguous shards, one per propose worker. Each worker steps its
//     nodes' protocols; a protocol implementing Proposer performs its
//     node-local work (solver evaluation, timer bookkeeping, sampling a
//     partner from its own view) and *proposes* exchanges by posting
//     Messages through Proposals. During this phase a protocol may only
//     read and write the state of its own node — never a peer's — which
//     is what makes the phase safe to run on concurrent workers.
//
//   - Phase 2 (parallel apply): the per-worker outboxes are concatenated
//     in shard order (= sender-ID order, independent of the propose worker
//     count) and shuffled into a seed-derived canonical order with the
//     engine RNG. Delivery then proceeds in *rounds*: each round's
//     messages are partitioned by the node that must handle them — the
//     destination for deliverable messages, the sender for undeliverable
//     ones — so every node's messages land on exactly one apply worker,
//     in canonical order. A handler is node-local: Receive/Undelivered may
//     touch only the handled node's state and post follow-up messages
//     (replies) through the ApplyContext; the follow-ups form the next
//     round, globally ordered by the canonical index of the message that
//     triggered them. Rounds repeat until no protocol posts a follow-up.
//
// Determinism: the per-node handler-call order is the canonical order
// restricted to that node, which no sharding can change; follow-ups are
// re-canonicalized by trigger index; counters are classified on the
// coordinator; and every apply-phase random draw comes from the handled
// node's private RNG. A run's trace is therefore bit-identical for any
// (propose workers × apply workers) combination, 1×1 included.
//
// The exchange idiom: symmetric protocols complete a pairwise exchange by
// replying in the next round (ax.Send back to msg.From) instead of
// reaching into the initiator through the engine, so each leg of the
// exchange crosses the network — and the delivery filter — on its own.
// A reply that cannot be delivered (a one-way partition) fires the
// replier's Undelivered hook, which is where a protocol compensates
// (gossip.Average rolls its half of the exchange back there, keeping the
// global sum conserved under asymmetric cuts).

// Message is one proposed exchange: a payload traveling from the proposing
// node to a peer's protocol slot, delivered during the apply phase.
type Message struct {
	// From is the proposing node; To is the destination node.
	From, To NodeID
	// Slot is the protocol slot addressed on the destination node. All
	// bundled protocols are symmetric (Newscast talks to Newscast, OptNode
	// to OptNode), so Slot also locates the sender's own instance when a
	// failure must be reported back.
	Slot int
	// Data is the protocol-specific payload. Ownership transfers to the
	// receiver: proposers must not retain or mutate it after Send. A
	// payload implementing Recyclable returns to its free list when the
	// cycle ends (see freelist.go for the full ownership rules), so
	// handlers must not retain it — or slices inside it — across cycles.
	Data any
	// redelivered marks a leg re-entering a later cycle after a net-model
	// delay (see netmodel.go): it is re-checked against liveness and the
	// delivery filter at its release cycle, but never judged by the model
	// twice — a delayed leg cannot be re-delayed, re-lost or corrupted.
	redelivered bool
}

// Proposer is the phase-1 contract of the two-phase exchange model.
// Propose performs the node's local work for the cycle and posts exchange
// proposals. It runs concurrently with other nodes' Propose calls and must
// only touch n's own state (its protocols, its RNG) and px.
type Proposer interface {
	Propose(n *Node, px *Proposals)
}

// Receiver is the phase-2 contract: Receive handles one delivered message
// on the destination node n. It runs on an apply worker that owns n for
// the round, concurrently with other nodes' handlers, and therefore must
// be node-local: it may touch only n's own state (its protocols, its RNG)
// and ax. To complete a symmetric exchange it posts a reply through
// ax.Send — delivered in the next apply round of the same cycle — instead
// of mutating the initiator directly.
type Receiver interface {
	Receive(n *Node, ax *ApplyContext, msg Message)
}

// Undeliverable is implemented by protocols that want failure feedback:
// Undelivered is invoked on the *sender's* protocol instance when the
// destination node is dead or unreachable at delivery time (n is the
// sender) — the failure a real initiator would observe as a timed-out
// connection. Like Receive it runs on an apply worker and must stay
// node-local; ax.Alive distinguishes a confirmed crash from a peer that
// is merely unreachable (delivery filter / partition), and ax.Send lets a
// protocol compensate for a half-completed exchange whose reply leg died.
type Undeliverable interface {
	Undelivered(n *Node, ax *ApplyContext, msg Message)
}

// Proposals is a worker-local outbox handed to Propose. It also aggregates
// per-worker bookkeeping (function-evaluation counts) so phase 1 needs no
// shared atomics.
type Proposals struct {
	cycle int64
	from  NodeID
	msgs  []Message
	evals int64
}

// Cycle returns the number of completed cycles, i.e. the logical timestamp
// of the cycle being proposed.
func (px *Proposals) Cycle() int64 { return px.cycle }

// Send proposes an exchange: data will be delivered to the given protocol
// slot of node `to` during the apply phase. Ownership of data (and any
// slices inside it) transfers to the receiver. A node's own messages keep
// their proposal order within the outbox; across nodes the engine imposes
// the canonical order.
func (px *Proposals) Send(to NodeID, slot int, data any) {
	px.msgs = append(px.msgs, Message{From: px.from, To: to, Slot: slot, Data: data})
}

// CountEvals adds k objective evaluations to the engine's global counter
// (aggregated race-free at the phase barrier; see Engine.Evals).
func (px *Proposals) CountEvals(k int64) { px.evals += k }

// begin readies the outbox for the next node of the worker's shard.
func (px *Proposals) begin(id NodeID) { px.from = id }

// followUp is one reply posted during apply, tagged with the canonical
// index of the message whose handler posted it so the coordinator can
// restore the exact order a sequential apply would have produced.
type followUp struct {
	trigger int
	msg     Message
}

// ApplyContext is the restricted per-worker context handed to phase-2
// handlers (Receive/Undelivered). It deliberately does not expose the
// engine: a handler sees only the node it was invoked on, the logical
// cycle time, read-only liveness (frozen for the duration of the apply
// phase), counters, and an outbox for follow-up messages. That restriction
// is what makes the apply phase shardable by destination.
type ApplyContext struct {
	engine *Engine
	cycle  int64
	// self is the node currently being handled; follow-ups are sent from
	// it.
	self NodeID
	// trigger is the canonical index of the message being handled.
	trigger int
	outbox  []followUp
	evals   int64
}

// reset readies the context for a new apply round.
func (ax *ApplyContext) reset(e *Engine, cycle int64) {
	ax.engine = e
	ax.cycle = cycle
	ax.outbox = ax.outbox[:0]
	ax.evals = 0
}

// Cycle returns the number of completed cycles, i.e. the logical timestamp
// of the cycle being applied (the same stamp Propose saw).
func (ax *ApplyContext) Cycle() int64 { return ax.cycle }

// Send posts a follow-up message from the handled node, delivered in the
// next apply round of the same cycle — the reply leg of a symmetric
// exchange. Ownership of data transfers to the receiver, exactly as with
// Proposals.Send. Follow-ups are re-canonicalized across workers by the
// triggering message's canonical index, so their delivery order is
// independent of the apply worker count.
func (ax *ApplyContext) Send(to NodeID, slot int, data any) {
	ax.outbox = append(ax.outbox, followUp{
		trigger: ax.trigger,
		msg:     Message{From: ax.self, To: to, Slot: slot, Data: data},
	})
}

// Alive reports whether the node with the given ID currently exists and is
// live. Node liveness is frozen while the apply phase runs (churn happens
// at the start of a cycle, observers at its end, and handlers cannot crash
// nodes), so the query is safe from concurrent apply workers. T-Man uses
// it in Undelivered to distinguish a confirmed crash (tombstone) from an
// unreachable, partitioned peer (re-adopted after the heal).
func (ax *ApplyContext) Alive(id NodeID) bool {
	n := ax.engine.arena.at(id)
	return n != nil && n.Alive
}

// CountEvals adds k objective evaluations to the engine's global counter
// (aggregated race-free at the round barrier; see Engine.Evals).
func (ax *ApplyContext) CountEvals(k int64) { ax.evals += k }
