package sim

import (
	"testing"
)

// pingProto is a minimal two-phase protocol: every cycle each node
// proposes a ping to (id+1) mod n; receivers count pings and remember the
// order of senders; undeliverable pings are counted by the sender.
type pingProto struct {
	next NodeID

	sent, got, failed int
	fromOrder         []NodeID
}

func (p *pingProto) Propose(n *Node, px *Proposals) {
	p.sent++
	px.Send(p.next, 0, "ping")
}

func (p *pingProto) Receive(n *Node, ax *ApplyContext, msg Message) {
	p.got++
	p.fromOrder = append(p.fromOrder, msg.From)
}

func (p *pingProto) Undelivered(n *Node, ax *ApplyContext, msg Message) { p.failed++ }

func buildPingRing(seed uint64, n, workers int) (*Engine, []*pingProto) {
	e := NewEngine(seed)
	e.SetWorkers(workers)
	protos := make([]*pingProto, 0, n)
	e.SetNodeFactory(func(nd *Node) {
		p := &pingProto{next: NodeID((int64(nd.ID) + 1) % int64(n))}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(n)
	return e, protos
}

func TestProposalsDeliveredToReceiver(t *testing.T) {
	e, protos := buildPingRing(1, 10, 1)
	e.Run(5)
	for i, p := range protos {
		if p.sent != 5 || p.got != 5 || p.failed != 0 {
			t.Fatalf("node %d: sent=%d got=%d failed=%d, want 5/5/0", i, p.sent, p.got, p.failed)
		}
	}
}

func TestUndeliverableFeedback(t *testing.T) {
	e, protos := buildPingRing(2, 4, 1)
	e.Crash(1)
	e.Run(3)
	// Node 0 pings dead node 1: every attempt must come back as a failure
	// (it still receives node 3's pings normally).
	if protos[0].failed != 3 || protos[0].got != 3 {
		t.Fatalf("sender to dead peer: failed=%d got=%d, want 3/3", protos[0].failed, protos[0].got)
	}
	// Node 1 is dead: it neither proposes nor receives.
	if protos[1].sent != 0 || protos[1].got != 0 {
		t.Fatalf("dead node acted: sent=%d got=%d", protos[1].sent, protos[1].got)
	}
	// Node 2 still receives from node 1? No — 1 is dead; 2 gets nothing.
	if protos[2].got != 0 {
		t.Fatalf("node 2 received %d pings from dead node 1", protos[2].got)
	}
}

// TestApplyOrderWorkerInvariant is the heart of the determinism story: the
// canonical delivery order (observed through each receiver's fromOrder)
// must be bit-identical for every worker count.
func TestApplyOrderWorkerInvariant(t *testing.T) {
	trace := func(workers int) [][]NodeID {
		e, protos := buildPingRing(7, 64, workers)
		e.SetChurn(&RateChurn{CrashProb: 0.05, JoinPerCycle: 1, MinLive: 4})
		e.Run(20)
		out := make([][]NodeID, len(protos))
		for i, p := range protos {
			out[i] = p.fromOrder
		}
		return out
	}
	want := trace(1)
	for _, w := range []int{2, 4, 8} {
		got := trace(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d nodes, want %d", w, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d node %d: %d deliveries, want %d", w, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d node %d delivery %d: from %d, want %d", w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// echoProto exercises the reply-round machinery: every cycle each node
// proposes a ping to its partner; the receiver answers through ax.Send and
// the initiator records the pong. One cycle therefore spans two apply
// rounds, and the pong must arrive within the same cycle.
type echoProto struct {
	partner NodeID

	pings, pongs, failed int
	pongCycles           []int64
}

func (p *echoProto) Undelivered(n *Node, ax *ApplyContext, msg Message) { p.failed++ }

func (p *echoProto) Propose(n *Node, px *Proposals) {
	px.Send(p.partner, 0, "ping")
}

func (p *echoProto) Receive(n *Node, ax *ApplyContext, msg Message) {
	switch msg.Data {
	case "ping":
		p.pings++
		ax.Send(msg.From, 0, "pong")
	case "pong":
		p.pongs++
		p.pongCycles = append(p.pongCycles, ax.Cycle())
	}
}

// TestReplyRoundsCompleteWithinCycle: follow-ups posted by Receive are
// delivered in a later apply round of the same cycle, so an exchange's
// reply leg lands before the cycle ends.
func TestReplyRoundsCompleteWithinCycle(t *testing.T) {
	e := NewEngine(3)
	protos := make([]*echoProto, 0, 2)
	e.SetNodeFactory(func(nd *Node) {
		p := &echoProto{partner: 1 - nd.ID}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(2)
	e.Run(4)
	for i, p := range protos {
		if p.pings != 4 || p.pongs != 4 {
			t.Fatalf("node %d: pings=%d pongs=%d, want 4/4", i, p.pings, p.pongs)
		}
		for j, c := range p.pongCycles {
			if c != int64(j) {
				t.Fatalf("node %d pong %d arrived in cycle %d", i, j, c)
			}
		}
	}
	// Each cycle: 2 pings + 2 pongs delivered.
	if e.Delivered() != 16 || e.Dropped() != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 16/0", e.Delivered(), e.Dropped())
	}
}

// TestReplyToUnreachableFiresUndelivered: a reply leg blocked by a
// directional filter takes the undeliverable path on the replier.
func TestReplyToUnreachableFiresUndelivered(t *testing.T) {
	e := NewEngine(5)
	a := e.AddNode() // island 0 under a 2-way one-way split
	b := e.AddNode() // island 1
	ea := &echoProto{partner: b.ID}
	eb := &echoProto{partner: a.ID}
	a.Protocols = []Protocol{ea}
	b.Protocols = []Protocol{eb}

	e.SetDeliveryFilter(SplitGroupsOneWay(2))
	e.RunCycle()
	// a's ping (0→1) crosses; b's pong (1→0) is blocked, as is b's own
	// ping. So b saw one ping, nobody saw a pong.
	if eb.pings != 1 || ea.pongs != 0 || ea.pings != 0 {
		t.Fatalf("one-way split: b.pings=%d a.pongs=%d a.pings=%d, want 1/0/0", eb.pings, ea.pongs, ea.pings)
	}
	// b's Undelivered fired twice: once for its own ping, once for the
	// blocked pong reply.
	if eb.failed != 2 || ea.failed != 0 {
		t.Fatalf("undelivered: b=%d a=%d, want 2/0", eb.failed, ea.failed)
	}
	if e.Delivered() != 1 || e.Dropped() != 2 {
		t.Fatalf("delivered=%d dropped=%d, want 1/2", e.Delivered(), e.Dropped())
	}
}

// TestEngineEvalCounter: Proposals.CountEvals aggregates into Engine.Evals
// across workers and cycles.
func TestEngineEvalCounter(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(4)
		e.SetWorkers(workers)
		e.SetNodeFactory(func(nd *Node) {
			nd.Protocols = []Protocol{evalCounterProto{}}
		})
		e.AddNodes(30)
		e.Crash(5)
		e.Run(10)
		// 29 live nodes × 10 cycles × 1 eval.
		if got := e.Evals(); got != 290 {
			t.Fatalf("workers=%d: Evals = %d, want 290", workers, got)
		}
	}
}

type evalCounterProto struct{}

func (evalCounterProto) Propose(n *Node, px *Proposals) { px.CountEvals(1) }

// TestLiveCountMaintained: the O(1) counter must agree with a full scan
// through arbitrary Crash/Revive/churn sequences.
func TestLiveCountMaintained(t *testing.T) {
	e, _ := newCountingEngine(5, 50)
	scan := func() int {
		c := 0
		for _, n := range e.AllNodes() {
			if n.Alive {
				c++
			}
		}
		return c
	}
	check := func(at string) {
		if e.LiveCount() != scan() {
			t.Fatalf("%s: LiveCount=%d scan=%d", at, e.LiveCount(), scan())
		}
	}
	check("init")
	e.Crash(3)
	e.Crash(3) // double crash must not double-decrement
	check("crash")
	e.Revive(3)
	e.Revive(3) // double revive must not double-increment
	check("revive")
	e.Crash(999) // unknown ID is a no-op
	check("unknown")
	e.SetChurn(&RateChurn{CrashProb: 0.1, JoinPerCycle: 1.5, MinLive: 5})
	e.Run(30)
	check("churn")
}
