package sim

import (
	"testing"
)

// pingProto is a minimal two-phase protocol: every cycle each node
// proposes a ping to (id+1) mod n; receivers count pings and remember the
// order of senders; undeliverable pings are counted by the sender.
type pingProto struct {
	next NodeID

	sent, got, failed int
	fromOrder         []NodeID
}

func (p *pingProto) Propose(n *Node, px *Proposals) {
	p.sent++
	px.Send(p.next, 0, "ping")
}

func (p *pingProto) Receive(n *Node, e *Engine, msg Message) {
	p.got++
	p.fromOrder = append(p.fromOrder, msg.From)
}

func (p *pingProto) Undelivered(n *Node, e *Engine, msg Message) { p.failed++ }

func buildPingRing(seed uint64, n, workers int) (*Engine, []*pingProto) {
	e := NewEngine(seed)
	e.SetWorkers(workers)
	protos := make([]*pingProto, 0, n)
	e.SetNodeFactory(func(nd *Node) {
		p := &pingProto{next: NodeID((int64(nd.ID) + 1) % int64(n))}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(n)
	return e, protos
}

func TestProposalsDeliveredToReceiver(t *testing.T) {
	e, protos := buildPingRing(1, 10, 1)
	e.Run(5)
	for i, p := range protos {
		if p.sent != 5 || p.got != 5 || p.failed != 0 {
			t.Fatalf("node %d: sent=%d got=%d failed=%d, want 5/5/0", i, p.sent, p.got, p.failed)
		}
	}
}

func TestUndeliverableFeedback(t *testing.T) {
	e, protos := buildPingRing(2, 4, 1)
	e.Crash(1)
	e.Run(3)
	// Node 0 pings dead node 1: every attempt must come back as a failure
	// (it still receives node 3's pings normally).
	if protos[0].failed != 3 || protos[0].got != 3 {
		t.Fatalf("sender to dead peer: failed=%d got=%d, want 3/3", protos[0].failed, protos[0].got)
	}
	// Node 1 is dead: it neither proposes nor receives.
	if protos[1].sent != 0 || protos[1].got != 0 {
		t.Fatalf("dead node acted: sent=%d got=%d", protos[1].sent, protos[1].got)
	}
	// Node 2 still receives from node 1? No — 1 is dead; 2 gets nothing.
	if protos[2].got != 0 {
		t.Fatalf("node 2 received %d pings from dead node 1", protos[2].got)
	}
}

// TestApplyOrderWorkerInvariant is the heart of the determinism story: the
// canonical delivery order (observed through each receiver's fromOrder)
// must be bit-identical for every worker count.
func TestApplyOrderWorkerInvariant(t *testing.T) {
	trace := func(workers int) [][]NodeID {
		e, protos := buildPingRing(7, 64, workers)
		e.SetChurn(&RateChurn{CrashProb: 0.05, JoinPerCycle: 1, MinLive: 4})
		e.Run(20)
		out := make([][]NodeID, len(protos))
		for i, p := range protos {
			out[i] = p.fromOrder
		}
		return out
	}
	want := trace(1)
	for _, w := range []int{2, 4, 8} {
		got := trace(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d nodes, want %d", w, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d node %d: %d deliveries, want %d", w, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d node %d delivery %d: from %d, want %d", w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// mixedProto pairs a Proposer with a legacy CycleStepper on the same node
// and records the phase interleaving.
type phaseLog struct {
	events *[]string
}

type proposerProto struct{ log *phaseLog }

func (p *proposerProto) Propose(n *Node, px *Proposals) {
	*p.log.events = append(*p.log.events, "propose")
	px.Send(n.ID, 0, "self")
}

func (p *proposerProto) Receive(n *Node, e *Engine, msg Message) {
	*p.log.events = append(*p.log.events, "apply")
}

type legacyProto struct{ log *phaseLog }

func (l *legacyProto) NextCycle(n *Node, e *Engine) {
	*l.log.events = append(*l.log.events, "legacy")
}

// TestPhaseOrdering: propose happens first, then the legacy sequential
// step, then apply — so legacy protocols observe pre-exchange state.
func TestPhaseOrdering(t *testing.T) {
	var events []string
	log := &phaseLog{events: &events}
	e := NewEngine(3)
	n := e.AddNode()
	n.Protocols = []Protocol{&proposerProto{log: log}, &legacyProto{log: log}}
	e.RunCycle()
	want := []string{"propose", "legacy", "apply"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestEngineEvalCounter: Proposals.CountEvals aggregates into Engine.Evals
// across workers and cycles.
func TestEngineEvalCounter(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(4)
		e.SetWorkers(workers)
		e.SetNodeFactory(func(nd *Node) {
			nd.Protocols = []Protocol{evalCounterProto{}}
		})
		e.AddNodes(30)
		e.Crash(5)
		e.Run(10)
		// 29 live nodes × 10 cycles × 1 eval.
		if got := e.Evals(); got != 290 {
			t.Fatalf("workers=%d: Evals = %d, want 290", workers, got)
		}
	}
}

type evalCounterProto struct{}

func (evalCounterProto) Propose(n *Node, px *Proposals) { px.CountEvals(1) }

// TestLiveCountMaintained: the O(1) counter must agree with a full scan
// through arbitrary Crash/Revive/churn sequences.
func TestLiveCountMaintained(t *testing.T) {
	e, _ := newCountingEngine(5, 50)
	scan := func() int {
		c := 0
		for _, n := range e.AllNodes() {
			if n.Alive {
				c++
			}
		}
		return c
	}
	check := func(at string) {
		if e.LiveCount() != scan() {
			t.Fatalf("%s: LiveCount=%d scan=%d", at, e.LiveCount(), scan())
		}
	}
	check("init")
	e.Crash(3)
	e.Crash(3) // double crash must not double-decrement
	check("crash")
	e.Revive(3)
	e.Revive(3) // double revive must not double-increment
	check("revive")
	e.Crash(999) // unknown ID is a no-op
	check("unknown")
	e.SetChurn(&RateChurn{CrashProb: 0.1, JoinPerCycle: 1.5, MinLive: 5})
	e.Run(30)
	check("churn")
}
