package sim

import (
	"sync"
	"sync/atomic"
)

// Payload recycling. A cycle at n = 10^6 creates on the order of n message
// payloads (view snapshots, best-point exchanges); allocating them fresh
// every cycle makes memory traffic, not parallelism, the throughput
// ceiling. Protocols therefore opt in to recycling: they draw payloads
// from a typed FreeList and implement Recyclable, and the engine returns
// every recyclable payload to its list at the end of the cycle — in
// releaseApplyScratch, the one place a cycle's payload references already
// died.
//
// The ownership rules extend the "ownership transfers on Send" contract of
// exchange.go:
//
//   - A recyclable payload must be sent exactly once. Sending the same
//     pointer twice (or never) double-recycles (or leaks) it.
//   - The receiving handler owns the payload only until its cycle ends. It
//     must not retain the pointer — or any slice inside it — beyond the
//     handler call, except by forwarding a slice inside a *different*
//     payload sent in the same cycle (Cyclon echoes the request subset in
//     its reply; the reply's Recycle must then drop the alias, never
//     recycle it).
//   - Recycle must reset slice fields to length zero (keeping capacity —
//     that reuse is the whole point) and nil out aliases it does not own.
//
// The engine recycles on the coordinator; Get runs on parallel propose and
// apply workers, which is why the free list wraps sync.Pool rather than a
// plain slice.

// Recyclable is the opt-in recycling contract for message payloads. The
// engine calls Recycle exactly once per sent payload, at the end of the
// cycle that delivered (or dropped) it, after every handler has run.
type Recyclable interface {
	Recycle()
}

// FreeList is a typed free list of payload structs, safe for concurrent
// use. The zero value is ready to use.
type FreeList[T any] struct {
	pool sync.Pool
}

// Free-list hit/miss instrumentation. Free lists are package-level pools
// shared by every engine in the process, so the counters are process-global
// too. Counting is opt-in: Get runs on parallel propose and apply workers,
// and the default path must not pay cross-worker atomic adds per payload —
// off (the default), Get's only instrumentation cost is one uncontended
// atomic load.
var (
	flStatsOn        atomic.Bool
	flHits, flMisses atomic.Int64
)

// EnableFreeListStats turns process-global free-list hit/miss counting on
// or off. The counters keep their accumulated values across toggles; they
// surface in every engine's Stats snapshot as FreeListHits/FreeListMisses.
func EnableFreeListStats(on bool) { flStatsOn.Store(on) }

// FreeListStats returns the process-global free-list counters: Gets served
// from a recycled payload (hits) and Gets that allocated fresh (misses).
func FreeListStats() (hits, misses int64) { return flHits.Load(), flMisses.Load() }

// Get returns a recycled *T, or a freshly allocated zero value when the
// list is empty. Recycled values keep whatever the type's Recycle method
// left in them (by convention: zero-length slices with warm capacity).
func (f *FreeList[T]) Get() *T {
	if v := f.pool.Get(); v != nil {
		if flStatsOn.Load() {
			flHits.Add(1)
		}
		return v.(*T)
	}
	if flStatsOn.Load() {
		flMisses.Add(1)
	}
	return new(T)
}

// Put returns p to the free list. Callers normally do not call Put
// directly: the payload's Recycle method does, and the engine calls
// Recycle at cycle end.
func (f *FreeList[T]) Put(p *T) {
	if p != nil {
		f.pool.Put(p)
	}
}

// recyclePayload returns a message's payload to its free list when the
// payload opted in.
func recyclePayload(m *Message) {
	if r, ok := m.Data.(Recyclable); ok {
		r.Recycle()
	}
}
