package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Payload recycling. A cycle at n = 10^6 creates on the order of n message
// payloads (view snapshots, best-point exchanges); allocating them fresh
// every cycle makes memory traffic, not parallelism, the throughput
// ceiling. Protocols therefore opt in to recycling: they draw payloads
// from a typed FreeList and implement Recyclable, and the engine returns
// every recyclable payload to its list at the end of the cycle — in
// releaseApplyScratch, the one place a cycle's payload references already
// died.
//
// The ownership rules extend the "ownership transfers on Send" contract of
// exchange.go:
//
//   - A recyclable payload must be sent exactly once. Sending the same
//     pointer twice (or never) double-recycles (or leaks) it.
//   - The receiving handler owns the payload only until its cycle ends. It
//     must not retain the pointer — or any slice inside it — beyond the
//     handler call, except by forwarding a slice inside a *different*
//     payload sent in the same cycle (Cyclon echoes the request subset in
//     its reply; the reply's Recycle must then drop the alias, never
//     recycle it).
//   - Recycle must reset slice fields to length zero (keeping capacity —
//     that reuse is the whole point) and nil out aliases it does not own.
//     A payload carrying a home-pool back-pointer (generic payloads whose
//     free list cannot be a package variable) keeps that one field across
//     the reset; the ownership analyzer knows the exemption.
//
// The list holds strong references in mutex-guarded per-shard stacks, NOT
// a sync.Pool: pool contents are released at every GC, and a million-node
// cycle that still allocates makes GCs frequent enough that the pool was
// observed near-empty every cycle — each miss re-allocating both the
// payload and its interior slices, which itself sustained the GC pressure.
// Strong references break that feedback loop. The lists cannot grow
// without bound: the engine recycles exactly the payloads a cycle sent, so
// a list's size is bounded by the peak number of in-flight payloads of its
// type. Sharding (with a round-robin cursor) keeps Get/Put cheap when
// propose or apply workers draw concurrently.

// Recyclable is the opt-in recycling contract for message payloads. The
// engine calls Recycle exactly once per sent payload, at the end of the
// cycle that delivered (or dropped) it, after every handler has run.
type Recyclable interface {
	Recycle()
}

// flShards is the number of stacks a FreeList spreads its payloads over —
// a small power of two so the cursor masks instead of dividing.
const flShards = 8

// FreeList is a typed free list of payload structs, safe for concurrent
// use. The zero value is ready to use.
type FreeList[T any] struct {
	next   atomic.Uint32
	shards [flShards]flShard[T]
}

// flShard is one mutex-guarded stack of recycled payloads.
type flShard[T any] struct {
	mu    sync.Mutex
	items []*T
}

// Free-list hit/miss instrumentation. Free lists are package-level pools
// shared by every engine in the process, so the counters are process-global
// too. Counting is opt-in: Get runs on parallel propose and apply workers,
// and the default path must not pay cross-worker atomic adds per payload —
// off (the default), Get's only instrumentation cost is one uncontended
// atomic load.
var (
	flStatsOn        atomic.Bool
	flHits, flMisses atomic.Int64
)

// EnableFreeListStats turns process-global free-list hit/miss counting on
// or off. The counters keep their accumulated values across toggles; they
// surface in every engine's Stats snapshot as FreeListHits/FreeListMisses.
func EnableFreeListStats(on bool) { flStatsOn.Store(on) }

// FreeListStats returns the process-global free-list counters: Gets served
// from a recycled payload (hits) and Gets that allocated fresh (misses).
func FreeListStats() (hits, misses int64) { return flHits.Load(), flMisses.Load() }

// Double-release detection. The ownership rules make "send exactly once"
// the caller's obligation; a violation corrupts state at a distance (two
// nodes handing out the same payload). The detector is opt-in like the
// stats: off (the default), Get and Put pay one atomic load each; on, every
// outstanding payload pointer is tracked in a process-global set and a
// second release of the same pointer panics at the Put, naming the type —
// at the misuse site, not at the eventual corruption.
var (
	flDebugOn  atomic.Bool
	flDebugMu  sync.Mutex
	flDebugSet map[any]struct{}
)

// EnableFreeListDebug turns the process-global double-release detector on
// or off. Enabling starts with an empty tracking set, so only releases
// after the call are checked; disabling drops the set.
func EnableFreeListDebug(on bool) {
	flDebugMu.Lock()
	defer flDebugMu.Unlock()
	if on {
		flDebugSet = make(map[any]struct{})
	} else {
		flDebugSet = nil
	}
	flDebugOn.Store(on)
}

// flDebugTrack records p as released, panicking if it already was.
func flDebugTrack(p any) {
	flDebugMu.Lock()
	defer flDebugMu.Unlock()
	if flDebugSet == nil {
		return
	}
	if _, dup := flDebugSet[p]; dup {
		panic(fmt.Sprintf("sim: free-list double release of %T payload", p))
	}
	flDebugSet[p] = struct{}{}
}

// flDebugUntrack forgets p when it leaves the list through Get.
func flDebugUntrack(p any) {
	flDebugMu.Lock()
	defer flDebugMu.Unlock()
	delete(flDebugSet, p)
}

// Get returns a recycled *T, or a freshly allocated zero value when the
// list is empty. Recycled values keep whatever the type's Recycle method
// left in them (by convention: zero-length slices with warm capacity). The
// round-robin cursor spreads concurrent callers over the shards; an empty
// shard falls through to the others before allocating, so payloads are
// never stranded by an unlucky cursor.
func (f *FreeList[T]) Get() *T {
	start := f.next.Add(1)
	for i := uint32(0); i < flShards; i++ {
		s := &f.shards[(start+i)&(flShards-1)]
		s.mu.Lock()
		if n := len(s.items); n > 0 {
			p := s.items[n-1]
			s.items[n-1] = nil
			s.items = s.items[:n-1]
			s.mu.Unlock()
			if flStatsOn.Load() {
				flHits.Add(1)
			}
			if flDebugOn.Load() {
				flDebugUntrack(p)
			}
			return p
		}
		s.mu.Unlock()
	}
	if flStatsOn.Load() {
		flMisses.Add(1)
	}
	return new(T)
}

// Put returns p to the free list. Callers normally do not call Put
// directly: the payload's Recycle method does, and the engine calls
// Recycle at cycle end. With the debug detector enabled, a second Put of
// the same pointer without an intervening Get panics.
func (f *FreeList[T]) Put(p *T) {
	if p == nil {
		return
	}
	if flDebugOn.Load() {
		flDebugTrack(p)
	}
	s := &f.shards[f.next.Add(1)&(flShards-1)]
	s.mu.Lock()
	s.items = append(s.items, p)
	s.mu.Unlock()
}

// recyclePayload returns a message's payload to its free list when the
// payload opted in, reporting whether it did (the PayloadsRecycled
// counter).
func recyclePayload(m *Message) bool {
	if r, ok := m.Data.(Recyclable); ok {
		r.Recycle()
		return true
	}
	return false
}
