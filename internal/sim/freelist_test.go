package sim

import (
	"runtime"
	"strings"
	"testing"
)

type flTestPayload struct {
	buf []byte
}

func (p *flTestPayload) Recycle() { p.buf = p.buf[:0] }

// TestFreeListSurvivesGC pins the property the sync.Pool-backed
// implementation lacked: recycled payloads stay recyclable across garbage
// collections. A million-node cycle allocates enough to trigger GCs
// mid-run, and pool-backed lists were observed near-empty every cycle —
// every Get a miss, re-allocating payload plus interior slices and thereby
// sustaining the very GC pressure that emptied the pool.
func TestFreeListSurvivesGC(t *testing.T) {
	var fl FreeList[flTestPayload]
	const n = 64
	for i := 0; i < n; i++ {
		fl.Put(&flTestPayload{buf: make([]byte, 0, 32)})
	}
	runtime.GC()
	runtime.GC()

	EnableFreeListStats(true)
	defer EnableFreeListStats(false)
	h0, m0 := FreeListStats()
	for i := 0; i < n; i++ {
		p := fl.Get()
		if cap(p.buf) == 0 {
			t.Fatalf("Get %d returned a fresh payload (no warm capacity): free list lost items to GC", i)
		}
	}
	h1, m1 := FreeListStats()
	if got := h1 - h0; got != n {
		t.Fatalf("hits after GC = %d, want %d", got, n)
	}
	if got := m1 - m0; got != 0 {
		t.Fatalf("misses after GC = %d, want 0", got)
	}
}

// TestFreeListGetScansAllShards pins the fall-through: payloads parked on
// one shard are found even when the round-robin cursor starts elsewhere.
func TestFreeListGetScansAllShards(t *testing.T) {
	var fl FreeList[flTestPayload]
	p := &flTestPayload{buf: make([]byte, 0, 8)}
	fl.Put(p)
	for i := 0; i < flShards; i++ {
		if got := fl.Get(); got == p {
			return
		}
	}
	t.Fatalf("payload never recovered within %d Gets", flShards)
}

// TestFreeListDoubleReleaseDetected plants the misuse the ownership rules
// forbid — recycling the same payload twice without an intervening Get —
// and proves the opt-in detector panics at the second Put, naming the
// payload type.
func TestFreeListDoubleReleaseDetected(t *testing.T) {
	EnableFreeListDebug(true)
	defer EnableFreeListDebug(false)

	var fl FreeList[flTestPayload]
	p := fl.Get()
	fl.Put(p)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Put of the same payload did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double release") {
			t.Fatalf("panic = %v, want a double-release message", r)
		}
	}()
	fl.Put(p) // planted double release
}

// TestFreeListReleaseAfterReuseAllowed guards the detector against false
// positives on the legitimate life cycle: Get → Put → Get → Put of one
// pointer is exactly how recycling is supposed to work.
func TestFreeListReleaseAfterReuseAllowed(t *testing.T) {
	EnableFreeListDebug(true)
	defer EnableFreeListDebug(false)

	var fl FreeList[flTestPayload]
	p := fl.Get()
	fl.Put(p)
	for i := 0; i < flShards; i++ {
		if fl.Get() == p {
			fl.Put(p) // second release, but after a Get: legal
			return
		}
	}
	t.Fatal("payload never came back from the list")
}
