package sim

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// engineInHandler matches a Receive/Undelivered method that takes the
// engine instead of the restricted ApplyContext — the pre-sharding
// contract. sim.Protocol is untyped, so such a method still compiles; it
// just silently stops matching sim.Receiver and the protocol goes deaf.
var engineInHandler = regexp.MustCompile(`func \([^)]*\) (Receive|Undelivered)\([^)]*\*(sim\.)?Engine`)

// TestNoLegacyProtocolsRemain is the grep-guard for the node-local apply
// contract: the engine deleted the sequential CycleStepper path entirely,
// so no bundled protocol may define (or reference) the NextCycle hook, and
// none may declare a Receive/Undelivered that reaches for the whole
// *Engine — handlers get an ApplyContext and must stay node-local, which
// is what makes the destination-sharded parallel apply phase sound (and
// what makes partitions and the Delivered/Dropped counters apply to every
// message leg).
func TestNoLegacyProtocolsRemain(t *testing.T) {
	for _, dir := range []string{"../gossip", "../overlay", "../core"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range entries {
			if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, entry.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "NextCycle") {
				t.Errorf("%s references NextCycle: the engine has no sequential step anymore; use the Proposer/Receiver/Undeliverable contract", path)
			}
			if m := engineInHandler.Find(data); m != nil {
				t.Errorf("%s declares an engine-taking handler (%s...): Receive/Undelivered take an *sim.ApplyContext and must stay node-local", path, m)
			}
		}
	}
}
