package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoLegacyProtocolsRemain guards the one legacy ban the static-analysis
// suite cannot express: no bundled protocol may mention the deleted
// NextCycle hook at all — not as a method, not as a comment promising it,
// not as a string. An AST-based analyzer sees declarations and references,
// but the point of this ban is that the *name* stays dead everywhere, so a
// future reader never finds a trace of the sequential CycleStepper path.
//
// The companion ban this test used to carry — a Receive/Undelivered method
// taking *sim.Engine instead of the restricted ApplyContext — is now
// enforced structurally by the nodelocal analyzer (internal/analysis,
// "legacy handler shape"), which go vet -vettool=simcheck and the
// internal/analysis tree test both run.
func TestNoLegacyProtocolsRemain(t *testing.T) {
	for _, dir := range []string{"../gossip", "../overlay", "../core"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range entries {
			if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, entry.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "NextCycle") {
				t.Errorf("%s references NextCycle: the engine has no sequential step anymore; use the Proposer/Receiver/Undeliverable contract", path)
			}
		}
	}
}
