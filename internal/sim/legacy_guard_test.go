package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoLegacyProtocolsRemain is the grep-guard for the completed
// propose/apply migration: every bundled protocol in internal/gossip and
// internal/overlay must speak the two-phase exchange contract, so none may
// define (or reference) the sequential NextCycle hook. A protocol stepped
// through CycleStepper mutates peers directly via e.Node(...), silently
// bypassing the delivery filter — partitions and the Delivered/Dropped
// counters would simply not apply to it. CycleStepper itself stays
// supported by the engine for out-of-tree protocols; the bundled ones must
// not regress onto it.
func TestNoLegacyProtocolsRemain(t *testing.T) {
	for _, dir := range []string{"../gossip", "../overlay"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range entries {
			if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, entry.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "NextCycle") {
				t.Errorf("%s references NextCycle: bundled protocols must use the Proposer/Receiver/Undeliverable contract so partitions and message counters apply to them", path)
			}
		}
	}
}
