package sim

import "gossipopt/internal/rng"

// Per-link network models. A NetModel generalizes the boolean
// DeliveryFilter into a composable per-(sender, receiver) judgment with
// four failure fates: a message leg can be dropped (lost in transit, with
// the sender's Undeliverable feedback), swallowed silently (a Byzantine
// blackhole gives no feedback at all), delayed by whole cycles (the leg
// re-enters a later cycle's apply phase), or corrupted (delivered as a
// Corrupted marker that no protocol can parse, counted as dropped).
//
// The model is consulted in Engine.route, on the coordinator, in the
// cycle's canonical message order — exactly where the delivery filter
// already runs — so every random draw it makes comes from one engine-owned
// stream (see Engine.SetNetModel) in a worker-independent order. That is
// the whole determinism argument: traces stay bit-identical across every
// (propose × apply) worker combination with any model installed.
//
// Judgment order per leg: liveness and the DeliveryFilter first (a dead
// destination or a partition beats the link model), then the NetModel,
// self-messages exempt. A delayed leg is judged by the model exactly once,
// at send time; when it re-enters a later cycle it is re-checked only
// against liveness and the filter then in force — like a packet that left
// the queue before the link went down but arrives after.

// LinkFate is a NetModel's per-leg decision.
type LinkFate uint8

// The leg fates a NetModel can return.
const (
	// FateDeliver lets the leg through unchanged.
	FateDeliver LinkFate = iota
	// FateDrop loses the leg in transit: the sender's Undeliverable hook
	// fires (the timed-out-connection feedback) and Dropped counts it.
	FateDrop
	// FateBlackhole swallows the leg silently: no handler fires at all —
	// the sender never learns — and Dropped counts it. This is the
	// Byzantine absorber; honest loss uses FateDrop.
	FateBlackhole
	// FateDelay holds the leg back Verdict.Delay cycles (minimum 1); it
	// re-enters the apply phase of the release cycle through the canonical
	// shuffle, and Delayed counts it (Delivered/Dropped move at actual
	// delivery).
	FateDelay
	// FateCorrupt garbles the leg: the destination's Receive fires with a
	// Corrupted payload in place of the original (the bundled protocols
	// ignore payload types they do not recognize, modelling a failed
	// checksum), the sender gets no feedback, and the leg counts as
	// Dropped — never Delivered — plus Corrupted.
	FateCorrupt
)

// Verdict is a NetModel's judgment of one message leg.
type Verdict struct {
	Fate LinkFate
	// Delay is the hold-back in whole cycles when Fate is FateDelay;
	// values below 1 mean 1 (a zero-cycle delay would reorder the
	// canonical list, not model latency).
	Delay int64
}

// Corrupted is the payload a corrupted leg delivers in place of the
// original: an unparseable marker, as after a failed checksum. Protocols
// following the bundled convention — type-switch on the payload and
// ignore unknown types — absorb it without state change; a protocol that
// wants to react to garbage can match it explicitly.
type Corrupted struct{}

// NetModel judges message legs. Judge runs on the coordinator goroutine
// in canonical message order; r is the engine's dedicated net-model
// stream (never nil), and every random decision must draw from it so the
// judgment sequence is a pure function of the seed. Implementations may
// keep state (RegionalOutage does) — route is single-goroutine.
type NetModel interface {
	Judge(from, to NodeID, r *rng.RNG) Verdict
}

// NetTicker is the optional per-cycle hook of a stateful NetModel: Tick
// runs once at the start of every cycle (after churn, before propose), on
// the coordinator, with the same net-model stream Judge draws from.
type NetTicker interface {
	Tick(cycle int64, r *rng.RNG)
}

// LossyLinks is an i.i.d. per-link loss and delay model: each leg is lost
// with probability Loss, and each surviving leg is delayed by a whole
// number of cycles drawn uniformly from [DelayMin, DelayMax] (a draw of 0
// delivers in the current cycle). The zero value delivers everything.
type LossyLinks struct {
	// Loss is the per-leg loss probability in [0, 1].
	Loss float64
	// DelayMin and DelayMax bound the per-leg uniform delay draw in
	// cycles; with DelayMax <= 0 no delay is drawn.
	DelayMin, DelayMax int64
}

// Judge implements NetModel.
func (l LossyLinks) Judge(from, to NodeID, r *rng.RNG) Verdict {
	if l.Loss > 0 && r.Bool(l.Loss) {
		return Verdict{Fate: FateDrop}
	}
	if l.DelayMax > 0 {
		lo := l.DelayMin
		if lo < 0 {
			lo = 0
		}
		if d := lo + int64(r.Uint64n(uint64(l.DelayMax-lo+1))); d > 0 {
			return Verdict{Fate: FateDelay, Delay: d}
		}
	}
	return Verdict{Fate: FateDeliver}
}

// RegionalOutage models correlated failures: nodes belong to Regions
// regions by ID mod Regions, and each region is an independent two-state
// Markov chain ticked once per cycle — an up region goes down with
// probability FailProb, a down region recovers with probability
// RecoverProb. While a region is down, every leg into or out of it is
// dropped (FateDrop: senders get failure feedback, as when a datacenter
// falls off the backbone). Construct with NewRegionalOutage.
type RegionalOutage struct {
	regions               int
	failProb, recoverProb float64
	down                  []bool
}

// NewRegionalOutage builds a RegionalOutage over max(regions, 1) regions,
// all initially up.
func NewRegionalOutage(regions int, failProb, recoverProb float64) *RegionalOutage {
	if regions < 1 {
		regions = 1
	}
	return &RegionalOutage{
		regions:     regions,
		failProb:    failProb,
		recoverProb: recoverProb,
		down:        make([]bool, regions),
	}
}

// Tick implements NetTicker: advance every region's Markov chain one step.
func (o *RegionalOutage) Tick(cycle int64, r *rng.RNG) {
	for i := range o.down {
		if o.down[i] {
			o.down[i] = !r.Bool(o.recoverProb)
		} else {
			o.down[i] = r.Bool(o.failProb)
		}
	}
}

// Judge implements NetModel: a leg touching a down region is dropped.
func (o *RegionalOutage) Judge(from, to NodeID, r *rng.RNG) Verdict {
	if o.down[int(uint64(from)%uint64(o.regions))] || o.down[int(uint64(to)%uint64(o.regions))] {
		return Verdict{Fate: FateDrop}
	}
	return Verdict{Fate: FateDeliver}
}

// ByzBehavior is one node's Byzantine repertoire.
type ByzBehavior uint8

// The per-node Byzantine behaviors.
const (
	// ByzDrop blackholes every leg sent to the node: messages are
	// swallowed without feedback (FateBlackhole). The node itself keeps
	// sending — a data sink that starves its peers of replies.
	ByzDrop ByzBehavior = iota + 1
	// ByzDelay delays every leg the node sends by a uniform draw from the
	// model's [DelayMin, DelayMax] cycles — a laggard that stays
	// protocol-correct but serves stale state.
	ByzDelay
	// ByzCorrupt garbles every leg the node sends (FateCorrupt) — its
	// messages arrive as unparseable Corrupted payloads.
	ByzCorrupt
)

// Byzantine assigns adversarial behaviors to individual nodes. Honest
// pairs pass through untouched, so it composes with a link model via
// Compose. The zero value has no adversaries; construct with
// NewByzantine and populate with Set.
type Byzantine struct {
	// DelayMin and DelayMax bound ByzDelay's per-leg delay draw in cycles
	// (defaults 1 and 3 when both are zero).
	DelayMin, DelayMax int64
	behavior           map[NodeID]ByzBehavior
}

// NewByzantine builds an empty Byzantine model with the default delay
// range [1, 3].
func NewByzantine() *Byzantine {
	return &Byzantine{DelayMin: 1, DelayMax: 3, behavior: make(map[NodeID]ByzBehavior)}
}

// Set assigns (or, with 0, clears) a node's behavior.
func (b *Byzantine) Set(id NodeID, beh ByzBehavior) {
	if b.behavior == nil {
		b.behavior = make(map[NodeID]ByzBehavior)
	}
	if beh == 0 {
		delete(b.behavior, id)
		return
	}
	b.behavior[id] = beh
}

// Clear removes every assigned behavior.
func (b *Byzantine) Clear() { clear(b.behavior) }

// Len returns the number of nodes with an assigned behavior.
func (b *Byzantine) Len() int { return len(b.behavior) }

// Judge implements NetModel. Receiver blackholing is judged before sender
// behaviors: a leg from a corrupting node into a blackholing one is
// swallowed, not delivered as garbage.
func (b *Byzantine) Judge(from, to NodeID, r *rng.RNG) Verdict {
	if b.behavior[to] == ByzDrop {
		return Verdict{Fate: FateBlackhole}
	}
	switch b.behavior[from] {
	case ByzDelay:
		lo, hi := b.DelayMin, b.DelayMax
		if lo <= 0 && hi <= 0 {
			lo, hi = 1, 3
		}
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		return Verdict{Fate: FateDelay, Delay: lo + int64(r.Uint64n(uint64(hi-lo+1)))}
	case ByzCorrupt:
		return Verdict{Fate: FateCorrupt}
	}
	return Verdict{Fate: FateDeliver}
}

// FilterLinks adapts a DeliveryFilter into a NetModel (blocked legs are
// dropped with sender feedback), so group splits compose with the other
// models under Compose. The engine-level filter installed by
// SetDeliveryFilter stays its own, earlier hook; this adapter exists for
// model-only composition.
func FilterLinks(f DeliveryFilter) NetModel { return filterModel{f} }

// filterModel is FilterLinks' NetModel wrapper.
type filterModel struct{ f DeliveryFilter }

// Judge implements NetModel via the wrapped filter.
func (m filterModel) Judge(from, to NodeID, r *rng.RNG) Verdict {
	if m.f.blocked(from, to) {
		return Verdict{Fate: FateDrop}
	}
	return Verdict{Fate: FateDeliver}
}

// Compose chains models: a leg is judged by each in order and the first
// non-deliver verdict wins (so an earlier model's drop spends no later
// model's random draws); Tick reaches every NetTicker in the same order.
// nil entries are skipped; composing zero or one effective model returns
// it unwrapped.
func Compose(models ...NetModel) NetModel {
	eff := make([]NetModel, 0, len(models))
	for _, m := range models {
		if m != nil {
			eff = append(eff, m)
		}
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	}
	return composite(eff)
}

// composite is Compose's chain.
type composite []NetModel

// Judge implements NetModel: first non-deliver verdict wins.
func (c composite) Judge(from, to NodeID, r *rng.RNG) Verdict {
	for _, m := range c {
		if v := m.Judge(from, to, r); v.Fate != FateDeliver {
			return v
		}
	}
	return Verdict{Fate: FateDeliver}
}

// Tick implements NetTicker by forwarding to every ticking member.
func (c composite) Tick(cycle int64, r *rng.RNG) {
	for _, m := range c {
		if t, ok := m.(NetTicker); ok {
			t.Tick(cycle, r)
		}
	}
}
