package sim

import (
	"fmt"
	"reflect"
	"testing"

	"gossipopt/internal/rng"
)

// fateModel is a test model returning one fixed verdict for every leg.
type fateModel struct{ v Verdict }

func (f fateModel) Judge(from, to NodeID, r *rng.RNG) Verdict { return f.v }

func TestNetModelFullLossDropsEverything(t *testing.T) {
	e, protos := buildPingRing(31, 4, 1)
	e.SetNetModel(LossyLinks{Loss: 1})
	e.Run(3)
	for i, p := range protos {
		if p.got != 0 || p.failed != 3 {
			t.Fatalf("node %d under 100%% loss: got=%d failed=%d, want 0/3", i, p.got, p.failed)
		}
	}
	if e.Delivered() != 0 || e.Dropped() != 12 {
		t.Fatalf("counters: delivered=%d dropped=%d, want 0/12", e.Delivered(), e.Dropped())
	}
}

func TestNetModelDelayShiftsDeliveryByExactlyD(t *testing.T) {
	e, protos := buildPingRing(32, 4, 1)
	e.SetNetModel(fateModel{Verdict{Fate: FateDelay, Delay: 2}})
	// Each cycle's pings arrive two cycles later; an always-delay model
	// must not re-delay a released leg (it is judged exactly once).
	e.Run(2)
	for i, p := range protos {
		if p.got != 0 {
			t.Fatalf("node %d: got=%d before any release, want 0", i, p.got)
		}
	}
	if e.Delayed() != 8 || e.Delivered() != 0 {
		t.Fatalf("after 2 cycles: delayed=%d delivered=%d, want 8/0", e.Delayed(), e.Delivered())
	}
	e.Run(3)
	for i, p := range protos {
		if p.got != 3 || p.failed != 0 {
			t.Fatalf("node %d after 5 cycles: got=%d failed=%d, want 3/0 (cycle-0..2 pings released)", i, p.got, p.failed)
		}
	}
	if e.Delivered() != 12 || e.Delayed() != 20 {
		t.Fatalf("after 5 cycles: delivered=%d delayed=%d, want 12/20", e.Delivered(), e.Delayed())
	}
}

func TestNetModelDelayedLegObeysFilterAtRelease(t *testing.T) {
	// A leg delayed before a partition forms must still be blocked when it
	// arrives during the partition — and its sender gets the feedback.
	e, protos := buildPingRing(33, 4, 1)
	e.SetNetModel(fateModel{Verdict{Fate: FateDelay, Delay: 2}})
	e.Run(1) // cycle-0 pings now queued for cycle 2
	e.SetNetModel(nil)
	e.SetDeliveryFilter(SplitGroups(4)) // ring pings all cross islands
	e.Run(2)
	for i, p := range protos {
		if p.got != 0 || p.failed != 3 {
			t.Fatalf("node %d: got=%d failed=%d, want 0 got (partition blocks the released leg too) / 3 failed", i, p.got, p.failed)
		}
	}
}

// recordProto captures every payload its node receives.
type recordProto struct {
	next              NodeID
	payloads          []any
	got, failed, sent int
}

func (p *recordProto) Propose(n *Node, px *Proposals) {
	p.sent++
	px.Send(p.next, 0, fmt.Sprintf("ping-from-%d", n.ID))
}

func (p *recordProto) Receive(n *Node, ax *ApplyContext, msg Message) {
	p.got++
	p.payloads = append(p.payloads, msg.Data)
}

func (p *recordProto) Undelivered(n *Node, ax *ApplyContext, msg Message) { p.failed++ }

func buildRecordRing(seed uint64, n int) (*Engine, []*recordProto) {
	e := NewEngine(seed)
	protos := make([]*recordProto, 0, n)
	e.SetNodeFactory(func(nd *Node) {
		p := &recordProto{next: NodeID((int64(nd.ID) + 1) % int64(n))}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(n)
	return e, protos
}

func TestByzantineCorruptDeliversMarkerAndCountsDropped(t *testing.T) {
	e, protos := buildRecordRing(34, 4)
	byz := NewByzantine()
	byz.Set(0, ByzCorrupt)
	e.SetNetModel(byz)
	e.Run(3)
	// Node 0's pings reach node 1 as Corrupted markers; everyone else's
	// arrive intact. No sender gets failure feedback from corruption.
	for i, p := range protos {
		if p.got != 3 || p.failed != 0 {
			t.Fatalf("node %d: got=%d failed=%d, want 3/0", i, p.got, p.failed)
		}
	}
	for _, d := range protos[1].payloads {
		if _, ok := d.(Corrupted); !ok {
			t.Fatalf("node 1 received %T from the corrupting node, want sim.Corrupted", d)
		}
	}
	for _, d := range protos[2].payloads {
		if _, ok := d.(string); !ok {
			t.Fatalf("honest leg delivered %T, want string", d)
		}
	}
	if e.Corrupted() != 3 || e.Dropped() != 3 || e.Delivered() != 9 {
		t.Fatalf("corrupted=%d dropped=%d delivered=%d, want 3/3/9",
			e.Corrupted(), e.Dropped(), e.Delivered())
	}
}

func TestByzantineBlackholeGivesNoFeedback(t *testing.T) {
	e, protos := buildRecordRing(35, 4)
	byz := NewByzantine()
	byz.Set(1, ByzDrop)
	e.SetNetModel(byz)
	e.Run(3)
	// Node 0 sends into the blackhole: nothing arrives AND nothing bounces
	// (no Undeliverable), unlike an honest drop.
	if protos[1].got != 0 {
		t.Fatalf("blackhole node received %d messages", protos[1].got)
	}
	if protos[0].failed != 0 {
		t.Fatalf("sender into blackhole got %d Undelivered callbacks, want 0 (silent)", protos[0].failed)
	}
	if e.Dropped() != 3 || e.Delivered() != 9 {
		t.Fatalf("dropped=%d delivered=%d, want 3/9", e.Dropped(), e.Delivered())
	}
}

func TestByzantineDelayUsesConfiguredRange(t *testing.T) {
	e, protos := buildRecordRing(36, 4)
	byz := &Byzantine{DelayMin: 2, DelayMax: 2}
	byz.Set(0, ByzDelay)
	e.SetNetModel(byz)
	e.Run(2)
	if protos[1].got != 0 {
		t.Fatalf("delayed leg arrived early: got=%d", protos[1].got)
	}
	e.Run(1)
	if protos[1].got != 1 || e.Delayed() != 3 {
		t.Fatalf("got=%d delayed=%d after 3 cycles, want 1/3", protos[1].got, e.Delayed())
	}
}

func TestComposeFirstNonDeliverVerdictWins(t *testing.T) {
	r := rng.New(1)
	m := Compose(nil, FilterLinks(SplitGroups(2)), fateModel{Verdict{Fate: FateCorrupt}})
	if v := m.Judge(0, 1, r); v.Fate != FateDrop {
		t.Fatalf("cross-island leg: fate=%v, want FateDrop from the filter", v.Fate)
	}
	if v := m.Judge(0, 2, r); v.Fate != FateCorrupt {
		t.Fatalf("same-island leg: fate=%v, want the later model's FateCorrupt", v.Fate)
	}
	if Compose() != nil || Compose(nil, nil) != nil {
		t.Fatal("empty composition must be nil (no model)")
	}
	single := LossyLinks{Loss: 1}
	if got := Compose(nil, single); got != NetModel(single) {
		t.Fatalf("single-model composition must return it unwrapped, got %T", got)
	}
}

// recyclePayloadT counts its recycles, guarding the delay queue's payload
// ownership: a delayed payload is recycled exactly once, at the end of
// the cycle that finally routed it, never while it waits in the queue.
type recycleCounter struct {
	recycles *int
}

func (r *recycleCounter) Recycle() { *r.recycles++ }

type recycleProto struct {
	next     NodeID
	recycles *int
}

func (p *recycleProto) Propose(n *Node, px *Proposals) {
	px.Send(p.next, 0, &recycleCounter{recycles: p.recycles})
}

func (p *recycleProto) Receive(n *Node, ax *ApplyContext, msg Message) {}

func TestDelayedPayloadRecycledExactlyOnce(t *testing.T) {
	e := NewEngine(37)
	var recycles int
	e.SetNodeFactory(func(nd *Node) {
		nd.Protocols = []Protocol{&recycleProto{next: (nd.ID + 1) % 4, recycles: &recycles}}
	})
	e.AddNodes(4)
	e.SetNetModel(fateModel{Verdict{Fate: FateDelay, Delay: 1}})
	e.Run(3)
	// Cycles 0..2 propose 4 payloads each; cycle-0 and cycle-1 payloads
	// were released and recycled, cycle-2 payloads still sit in the queue.
	if recycles != 8 {
		t.Fatalf("recycles=%d after 3 cycles, want 8 (4 still queued)", recycles)
	}
	e.Run(1)
	if recycles != 12 {
		t.Fatalf("recycles=%d after 4 cycles, want 12", recycles)
	}
}

// TestNetModelWorkerGridInvariance: a composed model — i.i.d. loss+delay,
// regional outages ticking a Markov chain, and all three Byzantine
// behaviors — must leave the trace bit-identical across the propose×apply
// worker grid. The per-node receive sequence (sender order and payload
// kinds) is the trace evidence; the counters seal the totals.
func TestNetModelWorkerGridInvariance(t *testing.T) {
	type trace struct {
		Payloads                               [][]string
		Delivered, Dropped, Delayed, Corrupted int64
	}
	run := func(pw, aw int) trace {
		e, protos := buildRecordRing(38, 12)
		e.SetWorkers(pw)
		e.SetApplyWorkers(aw)
		byz := NewByzantine()
		byz.Set(2, ByzDrop)
		byz.Set(3, ByzDelay)
		byz.Set(5, ByzCorrupt)
		e.SetNetModel(Compose(
			byz,
			NewRegionalOutage(3, 0.2, 0.5),
			LossyLinks{Loss: 0.2, DelayMin: 0, DelayMax: 2},
		))
		e.Run(20)
		tr := trace{
			Delivered: e.Delivered(), Dropped: e.Dropped(),
			Delayed: e.Delayed(), Corrupted: e.Corrupted(),
		}
		for _, p := range protos {
			seq := make([]string, len(p.payloads))
			for i, d := range p.payloads {
				seq[i] = fmt.Sprintf("%v", d)
			}
			tr.Payloads = append(tr.Payloads, seq)
		}
		e.Close()
		return tr
	}
	want := run(1, 1)
	if want.Delayed == 0 || want.Corrupted == 0 || want.Dropped == 0 {
		t.Fatalf("test not exercising the model: %+v", want)
	}
	for _, pw := range []int{2, 8} {
		for _, aw := range []int{1, 2, 8} {
			if got := run(pw, aw); !reflect.DeepEqual(got, want) {
				t.Fatalf("trace diverged at propose=%d apply=%d:\n got %+v\nwant %+v", pw, aw, got, want)
			}
		}
	}
}
