package sim

// Network partitions. Both engines accept a DeliveryFilter that decides,
// at delivery time, whether a message can currently cross the network —
// the mechanism behind scripted netsplit/heal events: install a filter to
// partition the network, install nil to heal it. Messages already in
// flight when a partition forms are judged by the filter in force at their
// delivery time, exactly like packets on a real link that went down.

// DeliveryFilter reports whether a message from one node to another is
// currently deliverable. A nil filter means the network is whole.
// Self-messages (timers) are never filtered.
//
// The filter is directional: it is consulted once per message leg with
// that leg's (from, to) pair, and in the cycle engine every leg of an
// exchange — the reply included — is its own message. A symmetric filter
// (SplitGroups) therefore models a link being down: if the initiating leg
// crosses, the reply crosses too. An asymmetric filter (SplitGroupsOneWay)
// models a one-way cut, where an exchange can half-complete: the blocked
// leg takes the undeliverable path (the sender's Undeliverable hook fires,
// as for a dead destination), which is where protocols compensate.
type DeliveryFilter func(from, to NodeID) bool

// SplitGroups returns a filter modelling a partition into k islands:
// nodes are assigned to islands by ID mod k and traffic may only flow
// between same-island nodes. Keying off the ID keeps the partition
// well-defined for nodes that join while it is in force. k <= 1 returns
// nil (no partition).
func SplitGroups(k int) DeliveryFilter {
	if k <= 1 {
		return nil
	}
	kk := NodeID(k)
	return func(from, to NodeID) bool { return from%kk == to%kk }
}

// SplitGroupsOneWay returns a directional partition into k islands (ID mod
// k, like SplitGroups) whose cross-island traffic flows in one direction
// only: from a lower-numbered island to a higher-numbered one. With k = 2,
// island 0 (even IDs) can still talk *into* island 1 (odd IDs), but
// nothing comes back — the shape of a mis-configured firewall or a broken
// return route, under which reply legs die and push-only information flow
// is all that survives. k <= 1 returns nil.
func SplitGroupsOneWay(k int) DeliveryFilter {
	if k <= 1 {
		return nil
	}
	kk := NodeID(k)
	return func(from, to NodeID) bool { return from%kk <= to%kk }
}

// blocked reports whether f (possibly nil) blocks a from→to message.
func (f DeliveryFilter) blocked(from, to NodeID) bool {
	return f != nil && from != to && !f(from, to)
}
