package sim

import "testing"

func TestSplitGroups(t *testing.T) {
	if SplitGroups(0) != nil || SplitGroups(1) != nil {
		t.Fatal("k <= 1 must mean no partition")
	}
	f := SplitGroups(2)
	if !f(0, 2) || !f(1, 3) {
		t.Fatal("same-island traffic blocked")
	}
	if f(0, 1) || f(3, 2) {
		t.Fatal("cross-island traffic allowed")
	}
}

func TestSplitGroupsOneWay(t *testing.T) {
	if SplitGroupsOneWay(0) != nil || SplitGroupsOneWay(1) != nil {
		t.Fatal("k <= 1 must mean no partition")
	}
	f := SplitGroupsOneWay(2)
	if !f(0, 2) || !f(1, 3) {
		t.Fatal("same-island traffic blocked")
	}
	if !f(0, 1) || !f(2, 3) {
		t.Fatal("low-to-high island traffic blocked")
	}
	if f(1, 0) || f(3, 2) {
		t.Fatal("high-to-low island traffic allowed")
	}
}

// TestEnginePartitionAndHeal: under a partition, cross-island pings take
// the undeliverable path and same-island traffic is unaffected; after the
// heal, delivery resumes.
func TestEnginePartitionAndHeal(t *testing.T) {
	// Ring of 4: node i pings i+1, so every ping crosses islands under a
	// 2-way split (even→odd→even...).
	e, protos := buildPingRing(21, 4, 1)
	e.SetDeliveryFilter(SplitGroups(2))
	e.Run(3)
	for i, p := range protos {
		if p.got != 0 || p.failed != 3 {
			t.Fatalf("partitioned node %d: got=%d failed=%d, want 0/3", i, p.got, p.failed)
		}
	}
	if e.Delivered() != 0 || e.Dropped() != 12 {
		t.Fatalf("counters during partition: delivered=%d dropped=%d, want 0/12", e.Delivered(), e.Dropped())
	}

	e.SetDeliveryFilter(nil)
	e.Run(2)
	for i, p := range protos {
		if p.got != 2 || p.failed != 3 {
			t.Fatalf("healed node %d: got=%d failed=%d, want 2/3", i, p.got, p.failed)
		}
	}
	if e.Delivered() != 8 {
		t.Fatalf("Delivered=%d after heal, want 8", e.Delivered())
	}
}

// TestEnginePartitionMidCycle: a filter installed by scenario code blocks
// even messages proposed before it was installed, because filtering happens
// at delivery time.
func TestEnginePartitionSameSideUnaffected(t *testing.T) {
	// 4 nodes, node i pings i+2 (stays on its island under a 2-way split).
	e := NewEngine(22)
	protos := make([]*pingProto, 0, 4)
	e.SetNodeFactory(func(nd *Node) {
		p := &pingProto{next: NodeID((int64(nd.ID) + 2) % 4)}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(4)
	e.SetDeliveryFilter(SplitGroups(2))
	e.Run(3)
	for i, p := range protos {
		if p.got != 3 || p.failed != 0 {
			t.Fatalf("same-island node %d: got=%d failed=%d, want 3/0", i, p.got, p.failed)
		}
	}
}

// TestEventEnginePartitionAndHeal is the event-engine regression test:
// messages across a partition are dropped (including ones already in
// flight) and delivery resumes after the heal.
func TestEventEnginePartitionAndHeal(t *testing.T) {
	e := NewEventEngine(23, nil)
	ha, hb := &echoHandler{}, &echoHandler{}
	a := e.AddNode(ha) // island 0
	b := e.AddNode(hb) // island 1

	// In flight before the partition forms, arriving during it: dropped.
	e.SendAfter(5, a.ID, "pre-split") // timer-style self msg, never filtered
	e.Send(a.ID, b.ID, "in-flight")   // zero-latency here, but deliver after filter set
	e.SetDeliveryFilter(SplitGroups(2))
	e.Send(a.ID, b.ID, "during-split")
	for e.Step() {
	}
	if len(hb.got) != 0 {
		t.Fatalf("cross-partition messages delivered: %v", hb.got)
	}
	if len(ha.got) != 1 || ha.got[0] != "pre-split" {
		t.Fatalf("self-timer filtered: %v", ha.got)
	}
	if e.Dropped() != 2 {
		t.Fatalf("Dropped=%d, want 2", e.Dropped())
	}

	// Heal: delivery resumes.
	e.SetDeliveryFilter(nil)
	e.Send(a.ID, b.ID, "after-heal")
	for e.Step() {
	}
	if len(hb.got) != 1 || hb.got[0] != "after-heal" {
		t.Fatalf("delivery did not resume after heal: %v", hb.got)
	}
}

func TestEventEngineReviveAndSetLink(t *testing.T) {
	e := NewEventEngine(24, nil)
	h := &echoHandler{}
	n := e.AddNode(h)
	e.Crash(n.ID)
	e.Send(n.ID, n.ID, "while-dead")
	for e.Step() {
	}
	if len(h.got) != 0 {
		t.Fatalf("dead node received %v", h.got)
	}
	e.Revive(n.ID)
	if !e.Node(n.ID).Alive {
		t.Fatal("Revive did not mark node alive")
	}
	e.Send(n.ID, n.ID, "after-revive")
	for e.Step() {
	}
	if len(h.got) != 1 || h.got[0] != "after-revive" {
		t.Fatalf("revived node got %v", h.got)
	}

	// SetLink swaps the model in force for subsequent sends.
	e.SetLink(UniformLink{MinDelay: 10, MaxDelay: 10})
	before := e.Now()
	e.Send(n.ID, n.ID, "slow")
	e.Step()
	if e.Now()-before != 10 {
		t.Fatalf("latency after SetLink: %v, want 10", e.Now()-before)
	}
	e.SetLink(nil) // restores the default lossless zero-latency link
	before = e.Now()
	e.Send(n.ID, n.ID, "fast")
	e.Step()
	if e.Now() != before {
		t.Fatalf("nil SetLink not zero-latency: %v", e.Now()-before)
	}
}
