package sim

import (
	"runtime"
	"sync"
)

// workerPool is the engine's persistent pool of phase workers. Both cycle
// phases (parallel propose, sharded apply) run their shards on it, so the
// steady state of a run spawns zero goroutines per cycle — the pool grows
// once to the largest parallelism ever requested and its goroutines then
// idle on the job channel between phases (see BenchmarkEngineWorkers and
// BenchmarkApplyShards).
//
// Lifecycle: the pool is owned by exactly one Engine and used only from
// the coordinator goroutine. Engine.Close shuts it down deterministically;
// a finalizer backstop shuts it down when an engine is simply dropped
// (campaign and sweep runners build one engine per repetition, so leaking
// a pool per engine would accumulate thousands of parked goroutines).
// The worker goroutines reference only the job channel, never the pool or
// the engine, so they keep neither reachable.
type workerPool struct {
	jobs chan poolJob
	size int
	stop sync.Once
	// wg is the per-run barrier. The pool is used from one coordinator
	// goroutine and every run Waits before returning, so one reusable
	// WaitGroup replaces a per-run allocation.
	wg sync.WaitGroup
	// submitted counts jobs handed to pool goroutines over the pool's
	// lifetime (shard 0 runs on the coordinator and is not counted).
	// Coordinator-owned like the engine's other accumulators; surfaced
	// through the Stats snapshot as PoolTasks.
	submitted int64
}

// poolJob is one shard of a phase handed to a pool goroutine: the shard
// function, the shard index, and the run barrier to signal. Sending a
// value struct instead of a closure keeps the per-shard submission
// allocation-free (the fn closure itself is shared by all shards of a
// run).
type poolJob struct {
	fn    func(shard int)
	shard int
	wg    *sync.WaitGroup
}

// newWorkerPool creates an empty pool and registers the finalizer
// backstop.
func newWorkerPool() *workerPool {
	p := &workerPool{jobs: make(chan poolJob)}
	runtime.SetFinalizer(p, func(p *workerPool) { p.shutdown() })
	return p
}

// grow ensures at least n persistent workers exist.
func (p *workerPool) grow(n int) {
	for ; p.size < n; p.size++ {
		go func(jobs chan poolJob) {
			for j := range jobs {
				j.fn(j.shard)
				j.wg.Done()
			}
		}(p.jobs)
	}
}

// run executes fn(0..shards-1) across the pool and returns when all shards
// are done. Shard 0 always runs on the calling (coordinator) goroutine, so
// shards == 1 never touches the pool and a single-worker engine needs no
// pool goroutines at all.
func (p *workerPool) run(shards int, fn func(shard int)) {
	if shards <= 1 {
		fn(0)
		return
	}
	p.grow(shards - 1)
	p.submitted += int64(shards - 1)
	p.wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		p.jobs <- poolJob{fn: fn, shard: s, wg: &p.wg}
	}
	fn(0)
	p.wg.Wait()
}

// shutdown terminates the pool's goroutines. Idempotent; the pool must not
// be used afterwards.
func (p *workerPool) shutdown() {
	p.stop.Do(func() {
		runtime.SetFinalizer(p, nil)
		close(p.jobs)
	})
}
