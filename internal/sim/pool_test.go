package sim

import (
	"runtime"
	"testing"
)

// TestPoolSpawnsNoGoroutinesInSteadyState is the persistent-pool
// acceptance check: after the first multi-worker cycle has grown the pool,
// further cycles must not change the process goroutine count — phases
// reuse the parked workers instead of spawning per cycle.
func TestPoolSpawnsNoGoroutinesInSteadyState(t *testing.T) {
	e, _ := buildPingRing(31, 64, 8)
	e.SetApplyWorkers(8)
	defer e.Close()
	// Pin the runtime's own background goroutines (GC mark workers, the
	// finalizer runner) into existence before measuring, so the assertion
	// sees only engine-spawned goroutines.
	runtime.GC()
	runtime.GC()
	e.Run(2) // grow the pool
	size := e.pool.size
	if size != 7 { // 8 shards; shard 0 runs on the coordinator
		t.Fatalf("pool grew to %d workers after warmup, want 7", size)
	}
	before := runtime.NumGoroutine()
	e.Run(50)
	if e.pool.size != size {
		t.Fatalf("pool grew in steady state: %d -> %d workers", size, e.pool.size)
	}
	// NumGoroutine may shrink if finalizers reap earlier engines' pools,
	// but it must never rise — a rise means cycles are spawning.
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine count rose in steady state: %d -> %d", before, after)
	}
}

// TestPoolCloseIdempotent: Close must be safe to call repeatedly (the
// runner defers it, tests may also call it explicitly).
func TestPoolCloseIdempotent(t *testing.T) {
	e := NewEngine(32)
	e.Close()
	e.Close()
}

// TestSetWorkersDrivesApplyDefault: apply parallelism follows SetWorkers
// until SetApplyWorkers overrides it.
func TestSetWorkersDrivesApplyDefault(t *testing.T) {
	e := NewEngine(33)
	defer e.Close()
	e.SetWorkers(6)
	if e.ApplyWorkers() != 6 {
		t.Fatalf("ApplyWorkers = %d, want 6 (follow SetWorkers)", e.ApplyWorkers())
	}
	e.SetApplyWorkers(2)
	if e.ApplyWorkers() != 2 || e.Workers() != 6 {
		t.Fatalf("ApplyWorkers = %d Workers = %d, want 2/6", e.ApplyWorkers(), e.Workers())
	}
	e.SetWorkers(3)
	if e.ApplyWorkers() != 2 {
		t.Fatalf("explicit ApplyWorkers overridden by SetWorkers: %d", e.ApplyWorkers())
	}
}
