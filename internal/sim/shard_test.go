package sim

import (
	"fmt"
	"testing"
)

// starProto is a deliberately skewed ("hotspot") workload: every node
// pings the hub (node 0) each cycle, and the hub answers each ping with a
// pong in the follow-up round. Under ID-mod sharding the hub's entire
// apply load lands on one worker; balanced sharding must spread the other
// shards while producing the exact same trace.
type starProto struct {
	hub NodeID

	// Per-node delivery traces (the byte-identical contract's witness).
	fromOrder []NodeID
	pongs     int
	failed    int
}

func (p *starProto) Propose(n *Node, px *Proposals) {
	if n.ID != p.hub {
		px.Send(p.hub, 0, "ping")
	}
}

func (p *starProto) Receive(n *Node, ax *ApplyContext, msg Message) {
	switch msg.Data {
	case "ping":
		p.fromOrder = append(p.fromOrder, msg.From)
		ax.Send(msg.From, 0, "pong")
	case "pong":
		p.pongs++
		p.fromOrder = append(p.fromOrder, msg.From)
	}
}

func (p *starProto) Undelivered(n *Node, ax *ApplyContext, msg Message) { p.failed++ }

func buildStar(seed uint64, n, workers, applyWorkers int, idMod bool) (*Engine, []*starProto) {
	e := NewEngine(seed)
	e.SetWorkers(workers)
	if applyWorkers > 0 {
		e.SetApplyWorkers(applyWorkers)
	}
	e.idModSharding = idMod
	protos := make([]*starProto, 0, n)
	e.SetNodeFactory(func(nd *Node) {
		p := &starProto{hub: 0}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(n)
	return e, protos
}

// TestShardingHotspotGridInvariant pins the determinism contract on the
// worst case for load balancing: a star workload where one node receives
// nearly every message. The per-node delivery traces must be identical for
// ID-mod and balanced sharding across every (propose × apply) worker grid
// — balancing may only move work between workers, never reorder it.
func TestShardingHotspotGridInvariant(t *testing.T) {
	const n, cycles = 96, 12
	trace := func(workers, applyWorkers int, idMod bool) [][]NodeID {
		e, protos := buildStar(11, n, workers, applyWorkers, idMod)
		defer e.Close()
		e.SetChurn(&RateChurn{CrashProb: 0.03, JoinPerCycle: 0.5, MinLive: 8})
		e.Run(cycles)
		out := make([][]NodeID, len(protos))
		for i, p := range protos {
			out[i] = p.fromOrder
		}
		return out
	}
	want := trace(1, 1, true) // historical configuration
	for _, w := range []int{1, 2, 8} {
		for _, aw := range []int{1, 2, 8} {
			for _, idMod := range []bool{false, true} {
				got := trace(w, aw, idMod)
				if len(got) != len(want) {
					t.Fatalf("workers=%d/%d idMod=%v: %d nodes, want %d", w, aw, idMod, len(got), len(want))
				}
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("workers=%d/%d idMod=%v node %d: %d deliveries, want %d",
							w, aw, idMod, i, len(got[i]), len(want[i]))
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("workers=%d/%d idMod=%v node %d delivery %d: from %d, want %d",
								w, aw, idMod, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
		}
	}
}

// TestBalancedShardingSpreadsHotspots demonstrates the scheduling win
// directly (machine-independent, unlike wall-clock): several hot nodes
// sharing an ID residue class pile onto one worker under ID-mod sharding,
// while the greedy bin-pack spreads them. The per-worker job loads are
// measured straight off shardRound's batch layout (the spans and the
// batches' jobOrder windows), which also cross-checks that every routed
// job landed in exactly one batch of exactly one worker.
func TestBalancedShardingSpreadsHotspots(t *testing.T) {
	const n, workers, hot = 64, 8, 100
	e := NewEngine(1)
	defer e.Close()
	e.AddNodes(n)

	// Hubs 0, 8, 16, 24 share residue 0 mod 8: each gets `hot` messages;
	// every other node gets one.
	var round []Message
	for _, hub := range []NodeID{0, 8, 16, 24} {
		for i := 0; i < hot; i++ {
			round = append(round, Message{From: NodeID(i % n), To: hub})
		}
	}
	for id := NodeID(0); id < n; id++ {
		round = append(round, Message{From: 0, To: id})
	}

	maxLoad := func(idMod bool) int {
		e.idModSharding = idMod
		e.shardRound(round, workers)
		spans := e.batchSpans[:workers+1]
		m := 0
		total := 0
		for w := 0; w < workers; w++ {
			load := 0
			for _, b := range e.batchScratch[spans[w]:spans[w+1]] {
				load += int(b.hi - b.lo)
			}
			if load != e.loads[w] {
				t.Fatalf("idMod=%v worker %d: batch windows sum to %d jobs, loads says %d",
					idMod, w, load, e.loads[w])
			}
			total += load
			if load > m {
				m = load
			}
		}
		if total != len(round) {
			t.Fatalf("idMod=%v: %d jobs batched, want %d", idMod, total, len(round))
		}
		return m
	}

	idMod := maxLoad(true)
	balanced := maxLoad(false)
	// ID-mod: all four hubs (plus the 8 residue-0 singles) land on worker 0
	// — 4*hot + 8 jobs. Balanced: one hub per worker plus spread singles,
	// so the critical path is near hot + a few.
	if idMod < 4*hot {
		t.Fatalf("idmod max load = %d, expected the 4 aliased hubs (>= %d) on one worker", idMod, 4*hot)
	}
	if balanced > 2*hot {
		t.Fatalf("balanced max load = %d, want <= %d (hubs spread across workers)", balanced, 2*hot)
	}
}

// BenchmarkRandomLiveNode is the satellite regression guard for the dense
// live index: one uniform draw over the live population, zero allocations,
// no O(n) scan per call (the rebuild is amortized over Crash/Revive, not
// paid per draw).
func BenchmarkRandomLiveNode(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	e.AddNodes(100_000)
	// Kill a stripe so the exclude-shift and liveness machinery is real.
	for id := NodeID(0); id < 100_000; id += 10 {
		e.Crash(id)
	}
	if e.RandomLiveNode(-1) == nil {
		b.Fatal("no live nodes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.RandomLiveNode(NodeID(i%100_000)) == nil {
			b.Fatal("draw failed")
		}
	}
}

// BenchmarkApplyShardsHotspot compares balanced vs ID-mod sharding on the
// star workload at 8 apply workers, where ID-mod serializes the hub's
// entire load onto one worker. node-cycles/s is the cross-run comparable
// throughput metric (population × cycles / wall time).
func BenchmarkApplyShardsHotspot(b *testing.B) {
	const n = 10_000
	for _, mode := range []struct {
		name  string
		idMod bool
	}{{"balanced", false}, {"idmod", true}} {
		b.Run(fmt.Sprintf("sharding=%s", mode.name), func(b *testing.B) {
			e, _ := buildStar(7, n, 8, 8, mode.idMod)
			defer e.Close()
			e.Run(2) // warm scratch buffers and pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunCycle()
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
		})
	}
}
