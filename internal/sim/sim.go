// Package sim is a discrete simulator for large P2P networks, equivalent in
// role to PeerSim, which the paper used for its evaluation. It offers two
// execution models:
//
//   - a cycle-driven engine (Engine): in each cycle every live node's
//     protocols are stepped once, like PeerSim's CDSimulator but with a
//     two-phase exchange model (see exchange.go) that shards both the
//     propose and the apply work across a persistent pool of worker
//     goroutines while keeping every trace bit-identical to a
//     single-threaded run. This is what the paper's experiments use.
//   - an event-driven engine (EventEngine, see events.go): a time-ordered
//     event heap with configurable link latency and message loss, for
//     experiments where asynchrony matters.
//
// Determinism: given the same seed, node count and protocol stack, a run
// produces the identical trace — for any propose-worker and apply-worker
// count, 1×1 included. Each node owns a split RNG stream so that adding
// observers or reordering unrelated code does not perturb results, and so
// that stepping nodes on parallel workers neither races nor changes the
// per-node draw sequence.
package sim

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"gossipopt/internal/rng"
)

// NodeID identifies a simulated node. IDs are never reused within a run,
// so a crashed node's ID never refers to a different live node later.
type NodeID int64

// Protocol is one layer of a node's protocol stack in the cycle-driven
// model. An implementation provides the two-phase exchange contract of
// exchange.go: Proposer (node-local work on parallel propose workers) and
// usually Receiver/Undeliverable (node-local delivery handling on parallel
// apply workers). The historical sequential CycleStepper contract is gone:
// every message of every protocol flows through the mailbox, so delivery
// filters (partitions) and the Delivered/Dropped counters apply uniformly,
// and no phase of a cycle is serial.
//
// Protocol is intentionally untyped (a slot may hold a passive service
// that other protocols query, e.g. a static topology), so a drifted method
// signature compiles and the engine silently skips the protocol. Guard
// against that with a compile-time assertion next to every implementation,
// as the bundled protocols do:
//
//	var _ sim.Proposer = (*MyProto)(nil)
type Protocol interface{}

// Node is one simulated peer. Protocol state lives in the Protocols slice;
// slot indices are assigned by the experiment setup and shared across all
// nodes (slot 0 might be the topology service, slot 1 the optimizer, ...).
// Nodes live in the engine's dense arena; a *Node stays valid for the
// engine's lifetime.
type Node struct {
	ID    NodeID
	Alive bool
	// RNG is the node's private random stream.
	RNG *rng.RNG
	// Protocols holds one instance per protocol slot.
	Protocols []Protocol
}

// Protocol returns the protocol instance in the given slot.
func (n *Node) Protocol(slot int) Protocol { return n.Protocols[slot] }

// Engine is the cycle-driven simulation engine.
type Engine struct {
	rng *rng.RNG
	// arena stores every node, densely indexed by NodeID (IDs are
	// monotonic and never reused), replacing the historical
	// map[NodeID]*Node + ID-order slice double bookkeeping.
	arena nodeArena
	cycle int64

	// liveIdx is the maintained live index: every live node, in ID order.
	// Crash/Revive only mark it dirty; ensureLive rebuilds it lazily with
	// one arena scan, into the spare buffer so an iteration over the
	// previous index (ForEachLive callbacks that crash nodes) survives the
	// rebuild. Steady-state cycles touch it read-only, so the live
	// snapshot, LiveNodes, ForEachLive and RandomLiveNode cost no per-call
	// allocation and no map walk.
	liveIdx   []*Node
	liveSpare []*Node
	liveDirty bool

	// live is the maintained count of live nodes (kept by AddNode, Crash
	// and Revive so LiveCount is O(1); churn models call it per node).
	live int
	// evals is the maintained count of objective evaluations, fed by
	// Proposals.CountEvals and ApplyContext.CountEvals at each phase
	// barrier so budget checks are O(1) instead of an O(n) scan per cycle.
	evals int64

	// workers is the propose-phase parallelism; applyWorkers, when
	// positive, overrides it for the apply phase (see SetWorkers /
	// SetApplyWorkers).
	workers      int
	applyWorkers int

	// pool is the persistent worker pool both phases run on; it grows to
	// the largest parallelism requested and never spawns goroutines in the
	// per-cycle steady state.
	pool *workerPool

	// churn, when non-nil, is applied at the start of every cycle.
	churn ChurnModel
	// makeNode builds the protocol stack for a (re)joining node.
	makeNode func(n *Node)

	// filter, when non-nil, gates message delivery (network partitions).
	filter DeliveryFilter
	// netmod, when non-nil, judges every deliverable leg (loss, delay,
	// corruption, Byzantine behaviors; see netmodel.go); netRNG is its
	// dedicated stream, split lazily from the engine RNG on the first
	// SetNetModel so model-free runs keep their historical traces.
	netmod NetModel
	netRNG *rng.RNG
	// delayQ holds delayed legs until their release cycle; each re-enters
	// the canonical list of the cycle it is released into.
	delayQ []delayedMsg
	// delivered/dropped count apply-phase deliveries and messages lost to
	// dead destinations or the delivery filter, reply legs included;
	// delayed/corrupted count the net model's delay and corruption
	// verdicts (a corrupted leg also counts as dropped, a delayed one as
	// delivered or dropped at its actual delivery).
	delivered, dropped int64
	delayed, corrupted int64

	// observers run after every cycle.
	observers []Observer

	// scratch buffers reused across cycles.
	msgScratch    []Message
	outScratch    []Proposals
	applyCtxs     []ApplyContext
	jobScratch    []applyJob
	followScratch []followUp
	// rounds keeps one buffer per apply round, all retained until
	// releaseApplyScratch so each cycle's payloads can be recycled exactly
	// once: a payload lives either in msgScratch (proposed this cycle) or
	// in exactly one round buffer (posted as a follow-up).
	rounds [][]Message

	// Batched-dispatch scratch (see shardRound): the routed jobs stay in
	// jobScratch in canonical order; jobOrder is a permutation of job
	// indices grouped worker-major and node-contiguous, batchScratch holds
	// one per-node batch descriptor per distinct handling node, and
	// batchSpans/batchCursor delimit each worker's run of batches. Workers
	// receive slice views into these engine-owned buffers, so a round's
	// dispatch allocates nothing in the steady state.
	jobOrder     []int32
	batchScratch []applyBatch
	batchSpans   []int32
	batchCursor  []int32

	// Balanced-sharding scratch (see shardRound): per-node message counts
	// and worker assignments, dense by NodeID, reset via the touched list
	// so a round costs O(messages + distinct nodes), not O(population).
	nodeMsgs   []int32
	nodeWorker []int32
	touched    []*Node
	loads      []int
	// idModSharding restores the historical ID-mod shard assignment; a
	// test/benchmark hook proving balanced sharding changes throughput
	// only, never the trace.
	idModSharding bool

	// Instrumentation accumulators (see stats.go). All are plain
	// coordinator-owned fields mutated on the hot path without atomics;
	// publishStats copies them into the race-safe snapshot once per
	// cycle.
	proposeNanos, applyNanos int64
	applyRounds, applyJobs   int64
	applyBatches             int64
	payloadsRecycled         int64
	shardedRounds            int64
	shardMinSum, shardMaxSum int64
	shardMeanSum             float64
	liveRebuilds             int64
	// stats is the atomic snapshot behind Engine.Stats.
	stats engineStats
}

// delayedMsg is one leg held back by a FateDelay verdict: the message,
// carrying its payload, and the cycle whose apply phase re-admits it.
type delayedMsg struct {
	release int64
	msg     Message
}

// applyJob is one routed message of an apply round: the node that must
// handle it (the destination when deliverable, the sender otherwise) plus
// the message's canonical index, which orders handler calls per node and
// tags follow-ups.
type applyJob struct {
	idx     int
	deliver bool
	node    *Node
	msg     Message
}

// applyBatch is one contiguous run of a single node's routed jobs inside
// an apply round: jobOrder[lo:hi] indexes the node's jobs in canonical
// order. A worker processes whole batches, so per-node setup (the
// ApplyContext's self field, the node's protocol table) is paid once per
// batch rather than once per message.
type applyBatch struct {
	node   *Node
	lo, hi int32
}

// Observer inspects the network after each cycle; returning false stops the
// simulation (used for threshold-based termination, e.g. the paper's
// fourth experiment).
type Observer func(e *Engine) bool

// NewEngine creates an empty engine with a deterministic RNG stream.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:     rng.New(seed),
		workers: 1,
		pool:    newWorkerPool(),
	}
}

// Close releases the engine's worker pool. Optional: a dropped engine's
// pool is reclaimed by a finalizer backstop, but callers that build many
// engines (campaign runners) close deterministically. The engine must not
// run again after Close.
func (e *Engine) Close() { e.pool.shutdown() }

// RNG exposes the engine's private random stream (for setup code).
func (e *Engine) RNG() *rng.RNG { return e.rng }

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int64 { return e.cycle }

// SetChurn installs a churn model applied at the start of each cycle.
func (e *Engine) SetChurn(c ChurnModel) { e.churn = c }

// SetDeliveryFilter installs (or, with nil, removes) the delivery filter
// consulted for every apply-phase message — the partition/heal hook for
// scripted scenarios. Every leg of an exchange is judged on its own,
// replies included, so a directional filter (SplitGroupsOneWay) models a
// one-way cut. Blocked messages take the same undeliverable path as
// messages to dead nodes: the sender's Undeliverable hook fires.
func (e *Engine) SetDeliveryFilter(f DeliveryFilter) { e.filter = f }

// SetNetModel installs (or, with nil, removes) the per-link network model
// judging every deliverable leg after the delivery filter (see
// netmodel.go for the fates and the determinism argument). The first
// installation splits a dedicated RNG stream off the engine RNG — one
// engine-stream draw, made exactly once per engine and only for runs that
// ever install a model, so model-free traces are bit-identical to
// historical ones. Swapping models mid-run keeps the stream: a scripted
// model change is itself deterministic.
func (e *Engine) SetNetModel(m NetModel) {
	e.netmod = m
	if m != nil && e.netRNG == nil {
		e.netRNG = e.rng.Split()
	}
}

// NetModelInstalled reports whether a net model is currently judging legs.
func (e *Engine) NetModelInstalled() bool { return e.netmod != nil }

// Delivered returns the count of apply-phase messages delivered to a live,
// reachable destination (reply legs included). Coordinator-side accessor:
// like every counter it is also folded into the Stats snapshot, which is
// what concurrent readers must use.
func (e *Engine) Delivered() int64 { return e.delivered }

// Dropped returns the count of apply-phase messages lost to a dead
// destination, to the delivery filter (partitions), or to a net-model
// drop/blackhole/corrupt verdict, reply legs included. Coordinator-side
// accessor; concurrent readers use Stats.
func (e *Engine) Dropped() int64 { return e.dropped }

// Delayed returns the count of legs the net model held back for later
// cycles. Coordinator-side accessor; concurrent readers use Stats.
func (e *Engine) Delayed() int64 { return e.delayed }

// Corrupted returns the count of legs the net model garbled (each also
// counted in Dropped). Coordinator-side accessor; concurrent readers use
// Stats.
func (e *Engine) Corrupted() int64 { return e.corrupted }

// SetWorkers sets the number of pool workers stepping nodes during the
// propose phase (values < 1 mean 1) — and, unless SetApplyWorkers has
// overridden it, the apply-phase parallelism too. The trace is
// bit-identical for every worker count; workers only change wall-clock
// speed.
func (e *Engine) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	e.workers = w
}

// Workers returns the configured propose-phase parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetApplyWorkers overrides the apply-phase parallelism independently of
// the propose phase (values < 1 mean 1). Until it is called, the apply
// phase follows SetWorkers. Traces are bit-identical for every
// (propose workers × apply workers) combination.
func (e *Engine) SetApplyWorkers(w int) {
	if w < 1 {
		w = 1
	}
	e.applyWorkers = w
}

// ApplyWorkers returns the effective apply-phase parallelism.
func (e *Engine) ApplyWorkers() int {
	if e.applyWorkers > 0 {
		return e.applyWorkers
	}
	return e.workers
}

// Evals returns the engine-maintained count of objective evaluations
// (reported by protocols through Proposals.CountEvals or
// ApplyContext.CountEvals). Evaluations of since-crashed nodes remain
// counted. O(1).
func (e *Engine) Evals() int64 { return e.evals }

// CountEvals adds k evaluations to the engine counter. Setup code may call
// it directly; phase code must use Proposals.CountEvals or
// ApplyContext.CountEvals instead.
func (e *Engine) CountEvals(k int64) { e.evals += k }

// SetNodeFactory installs the function used to populate the protocol stack
// of nodes created by AddNode or by churn-driven joins.
func (e *Engine) SetNodeFactory(f func(n *Node)) { e.makeNode = f }

// AddObserver registers a per-cycle observer.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// AddNode creates a new live node, populates its protocol stack via the
// node factory (if set) and returns it. The node turns live only after the
// factory ran, so factory code (bootstrap peer sampling) observes the
// population without it — exactly as when nodes were registered after the
// factory in the map era.
func (e *Engine) AddNode() *Node {
	n := e.arena.alloc()
	n.RNG = e.rng.Split()
	if e.makeNode != nil {
		e.makeNode(n)
	}
	n.Alive = true
	e.live++
	if !e.liveDirty {
		// New IDs are strictly increasing, so appending keeps the live
		// index sorted; a dirty index is rebuilt from the arena on next
		// use and picks the node up then.
		e.liveIdx = append(e.liveIdx, n)
	}
	return n
}

// AddNodes creates count nodes and returns them.
func (e *Engine) AddNodes(count int) []*Node {
	out := make([]*Node, count)
	for i := range out {
		out[i] = e.AddNode()
	}
	return out
}

// Node returns the node with the given ID, or nil if it does not exist.
func (e *Engine) Node(id NodeID) *Node { return e.arena.at(id) }

// Crash marks the node as dead. Dead nodes are not stepped and are skipped
// by RandomLiveNode. The node's state is retained so that rejoin semantics
// can be modelled by the caller if desired.
func (e *Engine) Crash(id NodeID) {
	if n := e.arena.at(id); n != nil && n.Alive {
		n.Alive = false
		e.live--
		e.liveDirty = true
	}
}

// Revive marks a crashed node as live again.
func (e *Engine) Revive(id NodeID) {
	if n := e.arena.at(id); n != nil && !n.Alive {
		n.Alive = true
		e.live++
		e.liveDirty = true
	}
}

// LiveCount returns the number of live nodes. O(1): the count is
// maintained by AddNode/Crash/Revive, so per-node churn checks do not turn
// a cycle quadratic.
func (e *Engine) LiveCount() int { return e.live }

// Size returns the total number of nodes ever created and not removed.
func (e *Engine) Size() int { return e.arena.len() }

// ensureLive rebuilds the live index if Crash/Revive invalidated it. The
// rebuild scans the arena once, into the spare buffer (swapped with the
// old index) so an in-flight iteration over the previous index is not
// clobbered by one nested rebuild.
func (e *Engine) ensureLive() {
	if !e.liveDirty {
		return
	}
	e.liveRebuilds++
	idx := e.liveSpare[:0]
	for ci := range e.arena.chunks {
		c := e.arena.chunks[ci]
		for i := range c {
			if c[i].Alive {
				idx = append(idx, &c[i])
			}
		}
	}
	e.liveSpare = e.liveIdx
	e.liveIdx = idx
	e.liveDirty = false
}

// AllNodes returns every node ever created, dead or alive, in ID order.
// It allocates a fresh slice; hot paths use AppendAllNodes.
func (e *Engine) AllNodes() []*Node {
	return e.AppendAllNodes(make([]*Node, 0, e.arena.len()))
}

// AppendAllNodes appends every node, dead or alive, in ID order onto buf
// and returns the extended slice — the allocation-free variant of AllNodes
// for callers that keep a scratch buffer across cycles.
func (e *Engine) AppendAllNodes(buf []*Node) []*Node {
	for ci := range e.arena.chunks {
		c := e.arena.chunks[ci]
		for i := range c {
			buf = append(buf, &c[i])
		}
	}
	return buf
}

// LiveNodes returns all live nodes in ID order (deterministic). It
// allocates a fresh slice; hot paths use AppendLiveNodes.
func (e *Engine) LiveNodes() []*Node {
	e.ensureLive()
	return append(make([]*Node, 0, len(e.liveIdx)), e.liveIdx...)
}

// AppendLiveNodes appends all live nodes in ID order onto buf and returns
// the extended slice — the allocation-free variant of LiveNodes for
// callers that keep a scratch buffer across cycles (churn models, scenario
// event sampling).
func (e *Engine) AppendLiveNodes(buf []*Node) []*Node {
	e.ensureLive()
	return append(buf, e.liveIdx...)
}

// ForEachLive calls f for every live node in ID order. Liveness is
// re-checked at visit time, so a callback crashing a later node keeps that
// node from being visited.
func (e *Engine) ForEachLive(f func(n *Node)) {
	e.ensureLive()
	idx := e.liveIdx
	for _, n := range idx {
		if n.Alive {
			f(n)
		}
	}
}

// RandomLiveNode returns a uniformly random live node different from
// exclude (pass -1 to allow any). Returns nil if no eligible node exists.
// This is the simulator-level oracle; protocols that must be realistic use
// the peer-sampling service instead.
//
// The draw consumes exactly one engine-RNG value with the same modulus as
// the historical build-a-candidate-slice implementation — the excluded
// node's index is located by binary search and skipped arithmetically — so
// traces are unchanged while the call allocates nothing.
func (e *Engine) RandomLiveNode(exclude NodeID) *Node {
	e.ensureLive()
	idx := e.liveIdx
	m := len(idx)
	pos := m // sentinel: nothing to skip
	if exclude >= 0 {
		if i, found := slices.BinarySearchFunc(idx, exclude,
			func(n *Node, id NodeID) int { return cmp.Compare(n.ID, id) }); found {
			pos = i
			m--
		}
	}
	if m == 0 {
		return nil
	}
	k := e.rng.Intn(m)
	if k >= pos {
		k++
	}
	return idx[k]
}

// RunCycle executes one cycle of the two-phase exchange model: churn, the
// parallel propose phase, the destination-sharded parallel apply phase,
// then observers. It reports false if any observer requested termination.
// See exchange.go for the model's contracts and the determinism argument.
func (e *Engine) RunCycle() bool {
	if e.churn != nil {
		e.churn.Apply(e)
	}
	// Stateful net models (RegionalOutage's Markov chains) advance once
	// per cycle, on the coordinator, from the model's dedicated stream.
	if t, ok := e.netmod.(NetTicker); ok {
		t.Tick(e.cycle, e.netRNG)
	}

	// Snapshot the live population: churn is done for this cycle and
	// handlers cannot crash nodes, so liveness is frozen through both
	// phases (which is also what makes ApplyContext.Alive safe to call
	// from concurrent apply workers) and the maintained live index IS the
	// snapshot — no per-cycle copy.
	e.ensureLive()
	live := e.liveIdx

	// Phase 1: parallel propose over contiguous shards. Each worker owns
	// its shard's nodes and a private outbox; concatenating the outboxes
	// in shard order yields the messages in sender-ID order no matter how
	// many workers ran.
	//simcheck:allow determinism phase timing feeds Stats only, never the trace
	phaseStart := time.Now()
	workers := e.workers
	if workers > len(live) {
		workers = len(live)
	}
	if workers < 1 {
		workers = 1
	}
	if cap(e.outScratch) < workers {
		e.outScratch = make([]Proposals, workers)
	}
	outs := e.outScratch[:workers]
	for w := range outs {
		outs[w].msgs = outs[w].msgs[:0]
		outs[w].evals = 0
	}
	e.pool.run(workers, func(w int) {
		px := &outs[w]
		px.cycle = e.cycle
		lo, hi := w*len(live)/workers, (w+1)*len(live)/workers
		for _, n := range live[lo:hi] {
			px.begin(n.ID)
			for _, p := range n.Protocols {
				if pr, ok := p.(Proposer); ok {
					pr.Propose(n, px)
				}
			}
		}
	})
	for w := range outs {
		e.evals += outs[w].evals
	}
	//simcheck:allow determinism phase timing feeds Stats only, never the trace
	now := time.Now()
	e.proposeNanos += now.Sub(phaseStart).Nanoseconds()
	phaseStart = now

	// Phase 2: deterministic parallel apply. Move the outbox messages into
	// the canonical list, shuffle into the cycle's canonical delivery
	// order with the engine RNG, then deliver in destination-sharded
	// rounds until no handler posts a follow-up. Every round's buffer is
	// retained so payload references die — and recyclable payloads return
	// to their free lists — in one place, releaseApplyScratch, once the
	// rounds are done.
	msgs := e.msgScratch[:0]
	for w := range outs {
		msgs = append(msgs, outs[w].msgs...)
	}
	// Released delayed legs join before the canonical shuffle, so their
	// position in this cycle's delivery order is as seed-determined as
	// everyone else's. The queue compacts in place; vacated tail slots are
	// cleared so a released payload is pinned by nothing but the canonical
	// list that now owns (and will recycle) it.
	if len(e.delayQ) > 0 {
		q := e.delayQ[:0]
		for _, d := range e.delayQ {
			if d.release <= e.cycle {
				msgs = append(msgs, d.msg)
			} else {
				q = append(q, d)
			}
		}
		clear(e.delayQ[len(q):])
		e.delayQ = q
	}
	e.msgScratch = msgs
	e.rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	depth := 0
	for round := msgs; len(round) > 0; depth++ {
		follows := e.applyRound(round)
		if depth == len(e.rounds) {
			e.rounds = append(e.rounds, nil)
		}
		next := e.rounds[depth][:0]
		for _, f := range follows {
			next = append(next, f.msg)
		}
		e.rounds[depth] = next
		round = next
	}
	e.releaseApplyScratch(outs, depth)
	//simcheck:allow determinism phase timing feeds Stats only, never the trace
	e.applyNanos += time.Since(phaseStart).Nanoseconds()

	e.cycle++
	cont := true
	for _, o := range e.observers {
		if !o(e) {
			cont = false
		}
	}
	e.publishStats()
	return cont
}

// route classifies one canonical message on the coordinator: delivered to
// the destination's Receiver when the destination is alive and reachable,
// otherwise bounced to the sender's Undeliverable hook (the failure
// feedback a real initiator would get from a timed-out connection), moving
// the Delivered/Dropped counters deterministically. The delivery filter is
// consulted here, at delivery time, so a partition installed mid-run also
// blocks messages proposed earlier in the same cycle; the net model (when
// installed) judges what the filter let through. slot points into the
// round buffer — route owns that slot's Data: a delayed leg moves the
// payload into the delay queue and nils the slot so end-of-cycle recycling
// skips it, and a corrupted leg dispatches a Corrupted copy while the slot
// keeps the original for recycling. The returned message is the one to
// dispatch; a nil node means no handler fires at all (no sender exists, a
// blackhole swallowed the leg, or the leg was delayed).
func (e *Engine) route(slot *Message) (*Node, Message, bool) {
	m := *slot
	dst := e.arena.at(m.To)
	if dst == nil || !dst.Alive || e.filter.blocked(m.From, m.To) {
		e.dropped++
		return e.arena.at(m.From), m, false
	}
	if e.netmod != nil && m.From != m.To && !m.redelivered {
		switch v := e.netmod.Judge(m.From, m.To, e.netRNG); v.Fate {
		case FateDrop:
			e.dropped++
			return e.arena.at(m.From), m, false
		case FateBlackhole:
			e.dropped++
			return nil, m, false
		case FateDelay:
			d := v.Delay
			if d < 1 {
				d = 1
			}
			e.delayed++
			m.redelivered = true
			e.delayQ = append(e.delayQ, delayedMsg{release: e.cycle + d, msg: m})
			slot.Data = nil
			return nil, m, false
		case FateCorrupt:
			e.corrupted++
			e.dropped++
			m.Data = Corrupted{}
			return dst, m, true
		}
	}
	e.delivered++
	return dst, m, true
}

// dispatch invokes the handling node's protocol for one routed message.
func dispatch(n *Node, ax *ApplyContext, m Message, idx int, deliver bool) {
	if m.Slot >= len(n.Protocols) {
		return
	}
	ax.self = n.ID
	ax.trigger = idx
	if deliver {
		if r, ok := n.Protocols[m.Slot].(Receiver); ok {
			r.Receive(n, ax, m)
		}
	} else if u, ok := n.Protocols[m.Slot].(Undeliverable); ok {
		u.Undelivered(n, ax, m)
	}
}

// applyRound delivers one round of messages and returns the follow-ups
// posted by its handlers, in canonical (trigger index, emission) order.
//
// The coordinator classifies every message in canonical order (see route),
// then shards the routed jobs by handling node across the apply workers:
// all of one node's messages land on one worker in canonical order, so
// per-node handler order — the only order a node-local handler can observe
// — is independent of both the worker count and the node→worker
// assignment. That freedom is what makes the assignment a pure scheduling
// decision: jobs are bin-packed onto workers by per-node message count
// (greedy least-loaded, in first-appearance order), so a hotspot node's
// message pile no longer drags the ~1/workers of the population that
// shared its ID residue onto the same worker, as the historical ID-mod
// assignment did.
func (e *Engine) applyRound(round []Message) []followUp {
	workers := e.ApplyWorkers()
	if workers > len(round) {
		workers = len(round)
	}
	if workers < 1 {
		workers = 1
	}
	if cap(e.applyCtxs) < workers {
		e.applyCtxs = make([]ApplyContext, workers)
	}
	ctxs := e.applyCtxs[:workers]

	e.applyRounds++
	if workers == 1 {
		// Single-worker fast path: classify and handle in one fused pass
		// on the coordinator. Handlers cannot observe the counters or
		// liveness changes mid-phase, so fusing is trace-identical to the
		// classify-then-handle split and skips materializing jobs.
		ax := &ctxs[0]
		ax.reset(e, e.cycle)
		for i := range round {
			if n, m, deliver := e.route(&round[i]); n != nil {
				e.applyJobs++
				dispatch(n, ax, m, i, deliver)
			}
		}
	} else {
		e.shardRound(round, workers)
		jobs, order := e.jobScratch, e.jobOrder
		batches, spans := e.batchScratch, e.batchSpans[:workers+1]
		// Per-round shard-load spread (min/mean/max worker load),
		// accumulated before the workers run: a skewed assignment —
		// idmod under hotspot traffic — shows up directly as
		// max >> mean in the Stats snapshot.
		loads := e.loads[:workers]
		minLoad, maxLoad, total := loads[0], loads[0], 0
		for _, l := range loads {
			total += l
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		e.applyJobs += int64(total)
		e.applyBatches += int64(len(batches))
		e.shardedRounds++
		e.shardMinSum += int64(minLoad)
		e.shardMaxSum += int64(maxLoad)
		e.shardMeanSum += float64(total) / float64(workers)
		e.pool.run(workers, func(w int) {
			ax := &ctxs[w]
			ax.reset(e, e.cycle)
			// Batched dispatch: one batch per (node, round), its jobs in
			// canonical order. Per-node setup — the context's sender
			// identity, the protocol table — is hoisted out of the
			// per-message loop.
			for _, b := range batches[spans[w]:spans[w+1]] {
				n := b.node
				ax.self = n.ID
				protos := n.Protocols
				for _, k := range order[b.lo:b.hi] {
					j := &jobs[k]
					if j.msg.Slot >= len(protos) {
						continue
					}
					ax.trigger = j.idx
					if j.deliver {
						if r, ok := protos[j.msg.Slot].(Receiver); ok {
							r.Receive(n, ax, j.msg)
						}
					} else if u, ok := protos[j.msg.Slot].(Undeliverable); ok {
						u.Undelivered(n, ax, j.msg)
					}
				}
			}
		})
	}

	// Round barrier: aggregate per-worker eval counts and restore the
	// sequential follow-up order. Triggers (canonical indices) are unique
	// per routed message and each message's follow-ups are emitted
	// contiguously into one worker's outbox, so a stable sort by trigger
	// across the concatenation reconstructs exactly the order a single
	// sequential pass would have produced — even though batching means a
	// worker's outbox is no longer globally trigger-sorted.
	follows := e.followScratch[:0]
	for w := range ctxs {
		e.evals += ctxs[w].evals
		follows = append(follows, ctxs[w].outbox...)
	}
	slices.SortStableFunc(follows, func(a, b followUp) int { return cmp.Compare(a.trigger, b.trigger) })
	e.followScratch = follows
	return follows
}

// shardRound classifies a round's messages and lays the routed jobs out as
// per-node batches grouped by worker. Everything runs on the coordinator,
// so the assignment is deterministic by construction — and because
// per-node handler order is the only observable, any assignment yields the
// same trace (the idModSharding hook and the invariance tests pin that
// down).
//
// The layout is a two-level counting sort over engine-owned scratch, with
// no per-job copying of Message values: jobs stay in jobScratch in
// canonical order; jobOrder holds job indices permuted worker-major and
// node-contiguous (each node's run in canonical order); batchScratch holds
// one applyBatch per distinct node, in first-appearance order within each
// worker's batchSpans window. Total cost is O(messages + distinct nodes +
// workers) per round, and every buffer is reused across rounds and cycles.
func (e *Engine) shardRound(round []Message, workers int) {
	if n := e.arena.len(); len(e.nodeMsgs) < n {
		e.nodeMsgs = make([]int32, n)
		e.nodeWorker = make([]int32, n)
	}

	// Classification pass, in canonical order: route each message and
	// count messages per handling node (first-appearance order recorded in
	// touched; nodeMsgs entries are reset via touched below, keeping the
	// pass O(messages), not O(population)).
	jobs := e.jobScratch[:0]
	touched := e.touched[:0]
	for i := range round {
		n, m, deliver := e.route(&round[i])
		if n == nil {
			continue
		}
		jobs = append(jobs, applyJob{idx: i, deliver: deliver, node: n, msg: m})
		if e.nodeMsgs[n.ID] == 0 {
			touched = append(touched, n)
		}
		e.nodeMsgs[n.ID]++
	}
	e.jobScratch = jobs
	e.touched = touched

	// Worker assignment, per distinct node, weighted by its message count.
	// loads doubles as the per-worker job totals the round's shard-load
	// stats read back in applyRound.
	if cap(e.loads) < workers {
		e.loads = make([]int, workers)
	}
	loads := e.loads[:workers]
	clear(loads)
	if e.idModSharding {
		for _, n := range touched {
			w := int32(uint64(n.ID) % uint64(workers))
			e.nodeWorker[n.ID] = w
			loads[w] += int(e.nodeMsgs[n.ID])
		}
	} else {
		// Greedy bin-pack: assign each distinct node, in first-appearance
		// order, to the currently least-loaded worker, weighted by its
		// message count. O(distinct × workers) with small worker counts.
		for _, n := range touched {
			w := 0
			for v := 1; v < workers; v++ {
				if loads[v] < loads[w] {
					w = v
				}
			}
			e.nodeWorker[n.ID] = int32(w)
			loads[w] += int(e.nodeMsgs[n.ID])
		}
	}

	// Batch layout: count batches per worker, prefix-sum into spans, then
	// place one batch per node — worker-major, first-appearance order
	// within a worker — and carve each batch's [lo, hi) window out of the
	// job-order permutation.
	if cap(e.batchSpans) < workers+1 {
		e.batchSpans = make([]int32, workers+1)
		e.batchCursor = make([]int32, workers)
	}
	spans := e.batchSpans[:workers+1]
	cursor := e.batchCursor[:workers]
	clear(spans)
	for _, n := range touched {
		spans[e.nodeWorker[n.ID]+1]++
	}
	for w := 0; w < workers; w++ {
		spans[w+1] += spans[w]
		cursor[w] = spans[w]
	}
	if cap(e.batchScratch) < len(touched) {
		e.batchScratch = make([]applyBatch, len(touched), max(len(touched), 2*cap(e.batchScratch)))
	}
	batches := e.batchScratch[:len(touched)]
	for _, n := range touched {
		w := e.nodeWorker[n.ID]
		batches[cursor[w]] = applyBatch{node: n}
		cursor[w]++
	}
	var off int32
	for b := range batches {
		id := batches[b].node.ID
		cnt := e.nodeMsgs[id]
		batches[b].lo = off
		batches[b].hi = off + cnt
		// The count's job is done; the entry becomes the node's scatter
		// cursor into jobOrder.
		e.nodeMsgs[id] = off
		off += cnt
	}
	e.batchScratch = batches

	if cap(e.jobOrder) < len(jobs) {
		e.jobOrder = make([]int32, len(jobs), max(len(jobs), 2*cap(e.jobOrder)))
	}
	order := e.jobOrder[:len(jobs)]
	for k := range jobs {
		id := jobs[k].node.ID
		order[e.nodeMsgs[id]] = int32(k)
		e.nodeMsgs[id]++
	}
	e.jobOrder = order

	// Every touched entry now equals its batch's hi; reset for the next
	// round.
	for _, n := range touched {
		e.nodeMsgs[n.ID] = 0
	}
}

// releaseApplyScratch is the one place a cycle's payload references die.
// First every payload the cycle sent is offered back to its free list —
// each message lives in exactly one of the canonical list (proposed) or
// one round buffer (follow-up), so Recycle runs exactly once per payload.
// Then every payload-carrying scratch buffer — the propose outboxes, the
// canonical list, the routed job list, the per-worker follow-up outboxes
// and the merged follow-ups, the round buffers — is cleared over its full
// capacity extent; otherwise stale entries beyond the next cycle's
// high-water mark would pin delivered payloads for the engine's lifetime.
// The batch descriptors and the touched list hold only *Node pointers,
// which the arena keeps alive regardless, so they are deliberately not
// cleared — at n = 10^6 that skips tens of megabytes of per-cycle
// memset.
func (e *Engine) releaseApplyScratch(outs []Proposals, depth int) {
	for i := range e.msgScratch {
		if recyclePayload(&e.msgScratch[i]) {
			e.payloadsRecycled++
		}
	}
	for d := 0; d < depth; d++ {
		buf := e.rounds[d]
		for i := range buf {
			if recyclePayload(&buf[i]) {
				e.payloadsRecycled++
			}
		}
	}
	for w := range outs {
		clear(outs[w].msgs[:cap(outs[w].msgs)])
	}
	clear(e.msgScratch[:cap(e.msgScratch)])
	clear(e.jobScratch[:cap(e.jobScratch)])
	for w := range e.applyCtxs {
		out := e.applyCtxs[w].outbox
		clear(out[:cap(out)])
	}
	clear(e.followScratch[:cap(e.followScratch)])
	for d := range e.rounds {
		clear(e.rounds[d][:cap(e.rounds[d])])
	}
}

// Run executes up to maxCycles cycles, stopping early if an observer
// requests termination. It returns the number of cycles executed.
func (e *Engine) Run(maxCycles int64) int64 {
	var i int64
	for i = 0; i < maxCycles; i++ {
		if !e.RunCycle() {
			return i + 1
		}
	}
	return i
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{cycle=%d nodes=%d live=%d workers=%d apply=%d}",
		e.cycle, e.Size(), e.LiveCount(), e.workers, e.ApplyWorkers())
}
