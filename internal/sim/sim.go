// Package sim is a discrete simulator for large P2P networks, equivalent in
// role to PeerSim, which the paper used for its evaluation. It offers two
// execution models:
//
//   - a cycle-driven engine (Engine): in each cycle every live node's
//     protocols are stepped once, in a freshly shuffled order, exactly like
//     PeerSim's CDSimulator. This is what the paper's experiments use.
//   - an event-driven engine (EventEngine, see events.go): a time-ordered
//     event heap with configurable link latency and message loss, for
//     experiments where asynchrony matters.
//
// Determinism: given the same seed, node count and protocol stack, a run
// produces the identical trace. Each node owns a split RNG stream so that
// adding observers or reordering unrelated code does not perturb results.
package sim

import (
	"fmt"

	"gossipopt/internal/rng"
)

// NodeID identifies a simulated node. IDs are never reused within a run,
// so a crashed node's ID never refers to a different live node later.
type NodeID int64

// Protocol is one layer of a node's protocol stack in the cycle-driven
// model. NextCycle is invoked once per cycle per live node.
type Protocol interface {
	NextCycle(n *Node, e *Engine)
}

// Node is one simulated peer. Protocol state lives in the Protocols slice;
// slot indices are assigned by the experiment setup and shared across all
// nodes (slot 0 might be the topology service, slot 1 the optimizer, ...).
type Node struct {
	ID    NodeID
	Alive bool
	// RNG is the node's private random stream.
	RNG *rng.RNG
	// Protocols holds one instance per protocol slot.
	Protocols []Protocol
}

// Protocol returns the protocol instance in the given slot.
func (n *Node) Protocol(slot int) Protocol { return n.Protocols[slot] }

// Engine is the cycle-driven simulation engine.
type Engine struct {
	rng   *rng.RNG
	nodes map[NodeID]*Node
	// order caches live node IDs for shuffled iteration.
	order  []NodeID
	nextID NodeID
	cycle  int64

	// churn, when non-nil, is applied at the start of every cycle.
	churn ChurnModel
	// makeNode builds the protocol stack for a (re)joining node.
	makeNode func(n *Node)

	// observers run after every cycle.
	observers []Observer
}

// Observer inspects the network after each cycle; returning false stops the
// simulation (used for threshold-based termination, e.g. the paper's
// fourth experiment).
type Observer func(e *Engine) bool

// NewEngine creates an empty engine with a deterministic RNG stream.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   rng.New(seed),
		nodes: make(map[NodeID]*Node),
	}
}

// RNG exposes the engine's private random stream (for setup code).
func (e *Engine) RNG() *rng.RNG { return e.rng }

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int64 { return e.cycle }

// SetChurn installs a churn model applied at the start of each cycle.
func (e *Engine) SetChurn(c ChurnModel) { e.churn = c }

// SetNodeFactory installs the function used to populate the protocol stack
// of nodes created by AddNode or by churn-driven joins.
func (e *Engine) SetNodeFactory(f func(n *Node)) { e.makeNode = f }

// AddObserver registers a per-cycle observer.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// AddNode creates a new live node, populates its protocol stack via the
// node factory (if set) and returns it.
func (e *Engine) AddNode() *Node {
	n := &Node{
		ID:    e.nextID,
		Alive: true,
		RNG:   e.rng.Split(),
	}
	e.nextID++
	if e.makeNode != nil {
		e.makeNode(n)
	}
	e.nodes[n.ID] = n
	e.order = append(e.order, n.ID)
	return n
}

// AddNodes creates count nodes and returns them.
func (e *Engine) AddNodes(count int) []*Node {
	out := make([]*Node, count)
	for i := range out {
		out[i] = e.AddNode()
	}
	return out
}

// Node returns the node with the given ID, or nil if it does not exist.
func (e *Engine) Node(id NodeID) *Node { return e.nodes[id] }

// Crash marks the node as dead. Dead nodes are not stepped and are skipped
// by RandomLiveNode. The node's state is retained so that rejoin semantics
// can be modelled by the caller if desired.
func (e *Engine) Crash(id NodeID) {
	if n := e.nodes[id]; n != nil {
		n.Alive = false
	}
}

// Revive marks a crashed node as live again.
func (e *Engine) Revive(id NodeID) {
	if n := e.nodes[id]; n != nil {
		n.Alive = true
	}
}

// LiveCount returns the number of live nodes.
func (e *Engine) LiveCount() int {
	c := 0
	for _, n := range e.nodes {
		if n.Alive {
			c++
		}
	}
	return c
}

// Size returns the total number of nodes ever created and not removed.
func (e *Engine) Size() int { return len(e.nodes) }

// AllNodes returns every node ever created, dead or alive, in ID order.
func (e *Engine) AllNodes() []*Node {
	out := make([]*Node, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// LiveNodes returns all live nodes in ID order (deterministic).
func (e *Engine) LiveNodes() []*Node {
	out := make([]*Node, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// ForEachLive calls f for every live node in ID order.
func (e *Engine) ForEachLive(f func(n *Node)) {
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			f(n)
		}
	}
}

// RandomLiveNode returns a uniformly random live node different from
// exclude (pass -1 to allow any). Returns nil if no eligible node exists.
// This is the simulator-level oracle; protocols that must be realistic use
// the peer-sampling service instead.
func (e *Engine) RandomLiveNode(exclude NodeID) *Node {
	live := make([]NodeID, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive && id != exclude {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return e.nodes[live[e.rng.Intn(len(live))]]
}

// RunCycle executes one cycle: churn, then every live node's protocol stack
// in a shuffled order, then observers. It reports false if any observer
// requested termination.
func (e *Engine) RunCycle() bool {
	if e.churn != nil {
		e.churn.Apply(e)
	}
	ids := make([]NodeID, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			ids = append(ids, id)
		}
	}
	e.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		n := e.nodes[id]
		if n == nil || !n.Alive {
			continue // may have crashed mid-cycle via protocol action
		}
		for _, p := range n.Protocols {
			p.NextCycle(n, e)
		}
	}
	e.cycle++
	cont := true
	for _, o := range e.observers {
		if !o(e) {
			cont = false
		}
	}
	return cont
}

// Run executes up to maxCycles cycles, stopping early if an observer
// requests termination. It returns the number of cycles executed.
func (e *Engine) Run(maxCycles int64) int64 {
	var i int64
	for i = 0; i < maxCycles; i++ {
		if !e.RunCycle() {
			return i + 1
		}
	}
	return i
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{cycle=%d nodes=%d live=%d}", e.cycle, e.Size(), e.LiveCount())
}
