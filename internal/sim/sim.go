// Package sim is a discrete simulator for large P2P networks, equivalent in
// role to PeerSim, which the paper used for its evaluation. It offers two
// execution models:
//
//   - a cycle-driven engine (Engine): in each cycle every live node's
//     protocols are stepped once, like PeerSim's CDSimulator but with a
//     two-phase exchange model (see exchange.go) that shards the
//     node-local work across worker goroutines and applies all proposed
//     exchanges in a seed-derived canonical order. This is what the
//     paper's experiments use.
//   - an event-driven engine (EventEngine, see events.go): a time-ordered
//     event heap with configurable link latency and message loss, for
//     experiments where asynchrony matters.
//
// Determinism: given the same seed, node count and protocol stack, a run
// produces the identical trace — for any worker count, workers=1 included.
// Each node owns a split RNG stream so that adding observers or reordering
// unrelated code does not perturb results, and so that stepping nodes on
// parallel workers neither races nor changes the per-node draw sequence.
package sim

import (
	"fmt"
	"sync"

	"gossipopt/internal/rng"
)

// NodeID identifies a simulated node. IDs are never reused within a run,
// so a crashed node's ID never refers to a different live node later.
type NodeID int64

// Protocol is one layer of a node's protocol stack in the cycle-driven
// model. An implementation provides at least one execution contract:
//
//   - Proposer (and usually Receiver/Undeliverable): the two-phase
//     exchange model of exchange.go — node-local work on parallel
//     workers, exchanges applied deterministically afterwards;
//   - CycleStepper: the historical sequential contract — stepped one node
//     at a time in a shuffled order and free to mutate peers directly.
//
// A protocol implementing both is driven through the Proposer contract.
//
// CycleStepper is deprecated for new protocols: a NextCycle body reaches
// into peers via e.Node(...), so its traffic never passes through the
// mailbox — delivery filters (partitions) and the Delivered/Dropped
// counters silently do not apply to it, and it caps a cycle's
// parallelism. Every bundled protocol speaks Proposer (a guard test in
// this package keeps internal/gossip and internal/overlay free of
// NextCycle); the sequential path remains only for out-of-tree code.
//
// Protocol is intentionally untyped (a slot may hold either contract), so
// a drifted method signature compiles and the engine silently skips the
// protocol. Guard against that with a compile-time assertion next to every
// implementation, as the bundled protocols do:
//
//	var _ sim.Proposer = (*MyProto)(nil) // or sim.CycleStepper
type Protocol interface{}

// CycleStepper is the sequential protocol contract: NextCycle is invoked
// once per cycle per live node, in a freshly shuffled order, and may reach
// into peer state directly. Protocols that implement Proposer instead are
// stepped on parallel workers and scale with Engine.SetWorkers.
type CycleStepper interface {
	NextCycle(n *Node, e *Engine)
}

// Node is one simulated peer. Protocol state lives in the Protocols slice;
// slot indices are assigned by the experiment setup and shared across all
// nodes (slot 0 might be the topology service, slot 1 the optimizer, ...).
type Node struct {
	ID    NodeID
	Alive bool
	// RNG is the node's private random stream.
	RNG *rng.RNG
	// Protocols holds one instance per protocol slot.
	Protocols []Protocol
}

// Protocol returns the protocol instance in the given slot.
func (n *Node) Protocol(slot int) Protocol { return n.Protocols[slot] }

// Engine is the cycle-driven simulation engine.
type Engine struct {
	rng   *rng.RNG
	nodes map[NodeID]*Node
	// order caches node IDs in creation (= ID) order for iteration.
	order  []NodeID
	nextID NodeID
	cycle  int64

	// live is the maintained count of live nodes (kept by AddNode, Crash
	// and Revive so LiveCount is O(1); churn models call it per node).
	live int
	// evals is the maintained count of objective evaluations, fed by
	// Proposals.CountEvals at each cycle's phase barrier so budget checks
	// are O(1) instead of an O(n) scan per cycle.
	evals int64

	// workers is the phase-1 parallelism (see SetWorkers).
	workers int

	// churn, when non-nil, is applied at the start of every cycle.
	churn ChurnModel
	// makeNode builds the protocol stack for a (re)joining node.
	makeNode func(n *Node)

	// filter, when non-nil, gates message delivery (network partitions).
	filter DeliveryFilter
	// delivered/dropped count apply-phase deliveries and messages lost to
	// dead destinations or the delivery filter.
	delivered, dropped int64

	// observers run after every cycle.
	observers []Observer

	// scratch buffers reused across cycles.
	liveScratch   []*Node
	legacyScratch []*Node
	msgScratch    []Message
	outScratch    []Proposals
	legacyParts   [][]*Node
}

// Observer inspects the network after each cycle; returning false stops the
// simulation (used for threshold-based termination, e.g. the paper's
// fourth experiment).
type Observer func(e *Engine) bool

// NewEngine creates an empty engine with a deterministic RNG stream.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:     rng.New(seed),
		nodes:   make(map[NodeID]*Node),
		workers: 1,
	}
}

// RNG exposes the engine's private random stream (for setup code).
func (e *Engine) RNG() *rng.RNG { return e.rng }

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int64 { return e.cycle }

// SetChurn installs a churn model applied at the start of each cycle.
func (e *Engine) SetChurn(c ChurnModel) { e.churn = c }

// SetDeliveryFilter installs (or, with nil, removes) the delivery filter
// consulted for every apply-phase message — the partition/heal hook for
// scripted scenarios. Blocked messages take the same undeliverable path as
// messages to dead nodes: the sender's Undeliverable hook fires.
func (e *Engine) SetDeliveryFilter(f DeliveryFilter) { e.filter = f }

// Delivered returns the count of apply-phase messages delivered to a live,
// reachable destination.
func (e *Engine) Delivered() int64 { return e.delivered }

// Dropped returns the count of apply-phase messages lost to a dead
// destination or to the delivery filter (partitions).
func (e *Engine) Dropped() int64 { return e.dropped }

// SetWorkers sets the number of goroutines stepping nodes during the
// propose phase (values < 1 mean 1). The trace is bit-identical for every
// worker count; workers only change wall-clock speed.
func (e *Engine) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	e.workers = w
}

// Workers returns the configured propose-phase parallelism.
func (e *Engine) Workers() int { return e.workers }

// Evals returns the engine-maintained count of objective evaluations
// (reported by protocols through Proposals.CountEvals). Evaluations of
// since-crashed nodes remain counted. O(1).
func (e *Engine) Evals() int64 { return e.evals }

// CountEvals adds k evaluations to the engine counter. Setup code and
// sequential (CycleStepper) protocols may call it directly; propose-phase
// code must use Proposals.CountEvals instead.
func (e *Engine) CountEvals(k int64) { e.evals += k }

// SetNodeFactory installs the function used to populate the protocol stack
// of nodes created by AddNode or by churn-driven joins.
func (e *Engine) SetNodeFactory(f func(n *Node)) { e.makeNode = f }

// AddObserver registers a per-cycle observer.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// AddNode creates a new live node, populates its protocol stack via the
// node factory (if set) and returns it.
func (e *Engine) AddNode() *Node {
	n := &Node{
		ID:    e.nextID,
		Alive: true,
		RNG:   e.rng.Split(),
	}
	e.nextID++
	if e.makeNode != nil {
		e.makeNode(n)
	}
	e.nodes[n.ID] = n
	e.order = append(e.order, n.ID)
	e.live++
	return n
}

// AddNodes creates count nodes and returns them.
func (e *Engine) AddNodes(count int) []*Node {
	out := make([]*Node, count)
	for i := range out {
		out[i] = e.AddNode()
	}
	return out
}

// Node returns the node with the given ID, or nil if it does not exist.
func (e *Engine) Node(id NodeID) *Node { return e.nodes[id] }

// Crash marks the node as dead. Dead nodes are not stepped and are skipped
// by RandomLiveNode. The node's state is retained so that rejoin semantics
// can be modelled by the caller if desired.
func (e *Engine) Crash(id NodeID) {
	if n := e.nodes[id]; n != nil && n.Alive {
		n.Alive = false
		e.live--
	}
}

// Revive marks a crashed node as live again.
func (e *Engine) Revive(id NodeID) {
	if n := e.nodes[id]; n != nil && !n.Alive {
		n.Alive = true
		e.live++
	}
}

// LiveCount returns the number of live nodes. O(1): the count is
// maintained by AddNode/Crash/Revive, so per-node churn checks do not turn
// a cycle quadratic.
func (e *Engine) LiveCount() int { return e.live }

// Size returns the total number of nodes ever created and not removed.
func (e *Engine) Size() int { return len(e.nodes) }

// AllNodes returns every node ever created, dead or alive, in ID order.
func (e *Engine) AllNodes() []*Node {
	out := make([]*Node, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// LiveNodes returns all live nodes in ID order (deterministic).
func (e *Engine) LiveNodes() []*Node {
	out := make([]*Node, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// ForEachLive calls f for every live node in ID order.
func (e *Engine) ForEachLive(f func(n *Node)) {
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			f(n)
		}
	}
}

// RandomLiveNode returns a uniformly random live node different from
// exclude (pass -1 to allow any). Returns nil if no eligible node exists.
// This is the simulator-level oracle; protocols that must be realistic use
// the peer-sampling service instead.
func (e *Engine) RandomLiveNode(exclude NodeID) *Node {
	live := make([]NodeID, 0, len(e.order))
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive && id != exclude {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return e.nodes[live[e.rng.Intn(len(live))]]
}

// RunCycle executes one cycle of the two-phase exchange model: churn, the
// parallel propose phase, the sequential legacy step, the deterministic
// apply phase, then observers. It reports false if any observer requested
// termination. See exchange.go for the model's contracts and the
// determinism argument.
func (e *Engine) RunCycle() bool {
	if e.churn != nil {
		e.churn.Apply(e)
	}

	// Snapshot the live population; churn is done for this cycle, so the
	// set is stable through both phases (legacy protocols may still crash
	// nodes mid-cycle — apply re-checks aliveness).
	live := e.liveScratch[:0]
	for _, id := range e.order {
		if n := e.nodes[id]; n != nil && n.Alive {
			live = append(live, n)
		}
	}
	e.liveScratch = live

	// Phase 1: parallel propose over contiguous shards. Each worker owns
	// its shard's nodes and a private outbox; concatenating the outboxes
	// in shard order yields the messages in sender-ID order no matter how
	// many workers ran.
	workers := e.workers
	if workers > len(live) {
		workers = len(live)
	}
	if workers < 1 {
		workers = 1
	}
	if cap(e.outScratch) < workers {
		e.outScratch = make([]Proposals, workers)
		e.legacyParts = make([][]*Node, workers)
	}
	outs := e.outScratch[:workers]
	legacies := e.legacyParts[:workers]
	for w := range outs {
		outs[w].msgs = outs[w].msgs[:0]
		outs[w].evals = 0
		legacies[w] = legacies[w][:0]
	}
	shard := func(w int) {
		px := &outs[w]
		px.cycle = e.cycle
		lo, hi := w*len(live)/workers, (w+1)*len(live)/workers
		for _, n := range live[lo:hi] {
			px.begin(n.ID)
			hasLegacy := false
			for _, p := range n.Protocols {
				switch pr := p.(type) {
				case Proposer:
					pr.Propose(n, px)
				case CycleStepper:
					hasLegacy = true
				}
			}
			if hasLegacy {
				legacies[w] = append(legacies[w], n)
			}
		}
	}
	if workers == 1 {
		shard(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				shard(w)
			}(w)
		}
		wg.Wait()
	}
	for w := range outs {
		e.evals += outs[w].evals
	}

	// Sequential step for protocols predating the exchange model, in a
	// freshly shuffled order — the historical engine's exact semantics.
	legacy := e.legacyScratch[:0]
	for _, part := range legacies {
		legacy = append(legacy, part...)
	}
	e.legacyScratch = legacy
	if len(legacy) > 0 {
		e.rng.Shuffle(len(legacy), func(i, j int) { legacy[i], legacy[j] = legacy[j], legacy[i] })
		for _, n := range legacy {
			if !n.Alive {
				continue // may have crashed mid-cycle via protocol action
			}
			for _, p := range n.Protocols {
				if cs, ok := p.(CycleStepper); ok {
					if _, par := p.(Proposer); !par {
						cs.NextCycle(n, e)
					}
				}
			}
		}
	}

	// Phase 2: deterministic apply. Concatenate outboxes (sender-ID
	// order), shuffle into the cycle's canonical delivery order with the
	// engine RNG, then deliver sequentially.
	msgs := e.msgScratch[:0]
	for w := range outs {
		msgs = append(msgs, outs[w].msgs...)
	}
	e.msgScratch = msgs
	e.rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	for i := range msgs {
		e.deliver(msgs[i])
		msgs[i].Data = nil // release payload references for reuse
	}
	for w := range outs {
		for i := range outs[w].msgs {
			outs[w].msgs[i].Data = nil // ditto for the reused outboxes
		}
	}

	e.cycle++
	cont := true
	for _, o := range e.observers {
		if !o(e) {
			cont = false
		}
	}
	return cont
}

// deliver routes one message: to the destination's Receiver when the
// destination is alive and reachable, otherwise back to the sender's
// Undeliverable hook (the failure feedback a real initiator would get from
// a timed-out connection). The delivery filter is consulted here, at
// delivery time, so a partition installed mid-run also blocks messages
// proposed earlier in the same cycle.
func (e *Engine) deliver(m Message) {
	dst := e.nodes[m.To]
	if dst == nil || !dst.Alive || e.filter.blocked(m.From, m.To) {
		e.dropped++
		src := e.nodes[m.From]
		if src == nil || m.Slot >= len(src.Protocols) {
			return
		}
		if u, ok := src.Protocols[m.Slot].(Undeliverable); ok {
			u.Undelivered(src, e, m)
		}
		return
	}
	e.delivered++
	if m.Slot >= len(dst.Protocols) {
		return
	}
	if r, ok := dst.Protocols[m.Slot].(Receiver); ok {
		r.Receive(dst, e, m)
	}
}

// Run executes up to maxCycles cycles, stopping early if an observer
// requests termination. It returns the number of cycles executed.
func (e *Engine) Run(maxCycles int64) int64 {
	var i int64
	for i = 0; i < maxCycles; i++ {
		if !e.RunCycle() {
			return i + 1
		}
	}
	return i
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{cycle=%d nodes=%d live=%d workers=%d}", e.cycle, e.Size(), e.LiveCount(), e.workers)
}
