package sim

import (
	"testing"
	"testing/quick"
)

// countingProto records how many times each node was stepped.
type countingProto struct {
	steps int
}

func (c *countingProto) Propose(n *Node, px *Proposals) { c.steps++ }

func newCountingEngine(seed uint64, n int) (*Engine, []*countingProto) {
	e := NewEngine(seed)
	protos := make([]*countingProto, 0, n)
	e.SetNodeFactory(func(nd *Node) {
		p := &countingProto{}
		protos = append(protos, p)
		nd.Protocols = []Protocol{p}
	})
	e.AddNodes(n)
	return e, protos
}

func TestEveryLiveNodeSteppedOncePerCycle(t *testing.T) {
	e, protos := newCountingEngine(1, 10)
	e.Run(5)
	for i, p := range protos {
		if p.steps != 5 {
			t.Fatalf("node %d stepped %d times, want 5", i, p.steps)
		}
	}
}

func TestCrashedNodesNotStepped(t *testing.T) {
	e, protos := newCountingEngine(2, 4)
	e.Crash(0)
	e.Run(3)
	if protos[0].steps != 0 {
		t.Fatalf("crashed node stepped %d times", protos[0].steps)
	}
	for i := 1; i < 4; i++ {
		if protos[i].steps != 3 {
			t.Fatalf("live node %d stepped %d times", i, protos[i].steps)
		}
	}
}

func TestReviveResumesStepping(t *testing.T) {
	e, protos := newCountingEngine(3, 2)
	e.Crash(1)
	e.Run(2)
	e.Revive(1)
	e.Run(2)
	if protos[1].steps != 2 {
		t.Fatalf("revived node stepped %d times, want 2", protos[1].steps)
	}
}

func TestLiveCountAndSize(t *testing.T) {
	e, _ := newCountingEngine(4, 8)
	if e.Size() != 8 || e.LiveCount() != 8 {
		t.Fatalf("size=%d live=%d", e.Size(), e.LiveCount())
	}
	e.Crash(0)
	e.Crash(5)
	if e.LiveCount() != 6 {
		t.Fatalf("live=%d after 2 crashes", e.LiveCount())
	}
	if e.Size() != 8 {
		t.Fatalf("size=%d after crashes", e.Size())
	}
}

func TestObserverStopsRun(t *testing.T) {
	e, _ := newCountingEngine(5, 3)
	e.AddObserver(func(e *Engine) bool { return e.Cycle() < 4 })
	ran := e.Run(100)
	if ran != 4 {
		t.Fatalf("ran %d cycles, want 4", ran)
	}
}

func TestRandomLiveNodeExcludes(t *testing.T) {
	e, _ := newCountingEngine(6, 5)
	for i := 0; i < 200; i++ {
		n := e.RandomLiveNode(2)
		if n == nil {
			t.Fatal("RandomLiveNode returned nil with live nodes present")
		}
		if n.ID == 2 {
			t.Fatal("RandomLiveNode returned excluded node")
		}
	}
}

func TestRandomLiveNodeNilWhenEmpty(t *testing.T) {
	e := NewEngine(7)
	if e.RandomLiveNode(-1) != nil {
		t.Fatal("expected nil from empty engine")
	}
	n := e.AddNode()
	if e.RandomLiveNode(n.ID) != nil {
		t.Fatal("expected nil when only node is excluded")
	}
}

// Property: the engine is deterministic — same seed, same trace.
func TestDeterminism(t *testing.T) {
	trace := func(seed uint64) []int {
		e, protos := newCountingEngine(seed, 20)
		e.SetChurn(&RateChurn{CrashProb: 0.02, JoinPerCycle: 0.5, MinLive: 2})
		e.Run(30)
		out := make([]int, len(protos))
		for i, p := range protos {
			out[i] = p.steps
		}
		return out
	}
	if err := quick.Check(func(seed uint16) bool {
		a, b := trace(uint64(seed)), trace(uint64(seed))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRateChurnJoins(t *testing.T) {
	e, _ := newCountingEngine(8, 4)
	e.SetChurn(&RateChurn{JoinPerCycle: 2})
	e.Run(5)
	if e.Size() != 4+10 {
		t.Fatalf("size=%d, want 14", e.Size())
	}
}

func TestRateChurnMinLive(t *testing.T) {
	e, _ := newCountingEngine(9, 10)
	e.SetChurn(&RateChurn{CrashProb: 1.0, MinLive: 3})
	e.Run(10)
	if e.LiveCount() != 3 {
		t.Fatalf("live=%d, want MinLive=3", e.LiveCount())
	}
}

func TestCatastropheChurn(t *testing.T) {
	e, _ := newCountingEngine(10, 100)
	e.SetChurn(&CatastropheChurn{AtCycle: 3, Fraction: 0.5})
	e.Run(10)
	if got := e.LiveCount(); got != 50 {
		t.Fatalf("live=%d after 50%% catastrophe, want 50", got)
	}
}

func TestSessionChurnTurnsOver(t *testing.T) {
	e, _ := newCountingEngine(11, 20)
	e.SetChurn(&SessionChurn{MeanSession: 5, MeanDowntime: 2})
	e.Run(100)
	// With mean session 5 over 100 cycles, the original nodes must be gone
	// and replacements joined; population should be of the same order.
	if e.LiveCount() == 0 {
		t.Fatal("population died out")
	}
	alive0 := 0
	for id := NodeID(0); id < 20; id++ {
		if n := e.Node(id); n != nil && n.Alive {
			alive0++
		}
	}
	if alive0 > 2 {
		t.Fatalf("%d of the original 20 nodes still alive after 100 cycles (mean session 5)", alive0)
	}
}

func TestStringSmoke(t *testing.T) {
	e, _ := newCountingEngine(12, 2)
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAllNodesIncludesDead(t *testing.T) {
	e, _ := newCountingEngine(13, 5)
	e.Crash(2)
	all := e.AllNodes()
	if len(all) != 5 {
		t.Fatalf("AllNodes = %d, want 5", len(all))
	}
	for i, n := range all {
		if n.ID != NodeID(i) {
			t.Fatalf("AllNodes not in ID order: %v at %d", n.ID, i)
		}
	}
	live := e.LiveNodes()
	if len(live) != 4 {
		t.Fatalf("LiveNodes = %d, want 4", len(live))
	}
}
