package sim

import (
	"math"
	"sync/atomic"
)

// Engine instrumentation. Every counter here is accumulated in plain
// coordinator-owned fields on the hot path (no atomics, no locks, no
// allocations — the disabled-looking path IS the enabled path) and
// published to an atomic snapshot once per cycle, at the end of RunCycle.
// Engine.Stats reads only the atomic snapshot, so it is safe to call from
// any goroutine concurrently with RunCycle; the values it returns are
// those of the last completed cycle. Nothing in this file touches an RNG
// stream or the metric byte stream: traces are bit-identical with the
// instrumentation read or ignored (pinned by the invariance tests in
// cmd/scenario and by TestStatsStreamWorkerInvariance in
// internal/scenario).

// EngineStats is a point-in-time snapshot of the cycle engine's
// instrumentation counters, taken at a cycle boundary. All duration and
// load counters are cumulative over the engine's lifetime; rates per
// cycle divide by Cycles.
type EngineStats struct {
	// Cycles is the number of completed cycles.
	Cycles int64 `json:"cycles"`
	// Delivered counts apply-phase messages delivered to a live,
	// reachable destination, reply legs included.
	Delivered int64 `json:"delivered"`
	// Dropped counts apply-phase messages lost to a dead destination, the
	// delivery filter (partitions), or a net-model drop/blackhole/corrupt
	// verdict, reply legs included.
	Dropped int64 `json:"dropped"`
	// Delayed counts legs the net model held back for later cycles; each
	// moves Delivered or Dropped at its actual delivery.
	Delayed int64 `json:"delayed"`
	// Corrupted counts legs the net model garbled in transit, each also
	// counted in Dropped (a corrupted leg is never Delivered).
	Corrupted int64 `json:"corrupted"`
	// Evals is the engine-maintained objective-evaluation count.
	Evals int64 `json:"evals"`
	// ProposeNanos is the cumulative wall time of the parallel propose
	// phase (worker launch through the eval-count barrier).
	ProposeNanos int64 `json:"propose_ns"`
	// ApplyNanos is the cumulative wall time of the apply phase: the
	// canonical shuffle, every delivery round, and the end-of-cycle
	// payload recycling.
	ApplyNanos int64 `json:"apply_ns"`
	// ApplyRounds is the total number of apply rounds executed (a cycle
	// runs one round per follow-up depth: request legs, then replies...).
	ApplyRounds int64 `json:"apply_rounds"`
	// ApplyJobs is the total number of routed apply jobs handled — every
	// delivered message plus every undeliverable bounced to a live
	// sender. Messages with no handling node at all are excluded.
	ApplyJobs int64 `json:"apply_jobs"`
	// ApplyBatches is the total number of per-node batches dispatched on
	// sharded apply rounds: one batch per (distinct handling node, round).
	// ApplyJobs/ApplyBatches is the mean batch size — the per-message
	// dispatch overhead amortization the batched apply path buys. The
	// single-worker fused path never materializes batches, so a
	// one-worker engine keeps this at zero.
	ApplyBatches int64 `json:"apply_batches"`
	// PayloadsRecycled is the total number of message payloads returned to
	// their free lists at cycle end (payloads implementing Recyclable).
	// Engine-owned, unlike the process-global FreeListHits/FreeListMisses:
	// it moves unconditionally and counts recycles, not Gets.
	PayloadsRecycled int64 `json:"payloads_recycled"`
	// ShardedRounds counts the apply rounds that ran on more than one
	// worker; the Shard* load counters below accumulate over exactly
	// these rounds (the single-worker fused path never shards).
	ShardedRounds int64 `json:"sharded_rounds"`
	// ShardMinLoad / ShardMaxLoad / ShardMeanLoad accumulate, per sharded
	// round, the smallest, largest and mean per-worker job load. Their
	// per-round averages — and the ShardSkew ratio — expose how evenly
	// the bin-packed (or, with the idmod hook, residue-class) sharding
	// spread the round's work.
	ShardMinLoad  int64   `json:"shard_min_load"`
	ShardMaxLoad  int64   `json:"shard_max_load"`
	ShardMeanLoad float64 `json:"shard_mean_load"`
	// LiveRebuilds counts lazy live-index rebuilds: one arena scan each,
	// triggered by the first live-population read after a Crash/Revive.
	LiveRebuilds int64 `json:"live_rebuilds"`
	// PoolTasks counts jobs submitted to the persistent worker pool
	// (shard 0 runs on the coordinator and is not counted). It grows by
	// workers-1 per parallel phase or sharded round; a single-worker
	// engine keeps it at zero.
	PoolTasks int64 `json:"pool_tasks"`
	// FreeListHits / FreeListMisses are the payload free-list counters.
	// They are process-global (free lists are shared package-level pools,
	// see freelist.go) and only move while EnableFreeListStats is on.
	FreeListHits   int64 `json:"freelist_hits"`
	FreeListMisses int64 `json:"freelist_misses"`
}

// ShardSkew is the load-imbalance ratio of the sharded apply rounds: the
// accumulated per-round maximum worker load over the accumulated
// per-round mean. 1.0 is a perfectly even spread; the historical ID-mod
// sharding showed multiples of that under hotspot traffic where the
// balanced bin-pack stays near 1. Returns 1 when no round was sharded.
func (s EngineStats) ShardSkew() float64 {
	if s.ShardMeanLoad <= 0 {
		return 1
	}
	return float64(s.ShardMaxLoad) / s.ShardMeanLoad
}

// FreeListHitRate is the fraction of free-list Gets served by a recycled
// payload rather than a fresh allocation. Returns 0 when no Gets were
// counted (EnableFreeListStats off, or no recycling protocols in play).
func (s EngineStats) FreeListHitRate() float64 {
	total := s.FreeListHits + s.FreeListMisses
	if total == 0 {
		return 0
	}
	return float64(s.FreeListHits) / float64(total)
}

// engineStats is the published snapshot: atomics written by the
// coordinator in publishStats, read by Stats from any goroutine. The
// float accumulator travels as its IEEE bits.
type engineStats struct {
	cycles, delivered, dropped, evals atomic.Int64
	delayed, corrupted                atomic.Int64
	proposeNanos, applyNanos          atomic.Int64
	applyRounds, applyJobs            atomic.Int64
	applyBatches, payloadsRecycled    atomic.Int64
	shardedRounds, shardMin, shardMax atomic.Int64
	shardMeanBits                     atomic.Uint64
	liveRebuilds, poolTasks           atomic.Int64
}

// publishStats copies the coordinator-owned accumulators into the atomic
// snapshot. Called once per cycle, at the end of RunCycle — a dozen
// uncontended stores, so the instrumentation's steady-state cost is
// independent of population and message volume.
func (e *Engine) publishStats() {
	s := &e.stats
	s.cycles.Store(e.cycle)
	s.delivered.Store(e.delivered)
	s.dropped.Store(e.dropped)
	s.delayed.Store(e.delayed)
	s.corrupted.Store(e.corrupted)
	s.evals.Store(e.evals)
	s.proposeNanos.Store(e.proposeNanos)
	s.applyNanos.Store(e.applyNanos)
	s.applyRounds.Store(e.applyRounds)
	s.applyJobs.Store(e.applyJobs)
	s.applyBatches.Store(e.applyBatches)
	s.payloadsRecycled.Store(e.payloadsRecycled)
	s.shardedRounds.Store(e.shardedRounds)
	s.shardMin.Store(e.shardMinSum)
	s.shardMax.Store(e.shardMaxSum)
	s.shardMeanBits.Store(math.Float64bits(e.shardMeanSum))
	s.liveRebuilds.Store(e.liveRebuilds)
	s.poolTasks.Store(e.pool.submitted)
}

// Stats returns the engine's instrumentation snapshot as of the last
// completed cycle. Safe to call from any goroutine, concurrently with
// RunCycle; it allocates nothing and never perturbs a run (no RNG, no
// lock shared with the hot path).
func (e *Engine) Stats() EngineStats {
	s := &e.stats
	hits, misses := FreeListStats()
	return EngineStats{
		Cycles:           s.cycles.Load(),
		Delivered:        s.delivered.Load(),
		Dropped:          s.dropped.Load(),
		Delayed:          s.delayed.Load(),
		Corrupted:        s.corrupted.Load(),
		Evals:            s.evals.Load(),
		ProposeNanos:     s.proposeNanos.Load(),
		ApplyNanos:       s.applyNanos.Load(),
		ApplyRounds:      s.applyRounds.Load(),
		ApplyJobs:        s.applyJobs.Load(),
		ApplyBatches:     s.applyBatches.Load(),
		PayloadsRecycled: s.payloadsRecycled.Load(),
		ShardedRounds:    s.shardedRounds.Load(),
		ShardMinLoad:     s.shardMin.Load(),
		ShardMaxLoad:     s.shardMax.Load(),
		ShardMeanLoad:    math.Float64frombits(s.shardMeanBits.Load()),
		LiveRebuilds:     s.liveRebuilds.Load(),
		PoolTasks:        s.poolTasks.Load(),
		FreeListHits:     hits,
		FreeListMisses:   misses,
	}
}
