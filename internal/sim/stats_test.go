package sim

import (
	"sync"
	"testing"
)

// quietProto proposes nothing and receives nothing: a protocol whose
// cycles are pure engine overhead, used to pin the instrumentation's
// steady-state allocation cost.
type quietProto struct{}

func (quietProto) Propose(n *Node, px *Proposals) {}

func (quietProto) Receive(n *Node, ax *ApplyContext, msg Message) {}

// TestStatsMatchesAccessors pins the fold-in contract: the snapshot's
// Cycles/Delivered/Dropped/Evals fields agree with the engine's
// coordinator-side accessors, and the derived counters match what a ping
// ring provably does (one apply round per cycle, one routed job per
// delivered message, no sharding on a single worker).
func TestStatsMatchesAccessors(t *testing.T) {
	e, _ := buildPingRing(11, 32, 1)
	defer e.Close()
	e.Crash(3) // some bounced sends so Delivered != ApplyJobs trivially
	e.Run(10)

	s := e.Stats()
	if s.Cycles != e.Cycle() || s.Delivered != e.Delivered() || s.Dropped != e.Dropped() || s.Evals != e.Evals() {
		t.Fatalf("snapshot disagrees with accessors: %+v vs cycle=%d delivered=%d dropped=%d evals=%d",
			s, e.Cycle(), e.Delivered(), e.Dropped(), e.Evals())
	}
	if s.ApplyRounds != s.Cycles {
		t.Fatalf("ping ring has no follow-ups, want ApplyRounds == Cycles, got %d vs %d", s.ApplyRounds, s.Cycles)
	}
	// Every message is either delivered or bounced to its live sender, so
	// the fused path routes exactly Delivered+Dropped jobs here.
	if s.ApplyJobs != s.Delivered+s.Dropped {
		t.Fatalf("ApplyJobs = %d, want Delivered+Dropped = %d", s.ApplyJobs, s.Delivered+s.Dropped)
	}
	if s.ShardedRounds != 0 || s.ShardMinLoad != 0 || s.ShardMaxLoad != 0 || s.ShardMeanLoad != 0 {
		t.Fatalf("single-worker engine recorded sharded rounds: %+v", s)
	}
	if s.ApplyBatches != 0 {
		t.Fatalf("single-worker fused path materialized %d batches, want 0", s.ApplyBatches)
	}
	if s.PayloadsRecycled != 0 {
		t.Fatalf("string payloads recycled %d times, want 0", s.PayloadsRecycled)
	}
	if s.PoolTasks != 0 {
		t.Fatalf("single-worker engine submitted %d pool tasks", s.PoolTasks)
	}
	if got := s.ShardSkew(); got != 1 {
		t.Fatalf("ShardSkew with no sharded rounds = %v, want 1", got)
	}
	if s.ProposeNanos < 0 || s.ApplyNanos < 0 {
		t.Fatalf("negative phase times: %+v", s)
	}
}

// TestStatsShardLoads drives the sharded apply path and checks the load
// spread: a ping ring delivers exactly one message per node, so the greedy
// bin-pack must spread 64 jobs perfectly across 4 workers — min = max =
// mean = 16 every round, skew exactly 1.
func TestStatsShardLoads(t *testing.T) {
	e, _ := buildPingRing(12, 64, 1)
	defer e.Close()
	e.SetApplyWorkers(4)
	const cycles = 8
	e.Run(cycles)

	s := e.Stats()
	if s.ShardedRounds != cycles {
		t.Fatalf("ShardedRounds = %d, want %d", s.ShardedRounds, cycles)
	}
	if s.ApplyJobs != 64*cycles {
		t.Fatalf("ApplyJobs = %d, want %d", s.ApplyJobs, 64*cycles)
	}
	// Each ring node receives exactly one ping per cycle, so every sharded
	// round materializes one batch per node.
	if s.ApplyBatches != 64*cycles {
		t.Fatalf("ApplyBatches = %d, want %d (one batch per node per round)", s.ApplyBatches, 64*cycles)
	}
	if want := int64(16 * cycles); s.ShardMinLoad != want || s.ShardMaxLoad != want {
		t.Fatalf("uniform ring shard loads min=%d max=%d, want both %d", s.ShardMinLoad, s.ShardMaxLoad, want)
	}
	if s.ShardMeanLoad != 16*cycles {
		t.Fatalf("ShardMeanLoad = %v, want %v", s.ShardMeanLoad, 16*cycles)
	}
	if got := s.ShardSkew(); got != 1 {
		t.Fatalf("ShardSkew = %v, want exactly 1 on a uniform ring", got)
	}
	// Three pool submissions per sharded round (shard 0 stays on the
	// coordinator; propose runs single-worker here).
	if want := int64(3 * cycles); s.PoolTasks != want {
		t.Fatalf("PoolTasks = %d, want %d", s.PoolTasks, want)
	}
}

// TestStatsSkewUnderIDModSharding checks that the skew counters actually
// expose imbalance: hotspot traffic (everyone pings node 0) under the
// residue-class idmod hook lands entirely on one worker, so max load is
// the whole round and skew is the worker count.
func TestStatsSkewUnderIDModSharding(t *testing.T) {
	const n, workers, cycles = 64, 4, 5
	e := NewEngine(13)
	defer e.Close()
	e.SetApplyWorkers(workers)
	e.idModSharding = true
	e.SetNodeFactory(func(nd *Node) {
		nd.Protocols = []Protocol{&pingProto{next: 0}}
	})
	e.AddNodes(n)
	e.Run(cycles)

	s := e.Stats()
	if s.ShardMinLoad != 0 {
		t.Fatalf("hotspot idmod min load = %d, want 0 (idle workers)", s.ShardMinLoad)
	}
	if want := int64(n * cycles); s.ShardMaxLoad != want {
		t.Fatalf("hotspot idmod max load = %d, want %d (all on one worker)", s.ShardMaxLoad, want)
	}
	if got := s.ShardSkew(); got != workers {
		t.Fatalf("hotspot idmod ShardSkew = %v, want %v", got, float64(workers))
	}
}

// TestStatsRaceWithRunCycle reads snapshots from a spectator goroutine
// while the coordinator runs cycles — the race-safety contract of Stats,
// meaningful under -race. Monotonicity of the cycle counter doubles as a
// cheap sanity check that the spectator sees published values only.
func TestStatsRaceWithRunCycle(t *testing.T) {
	e, _ := buildPingRing(14, 128, 2)
	defer e.Close()
	e.SetApplyWorkers(2)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			s := e.Stats()
			if s.Cycles < last {
				t.Errorf("cycle counter went backwards: %d after %d", s.Cycles, last)
				return
			}
			last = s.Cycles
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	e.Run(50)
	close(done)
	wg.Wait()

	if s := e.Stats(); s.Cycles != 50 {
		t.Fatalf("final snapshot Cycles = %d, want 50", s.Cycles)
	}
}

// TestStatsLiveRebuilds checks the lazy live-index rebuild counter: a
// churn-free population never rebuilds (AddNode maintains the index
// incrementally), and each Crash dirties the index for exactly one rebuild
// at the next live-population read.
func TestStatsLiveRebuilds(t *testing.T) {
	e, _ := buildPingRing(15, 16, 1)
	defer e.Close()
	e.Run(5)
	if got := e.Stats().LiveRebuilds; got != 0 {
		t.Fatalf("churn-free run rebuilt the live index %d times, want 0", got)
	}
	e.Crash(2)
	e.Run(5)
	if got := e.Stats().LiveRebuilds; got != 1 {
		t.Fatalf("one crash, want exactly one rebuild: got %d", got)
	}
}

// TestFreeListStatsCounting exercises the opt-in process-global free-list
// counters with delta assertions (other tests in the binary share the
// package-level pools, so absolute values are meaningless).
func TestFreeListStatsCounting(t *testing.T) {
	type payload struct{ buf []int }
	var fl FreeList[payload]

	EnableFreeListStats(true)
	defer EnableFreeListStats(false)

	h0, m0 := FreeListStats()
	p := fl.Get() // empty list: miss
	fl.Put(p)
	q := fl.Get() // just recycled: hit (the list holds strong references)
	h1, m1 := FreeListStats()
	if m1-m0 < 1 {
		t.Fatalf("miss counter did not move: %d -> %d", m0, m1)
	}
	if h1-h0 < 1 {
		t.Fatalf("hit counter did not move: %d -> %d (got %p back)", h0, h1, q)
	}

	EnableFreeListStats(false)
	h2, m2 := FreeListStats()
	fl.Put(q)
	fl.Get()
	h3, m3 := FreeListStats()
	if h3 != h2 || m3 != m2 {
		t.Fatalf("counters moved while disabled: hits %d -> %d, misses %d -> %d", h2, h3, m2, m3)
	}
}

// pooledPing is a recyclable ping payload, for pinning PayloadsRecycled.
type pooledPing struct{ seq int64 }

var pooledPingList FreeList[pooledPing]

func (p *pooledPing) Recycle() {
	*p = pooledPing{}
	pooledPingList.Put(p)
}

// pooledPingProto sends one pooled payload per cycle to a fixed peer.
type pooledPingProto struct{ next NodeID }

func (p *pooledPingProto) Propose(n *Node, px *Proposals) {
	pl := pooledPingList.Get()
	pl.seq = px.Cycle()
	px.Send(p.next, 0, pl)
}

func (p *pooledPingProto) Receive(n *Node, ax *ApplyContext, msg Message) {}

// TestStatsPayloadsRecycled pins the engine-owned recycle counter: every
// sent Recyclable payload — delivered or bounced — is recycled exactly
// once per cycle, so the counter advances by the live population each
// cycle.
func TestStatsPayloadsRecycled(t *testing.T) {
	const n, cycles = 32, 6
	e := NewEngine(17)
	defer e.Close()
	e.SetNodeFactory(func(nd *Node) {
		nd.Protocols = []Protocol{&pooledPingProto{next: NodeID((int64(nd.ID) + 1) % n)}}
	})
	e.AddNodes(n)
	e.Crash(5) // one dead destination: its bounced legs must still recycle
	e.Run(cycles)

	s := e.Stats()
	if want := int64((n - 1) * cycles); s.PayloadsRecycled != want {
		t.Fatalf("PayloadsRecycled = %d, want %d (every sent payload, dropped legs included)",
			s.PayloadsRecycled, want)
	}
}

// TestStatsSteadyStateAllocs pins the instrumentation's allocation cost on
// the disabled path (no Stats readers, free-list counting off): a warmed-up
// quiet cycle performs exactly one allocation — the canonical-shuffle
// closure, which predates the instrumentation — and Stats itself allocates
// nothing. The repo-level budget in scripts/alloc_budget.txt pins the
// protocol-bearing path against the seed.
func TestStatsSteadyStateAllocs(t *testing.T) {
	e := NewEngine(16)
	defer e.Close()
	e.SetNodeFactory(func(nd *Node) { nd.Protocols = []Protocol{quietProto{}} })
	e.AddNodes(128)
	e.Run(5) // warm the scratch buffers

	if got := testing.AllocsPerRun(100, func() { e.RunCycle() }); got > 1 {
		t.Fatalf("quiet steady-state RunCycle allocates %v times, want <= 1", got)
	}
	if got := testing.AllocsPerRun(100, func() { _ = e.Stats() }); got != 0 {
		t.Fatalf("Stats allocates %v times, want 0", got)
	}
}
