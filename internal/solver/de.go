package solver

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
)

// DE is differential evolution (Storn & Price), strategy DE/rand/1/bin.
// Each EvalOne processes one trial vector: pick the next target in
// round-robin order, build a mutant from three distinct random members,
// binomially cross it with the target, evaluate, and keep the better of
// trial and target.
type DE struct {
	// F is the differential weight (default 0.5).
	F float64
	// CR is the crossover rate (default 0.9).
	CR float64

	f    funcs.Function
	dim  int
	rng  *rng.RNG
	pop  [][]float64
	fit  []float64
	seed int // members still awaiting their first evaluation
	next int
	b    best
	tmp  []float64

	evals int64
}

// NewDE creates a DE population of np members (minimum 4).
func NewDE(f funcs.Function, dim, np int, r *rng.RNG) *DE {
	if np < 4 {
		np = 4
	}
	d := f.Dim(dim)
	de := &DE{
		F: 0.5, CR: 0.9,
		f: f, dim: d, rng: r,
		pop: make([][]float64, np),
		fit: make([]float64, np),
		b:   newBest(),
		tmp: make([]float64, d),
	}
	for i := range de.pop {
		de.pop[i] = make([]float64, d)
		for j := range de.pop[i] {
			de.pop[i][j] = r.UniformIn(f.Lo, f.Hi)
		}
		de.fit[i] = math.Inf(1)
	}
	return de
}

// EvalOne implements Solver.
func (de *DE) EvalOne() float64 {
	// First pass: evaluate initial members, one per call.
	if de.seed < len(de.pop) {
		i := de.seed
		de.seed++
		fx := de.f.Eval(de.pop[i])
		de.evals++
		de.fit[i] = fx
		de.b.offer(de.pop[i], fx)
		return fx
	}
	i := de.next
	de.next = (de.next + 1) % len(de.pop)

	// Three distinct members different from i.
	var a, b, c int
	for {
		a = de.rng.Intn(len(de.pop))
		if a != i {
			break
		}
	}
	for {
		b = de.rng.Intn(len(de.pop))
		if b != i && b != a {
			break
		}
	}
	for {
		c = de.rng.Intn(len(de.pop))
		if c != i && c != a && c != b {
			break
		}
	}

	// Mutant + binomial crossover into tmp.
	jrand := de.rng.Intn(de.dim)
	for j := 0; j < de.dim; j++ {
		if j == jrand || de.rng.Bool(de.CR) {
			de.tmp[j] = de.pop[a][j] + de.F*(de.pop[b][j]-de.pop[c][j])
		} else {
			de.tmp[j] = de.pop[i][j]
		}
	}
	fx := de.f.Eval(de.tmp)
	de.evals++
	if fx <= de.fit[i] {
		copy(de.pop[i], de.tmp)
		de.fit[i] = fx
		de.b.offer(de.tmp, fx)
	}
	return fx
}

// Best implements Solver.
func (de *DE) Best() ([]float64, float64) { return de.b.x, de.b.f }

// Inject implements Solver: the remote best replaces the current worst
// population member (if better than it), so gossip actively steers the
// population like the paper's swarm-optimum adoption does for PSO. The
// return value reports whether the solver's *best* improved, matching the
// other solvers' adoption semantics.
func (de *DE) Inject(x []float64, fx float64) bool {
	if len(x) != de.dim {
		return false
	}
	adopted := de.b.offer(x, fx)
	worst := 0
	for i := range de.fit {
		if de.fit[i] > de.fit[worst] {
			worst = i
		}
	}
	if fx < de.fit[worst] {
		copy(de.pop[worst], x)
		de.fit[worst] = fx
	}
	return adopted
}

// Evals implements Solver.
func (de *DE) Evals() int64 { return de.evals }

var _ Solver = (*DE)(nil)
var _ Solver = (*RandomSearch)(nil)
