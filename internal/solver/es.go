package solver

import (
	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

// ES is a (1+1) evolution strategy with the 1/5-success-rule step-size
// adaptation — a strong, cheap local-search baseline (a self-tuning hill
// climber).
type ES struct {
	// Sigma0 is the initial step size as a fraction of the domain width
	// (default 0.3). Adaptation follows Rechenberg's 1/5 rule with the
	// conventional factor 1.5 applied every dim evaluations.
	Sigma0 float64

	f       funcs.Function
	dim     int
	rng     *rng.RNG
	cur     []float64
	fcur    float64
	cand    []float64
	b       best
	sigma   float64
	hits    int
	window  int
	evals   int64
	width   float64
	started bool
}

// NewES creates a (1+1)-ES starting from a uniform random point.
func NewES(f funcs.Function, dim int, r *rng.RNG) *ES {
	d := f.Dim(dim)
	e := &ES{
		Sigma0: 0.3,
		f:      f, dim: d, rng: r,
		cur:   make([]float64, d),
		cand:  make([]float64, d),
		b:     newBest(),
		width: f.Hi - f.Lo,
	}
	for i := range e.cur {
		e.cur[i] = r.UniformIn(f.Lo, f.Hi)
	}
	e.sigma = e.Sigma0 * e.width
	return e
}

// EvalOne implements Solver.
func (e *ES) EvalOne() float64 {
	if !e.started {
		e.started = true
		e.fcur = e.f.Eval(e.cur)
		e.evals++
		e.b.offer(e.cur, e.fcur)
		return e.fcur
	}
	for i := range e.cand {
		e.cand[i] = e.cur[i] + e.sigma*e.rng.NormFloat64()
	}
	vec.Clamp(e.cand, e.f.Lo, e.f.Hi)
	fx := e.f.Eval(e.cand)
	e.evals++
	if fx <= e.fcur {
		copy(e.cur, e.cand)
		e.fcur = fx
		e.b.offer(e.cur, fx)
		e.hits++
	}
	e.window++
	if e.window >= 5*e.dim {
		// 1/5 rule: grow the step when more than 1/5 of trials succeed,
		// shrink it otherwise.
		if float64(e.hits) > float64(e.window)/5 {
			e.sigma *= 1.5
		} else {
			e.sigma /= 1.5
		}
		maxSigma := e.width
		minSigma := 1e-12 * e.width
		if e.sigma > maxSigma {
			e.sigma = maxSigma
		}
		if e.sigma < minSigma {
			e.sigma = minSigma
		}
		e.hits, e.window = 0, 0
	}
	return fx
}

// Best implements Solver.
func (e *ES) Best() ([]float64, float64) { return e.b.x, e.b.f }

// Inject implements Solver: a better remote point becomes the parent.
func (e *ES) Inject(x []float64, fx float64) bool {
	if len(x) != e.dim {
		return false
	}
	if !e.b.offer(x, fx) {
		return false
	}
	copy(e.cur, x)
	e.fcur = fx
	e.started = true
	return true
}

// Evals implements Solver.
func (e *ES) Evals() int64 { return e.evals }

var _ Solver = (*ES)(nil)

// Sigma exposes the current step size (for tests and diagnostics).
func (e *ES) Sigma() float64 { return e.sigma }
