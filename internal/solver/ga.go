package solver

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

// GA is a steady-state real-coded genetic algorithm: binary-tournament
// parent selection, blend crossover (BLX-α), Gaussian mutation, and
// worst-replacement. Steady-state form means each EvalOne produces and
// evaluates exactly one offspring, matching the framework's one-evaluation
// time step.
type GA struct {
	// MutProb is the per-gene mutation probability (default 1/dim).
	// MutSigma is the mutation scale as a fraction of the domain width
	// (default 0.05). Alpha is the BLX blend parameter (default 0.3).
	MutProb, MutSigma, Alpha float64

	f     funcs.Function
	dim   int
	rng   *rng.RNG
	pop   [][]float64
	fit   []float64
	seed  int
	b     best
	child []float64
	evals int64
	width float64
}

// NewGA creates a population of np individuals (minimum 4).
func NewGA(f funcs.Function, dim, np int, r *rng.RNG) *GA {
	if np < 4 {
		np = 4
	}
	d := f.Dim(dim)
	g := &GA{
		MutSigma: 0.05, Alpha: 0.3,
		f: f, dim: d, rng: r,
		pop:   make([][]float64, np),
		fit:   make([]float64, np),
		b:     newBest(),
		child: make([]float64, d),
		width: f.Hi - f.Lo,
	}
	g.MutProb = 1 / float64(d)
	for i := range g.pop {
		g.pop[i] = make([]float64, d)
		for j := range g.pop[i] {
			g.pop[i][j] = r.UniformIn(f.Lo, f.Hi)
		}
		g.fit[i] = math.Inf(1)
	}
	return g
}

// tournament returns the index of the better of two random individuals.
func (g *GA) tournament() int {
	a, b := g.rng.Intn(len(g.pop)), g.rng.Intn(len(g.pop))
	if g.fit[a] <= g.fit[b] {
		return a
	}
	return b
}

// EvalOne implements Solver.
func (g *GA) EvalOne() float64 {
	if g.seed < len(g.pop) {
		i := g.seed
		g.seed++
		fx := g.f.Eval(g.pop[i])
		g.evals++
		g.fit[i] = fx
		g.b.offer(g.pop[i], fx)
		return fx
	}
	p1 := g.pop[g.tournament()]
	p2 := g.pop[g.tournament()]
	// BLX-α crossover: sample each gene uniformly from the parents' range
	// extended by α on both sides.
	for j := 0; j < g.dim; j++ {
		lo, hi := p1[j], p2[j]
		if lo > hi {
			lo, hi = hi, lo
		}
		span := hi - lo
		g.child[j] = g.rng.UniformIn(lo-g.Alpha*span, hi+g.Alpha*span)
		if g.rng.Bool(g.MutProb) {
			g.child[j] += g.MutSigma * g.width * g.rng.NormFloat64()
		}
	}
	vec.Clamp(g.child, g.f.Lo, g.f.Hi)
	fx := g.f.Eval(g.child)
	g.evals++
	// Replace the current worst if the child improves on it.
	worst := 0
	for i := range g.fit {
		if g.fit[i] > g.fit[worst] {
			worst = i
		}
	}
	if fx < g.fit[worst] {
		copy(g.pop[worst], g.child)
		g.fit[worst] = fx
		g.b.offer(g.child, fx)
	}
	return fx
}

// Best implements Solver.
func (g *GA) Best() ([]float64, float64) { return g.b.x, g.b.f }

// Inject implements Solver: a better remote point replaces the current
// worst individual. The return value reports whether the solver's best
// improved.
func (g *GA) Inject(x []float64, fx float64) bool {
	if len(x) != g.dim {
		return false
	}
	adopted := g.b.offer(x, fx)
	worst := 0
	for i := range g.fit {
		if g.fit[i] > g.fit[worst] {
			worst = i
		}
	}
	if fx < g.fit[worst] {
		copy(g.pop[worst], x)
		g.fit[worst] = fx
	}
	return adopted
}

// Evals implements Solver.
func (g *GA) Evals() int64 { return g.evals }

var _ Solver = (*GA)(nil)
