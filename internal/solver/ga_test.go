package solver

import (
	"math"
	"testing"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
)

func TestGAEvalAccounting(t *testing.T) {
	g := NewGA(funcs.Sphere, 10, 20, rng.New(1))
	for i := 0; i < 77; i++ {
		g.EvalOne()
	}
	if g.Evals() != 77 {
		t.Fatalf("Evals = %d", g.Evals())
	}
}

func TestGAConvergesOnSphere(t *testing.T) {
	g := NewGA(funcs.Sphere, 10, 30, rng.New(2))
	Run(g, 60000, -1)
	if _, f := g.Best(); f > 1e-3 {
		t.Fatalf("GA best %g after 60k evals", f)
	}
}

func TestGABestMonotone(t *testing.T) {
	g := NewGA(funcs.Rastrigin, 10, 20, rng.New(3))
	prev := math.Inf(1)
	for i := 0; i < 5000; i++ {
		g.EvalOne()
		if _, f := g.Best(); f > prev {
			t.Fatalf("best regressed at %d", i)
		} else {
			prev = f
		}
	}
}

func TestGAPopulationStaysInBox(t *testing.T) {
	g := NewGA(funcs.Rastrigin, 10, 10, rng.New(4))
	Run(g, 2000, -1)
	for i, ind := range g.pop {
		for _, x := range ind {
			if x < funcs.Rastrigin.Lo || x > funcs.Rastrigin.Hi {
				t.Fatalf("individual %d escaped the domain: %v", i, x)
			}
		}
	}
}

func TestGAInject(t *testing.T) {
	g := NewGA(funcs.Sphere, 10, 10, rng.New(5))
	Run(g, 100, -1)
	star := make([]float64, 10)
	if !g.Inject(star, 0) {
		t.Fatal("perfect injection rejected")
	}
	if _, f := g.Best(); f != 0 {
		t.Fatalf("best %g after injection", f)
	}
	// The injected point must be present in the population (replaced the
	// worst), so offspring can exploit it.
	found := false
	for i := range g.pop {
		if g.fit[i] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("injected point did not enter the population")
	}
	if g.Inject(make([]float64, 3), -1) {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestGABeatsRandomSearch(t *testing.T) {
	g := NewGA(funcs.Sphere, 10, 20, rng.New(6))
	rs := NewRandomSearch(funcs.Sphere, 10, rng.New(6))
	Run(g, 20000, -1)
	Run(rs, 20000, -1)
	_, fg := g.Best()
	_, fr := rs.Best()
	if fg >= fr {
		t.Fatalf("GA (%g) did not beat random search (%g)", fg, fr)
	}
}

func TestGADeterministic(t *testing.T) {
	run := func() float64 {
		g := NewGA(funcs.Griewank, 10, 16, rng.New(7))
		Run(g, 3000, -1)
		_, f := g.Best()
		return f
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %g vs %g", a, b)
	}
}

func TestGAMinPopulation(t *testing.T) {
	g := NewGA(funcs.Sphere, 10, 1, rng.New(8))
	if len(g.pop) != 4 {
		t.Fatalf("population = %d, want floor of 4", len(g.pop))
	}
	Run(g, 100, -1)
	if _, f := g.Best(); math.IsInf(f, 0) {
		t.Fatal("no evaluations")
	}
}

func BenchmarkGAEvalOne(b *testing.B) {
	g := NewGA(funcs.Sphere, 10, 20, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.EvalOne()
	}
}
