package solver

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

// SA is simulated annealing with Gaussian moves and a geometric cooling
// schedule indexed by evaluation count, so its notion of time matches the
// framework's (one EvalOne = one evaluation).
type SA struct {
	// T0 is the initial temperature (default: 10 % of a domain-scale
	// fitness probe). Alpha is the per-evaluation geometric cooling factor
	// (default 0.999). Sigma0 is the initial move scale as a fraction of
	// the domain width (default 0.1); the scale cools with temperature.
	T0, Alpha, Sigma0 float64

	f     funcs.Function
	dim   int
	rng   *rng.RNG
	cur   []float64
	fcur  float64
	cand  []float64
	b     best
	t     float64
	evals int64
	width float64
}

// NewSA creates an annealer starting from a uniform random point.
func NewSA(f funcs.Function, dim int, r *rng.RNG) *SA {
	d := f.Dim(dim)
	s := &SA{
		Alpha: 0.999, Sigma0: 0.1,
		f: f, dim: d, rng: r,
		cur:   make([]float64, d),
		cand:  make([]float64, d),
		b:     newBest(),
		width: f.Hi - f.Lo,
		fcur:  math.Inf(1),
	}
	for i := range s.cur {
		s.cur[i] = r.UniformIn(f.Lo, f.Hi)
	}
	return s
}

// EvalOne implements Solver.
func (s *SA) EvalOne() float64 {
	// Lazy first evaluation establishes fcur and T0.
	if math.IsInf(s.fcur, 1) {
		s.fcur = s.f.Eval(s.cur)
		s.evals++
		s.b.offer(s.cur, s.fcur)
		if s.T0 == 0 {
			s.T0 = 0.1 * (math.Abs(s.fcur) + 1)
		}
		s.t = s.T0
		return s.fcur
	}
	sigma := s.Sigma0 * s.width * (s.t / s.T0)
	if sigma < 1e-9*s.width {
		sigma = 1e-9 * s.width
	}
	for i := range s.cand {
		s.cand[i] = s.cur[i] + sigma*s.rng.NormFloat64()
	}
	vec.Clamp(s.cand, s.f.Lo, s.f.Hi)
	fx := s.f.Eval(s.cand)
	s.evals++
	if fx <= s.fcur || s.rng.Bool(math.Exp(-(fx-s.fcur)/s.t)) {
		copy(s.cur, s.cand)
		s.fcur = fx
		s.b.offer(s.cur, fx)
	}
	s.t *= s.Alpha
	return fx
}

// Best implements Solver.
func (s *SA) Best() ([]float64, float64) { return s.b.x, s.b.f }

// Inject implements Solver: a better remote point restarts the walk there.
func (s *SA) Inject(x []float64, fx float64) bool {
	if len(x) != s.dim {
		return false
	}
	if !s.b.offer(x, fx) {
		return false
	}
	copy(s.cur, x)
	s.fcur = fx
	return true
}

// Evals implements Solver.
func (s *SA) Evals() int64 { return s.evals }

var _ Solver = (*SA)(nil)
