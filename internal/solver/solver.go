// Package solver defines the framework's function-optimization service
// contract and several solvers beyond PSO — differential evolution,
// simulated annealing, a self-adaptive (1+1) evolution strategy, and pure
// random search. The paper's future work calls for exactly this: "the
// implementation of various different solvers to enrich the function
// evaluation service and then be able to test module diversification among
// peers". Any Solver can be plugged into a framework node and coordinated
// through the same epidemic best-value diffusion.
package solver

import (
	"math"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
	"gossipopt/internal/vec"
)

// Solver is the function-optimization service contract. One EvalOne call
// costs exactly one objective evaluation — the paper's unit of time — so
// the coordination layer can interleave gossip exchanges every r
// evaluations regardless of the solver inside.
type Solver interface {
	// EvalOne advances the search by exactly one function evaluation and
	// returns the fitness just computed.
	EvalOne() float64
	// Best returns the best position found (or injected) so far and its
	// fitness. The slice is owned by the solver.
	Best() ([]float64, float64)
	// Inject offers a remote best from the coordination service; the
	// solver adopts it when strictly better and reports whether it did.
	Inject(x []float64, fx float64) bool
	// Evals returns the number of evaluations performed so far.
	Evals() int64
}

// Factory builds a fresh solver for a node. Experiments pass factories so
// every simulated node gets an independent solver fed by its own RNG
// stream. The id is the node's stable identifier (its simulated NodeID, or
// 0 when there is no meaningful one): factories that vary per node — mixed
// deployments, search-space partitioning — key their choice off it, which
// keeps them deterministic and race-free when nodes are built on parallel
// workers (a shared round-robin counter would be neither).
type Factory func(f funcs.Function, dim int, id int64, r *rng.RNG) Solver

// Run drives s until budget evaluations are spent or the best fitness
// reaches threshold (negative disables). It returns the evaluations spent.
func Run(s Solver, budget int64, threshold float64) int64 {
	start := s.Evals()
	for s.Evals()-start < budget {
		s.EvalOne()
		if _, f := s.Best(); f <= threshold {
			break
		}
	}
	return s.Evals() - start
}

// best tracks the best-so-far state shared by the simple solvers.
type best struct {
	x []float64
	f float64
}

func newBest() best { return best{f: math.Inf(1)} }

func (b *best) offer(x []float64, f float64) bool {
	if f >= b.f {
		return false
	}
	if b.x == nil || len(b.x) != len(x) {
		b.x = vec.Clone(x)
	} else {
		copy(b.x, x)
	}
	b.f = f
	return true
}

// RandomSearch samples the domain uniformly — the coordination-free
// baseline of the paper's "exploiting stochasticity" extreme.
type RandomSearch struct {
	f     funcs.Function
	dim   int
	rng   *rng.RNG
	b     best
	x     []float64
	evals int64
}

// NewRandomSearch creates a uniform random sampler over f.
func NewRandomSearch(f funcs.Function, dim int, r *rng.RNG) *RandomSearch {
	d := f.Dim(dim)
	return &RandomSearch{f: f, dim: d, rng: r, b: newBest(), x: make([]float64, d)}
}

// EvalOne implements Solver.
func (s *RandomSearch) EvalOne() float64 {
	for i := range s.x {
		s.x[i] = s.rng.UniformIn(s.f.Lo, s.f.Hi)
	}
	fx := s.f.Eval(s.x)
	s.evals++
	s.b.offer(s.x, fx)
	return fx
}

// Best implements Solver.
func (s *RandomSearch) Best() ([]float64, float64) { return s.b.x, s.b.f }

// Inject implements Solver. Random search has no state to steer, so the
// injection only improves the reported best.
func (s *RandomSearch) Inject(x []float64, fx float64) bool {
	if len(x) != s.dim {
		return false
	}
	return s.b.offer(x, fx)
}

// Evals implements Solver.
func (s *RandomSearch) Evals() int64 { return s.evals }
