package solver

import (
	"math"
	"testing"
	"testing/quick"

	"gossipopt/internal/funcs"
	"gossipopt/internal/rng"
)

// all solver constructors under test, as factories.
func factories() map[string]Factory {
	return map[string]Factory{
		"random": func(f funcs.Function, dim int, _ int64, r *rng.RNG) Solver {
			return NewRandomSearch(f, dim, r)
		},
		"de": func(f funcs.Function, dim int, _ int64, r *rng.RNG) Solver {
			return NewDE(f, dim, 20, r)
		},
		"sa": func(f funcs.Function, dim int, _ int64, r *rng.RNG) Solver {
			return NewSA(f, dim, r)
		},
		"es": func(f funcs.Function, dim int, _ int64, r *rng.RNG) Solver {
			return NewES(f, dim, r)
		},
	}
}

func TestEvalAccounting(t *testing.T) {
	for name, mk := range factories() {
		s := mk(funcs.Sphere, 10, 0, rng.New(1))
		for i := 0; i < 57; i++ {
			s.EvalOne()
		}
		if s.Evals() != 57 {
			t.Errorf("%s: Evals = %d, want 57", name, s.Evals())
		}
	}
}

func TestBestMonotone(t *testing.T) {
	for name, mk := range factories() {
		s := mk(funcs.Rastrigin, 10, 0, rng.New(2))
		prev := math.Inf(1)
		for i := 0; i < 3000; i++ {
			s.EvalOne()
			_, f := s.Best()
			if f > prev {
				t.Fatalf("%s: best regressed %v -> %v", name, prev, f)
			}
			prev = f
		}
	}
}

func TestAllImproveOverInitial(t *testing.T) {
	for name, mk := range factories() {
		s := mk(funcs.Sphere, 10, 0, rng.New(3))
		s.EvalOne()
		_, first := s.Best()
		Run(s, 5000, -1)
		_, final := s.Best()
		if final >= first {
			t.Errorf("%s: no improvement (%g -> %g)", name, first, final)
		}
	}
}

func TestDEConvergesOnSphere(t *testing.T) {
	de := NewDE(funcs.Sphere, 10, 30, rng.New(4))
	Run(de, 60000, -1)
	if _, f := de.Best(); f > 1e-6 {
		t.Fatalf("DE best %g after 60k evals", f)
	}
}

func TestESConvergesOnSphere(t *testing.T) {
	es := NewES(funcs.Sphere, 10, rng.New(5))
	Run(es, 20000, -1)
	if _, f := es.Best(); f > 1e-8 {
		t.Fatalf("ES best %g after 20k evals", f)
	}
}

func TestSAImprovesSubstantially(t *testing.T) {
	sa := NewSA(funcs.Sphere, 10, rng.New(6))
	sa.EvalOne()
	_, first := sa.Best()
	Run(sa, 30000, -1)
	if _, f := sa.Best(); f > first/100 {
		t.Fatalf("SA barely improved: %g -> %g", first, f)
	}
}

func TestRandomSearchBeatenByDE(t *testing.T) {
	rs := NewRandomSearch(funcs.Sphere, 10, rng.New(7))
	de := NewDE(funcs.Sphere, 10, 20, rng.New(7))
	Run(rs, 20000, -1)
	Run(de, 20000, -1)
	_, frs := rs.Best()
	_, fde := de.Best()
	if fde >= frs {
		t.Fatalf("DE (%g) did not beat random search (%g)", fde, frs)
	}
}

func TestInjectSemanticsAll(t *testing.T) {
	star := make([]float64, 10)
	for name, mk := range factories() {
		s := mk(funcs.Sphere, 10, 0, rng.New(8))
		Run(s, 200, -1)
		if !s.Inject(star, 0) {
			t.Errorf("%s: rejected perfect injection", name)
			continue
		}
		if _, f := s.Best(); f != 0 {
			t.Errorf("%s: best %g after perfect injection", name, f)
		}
		_, cur := s.Best()
		if s.Inject(make([]float64, 10), cur+5) {
			t.Errorf("%s: adopted worse injection", name)
		}
		if s.Inject(make([]float64, 3), -1) {
			t.Errorf("%s: adopted dimension-mismatched injection", name)
		}
	}
}

func TestInjectSteersSearch(t *testing.T) {
	// After injecting a near-optimal point, ES should refine beyond it.
	es := NewES(funcs.Sphere, 10, rng.New(9))
	near := make([]float64, 10)
	for i := range near {
		near[i] = 0.01
	}
	es.EvalOne()
	es.Inject(near, funcs.Sphere.Eval(near))
	Run(es, 5000, -1)
	if _, f := es.Best(); f >= funcs.Sphere.Eval(near) {
		t.Fatalf("ES did not refine injected point: %g", f)
	}
}

func TestRunThreshold(t *testing.T) {
	es := NewES(funcs.Sphere, 10, rng.New(10))
	spent := Run(es, 1_000_000, 1e-2)
	if spent >= 1_000_000 {
		t.Fatal("threshold never hit")
	}
	if _, f := es.Best(); f > 1e-2 {
		t.Fatalf("stopped above threshold: %g", f)
	}
}

func TestDEPopulationFloor(t *testing.T) {
	de := NewDE(funcs.Sphere, 10, 1, rng.New(11)) // silently raised to 4
	Run(de, 100, -1)
	if _, f := de.Best(); math.IsInf(f, 0) {
		t.Fatal("tiny DE population never evaluated")
	}
}

func TestESSigmaAdapts(t *testing.T) {
	es := NewES(funcs.Sphere, 10, rng.New(12))
	initial := es.Sigma()
	Run(es, 10000, -1)
	if es.Sigma() >= initial {
		t.Fatalf("sigma did not shrink near optimum: %g -> %g", initial, es.Sigma())
	}
}

// Property: solvers stay deterministic given the seed.
func TestSolversDeterministic(t *testing.T) {
	for name, mk := range factories() {
		name, mk := name, mk
		run := func(seed uint64) float64 {
			s := mk(funcs.Griewank, 10, 0, rng.New(seed))
			Run(s, 1000, -1)
			_, f := s.Best()
			return f
		}
		if err := quick.Check(func(seed uint16) bool {
			return run(uint64(seed)) == run(uint64(seed))
		}, &quick.Config{MaxCount: 5}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: best fitness is always finite and >= 0 after at least one eval.
func TestBestSound(t *testing.T) {
	for name, mk := range factories() {
		s := mk(funcs.Ackley, 10, 0, rng.New(13))
		Run(s, 500, -1)
		if _, f := s.Best(); f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s: unsound best %v", name, f)
		}
	}
}

func BenchmarkDEEvalOne(b *testing.B) {
	de := NewDE(funcs.Sphere, 10, 20, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		de.EvalOne()
	}
}

func BenchmarkESEvalOne(b *testing.B) {
	es := NewES(funcs.Sphere, 10, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		es.EvalOne()
	}
}
