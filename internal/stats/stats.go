// Package stats provides the descriptive statistics the experiment harness
// reports: streaming (Welford) accumulators for mean/variance/min/max,
// quantiles, and confidence intervals. The paper's tables report
// avg/min/max/Var over 50 repetitions; Summary reproduces exactly those
// columns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc is a streaming accumulator using Welford's algorithm. The zero value
// is ready to use.
type Acc struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge incorporates the contents of b into a (parallel reduction).
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n1, n2 := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	tot := n1 + n2
	a.mean += d * n2 / tot
	a.m2 += b.m2 + d*d*n1*n2/tot
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
}

// N returns the number of samples.
func (a *Acc) N() int64 { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Acc) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 if empty).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample (0 if empty).
func (a *Acc) Max() float64 { return a.max }

// Var returns the unbiased sample variance (0 for n < 2).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// PopVar returns the population variance (0 for n < 1).
func (a *Acc) PopVar() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean.
func (a *Acc) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of an approximate 95 % confidence interval on
// the mean (normal approximation, adequate for n = 50 repetitions).
func (a *Acc) CI95() float64 { return 1.959964 * a.StdErr() }

// Summary is one row of a paper table: avg, min, max, Var.
type Summary struct {
	N                  int64
	Avg, Min, Max, Var float64
}

// Summarize computes the paper's table columns over samples.
func Summarize(samples []float64) Summary {
	var a Acc
	for _, x := range samples {
		a.Add(x)
	}
	return Summary{N: a.N(), Avg: a.Mean(), Min: a.Min(), Max: a.Max(), Var: a.Var()}
}

// String formats the summary the way the paper's tables print rows.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.5g min=%.5g max=%.5g var=%.5g (n=%d)",
		s.Avg, s.Min, s.Max, s.Var, s.N)
}

// Quantile returns the q-quantile (0 <= q <= 1) of samples using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Median returns the 0.5-quantile of samples.
func Median(samples []float64) float64 { return Quantile(samples, 0.5) }

// GeoMean returns the geometric mean of positive samples; zero or negative
// samples are clamped to floor to keep the result defined (useful for
// log-scale quality plots where perfect runs reach exactly 0).
func GeoMean(samples []float64, floor float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, x := range samples {
		if x < floor {
			x = floor
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(samples)))
}
