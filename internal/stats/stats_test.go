package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gossipopt/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEq(a.Mean(), 3, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if !almostEq(a.Var(), 2.5, 1e-12) {
		t.Fatalf("Var = %v", a.Var())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Var() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator not zero")
	}
}

func TestAccSingle(t *testing.T) {
	var a Acc
	a.Add(7)
	if a.Mean() != 7 || a.Min() != 7 || a.Max() != 7 || a.Var() != 0 {
		t.Fatal("single-sample accumulator wrong")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestMergeEquivalence(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint32, n1Raw, n2Raw uint8) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		n1, n2 := int(n1Raw%40), int(n2Raw%40)
		var a, b, whole Acc
		for i := 0; i < n1; i++ {
			x := rr.NormFloat64() * 10
			a.Add(x)
			whole.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rr.NormFloat64() * 10
			b.Add(x)
			whole.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Var(), whole.Var(), 1e-6) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Avg != 4 || s.Min != 2 || s.Max != 6 || s.Var != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Median(s) != 3 {
		t.Fatal("Median wrong")
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if got := Quantile(s, 0.5); got != 3 {
		t.Fatalf("Quantile of unsorted = %v", got)
	}
	// The input slice must not be reordered.
	if s[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty slice")
		}
	}()
	Quantile(nil, 0.5)
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100}, 1e-300)
	if !almostEq(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v", got)
	}
	// Floor applies to zeros.
	got = GeoMean([]float64{0, 100}, 1)
	if !almostEq(got, 10, 1e-9) {
		t.Fatalf("GeoMean with floor = %v", got)
	}
	if GeoMean(nil, 1) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(7)
	var small, large Acc
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

// Property: variance is never negative and mean lies in [min, max].
func TestAccInvariants(t *testing.T) {
	r := rng.New(11)
	if err := quick.Check(func(seed uint32, nRaw uint8) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		n := int(nRaw%50) + 1
		var a Acc
		for i := 0; i < n; i++ {
			a.Add(rr.UniformIn(-1e6, 1e6))
		}
		return a.Var() >= 0 && a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}
