// Package vec provides small dense-vector helpers used by the optimization
// services: allocation-free arithmetic on []float64, clamping, and distance
// computations. All binary operations require equal lengths and panic
// otherwise; length mismatches are programming errors, not runtime
// conditions.
package vec

import "math"

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Zeros returns a new zero vector of dimension n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Fill sets every component of v to x and returns v.
func Fill(v []float64, x float64) []float64 {
	for i := range v {
		v[i] = x
	}
	return v
}

func assertSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
}

// Add stores a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b []float64) []float64 {
	assertSameLen(a, b)
	assertSameLen(dst, a)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []float64) []float64 {
	assertSameLen(a, b)
	assertSameLen(dst, a)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst. dst may alias a.
func Scale(dst, a []float64, s float64) []float64 {
	assertSameLen(dst, a)
	for i := range dst {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY stores dst + s*a into dst (dst += s*a) and returns dst.
func AXPY(dst []float64, s float64, a []float64) []float64 {
	assertSameLen(dst, a)
	for i := range dst {
		dst[i] += s * a[i]
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	assertSameLen(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	assertSameLen(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistInf returns the Chebyshev (max-component) distance between a and b.
func DistInf(a, b []float64) float64 {
	assertSameLen(a, b)
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Clamp limits every component of v to [lo, hi] in place and returns v.
func Clamp(v []float64, lo, hi float64) []float64 {
	for i := range v {
		if v[i] < lo {
			v[i] = lo
		} else if v[i] > hi {
			v[i] = hi
		}
	}
	return v
}

// ClampAbs limits every component of v to [-m, m] in place and returns v.
// This is the velocity-clamping rule used by PSO (per-dimension vmax).
func ClampAbs(v []float64, m float64) []float64 { return Clamp(v, -m, m) }

// ClampBox limits v[i] to [lo[i], hi[i]] in place and returns v.
func ClampBox(v, lo, hi []float64) []float64 {
	assertSameLen(v, lo)
	assertSameLen(v, hi)
	for i := range v {
		if v[i] < lo[i] {
			v[i] = lo[i]
		} else if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
	return v
}

// InBox reports whether every component of v lies in [lo, hi].
func InBox(v []float64, lo, hi float64) bool {
	for _, x := range v {
		if x < lo || x > hi {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same length and identical
// components.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllFinite reports whether every component of v is finite (not NaN/Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
