package vec

import (
	"math"
	"testing"
	"testing/quick"

	"gossipopt/internal/rng"
)

func randVec(r *rng.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.UniformIn(-10, 10)
	}
	return v
}

func TestCloneIndependent(t *testing.T) {
	a := []float64{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases source")
	}
	if !Equal(Clone(a), a) {
		t.Fatal("Clone not equal to source")
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := Zeros(3)
	Add(dst, a, b)
	if !Equal(dst, []float64{5, 7, 9}) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, dst, b)
	if !Equal(dst, a) {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestAddAliasing(t *testing.T) {
	a := []float64{1, 2}
	Add(a, a, a)
	if !Equal(a, []float64{2, 4}) {
		t.Fatalf("aliased Add = %v", a)
	}
}

func TestScaleAXPY(t *testing.T) {
	a := []float64{1, -2, 3}
	dst := Zeros(3)
	Scale(dst, a, 2)
	if !Equal(dst, []float64{2, -4, 6}) {
		t.Fatalf("Scale = %v", dst)
	}
	AXPY(dst, -1, a)
	if !Equal(dst, []float64{1, -2, 3}) {
		t.Fatalf("AXPY = %v", dst)
	}
}

func TestDotNorm(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestDist(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Dist2(a, b); got != 5 {
		t.Fatalf("Dist2 = %v", got)
	}
	if got := DistInf(a, b); got != 4 {
		t.Fatalf("DistInf = %v", got)
	}
}

func TestClamp(t *testing.T) {
	v := []float64{-5, 0, 5}
	Clamp(v, -1, 1)
	if !Equal(v, []float64{-1, 0, 1}) {
		t.Fatalf("Clamp = %v", v)
	}
	w := []float64{-3, 3}
	ClampAbs(w, 2)
	if !Equal(w, []float64{-2, 2}) {
		t.Fatalf("ClampAbs = %v", w)
	}
}

func TestClampBox(t *testing.T) {
	v := []float64{-5, 0, 5}
	lo := []float64{-1, -1, -1}
	hi := []float64{1, 2, 3}
	ClampBox(v, lo, hi)
	if !Equal(v, []float64{-1, 0, 3}) {
		t.Fatalf("ClampBox = %v", v)
	}
}

func TestInBox(t *testing.T) {
	if !InBox([]float64{0, 0.5, -0.5}, -1, 1) {
		t.Fatal("InBox false negative")
	}
	if InBox([]float64{0, 2}, -1, 1) {
		t.Fatal("InBox false positive")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("AllFinite false negative")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("AllFinite accepted NaN")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("AllFinite accepted +Inf")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}) {
		t.Fatal("Equal ignored length mismatch")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Add(Zeros(2), Zeros(2), Zeros(3))
}

// Property: ||a+b|| <= ||a|| + ||b|| (triangle inequality).
func TestTriangleInequality(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		a := randVec(rr, 8)
		b := randVec(rr, 8)
		sum := Add(Zeros(8), a, b)
		return Norm2(sum) <= Norm2(a)+Norm2(b)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotProperties(t *testing.T) {
	r := rng.New(2)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		a := randVec(rr, 6)
		b := randVec(rr, 6)
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-9 {
			return false
		}
		s := rr.UniformIn(-2, 2)
		sa := Scale(Zeros(6), a, s)
		return math.Abs(Dot(sa, b)-s*Dot(a, b)) < 1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after ClampAbs(v, m), every |v_i| <= m, and components already
// inside the box are untouched.
func TestClampAbsProperty(t *testing.T) {
	r := rng.New(3)
	if err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed) ^ r.Uint64())
		v := randVec(rr, 10)
		orig := Clone(v)
		m := rr.UniformIn(0.1, 5)
		ClampAbs(v, m)
		for i := range v {
			if math.Abs(v[i]) > m {
				return false
			}
			if math.Abs(orig[i]) <= m && v[i] != orig[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAXPY(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AXPY(y, 0.5, x)
	}
}

func BenchmarkDist2(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 64)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Dist2(x, y)
	}
	_ = sink
}
