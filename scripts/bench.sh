#!/usr/bin/env bash
# Runs the engine-scale benchmark suite (million-node stack, apply-shard
# scaling, hotspot sharding, live-node sampling) and records the parsed
# results as JSON in BENCH_7.json, alongside the machine context needed to
# read the numbers honestly (CPU count in particular: worker speedups only
# show in wall-clock with real cores). Since BENCH_7 the engine-scale
# benchmarks also report per-phase wall times (propose-ns/op, apply-ns/op)
# from the engine's instrumentation snapshot, so a scaling anomaly can be
# attributed to a phase instead of guessed at.
#
# Overrides:
#   ENGINE_BENCH_NODES  population for BenchmarkEngineMillion (default 1e6)
#   BENCHTIME           go test -benchtime value (default 2x)
#   BENCH_OUT           output path (default BENCH_7.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_7.json}
NODES=${ENGINE_BENCH_NODES:-1000000}
BENCHTIME=${BENCHTIME:-2x}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

ENGINE_BENCH_NODES=$NODES go test . -run '^$' \
    -bench 'BenchmarkEngineMillion|BenchmarkApplyShards$' \
    -benchtime "$BENCHTIME" -benchmem -timeout 0 | tee "$tmp"
go test ./internal/sim/ -run '^$' \
    -bench 'BenchmarkApplyShardsHotspot|BenchmarkRandomLiveNode' \
    -benchtime "$BENCHTIME" -benchmem -timeout 0 | tee -a "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "cpus": %s,\n' "$(nproc)"
    printf '  "engine_bench_nodes": %s,\n' "$NODES"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "note": "worker/sharding wall-clock comparisons only show speedups with cpus > 1: on a single-core host the pool is timesliced and balanced sharding is pure overhead. The balanced-vs-idmod scheduling win is pinned machine-independently by sim.TestBalancedShardingSpreadsHotspots (max shard load on aliased hubs: balanced <= 2x hub vs idmod >= 4x hub).",\n'
    printf '  "results": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            line = sprintf("    {\"name\":\"%s\",\"iterations\":%s", name, $2)
            for (i = 3; i < NF; i++) {
                u = $(i + 1)
                if (u == "ns/op")          line = line sprintf(",\"ns_per_op\":%s", $i)
                else if (u == "node-cycles/s") line = line sprintf(",\"node_cycles_per_s\":%s", $i)
                else if (u == "propose-ns/op") line = line sprintf(",\"propose_ns_per_op\":%s", $i)
                else if (u == "apply-ns/op")   line = line sprintf(",\"apply_ns_per_op\":%s", $i)
                else if (u == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", $i)
                else if (u == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
            }
            lines[n++] = line "}"
        }
        END {
            for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
        }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

echo "wrote $OUT"
