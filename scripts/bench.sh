#!/usr/bin/env bash
# Runs the engine-scale benchmark suite (million-node stack, apply-shard
# scaling, hotspot sharding, live-node sampling) and records the parsed
# results as JSON in BENCH_10.json, alongside the machine context needed
# to read the numbers honestly — CPU count and GOMAXPROCS lead the record
# because worker speedups only show in wall-clock with real cores; on a
# single-CPU host the record carries a machine-readable "warning" field
# so downstream tooling does not have to infer it from "cpus". Since
# BENCH_7 the engine-scale benchmarks also report per-phase wall times
# (propose-ns/op, apply-ns/op) from the engine's instrumentation
# snapshot, so a scaling anomaly can be attributed to a phase instead of
# guessed at.
#
# Overrides:
#   ENGINE_BENCH_NODES  population for BenchmarkEngineMillion (default 1e6)
#   BENCHTIME           go test -benchtime value (default 2x)
#   BENCH_OUT           output path (default BENCH_10.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_10.json}
NODES=${ENGINE_BENCH_NODES:-1000000}
BENCHTIME=${BENCHTIME:-2x}
CPUS=$(nproc)
MAXPROCS=${GOMAXPROCS:-$CPUS}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

ENGINE_BENCH_NODES=$NODES go test . -run '^$' \
    -bench 'BenchmarkEngineMillion|BenchmarkApplyShards$' \
    -benchtime "$BENCHTIME" -benchmem -timeout 0 | tee "$tmp"
go test ./internal/sim/ -run '^$' \
    -bench 'BenchmarkApplyShardsHotspot|BenchmarkRandomLiveNode' \
    -benchtime "$BENCHTIME" -benchmem -timeout 0 | tee -a "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "cpus": %s,\n' "$CPUS"
    printf '  "gomaxprocs": %s,\n' "$MAXPROCS"
    if [ "$CPUS" -eq 1 ]; then
        printf '  "warning": "single-cpu-host: wall-clock worker/sharding comparisons reflect scheduling overhead, not parallel speedup",\n'
    fi
    printf '  "engine_bench_nodes": %s,\n' "$NODES"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "note": "worker/sharding wall-clock comparisons only show speedups with cpus > 1: on a single-core host the pool is timesliced and shard scheduling is pure overhead. That is also the story of the balanced-vs-idmod hotspot ratio drifting across records (idmod/balanced ns/op: 0.73 in BENCH_6, 0.57 in BENCH_7 — idmod faster in both): as the per-job work got cheaper (dense arena in BENCH_7), the greedy bin-pack the balanced scheduler runs on the coordinator became a larger fraction of a single-CPU round, widening idmod'\''s edge. BENCH_10'\''s batched dispatch amortizes per-node overhead once per batch instead of once per job, which moves the single-CPU ratio back toward parity — but none of these wall-clock ratios is the contract. The balanced-vs-idmod scheduling win is pinned machine-independently by sim.TestBalancedShardingSpreadsHotspots (max shard load on aliased hubs: balanced <= 2x hub vs idmod >= 4x hub).",\n'
    printf '  "results": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            line = sprintf("    {\"name\":\"%s\",\"iterations\":%s", name, $2)
            for (i = 3; i < NF; i++) {
                u = $(i + 1)
                if (u == "ns/op")          line = line sprintf(",\"ns_per_op\":%s", $i)
                else if (u == "node-cycles/s") line = line sprintf(",\"node_cycles_per_s\":%s", $i)
                else if (u == "propose-ns/op") line = line sprintf(",\"propose_ns_per_op\":%s", $i)
                else if (u == "apply-ns/op")   line = line sprintf(",\"apply_ns_per_op\":%s", $i)
                else if (u == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", $i)
                else if (u == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
            }
            lines[n++] = line "}"
        }
        END {
            for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
        }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

echo "wrote $OUT"
