#!/usr/bin/env bash
# Perf-regression smoke: runs the engine benchmarks at reduced scale and
# compares them against the checked-in budget (scripts/alloc_budget.txt)
# on two axes. allocs/op fails when any benchmark exceeds its budget by
# more than 20% — the guard that keeps the hot path's recycling honest (a
# reflection-based sort or an un-pooled payload shows up as a multiple,
# not a percentage); alloc *counts*, unlike wall-clock, are stable across
# machines. node-cycles/s fails when throughput falls more than 20% below
# the committed reference — references are set far enough below the
# reference container's numbers that only a structural slowdown (not a
# slow runner) can trip the floor.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET=scripts/alloc_budget.txt
NODES=${ENGINE_BENCH_NODES:-20000}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

ENGINE_BENCH_NODES=$NODES go test . -run '^$' \
    -bench BenchmarkEngineMillion -benchtime 1x -benchmem | tee "$tmp"
go test ./internal/sim/ -run '^$' \
    -bench 'BenchmarkRandomLiveNode|BenchmarkApplyShardsHotspot' \
    -benchtime 100x -benchmem | tee -a "$tmp"

awk -v nodes="$NODES" '
    NR == FNR {
        if ($0 ~ /^#/ || NF < 2) next
        name = $1
        gsub(/\$NODES/, nodes, name)
        budget[name] = $2
        if (NF >= 3) floor[name] = $3
        next
    }
    /^Benchmark/ {
        a = -1
        t = -1
        for (i = 2; i <= NF; i++) {
            if ($i == "allocs/op") a = $(i - 1)
            if ($i == "node-cycles/s") t = $(i - 1)
        }
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (!(name in budget) || a < 0) next
        seen[name] = 1
        limit = budget[name] * 1.2
        if (a + 0 > limit) {
            printf "FAIL %s: %d allocs/op exceeds budget %d (+20%% = %.0f)\n", name, a, budget[name], limit
            bad = 1
        } else {
            printf "ok   %s: %d allocs/op (budget %d)\n", name, a, budget[name]
        }
        if (name in floor) {
            min = floor[name] * 0.8
            if (t < 0) {
                printf "FAIL %s: no node-cycles/s metric but a throughput reference is committed\n", name
                bad = 1
            } else if (t + 0 < min) {
                printf "FAIL %s: %d node-cycles/s below reference %d (-20%% = %.0f)\n", name, t, floor[name], min
                bad = 1
            } else {
                printf "ok   %s: %d node-cycles/s (reference %d)\n", name, t, floor[name]
            }
        }
    }
    END {
        for (n in budget) if (!(n in seen)) {
            printf "FAIL budgeted benchmark %s did not run\n", n
            bad = 1
        }
        exit bad
    }
' "$BUDGET" "$tmp"
